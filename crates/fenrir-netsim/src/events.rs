//! Scripted scenarios: the timeline of operational and third-party events
//! that drives every Fenrir experiment, with ground truth attached.
//!
//! The paper's Table 4 validation needs exactly this structure: an operator
//! maintenance log whose entries are *site drains*, *traffic engineering*,
//! or *invisible internal work*, plus **third-party** routing changes that
//! appear in no log at all. A [`Scenario`] holds all of them and can
//! materialise, for any instant `t`, the effective [`AnycastService`]
//! origin set and [`RoutingConfig`] — from which routes, catchments, and
//! Fenrir vectors follow.

use crate::anycast::AnycastService;
use crate::geo::GeoPoint;
use crate::routing::RoutingConfig;
use crate::topology::AsId;
use serde::{Deserialize, Serialize};

/// Who performed an event — operator events appear in the maintenance log,
/// third-party events do not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Party {
    /// The service operator (logged).
    Operator,
    /// Someone else in the Internet (never logged).
    ThirdParty,
}

/// What happens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// Withdraw a site while the event is active (maintenance drain).
    DrainSite {
        /// Site index in the base service.
        site: usize,
    },
    /// Activate a site from the event's start (new deployment). The site
    /// must exist in the base service, marked inactive.
    AddSite {
        /// Site index in the base service.
        site: usize,
    },
    /// Deactivate a site permanently from the event's start.
    RemoveSite {
        /// Site index in the base service.
        site: usize,
    },
    /// Re-home a site from the event's start (the paper's ARI move).
    MoveSite {
        /// Site index in the base service.
        site: usize,
        /// New hosting AS.
        to: AsId,
        /// New location.
        geo: GeoPoint,
    },
    /// A link is down while the event is active.
    LinkDown {
        /// One endpoint.
        a: AsId,
        /// Other endpoint.
        b: AsId,
    },
    /// `who` pins its routing to prefer neighbor `via` while active
    /// (local-pref traffic engineering).
    Prefer {
        /// The AS changing its policy.
        who: AsId,
        /// The preferred neighbor.
        via: AsId,
    },
    /// The operator prepends `count` hops to announcements from `origin`
    /// while active — reachability-preserving traffic engineering that
    /// deflates the origin's catchment.
    Prepend {
        /// The announcing AS (an anycast site host).
        origin: AsId,
        /// Extra hops announced.
        count: u8,
    },
    /// Internal maintenance with no external effect (log-only; the Table 4
    /// "invisible" class).
    Internal,
}

impl EventKind {
    /// Whether this event should be externally visible in catchments.
    pub fn is_external(&self) -> bool {
        !matches!(self, EventKind::Internal)
    }
}

/// One scheduled event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioEvent {
    /// Activation time (seconds since epoch).
    pub start: i64,
    /// For windowed events (drain, link down, prefer): when the effect
    /// ends. `None` = permanent.
    pub end: Option<i64>,
    /// What happens.
    pub kind: EventKind,
    /// Who did it.
    pub party: Party,
    /// Operator name for log grouping ("neteng-1").
    pub operator: String,
}

impl ScenarioEvent {
    /// Whether the event's *effect* is active at `t`.
    pub fn active_at(&self, t: i64) -> bool {
        t >= self.start && self.end.is_none_or(|e| t < e)
    }

    /// Whether the event has started by `t` (for permanent effects).
    pub fn started_by(&self, t: i64) -> bool {
        t >= self.start
    }
}

/// An entry of the operator's maintenance log (ground truth for
/// validation). Third-party events never produce one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruthEntry {
    /// When the maintenance happened.
    pub at: i64,
    /// Operator name.
    pub operator: String,
    /// The event (for classification into drain / TE / internal).
    pub kind: EventKind,
}

/// A timeline of events over a base service.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Scenario {
    /// All events, in no particular order.
    pub events: Vec<ScenarioEvent>,
}

impl Scenario {
    /// Empty scenario.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule an event.
    pub fn push(&mut self, e: ScenarioEvent) {
        self.events.push(e);
    }

    /// Convenience: operator site drain over `[start, end)`.
    pub fn drain(&mut self, site: usize, start: i64, end: i64, operator: &str) {
        self.push(ScenarioEvent {
            start,
            end: Some(end),
            kind: EventKind::DrainSite { site },
            party: Party::Operator,
            operator: operator.to_owned(),
        });
    }

    /// Convenience: invisible internal maintenance at `at`.
    pub fn internal(&mut self, at: i64, operator: &str) {
        self.push(ScenarioEvent {
            start: at,
            end: Some(at),
            kind: EventKind::Internal,
            party: Party::Operator,
            operator: operator.to_owned(),
        });
    }

    /// Convenience: operator traffic engineering by prepending over
    /// `[start, end)`.
    pub fn te_prepend(&mut self, origin: AsId, count: u8, start: i64, end: i64, operator: &str) {
        self.push(ScenarioEvent {
            start,
            end: Some(end),
            kind: EventKind::Prepend { origin, count },
            party: Party::Operator,
            operator: operator.to_owned(),
        });
    }

    /// Convenience: third-party preference change over `[start, end)`
    /// (`end = i64::MAX` for permanent).
    pub fn third_party_prefer(&mut self, who: AsId, via: AsId, start: i64, end: i64) {
        self.push(ScenarioEvent {
            start,
            end: Some(end),
            kind: EventKind::Prefer { who, via },
            party: Party::ThirdParty,
            operator: "third-party".to_owned(),
        });
    }

    /// Materialise the service state at time `t`: apply permanent
    /// activations/removals/moves and windowed drains to a clone of `base`.
    pub fn service_at(&self, base: &AnycastService, t: i64) -> AnycastService {
        let mut svc = base.clone();
        // Apply permanent changes in start order so later moves win.
        let mut permanent: Vec<&ScenarioEvent> =
            self.events.iter().filter(|e| e.started_by(t)).collect();
        permanent.sort_by_key(|e| e.start);
        for e in permanent {
            match &e.kind {
                EventKind::AddSite { site } => svc.restore(*site),
                EventKind::RemoveSite { site } => svc.drain(*site),
                EventKind::MoveSite { site, to, geo } => svc.move_site(*site, *to, *geo),
                _ => {}
            }
        }
        // Windowed drains override whatever the permanent state says.
        for e in &self.events {
            if let EventKind::DrainSite { site } = e.kind {
                if e.active_at(t) {
                    svc.drain(site);
                }
            }
        }
        svc
    }

    /// Materialise the routing config at time `t` (link failures and
    /// preference pins active at `t`).
    pub fn config_at(&self, t: i64) -> RoutingConfig {
        let mut cfg = RoutingConfig::default();
        // Apply in start-time order so that when two active events target
        // the same AS, the most recently *started* policy wins — regardless
        // of the order they were scheduled in.
        let mut active: Vec<&ScenarioEvent> =
            self.events.iter().filter(|e| e.active_at(t)).collect();
        active.sort_by_key(|e| e.start);
        for e in active {
            match e.kind {
                EventKind::LinkDown { a, b } => cfg.disable_link(a, b),
                EventKind::Prefer { who, via } => cfg.prefer(who, via),
                EventKind::Prepend { origin, count } => cfg.prepend(origin, count),
                _ => {}
            }
        }
        cfg
    }

    /// The operator maintenance log: one entry per operator event (start
    /// time), none for third parties.
    pub fn ground_truth(&self) -> Vec<GroundTruthEntry> {
        let mut log: Vec<GroundTruthEntry> = self
            .events
            .iter()
            .filter(|e| e.party == Party::Operator)
            .map(|e| GroundTruthEntry {
                at: e.start,
                operator: e.operator.clone(),
                kind: e.kind.clone(),
            })
            .collect();
        log.sort_by(|a, b| a.at.cmp(&b.at).then(a.operator.cmp(&b.operator)));
        log
    }

    /// Times at which *any* event boundary occurs (starts and ends),
    /// deduplicated and sorted — useful for choosing observation instants
    /// that straddle every change.
    pub fn boundaries(&self) -> Vec<i64> {
        let mut ts: Vec<i64> = self
            .events
            .iter()
            .flat_map(|e| [Some(e.start), e.end].into_iter().flatten())
            .collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::cities;
    use crate::topology::{Relationship, Tier, Topology};

    fn setup() -> (Topology, AnycastService, AsId, AsId, AsId) {
        let mut t = Topology::new();
        let tr = t.add_node(Tier::Transit, cities::CMH, vec![]);
        let r0 = t.add_node(Tier::Regional, cities::LAX, vec![]);
        let r1 = t.add_node(Tier::Regional, cities::AMS, vec![]);
        let s = t.add_node(Tier::Stub, cities::LAX, vec![]);
        t.add_edge(r0, tr, Relationship::Provider);
        t.add_edge(r1, tr, Relationship::Provider);
        t.add_edge(s, r0, Relationship::Provider);
        t.add_edge(s, r1, Relationship::Provider);
        let mut svc = AnycastService::new("X");
        svc.add_site("LAX", r0, cities::LAX);
        svc.add_site("AMS", r1, cities::AMS);
        (t, svc, r0, r1, s)
    }

    #[test]
    fn windowed_drain_applies_only_inside_window() {
        let (_, svc, ..) = setup();
        let mut sc = Scenario::new();
        sc.drain(0, 100, 200, "op");
        assert!(sc.service_at(&svc, 50).is_active(0));
        assert!(!sc.service_at(&svc, 100).is_active(0));
        assert!(!sc.service_at(&svc, 199).is_active(0));
        assert!(sc.service_at(&svc, 200).is_active(0), "end is exclusive");
    }

    #[test]
    fn add_site_activates_permanently() {
        let (_, mut svc, ..) = setup();
        svc.drain(1); // site AMS starts inactive (pre-deployment)
        let mut sc = Scenario::new();
        sc.push(ScenarioEvent {
            start: 500,
            end: None,
            kind: EventKind::AddSite { site: 1 },
            party: Party::Operator,
            operator: "op".into(),
        });
        assert!(!sc.service_at(&svc, 499).is_active(1));
        assert!(sc.service_at(&svc, 500).is_active(1));
        assert!(sc.service_at(&svc, 10_000).is_active(1));
    }

    #[test]
    fn remove_then_later_move_applies_in_order() {
        let (t, svc, _, r1, _) = setup();
        let tr = AsId(0);
        let mut sc = Scenario::new();
        sc.push(ScenarioEvent {
            start: 10,
            end: None,
            kind: EventKind::MoveSite {
                site: 0,
                to: tr,
                geo: cities::SCL,
            },
            party: Party::Operator,
            operator: "op".into(),
        });
        let at = sc.service_at(&svc, 20);
        assert_eq!(at.sites()[0].host, tr);
        assert_eq!(at.sites()[0].geo, cities::SCL);
        // Untouched earlier.
        assert_eq!(sc.service_at(&svc, 5).sites()[0].geo, cities::LAX);
        let _ = (t, r1);
    }

    #[test]
    fn config_collects_active_link_and_pref_events() {
        let (_, _, r0, r1, s) = setup();
        let mut sc = Scenario::new();
        sc.push(ScenarioEvent {
            start: 0,
            end: Some(100),
            kind: EventKind::LinkDown { a: s, b: r0 },
            party: Party::ThirdParty,
            operator: "third-party".into(),
        });
        sc.third_party_prefer(s, r1, 50, 150);
        let c0 = sc.config_at(10);
        assert!(c0.link_disabled(s, r0));
        assert!(c0.pref_override.is_empty());
        let c1 = sc.config_at(75);
        assert!(c1.link_disabled(s, r0));
        assert_eq!(c1.pref_override.get(&s), Some(&r1));
        let c2 = sc.config_at(120);
        assert!(!c2.link_disabled(s, r0));
        assert_eq!(c2.pref_override.get(&s), Some(&r1));
        let c3 = sc.config_at(200);
        assert!(c3.pref_override.is_empty());
    }

    #[test]
    fn ground_truth_excludes_third_parties() {
        let (_, _, r0, r1, s) = setup();
        let mut sc = Scenario::new();
        sc.drain(0, 100, 200, "alice");
        sc.internal(150, "bob");
        sc.third_party_prefer(s, r1, 50, 150);
        sc.push(ScenarioEvent {
            start: 300,
            end: Some(400),
            kind: EventKind::LinkDown { a: s, b: r0 },
            party: Party::ThirdParty,
            operator: "third-party".into(),
        });
        let log = sc.ground_truth();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].operator, "alice");
        assert!(matches!(log[0].kind, EventKind::DrainSite { .. }));
        assert_eq!(log[1].operator, "bob");
        assert!(!log[1].kind.is_external());
    }

    #[test]
    fn drain_shifts_catchments_end_to_end() {
        let (t, svc, _, _, s) = setup();
        let mut sc = Scenario::new();
        sc.drain(0, 100, 200, "op");
        let before = sc.service_at(&svc, 50).routes(&t, &sc.config_at(50));
        assert_eq!(before.catchment(s), Some(0));
        let during = sc.service_at(&svc, 150).routes(&t, &sc.config_at(150));
        assert_eq!(during.catchment(s), Some(1));
        let after = sc.service_at(&svc, 250).routes(&t, &sc.config_at(250));
        assert_eq!(after.catchment(s), Some(0), "mode recurs after the drain");
    }

    #[test]
    fn third_party_prefer_shifts_catchment_without_log() {
        let (t, svc, _, r1, s) = setup();
        let mut sc = Scenario::new();
        sc.third_party_prefer(s, r1, 100, 200);
        let before = sc.service_at(&svc, 50).routes(&t, &sc.config_at(50));
        let during = sc.service_at(&svc, 150).routes(&t, &sc.config_at(150));
        assert_ne!(before.catchment(s), during.catchment(s));
        assert!(sc.ground_truth().is_empty());
    }

    #[test]
    fn overlapping_pins_resolve_by_start_time_not_insertion_order() {
        let (_, _, _, r1, s) = setup();
        let r0 = crate::topology::AsId(1);
        let mut sc = Scenario::new();
        // Later-starting pin pushed FIRST; earlier-starting pin pushed
        // second. At t=250 both are active: the later-starting one (via
        // r1) must win.
        sc.third_party_prefer(s, r1, 200, 400);
        sc.third_party_prefer(s, r0, 100, 400);
        let cfg = sc.config_at(250);
        assert_eq!(cfg.pref_override.get(&s), Some(&r1));
        // Before the second pin starts, the earlier one rules.
        let cfg_early = sc.config_at(150);
        assert_eq!(cfg_early.pref_override.get(&s), Some(&r0));
    }

    #[test]
    fn prepend_te_shifts_catchment_and_preserves_reachability() {
        let (t, svc, r0, _, s) = setup();
        let mut sc = Scenario::new();
        // Prepend heavily from the LAX host (r0) during [100, 200).
        sc.te_prepend(r0, 5, 100, 200, "op");
        let before = sc.service_at(&svc, 50).routes(&t, &sc.config_at(50));
        let during = sc.service_at(&svc, 150).routes(&t, &sc.config_at(150));
        // The stub moves off site 0 without any site draining.
        assert_eq!(before.catchment(s), Some(0));
        assert_eq!(during.catchment(s), Some(1));
        // Reachability preserved everywhere.
        assert_eq!(during.reachable_count(), before.reachable_count());
        // And the TE event is in the operator log as external.
        let log = sc.ground_truth();
        assert_eq!(log.len(), 1);
        assert!(log[0].kind.is_external());
    }

    #[test]
    fn boundaries_sorted_dedup() {
        let mut sc = Scenario::new();
        sc.drain(0, 100, 200, "a");
        sc.drain(1, 100, 300, "a");
        sc.internal(50, "b");
        assert_eq!(sc.boundaries(), vec![50, 100, 200, 300]);
    }

    #[test]
    fn event_activity_windows() {
        let e = ScenarioEvent {
            start: 10,
            end: Some(20),
            kind: EventKind::Internal,
            party: Party::Operator,
            operator: "x".into(),
        };
        assert!(!e.active_at(9));
        assert!(e.active_at(10));
        assert!(e.active_at(19));
        assert!(!e.active_at(20));
        let p = ScenarioEvent { end: None, ..e };
        assert!(p.active_at(1_000_000));
    }
}
