//! Incremental route maintenance across configuration changes.
//!
//! The measurement crates walk a scenario timeline, materialising an
//! `(origins, config)` pair per observation instant and asking for routes.
//! Recomputing the Gao–Rexford fixed point from scratch at every instant
//! repeats almost all of the work: day-to-day, the topology is identical
//! and only a link or a policy entry changed. [`IncrementalRoutes`] keeps a
//! converged [`RouteTable`] alive, diffs each requested state against the
//! previous one into [`RouteEvent`]s, and reconverges each event from its
//! dirty frontier via [`RouteTable::recompute_after`] — provably reaching
//! the same fixed point the batch computation would (asserted by the
//! equivalence property tests), at a cost proportional to the perturbed
//! neighborhood instead of the topology.

use crate::routing::{RouteEvent, RouteTable, RoutingConfig};
use crate::topology::{AsId, Topology};
use std::collections::HashMap;

/// A live route table plus the `(origins, config)` state it is converged
/// for, advanced by events instead of rebuilt.
#[derive(Debug, Clone)]
pub struct IncrementalRoutes {
    origins: Vec<(AsId, u32)>,
    config: RoutingConfig,
    table: RouteTable,
    events_applied: usize,
}

/// Result of one [`IncrementalRoutes::advance_to_guarded`] transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardedAdvance {
    /// Number of events the diff produced (0 for a quiet transition).
    pub applied: usize,
    /// Whether this transition was cross-checked against a batch compute.
    pub checked: bool,
    /// `Some(detail)` when the cross-check found the incremental table
    /// disagreeing with batch. The table has already been **repaired** —
    /// replaced by the batch result — so the routes returned after this
    /// call are correct; the caller's divergence guard decides what to
    /// quarantine and report.
    pub divergence: Option<String>,
}

impl IncrementalRoutes {
    /// Converge an initial table for `(origins, config)` from scratch.
    pub fn new(topo: &Topology, origins: Vec<(AsId, u32)>, config: RoutingConfig) -> Self {
        let table = RouteTable::compute(topo, &origins, &config);
        IncrementalRoutes {
            origins,
            config,
            table,
            events_applied: 0,
        }
    }

    /// The current converged route table.
    pub fn table(&self) -> &RouteTable {
        &self.table
    }

    /// The origin set the table is converged for.
    pub fn origins(&self) -> &[(AsId, u32)] {
        &self.origins
    }

    /// The routing config the table is converged for.
    pub fn config(&self) -> &RoutingConfig {
        &self.config
    }

    /// Total events applied since construction.
    pub fn events_applied(&self) -> usize {
        self.events_applied
    }

    /// Apply one event and reconverge from its dirty frontier.
    pub fn apply(&mut self, topo: &Topology, event: &RouteEvent) {
        self.table
            .recompute_after(topo, &mut self.origins, &mut self.config, event);
        self.events_applied += 1;
    }

    /// Advance to an absolute target state, applying only the delta.
    /// Returns the number of events the diff produced (0 when the state is
    /// unchanged — the common day-to-day case, which then costs nothing).
    ///
    /// Debug builds cross-check every eventful transition against a
    /// from-scratch computation and abort on mismatch, so any
    /// configuration outside the uniqueness guarantee (a preference pin
    /// ranking a peer/provider route above customer routes can admit two
    /// stable states — an RFC 4264 "BGP wedgie") fails loudly in tests
    /// instead of silently skewing measurements. Release builds keep the
    /// incremental speedup; callers wanting a runtime net use
    /// [`IncrementalRoutes::advance_to_guarded`], which samples the same
    /// cross-check and repairs instead of aborting.
    pub fn advance_to(
        &mut self,
        topo: &Topology,
        origins: &[(AsId, u32)],
        config: &RoutingConfig,
    ) -> usize {
        let out = self.advance_to_guarded(topo, origins, config, cfg!(debug_assertions));
        debug_assert!(
            out.divergence.is_none(),
            "incremental reconvergence diverged from batch: {}",
            out.divergence.as_deref().unwrap_or_default()
        );
        out.applied
    }

    /// [`IncrementalRoutes::advance_to`] with an explicit cross-check
    /// decision, for callers running a sampled `DivergenceGuard` in
    /// release builds. When `check` is true the advanced table is compared
    /// node-by-node against `RouteTable::compute`; a mismatch **repairs**
    /// the table in place (the batch result wins) and comes back as
    /// [`GuardedAdvance::divergence`] so the caller can record the event
    /// and quarantine this instance — never a panic, in any build.
    pub fn advance_to_guarded(
        &mut self,
        topo: &Topology,
        origins: &[(AsId, u32)],
        config: &RoutingConfig,
        check: bool,
    ) -> GuardedAdvance {
        let events = diff_states(&self.origins, &self.config, origins, config);
        let applied = events.len();
        for ev in &events {
            self.apply(topo, ev);
        }
        // Origins are a multiset: applying a remove+add cycle reorders the
        // Vec (remove from the middle, push to the end) without changing
        // the set routing sees.
        debug_assert_eq!(
            {
                let mut mine = self.origins.clone();
                mine.sort_unstable();
                mine
            },
            {
                let mut theirs = origins.to_vec();
                theirs.sort_unstable();
                theirs
            },
            "diff must reproduce the origins"
        );
        debug_assert_eq!(
            self.config.disabled_links, config.disabled_links,
            "diff must reproduce the link set"
        );
        debug_assert_eq!(self.config.pref_override, config.pref_override);
        debug_assert_eq!(self.config.prepend, config.prepend);
        let mut divergence = None;
        if check {
            let batch = RouteTable::compute(topo, origins, config);
            for node in topo.nodes() {
                if self.table.route(node.id) != batch.route(node.id) {
                    divergence = Some(format!(
                        "at {:?}: incremental {:?}, batch {:?}",
                        node.id,
                        self.table.route(node.id),
                        batch.route(node.id)
                    ));
                    break;
                }
            }
            if divergence.is_some() {
                self.table = batch;
            }
        }
        GuardedAdvance {
            applied,
            checked: check,
            divergence,
        }
    }

    /// Chaos hook: reconverge the table through `event` **without**
    /// recording the event in the tracked `(origins, config)` state. The
    /// table is left genuinely desynchronised from the state it claims to
    /// be converged for — exactly what an incremental bookkeeping bug
    /// would produce — so fault-injection campaigns can exercise the
    /// `DivergenceGuard` detection/repair/quarantine path end to end.
    pub fn poison(&mut self, topo: &Topology, event: &RouteEvent) {
        let mut origins = self.origins.clone();
        let mut config = self.config.clone();
        self.table
            .recompute_after(topo, &mut origins, &mut config, event);
        self.events_applied += 1;
    }
}

/// Diff two `(origins, config)` states into the event sequence that
/// transforms the old one into the new one. Events come out in a
/// deterministic order (sorted within each kind); the final fixed point is
/// order-independent, so any order is correct.
pub fn diff_states(
    old_origins: &[(AsId, u32)],
    old_config: &RoutingConfig,
    new_origins: &[(AsId, u32)],
    new_config: &RoutingConfig,
) -> Vec<RouteEvent> {
    let mut events = Vec::new();

    let mut downs: Vec<(AsId, AsId)> = new_config
        .disabled_links
        .difference(&old_config.disabled_links)
        .copied()
        .collect();
    downs.sort();
    events.extend(
        downs
            .into_iter()
            .map(|(a, b)| RouteEvent::LinkDown { a, b }),
    );
    let mut ups: Vec<(AsId, AsId)> = old_config
        .disabled_links
        .difference(&new_config.disabled_links)
        .copied()
        .collect();
    ups.sort();
    events.extend(ups.into_iter().map(|(a, b)| RouteEvent::LinkUp { a, b }));

    let mut clears: Vec<AsId> = old_config
        .pref_override
        .keys()
        .filter(|who| !new_config.pref_override.contains_key(who))
        .copied()
        .collect();
    clears.sort();
    events.extend(clears.into_iter().map(|who| RouteEvent::PrefClear { who }));
    let mut sets: Vec<(AsId, AsId)> = new_config
        .pref_override
        .iter()
        .filter(|(who, via)| old_config.pref_override.get(who) != Some(via))
        .map(|(&who, &via)| (who, via))
        .collect();
    sets.sort();
    events.extend(
        sets.into_iter()
            .map(|(who, via)| RouteEvent::PrefSet { who, via }),
    );

    let mut prepends: Vec<(AsId, u8)> = old_config
        .prepend
        .keys()
        .filter(|o| !new_config.prepend.contains_key(o))
        .map(|&o| (o, 0))
        .chain(
            new_config
                .prepend
                .iter()
                .filter(|(o, count)| old_config.prepend.get(o) != Some(count))
                .map(|(&o, &count)| (o, count)),
        )
        .collect();
    prepends.sort();
    events.extend(
        prepends
            .into_iter()
            .map(|(origin, count)| RouteEvent::PrependSet { origin, count }),
    );

    // Origins are a multiset of (AS, site) pairs.
    let mut counts: HashMap<(AsId, u32), i64> = HashMap::new();
    for &e in old_origins {
        *counts.entry(e).or_insert(0) -= 1;
    }
    for &e in new_origins {
        *counts.entry(e).or_insert(0) += 1;
    }
    let mut removes = Vec::new();
    let mut adds = Vec::new();
    for (&(origin, site), &delta) in &counts {
        for _ in 0..(-delta).max(0) {
            removes.push((origin, site));
        }
        for _ in 0..delta.max(0) {
            adds.push((origin, site));
        }
    }
    removes.sort();
    adds.sort();
    events.extend(
        removes
            .into_iter()
            .map(|(origin, site)| RouteEvent::OriginRemove { origin, site }),
    );
    events.extend(
        adds.into_iter()
            .map(|(origin, site)| RouteEvent::OriginAdd { origin, site }),
    );
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;
    use crate::topology::{Relationship, Tier};

    fn diamond() -> (Topology, [AsId; 5]) {
        let mut t = Topology::new();
        let t0 = t.add_node(Tier::Transit, GeoPoint::default(), vec![]);
        let t1 = t.add_node(Tier::Transit, GeoPoint::default(), vec![]);
        let r0 = t.add_node(Tier::Regional, GeoPoint::default(), vec![]);
        let r1 = t.add_node(Tier::Regional, GeoPoint::default(), vec![]);
        let s0 = t.add_node(Tier::Stub, GeoPoint::default(), vec![]);
        t.add_edge(t0, t1, Relationship::Peer);
        t.add_edge(r0, t0, Relationship::Provider);
        t.add_edge(r1, t1, Relationship::Provider);
        t.add_edge(s0, r0, Relationship::Provider);
        t.add_edge(s0, r1, Relationship::Provider);
        (t, [t0, t1, r0, r1, s0])
    }

    #[test]
    fn diff_of_identical_states_is_empty() {
        let origins = vec![(AsId(2), 0)];
        let cfg = RoutingConfig::default();
        assert!(diff_states(&origins, &cfg, &origins, &cfg).is_empty());
    }

    #[test]
    fn diff_covers_every_field() {
        let old_origins = vec![(AsId(2), 0), (AsId(3), 1)];
        let new_origins = vec![(AsId(2), 0), (AsId(4), 2)];
        let mut old_cfg = RoutingConfig::default();
        old_cfg.disable_link(AsId(0), AsId(1));
        old_cfg.prefer(AsId(4), AsId(2));
        old_cfg.prepend(AsId(2), 1);
        let mut new_cfg = RoutingConfig::default();
        new_cfg.disable_link(AsId(2), AsId(0));
        new_cfg.prefer(AsId(4), AsId(3));
        let events = diff_states(&old_origins, &old_cfg, &new_origins, &new_cfg);
        assert_eq!(
            events,
            vec![
                RouteEvent::LinkDown {
                    a: AsId(0),
                    b: AsId(2)
                },
                RouteEvent::LinkUp {
                    a: AsId(0),
                    b: AsId(1)
                },
                RouteEvent::PrefSet {
                    who: AsId(4),
                    via: AsId(3)
                },
                RouteEvent::PrependSet {
                    origin: AsId(2),
                    count: 0
                },
                RouteEvent::OriginRemove {
                    origin: AsId(3),
                    site: 1
                },
                RouteEvent::OriginAdd {
                    origin: AsId(4),
                    site: 2
                },
            ]
        );
    }

    #[test]
    fn guarded_advance_detects_and_repairs_poisoned_table() {
        let (t, [.., r0, _r1, s0]) = diamond();
        let cfg = RoutingConfig::default();
        let mut inc = IncrementalRoutes::new(&t, vec![(r0, 0)], cfg.clone());
        assert!(inc.table().route(s0).is_some());
        // Desynchronise: the table loses its only origin while the tracked
        // state still claims (r0, 0) is announced.
        inc.poison(
            &t,
            &RouteEvent::OriginRemove {
                origin: r0,
                site: 0,
            },
        );
        assert!(inc.table().route(s0).is_none(), "poison must bite");
        // An unchecked quiet advance cannot see the corruption...
        let out = inc.advance_to_guarded(&t, &[(r0, 0)], &cfg, false);
        assert_eq!((out.applied, out.checked, out.divergence), (0, false, None));
        // ...a checked one detects it, reports it, and repairs the table.
        let out = inc.advance_to_guarded(&t, &[(r0, 0)], &cfg, true);
        assert!(out.checked && out.divergence.is_some());
        let batch = RouteTable::compute(&t, &[(r0, 0)], &cfg);
        for node in t.nodes() {
            assert_eq!(inc.table().route(node.id), batch.route(node.id));
        }
        // Once repaired, a re-check is clean.
        let out = inc.advance_to_guarded(&t, &[(r0, 0)], &cfg, true);
        assert_eq!(out.divergence, None);
    }

    #[test]
    fn advance_to_matches_batch_compute() {
        let (t, [.., r0, r1, s0]) = diamond();
        let mut inc = IncrementalRoutes::new(&t, vec![(r0, 0)], RoutingConfig::default());
        // Target state: second site added, a link down, a pref pin.
        let target_origins = vec![(r0, 0), (r1, 1)];
        let mut target_cfg = RoutingConfig::default();
        target_cfg.disable_link(s0, r0);
        target_cfg.prefer(s0, r1);
        let applied = inc.advance_to(&t, &target_origins, &target_cfg);
        assert_eq!(applied, 3);
        let batch = RouteTable::compute(&t, &target_origins, &target_cfg);
        for node in t.nodes() {
            assert_eq!(inc.table().route(node.id), batch.route(node.id));
        }
        // Advancing to the same state again is free.
        assert_eq!(inc.advance_to(&t, &target_origins, &target_cfg), 0);
        assert_eq!(inc.events_applied(), 3);
    }
}
