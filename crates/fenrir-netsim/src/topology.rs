//! The AS-level topology: nodes, business relationships, and a seeded
//! generator producing Internet-like three-tier graphs.
//!
//! Relationships follow the standard Gao–Rexford model: an edge is either a
//! **customer–provider** link (the customer pays) or a **peer** link
//! (settlement-free). Valley-free routing over these relationships is what
//! makes third-party policy changes shift catchments several hops away —
//! the phenomenon Fenrir exists to detect.

use crate::geo::GeoPoint;
use crate::prefix::BlockId;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of an AS within a [`Topology`] (doubles as its ASN for display).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AsId(pub u32);

impl AsId {
    /// Position in the topology's node table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// What the *neighbor* is to this AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Relationship {
    /// The neighbor is my customer (they pay me).
    Customer,
    /// The neighbor is my provider (I pay them).
    Provider,
    /// Settlement-free peer.
    Peer,
}

impl Relationship {
    /// The relationship as seen from the other end of the link.
    pub fn inverse(self) -> Relationship {
        match self {
            Relationship::Customer => Relationship::Provider,
            Relationship::Provider => Relationship::Customer,
            Relationship::Peer => Relationship::Peer,
        }
    }
}

/// Position in the routing hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Global transit backbone (Tier-1): full peer mesh, no providers.
    Transit,
    /// Regional/national provider: buys from transit, sells to stubs.
    Regional,
    /// Edge network (enterprise, eyeball, campus): only buys.
    Stub,
}

/// One autonomous system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsNode {
    /// Identifier (also the display ASN).
    pub id: AsId,
    /// Hierarchy tier.
    pub tier: Tier,
    /// Geographic placement (headquarters / main PoP).
    pub geo: GeoPoint,
    /// /24 blocks originated by this AS.
    pub blocks: Vec<BlockId>,
}

/// The AS graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<AsNode>,
    /// `adj[a]` lists `(neighbor, what-neighbor-is-to-a)`.
    adj: Vec<Vec<(AsId, Relationship)>>,
    /// Reverse map from block to originating AS.
    block_owner: HashMap<BlockId, AsId>,
}

impl Topology {
    /// An empty topology (build with [`Topology::add_node`] /
    /// [`Topology::add_edge`], or use [`TopologyBuilder`]).
    pub fn new() -> Self {
        Topology {
            nodes: Vec::new(),
            adj: Vec::new(),
            block_owner: HashMap::new(),
        }
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self, tier: Tier, geo: GeoPoint, blocks: Vec<BlockId>) -> AsId {
        let id = AsId(self.nodes.len() as u32);
        for &b in &blocks {
            self.block_owner.insert(b, id);
        }
        self.nodes.push(AsNode {
            id,
            tier,
            geo,
            blocks,
        });
        self.adj.push(Vec::new());
        id
    }

    /// Add an edge; `rel` states what `b` is to `a` (the inverse is stored
    /// for `b`). Duplicate edges are ignored.
    pub fn add_edge(&mut self, a: AsId, b: AsId, rel: Relationship) {
        if a == b || self.adj[a.index()].iter().any(|&(n, _)| n == b) {
            return;
        }
        self.adj[a.index()].push((b, rel));
        self.adj[b.index()].push((a, rel.inverse()));
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the topology has no ASes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node accessor.
    pub fn node(&self, a: AsId) -> &AsNode {
        &self.nodes[a.index()]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[AsNode] {
        &self.nodes
    }

    /// Neighbors of `a` with their relationship to `a`.
    pub fn neighbors(&self, a: AsId) -> &[(AsId, Relationship)] {
        &self.adj[a.index()]
    }

    /// The relationship of `b` to `a`, if adjacent.
    pub fn relationship(&self, a: AsId, b: AsId) -> Option<Relationship> {
        self.adj[a.index()]
            .iter()
            .find(|&&(n, _)| n == b)
            .map(|&(_, r)| r)
    }

    /// The AS originating a block.
    pub fn owner_of(&self, block: BlockId) -> Option<AsId> {
        self.block_owner.get(&block).copied()
    }

    /// All blocks in ascending order with their owners.
    pub fn all_blocks(&self) -> Vec<(BlockId, AsId)> {
        let mut v: Vec<(BlockId, AsId)> = self.block_owner.iter().map(|(&b, &a)| (b, a)).collect();
        v.sort();
        v
    }

    /// Ids of all ASes of a tier.
    pub fn tier_members(&self, tier: Tier) -> Vec<AsId> {
        self.nodes
            .iter()
            .filter(|n| n.tier == tier)
            .map(|n| n.id)
            .collect()
    }

    /// Total number of edges (each counted once).
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(|v| v.len()).sum::<usize>() / 2
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

/// Seeded generator for Internet-like topologies.
///
/// The shape follows the classic three-tier model: a full mesh of transit
/// ASes; regional providers buying from 1–2 (geographically near) transit
/// ASes and sometimes peering with each other; stubs buying from 1–2
/// regionals, placed near their primary provider, each originating a run of
/// /24 blocks.
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    /// Number of Tier-1 transit ASes.
    pub transit: usize,
    /// Number of regional providers.
    pub regional: usize,
    /// Number of stub ASes.
    pub stubs: usize,
    /// /24 blocks originated per stub.
    pub blocks_per_stub: usize,
    /// Probability a stub is multihomed (two regional providers).
    pub multihome_prob: f64,
    /// Probability a pair of regionals peers.
    pub regional_peer_prob: f64,
    /// RNG seed: same seed, same topology.
    pub seed: u64,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        TopologyBuilder {
            transit: 5,
            regional: 20,
            stubs: 200,
            blocks_per_stub: 4,
            multihome_prob: 0.4,
            regional_peer_prob: 0.15,
            seed: 0xFE17_0001,
        }
    }
}

impl TopologyBuilder {
    /// Generate the topology.
    ///
    /// # Panics
    ///
    /// Panics if `transit == 0` or `regional == 0` — a routable Internet
    /// needs a core.
    pub fn build(&self) -> Topology {
        assert!(self.transit > 0, "need at least one transit AS");
        assert!(self.regional > 0, "need at least one regional AS");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut topo = Topology::new();

        // Tier-1 core: random placement, full peer mesh.
        let transit: Vec<AsId> = (0..self.transit)
            .map(|_| topo.add_node(Tier::Transit, GeoPoint::random(&mut rng), Vec::new()))
            .collect();
        for (i, &a) in transit.iter().enumerate() {
            for &b in &transit[i + 1..] {
                topo.add_edge(a, b, Relationship::Peer);
            }
        }

        // Regionals: 1–2 transit providers, preferring near ones.
        let regional: Vec<AsId> = (0..self.regional)
            .map(|_| {
                let geo = GeoPoint::random(&mut rng);
                let id = topo.add_node(Tier::Regional, geo, Vec::new());
                let mut ranked = transit.clone();
                ranked.sort_by(|&x, &y| {
                    let dx = topo.node(x).geo.distance_km(geo);
                    let dy = topo.node(y).geo.distance_km(geo);
                    dx.partial_cmp(&dy).expect("finite distances")
                });
                topo.add_edge(id, ranked[0], Relationship::Provider);
                if ranked.len() > 1 && rng.gen_bool(0.5) {
                    topo.add_edge(id, ranked[1], Relationship::Provider);
                }
                id
            })
            .collect();
        for (i, &a) in regional.iter().enumerate() {
            for &b in &regional[i + 1..] {
                if rng.gen_bool(self.regional_peer_prob) {
                    topo.add_edge(a, b, Relationship::Peer);
                }
            }
        }

        // Stubs: 1–2 regional providers; placed near the primary; blocks
        // assigned sequentially from 10.0.0.0-ish space upward.
        let mut next_block = BlockId::of_addr([10, 0, 0, 0]).0;
        for _ in 0..self.stubs {
            let primary = *regional.choose(&mut rng).expect("regionals nonempty");
            let geo = topo.node(primary).geo.jittered(&mut rng, 300.0);
            let blocks: Vec<BlockId> = (0..self.blocks_per_stub)
                .map(|_| {
                    let b = BlockId(next_block);
                    next_block += 1;
                    b
                })
                .collect();
            let id = topo.add_node(Tier::Stub, geo, blocks);
            topo.add_edge(id, primary, Relationship::Provider);
            if rng.gen_bool(self.multihome_prob) {
                let secondary = *regional.choose(&mut rng).expect("regionals nonempty");
                if secondary != primary {
                    topo.add_edge(id, secondary, Relationship::Provider);
                }
            }
        }
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Topology {
        TopologyBuilder {
            transit: 3,
            regional: 6,
            stubs: 30,
            blocks_per_stub: 2,
            seed: 7,
            ..Default::default()
        }
        .build()
    }

    #[test]
    fn builder_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.edge_count(), b.edge_count());
        for (na, nb) in a.nodes().iter().zip(b.nodes()) {
            assert_eq!(na.tier, nb.tier);
            assert_eq!(na.geo, nb.geo);
            assert_eq!(na.blocks, nb.blocks);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = small();
        let b = TopologyBuilder {
            transit: 3,
            regional: 6,
            stubs: 30,
            blocks_per_stub: 2,
            seed: 8,
            ..Default::default()
        }
        .build();
        let geos_differ = a.nodes().iter().zip(b.nodes()).any(|(x, y)| x.geo != y.geo);
        assert!(geos_differ);
    }

    #[test]
    fn tier_counts_match_parameters() {
        let t = small();
        assert_eq!(t.tier_members(Tier::Transit).len(), 3);
        assert_eq!(t.tier_members(Tier::Regional).len(), 6);
        assert_eq!(t.tier_members(Tier::Stub).len(), 30);
        assert_eq!(t.len(), 39);
    }

    #[test]
    fn transit_is_full_mesh() {
        let t = small();
        let transit = t.tier_members(Tier::Transit);
        for &a in &transit {
            for &b in &transit {
                if a != b {
                    assert_eq!(t.relationship(a, b), Some(Relationship::Peer));
                }
            }
        }
    }

    #[test]
    fn every_nontransit_as_has_a_provider() {
        let t = small();
        for n in t.nodes() {
            if n.tier != Tier::Transit {
                let has_provider = t
                    .neighbors(n.id)
                    .iter()
                    .any(|&(_, r)| r == Relationship::Provider);
                assert!(has_provider, "{} lacks a provider", n.id);
            }
        }
    }

    #[test]
    fn relationships_are_mutually_consistent() {
        let t = small();
        for n in t.nodes() {
            for &(m, rel) in t.neighbors(n.id) {
                assert_eq!(t.relationship(m, n.id), Some(rel.inverse()));
            }
        }
    }

    #[test]
    fn blocks_are_unique_and_owned() {
        let t = small();
        let all = t.all_blocks();
        assert_eq!(all.len(), 30 * 2);
        for w in all.windows(2) {
            assert!(w[0].0 < w[1].0, "blocks sorted and unique");
        }
        for (b, owner) in all {
            assert!(t.node(owner).blocks.contains(&b));
            assert_eq!(t.owner_of(b), Some(owner));
        }
    }

    #[test]
    fn add_edge_ignores_duplicates_and_self_loops() {
        let mut t = Topology::new();
        let a = t.add_node(Tier::Stub, GeoPoint::default(), vec![]);
        let b = t.add_node(Tier::Stub, GeoPoint::default(), vec![]);
        t.add_edge(a, b, Relationship::Peer);
        t.add_edge(a, b, Relationship::Peer);
        t.add_edge(b, a, Relationship::Peer);
        t.add_edge(a, a, Relationship::Peer);
        assert_eq!(t.edge_count(), 1);
    }

    #[test]
    fn relationship_inverse() {
        assert_eq!(Relationship::Customer.inverse(), Relationship::Provider);
        assert_eq!(Relationship::Provider.inverse(), Relationship::Customer);
        assert_eq!(Relationship::Peer.inverse(), Relationship::Peer);
    }

    #[test]
    fn display_asid() {
        assert_eq!(AsId(2152).to_string(), "AS2152");
    }

    #[test]
    fn owner_of_unknown_block_is_none() {
        let t = small();
        assert_eq!(t.owner_of(BlockId::of_addr([203, 0, 113, 0])), None);
    }
}
