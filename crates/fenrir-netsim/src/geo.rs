//! Geography and the RTT model.
//!
//! Latency in Fenrir's Figure 4 tracks geography: the paper's ARI (Chile)
//! site shows >200 ms p90 because "a few North American and European
//! networks \[were\] routed to it". The simulator reproduces that coupling
//! by placing every AS at a point on the globe and deriving RTT from
//! great-circle distance at a propagation speed of roughly 2/3 c plus fixed
//! per-hop overhead.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A point on the globe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct GeoPoint {
    /// Latitude in degrees, `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, `[-180, 180]`.
    pub lon: f64,
}

/// Mean Earth radius in km.
pub const EARTH_RADIUS_KM: f64 = 6_371.0;

/// Signal speed in fibre, km per ms (≈ 2/3 of c).
pub const FIBRE_KM_PER_MS: f64 = 200.0;

/// Fixed RTT overhead per path (serialization, queueing, last mile), ms.
pub const BASE_RTT_MS: f64 = 2.0;

impl GeoPoint {
    /// Construct, clamping to valid ranges.
    pub fn new(lat: f64, lon: f64) -> Self {
        GeoPoint {
            lat: lat.clamp(-90.0, 90.0),
            lon: ((lon + 180.0).rem_euclid(360.0)) - 180.0,
        }
    }

    /// Great-circle distance to `other` in km (haversine).
    pub fn distance_km(self, other: GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().atan2((1.0 - a).sqrt())
    }

    /// Idealized round-trip time to `other` in ms: great-circle propagation
    /// both ways plus fixed overhead.
    pub fn rtt_ms(self, other: GeoPoint) -> f64 {
        BASE_RTT_MS + 2.0 * self.distance_km(other) / FIBRE_KM_PER_MS
    }

    /// A uniformly random point with latitude bounded to inhabited ranges
    /// (|lat| ≤ 60°), for AS placement.
    pub fn random<R: Rng>(rng: &mut R) -> GeoPoint {
        GeoPoint::new(rng.gen_range(-60.0..60.0), rng.gen_range(-180.0..180.0))
    }

    /// A random point within roughly `radius_km` of `self` (small-angle
    /// approximation; fine for clustering stubs around their providers).
    pub fn jittered<R: Rng>(self, rng: &mut R, radius_km: f64) -> GeoPoint {
        let dlat = radius_km / 111.0; // km per degree latitude
        let dlon = radius_km / (111.0 * self.lat.to_radians().cos().abs().max(0.2));
        GeoPoint::new(
            self.lat + rng.gen_range(-dlat..=dlat),
            self.lon + rng.gen_range(-dlon..=dlon),
        )
    }
}

/// A few real-city anchors used by scenario builders so site names line up
/// with plausible geography.
pub mod cities {
    use super::GeoPoint;

    /// Los Angeles (the paper's LAX).
    pub const LAX: GeoPoint = GeoPoint {
        lat: 33.94,
        lon: -118.41,
    };
    /// Miami.
    pub const MIA: GeoPoint = GeoPoint {
        lat: 25.79,
        lon: -80.29,
    };
    /// Amsterdam (AMS, added to B-Root in 2020).
    pub const AMS: GeoPoint = GeoPoint {
        lat: 52.31,
        lon: 4.76,
    };
    /// Singapore (SIN, added to B-Root in 2020).
    pub const SIN: GeoPoint = GeoPoint {
        lat: 1.36,
        lon: 103.99,
    };
    /// Washington D.C. (IAD, added to B-Root in 2020).
    pub const IAD: GeoPoint = GeoPoint {
        lat: 38.95,
        lon: -77.46,
    };
    /// Arica, Chile (ARI, shut down 2023-03-06 in the paper).
    pub const ARI: GeoPoint = GeoPoint {
        lat: -18.35,
        lon: -70.34,
    };
    /// Santiago, Chile (SCL, ARI's replacement).
    pub const SCL: GeoPoint = GeoPoint {
        lat: -33.39,
        lon: -70.79,
    };
    /// Stuttgart (STR, the G-Root site that drains in Figure 1).
    pub const STR: GeoPoint = GeoPoint {
        lat: 48.69,
        lon: 9.19,
    };
    /// Naples (NAP, where STR's users shift).
    pub const NAP: GeoPoint = GeoPoint {
        lat: 40.88,
        lon: 14.29,
    };
    /// Columbus, Ohio (CMH).
    pub const CMH: GeoPoint = GeoPoint {
        lat: 39.99,
        lon: -82.88,
    };
    /// San Antonio (SAT).
    pub const SAT: GeoPoint = GeoPoint {
        lat: 29.53,
        lon: -98.47,
    };
    /// Tokyo (NRT).
    pub const NRT: GeoPoint = GeoPoint {
        lat: 35.76,
        lon: 140.38,
    };
    /// Honolulu (HNL).
    pub const HNL: GeoPoint = GeoPoint {
        lat: 21.32,
        lon: -157.92,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn zero_distance_to_self() {
        let p = GeoPoint::new(10.0, 20.0);
        assert!(p.distance_km(p) < 1e-9);
        assert!((p.rtt_ms(p) - BASE_RTT_MS).abs() < 1e-9);
    }

    #[test]
    fn known_distance_lax_ams() {
        // LAX–AMS is roughly 8,960 km.
        let d = cities::LAX.distance_km(cities::AMS);
        assert!((8_700.0..9_200.0).contains(&d), "got {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        let d1 = cities::SIN.distance_km(cities::MIA);
        let d2 = cities::MIA.distance_km(cities::SIN);
        assert!((d1 - d2).abs() < 1e-6);
    }

    #[test]
    fn rtt_grows_with_distance() {
        // Transatlantic RTT must exceed transcontinental-US RTT.
        let us = cities::LAX.rtt_ms(cities::CMH);
        let atlantic = cities::LAX.rtt_ms(cities::AMS);
        assert!(atlantic > us);
        // And both are in plausible ranges.
        assert!((20.0..60.0).contains(&us), "us {us}");
        assert!((80.0..120.0).contains(&atlantic), "atlantic {atlantic}");
    }

    #[test]
    fn new_clamps_and_wraps() {
        let p = GeoPoint::new(99.0, 190.0);
        assert_eq!(p.lat, 90.0);
        assert!((p.lon - -170.0).abs() < 1e-9);
    }

    #[test]
    fn random_points_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let p = GeoPoint::random(&mut rng);
            assert!(p.lat.abs() <= 60.0);
            assert!(p.lon.abs() <= 180.0);
        }
    }

    #[test]
    fn jittered_stays_near() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let base = cities::AMS;
        for _ in 0..50 {
            let p = base.jittered(&mut rng, 100.0);
            assert!(base.distance_km(p) < 400.0);
        }
    }

    #[test]
    fn antipodal_distance_near_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = a.distance_km(b);
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_KM).abs() < 1.0);
    }
}
