//! BGP-style route computation under Gao–Rexford policies.
//!
//! Routing in the simulator is destination-based, like BGP: a
//! [`RouteTable`] holds every AS's best route toward one *origin set* — a
//! single AS for unicast, several `(AS, site)` pairs for an anycast prefix.
//! The decision process mirrors the classic model:
//!
//! 1. **Local preference** by business relationship: routes learned from
//!    customers beat routes from peers beat routes from providers.
//! 2. **Shortest AS path** among equally preferred routes.
//! 3. Deterministic tie-break (lowest next-hop ASN, then lowest site tag).
//!
//! Export follows the valley-free rule: routes learned from a customer (or
//! originated locally) are exported to everyone; routes learned from a peer
//! or provider are exported only to customers.
//!
//! [`RoutingConfig`] injects the events Fenrir must detect: failed links
//! and per-AS preference overrides (a third party pinning traffic to one
//! neighbor — invisible to the service operator, visible in catchments).

use crate::topology::{AsId, Relationship, Topology};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Local-preference classes, highest first.
const PREF_ORIGIN: u8 = 4;
const PREF_CUSTOMER: u8 = 3;
const PREF_PEER: u8 = 2;
const PREF_PROVIDER: u8 = 1;
/// Bonus applied by a preference override; large enough to dominate the
/// relationship classes, as an operator's explicit local-pref would.
const PREF_OVERRIDE_BONUS: u8 = 10;

/// Routing-time modifications of the base topology.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RoutingConfig {
    /// Links that are down, stored normalized as `(min, max)`.
    pub disabled_links: HashSet<(AsId, AsId)>,
    /// `a → b`: AS `a` prefers any route learned from neighbor `b`
    /// (a traffic-engineering local-pref pin).
    pub pref_override: HashMap<AsId, AsId>,
    /// AS-path prepending by origin: routes originated by the key AS
    /// compare as if their path were this many hops longer — the classic
    /// reachability-preserving traffic engineering anycast operators use
    /// to deflate a site's catchment.
    pub prepend: HashMap<AsId, u8>,
}

impl RoutingConfig {
    /// Disable the link between `a` and `b` (order-insensitive).
    pub fn disable_link(&mut self, a: AsId, b: AsId) {
        self.disabled_links.insert((a.min(b), a.max(b)));
    }

    /// Whether the link is disabled.
    pub fn link_disabled(&self, a: AsId, b: AsId) -> bool {
        self.disabled_links.contains(&(a.min(b), a.max(b)))
    }

    /// Make `who` prefer routes learned from `via`.
    pub fn prefer(&mut self, who: AsId, via: AsId) {
        self.pref_override.insert(who, via);
    }

    /// Prepend `count` extra hops to announcements originated by `origin`.
    pub fn prepend(&mut self, origin: AsId, count: u8) {
        self.prepend.insert(origin, count);
    }

    /// The prepend penalty for routes originated by `origin`.
    pub fn prepend_penalty(&self, origin: AsId) -> usize {
        self.prepend.get(&origin).copied().unwrap_or(0) as usize
    }
}

/// One AS's best route toward the origin set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// AS path from this AS to the origin: `path[0]` is the next hop,
    /// `path.last()` the origin. Empty at an origin itself.
    pub path: Vec<AsId>,
    /// The originating AS.
    pub origin: AsId,
    /// Site tag of the origin (anycast site index; 0 for unicast).
    pub site: u32,
    /// Effective local preference (includes any override bonus).
    pub pref: u8,
    /// Relationship class the route was learned through (PREF_ORIGIN,
    /// PREF_CUSTOMER, PREF_PEER, or PREF_PROVIDER) — drives export policy
    /// independently of any preference override.
    class: u8,
}

impl Route {
    /// Number of inter-AS hops to the origin.
    pub fn hops(&self) -> usize {
        self.path.len()
    }

    /// AS at hop `k` (1-based; hop 1 is the next hop). `None` past the
    /// origin.
    pub fn hop(&self, k: usize) -> Option<AsId> {
        if k == 0 {
            None
        } else {
            self.path.get(k - 1).copied()
        }
    }
}

/// Best routes of every AS toward one origin set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouteTable {
    routes: Vec<Option<Route>>,
}

impl RouteTable {
    /// Compute routes toward `origins` (each an `(AS, site-tag)` pair)
    /// under `config`.
    ///
    /// Runs policy relaxation to a fixpoint; Gao–Rexford preferences
    /// guarantee convergence, and a safety bound of `2·|AS|` sweeps guards
    /// against pathological configurations.
    pub fn compute(topo: &Topology, origins: &[(AsId, u32)], config: &RoutingConfig) -> Self {
        let n = topo.len();
        let mut best: Vec<Option<Route>> = vec![None; n];
        for &(o, site) in origins {
            let candidate = Route {
                path: Vec::new(),
                origin: o,
                site,
                pref: PREF_ORIGIN,
                class: PREF_ORIGIN,
            };
            // An AS originating for two sites keeps the lower site tag.
            if better(&candidate, best[o.index()].as_ref(), config) {
                best[o.index()] = Some(candidate);
            }
        }

        for _sweep in 0..2 * n.max(1) {
            let mut changed = false;
            for a_idx in 0..n {
                let Some(route_a) = best[a_idx].clone() else {
                    continue;
                };
                let a = topo.nodes()[a_idx].id;
                // Export rule: customer/origin routes go to everyone;
                // peer/provider routes only to customers. Keyed on the
                // relationship class, never on override-boosted pref.
                let export_widely = route_a.class >= PREF_CUSTOMER;
                for &(b, rel_b_to_a) in topo.neighbors(a) {
                    if config.link_disabled(a, b) {
                        continue;
                    }
                    // `rel_b_to_a` is what b is to a; export to b when b is
                    // a's customer, or always for widely exportable routes.
                    if !export_widely && rel_b_to_a != Relationship::Customer {
                        continue;
                    }
                    // Loop prevention: b must not already appear.
                    if b == route_a.origin || route_a.path.contains(&b) || b == a {
                        continue;
                    }
                    // Import preference at b: what a is to b.
                    let rel_a_to_b = rel_b_to_a.inverse();
                    let class = match rel_a_to_b {
                        Relationship::Customer => PREF_CUSTOMER,
                        Relationship::Peer => PREF_PEER,
                        Relationship::Provider => PREF_PROVIDER,
                    };
                    let mut pref = class;
                    if config.pref_override.get(&b) == Some(&a) {
                        pref += PREF_OVERRIDE_BONUS;
                    }
                    let mut path = Vec::with_capacity(route_a.path.len() + 1);
                    path.push(a);
                    path.extend_from_slice(&route_a.path);
                    let candidate = Route {
                        path,
                        origin: route_a.origin,
                        site: route_a.site,
                        pref,
                        class,
                    };
                    if better(&candidate, best[b.index()].as_ref(), config) {
                        best[b.index()] = Some(candidate);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        RouteTable { routes: best }
    }

    /// The best route of `a`, if it has any.
    pub fn route(&self, a: AsId) -> Option<&Route> {
        self.routes[a.index()].as_ref()
    }

    /// The site tag `a`'s traffic lands on — the anycast catchment.
    pub fn catchment(&self, a: AsId) -> Option<u32> {
        self.route(a).map(|r| r.site)
    }

    /// The full AS path from `a` to the origin, starting with `a` itself.
    pub fn full_path(&self, a: AsId) -> Option<Vec<AsId>> {
        self.route(a).map(|r| {
            let mut p = Vec::with_capacity(r.path.len() + 1);
            p.push(a);
            p.extend_from_slice(&r.path);
            p
        })
    }

    /// Number of ASes with a route.
    pub fn reachable_count(&self) -> usize {
        self.routes.iter().filter(|r| r.is_some()).count()
    }
}

/// BGP decision process: higher pref, then shorter (prepend-adjusted)
/// path, then lowest next-hop ASN, then lowest site tag.
fn better(candidate: &Route, incumbent: Option<&Route>, config: &RoutingConfig) -> bool {
    let Some(inc) = incumbent else { return true };
    let key = |r: &Route| {
        (
            std::cmp::Reverse(r.pref),
            r.path.len() + config.prepend_penalty(r.origin),
            r.path.first().copied().unwrap_or(AsId(0)),
            r.site,
        )
    };
    key(candidate) < key(inc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;
    use crate::topology::{Tier, TopologyBuilder};

    /// Hand-built diamond:
    ///
    /// ```text
    ///        T0 ---- T1          (peers)
    ///        |        |
    ///        R0      R1          (customers of T0 / T1)
    ///         \      /
    ///          S0 (dual-homed stub)
    /// ```
    fn diamond() -> (Topology, [AsId; 5]) {
        let mut t = Topology::new();
        let t0 = t.add_node(Tier::Transit, GeoPoint::default(), vec![]);
        let t1 = t.add_node(Tier::Transit, GeoPoint::default(), vec![]);
        let r0 = t.add_node(Tier::Regional, GeoPoint::default(), vec![]);
        let r1 = t.add_node(Tier::Regional, GeoPoint::default(), vec![]);
        let s0 = t.add_node(Tier::Stub, GeoPoint::default(), vec![]);
        t.add_edge(t0, t1, Relationship::Peer);
        t.add_edge(r0, t0, Relationship::Provider);
        t.add_edge(r1, t1, Relationship::Provider);
        t.add_edge(s0, r0, Relationship::Provider);
        t.add_edge(s0, r1, Relationship::Provider);
        (t, [t0, t1, r0, r1, s0])
    }

    #[test]
    fn origin_has_empty_path() {
        let (t, [t0, ..]) = diamond();
        let rt = RouteTable::compute(&t, &[(t0, 0)], &RoutingConfig::default());
        let r = rt.route(t0).unwrap();
        assert!(r.path.is_empty());
        assert_eq!(r.hops(), 0);
        assert_eq!(r.origin, t0);
    }

    #[test]
    fn everyone_reaches_a_transit_origin() {
        let (t, [t0, ..]) = diamond();
        let rt = RouteTable::compute(&t, &[(t0, 0)], &RoutingConfig::default());
        assert_eq!(rt.reachable_count(), 5);
    }

    #[test]
    fn stub_picks_lowest_next_hop_on_tie() {
        // S0 reaches T0 via R0 (2 hops) or R1+T1 (3 hops): picks R0.
        let (t, [t0, _, r0, _, s0]) = diamond();
        let rt = RouteTable::compute(&t, &[(t0, 0)], &RoutingConfig::default());
        let path = rt.full_path(s0).unwrap();
        assert_eq!(path, vec![s0, r0, t0]);
    }

    #[test]
    fn customer_route_preferred_over_shorter_provider_route() {
        // Build: provider P with customer C; C has customer D; P also has
        // a direct peer link to D's other neighbor? Simpler: give P two
        // paths to origin O: via its customer chain (long) and via a peer
        // (short). Customer must win.
        let mut t = Topology::new();
        let p = t.add_node(Tier::Transit, GeoPoint::default(), vec![]);
        let peer = t.add_node(Tier::Transit, GeoPoint::default(), vec![]);
        let c1 = t.add_node(Tier::Regional, GeoPoint::default(), vec![]);
        let c2 = t.add_node(Tier::Stub, GeoPoint::default(), vec![]);
        let origin = t.add_node(Tier::Stub, GeoPoint::default(), vec![]);
        // Customer chain p <- c1 <- c2 <- origin (origin is customer of c2…)
        t.add_edge(c1, p, Relationship::Provider);
        t.add_edge(c2, c1, Relationship::Provider);
        t.add_edge(origin, c2, Relationship::Provider);
        // Short peer path: p -- peer -- origin (origin customer of peer).
        t.add_edge(p, peer, Relationship::Peer);
        t.add_edge(origin, peer, Relationship::Provider);
        let rt = RouteTable::compute(&t, &[(origin, 0)], &RoutingConfig::default());
        let r = rt.route(p).unwrap();
        assert_eq!(r.pref, PREF_CUSTOMER);
        assert_eq!(
            r.path,
            vec![c1, c2, origin],
            "3-hop customer beats 2-hop peer"
        );
    }

    #[test]
    fn valley_free_blocks_peer_to_peer_transit() {
        // origin -- peerA -- peerB: peerB must NOT learn the route through
        // peerA (peer routes are not exported to peers).
        let mut t = Topology::new();
        let origin = t.add_node(Tier::Regional, GeoPoint::default(), vec![]);
        let peer_a = t.add_node(Tier::Regional, GeoPoint::default(), vec![]);
        let peer_b = t.add_node(Tier::Regional, GeoPoint::default(), vec![]);
        t.add_edge(origin, peer_a, Relationship::Peer);
        t.add_edge(peer_a, peer_b, Relationship::Peer);
        let rt = RouteTable::compute(&t, &[(origin, 0)], &RoutingConfig::default());
        assert!(rt.route(peer_a).is_some());
        assert!(rt.route(peer_b).is_none(), "valley-free violated");
    }

    #[test]
    fn provider_route_not_exported_to_provider() {
        // origin <- provider P; P's own provider G learns via its customer
        // P — allowed. But a *customer* of origin exporting its provider
        // route upward must not happen: chain G <- P <- C, origin is C's
        // provider: C learns origin via provider, must not export to its
        // own provider P.
        let mut t = Topology::new();
        let g = t.add_node(Tier::Transit, GeoPoint::default(), vec![]);
        let p = t.add_node(Tier::Regional, GeoPoint::default(), vec![]);
        let c = t.add_node(Tier::Stub, GeoPoint::default(), vec![]);
        let origin = t.add_node(Tier::Regional, GeoPoint::default(), vec![]);
        t.add_edge(p, g, Relationship::Provider);
        t.add_edge(c, p, Relationship::Provider);
        t.add_edge(c, origin, Relationship::Provider); // origin is c's provider
        let rt = RouteTable::compute(&t, &[(origin, 0)], &RoutingConfig::default());
        assert!(rt.route(c).is_some());
        assert!(
            rt.route(p).is_none(),
            "provider-learned route leaked upward"
        );
        assert!(rt.route(g).is_none());
    }

    #[test]
    fn anycast_partitions_by_proximity() {
        let (t, [t0, t1, r0, r1, s0]) = diamond();
        // Two sites: one at each regional.
        let rt = RouteTable::compute(&t, &[(r0, 0), (r1, 1)], &RoutingConfig::default());
        assert_eq!(rt.catchment(r0), Some(0));
        assert_eq!(rt.catchment(r1), Some(1));
        assert_eq!(rt.catchment(t0), Some(0), "T0 hears its customer R0");
        assert_eq!(rt.catchment(t1), Some(1));
        // The dual-homed stub ties on path length; lowest next-hop wins.
        assert_eq!(rt.catchment(s0), Some(0));
    }

    #[test]
    fn link_failure_shifts_catchment() {
        let (t, [.., r0, _, s0]) = diamond();
        let mut cfg = RoutingConfig::default();
        cfg.disable_link(s0, r0);
        let rt = RouteTable::compute(&t, &[(r0, 0), (AsId(3), 1)], &cfg);
        // With the S0–R0 link down, S0 must land on site 1 via R1.
        assert_eq!(rt.catchment(s0), Some(1));
    }

    #[test]
    fn pref_override_steers_a_third_party() {
        let (t, [.., r1, s0]) = diamond();
        let r0 = AsId(2);
        let mut cfg = RoutingConfig::default();
        cfg.prefer(s0, r1);
        let rt = RouteTable::compute(&t, &[(r0, 0), (r1, 1)], &cfg);
        // S0 normally lands on site 0 (tie-break); the override pins it to
        // R1's site — a "third-party" TE change the origin never made.
        assert_eq!(rt.catchment(s0), Some(1));
        assert!(rt.route(s0).unwrap().pref > PREF_CUSTOMER);
    }

    #[test]
    fn paths_are_loop_free_on_generated_topologies() {
        let topo = TopologyBuilder {
            transit: 4,
            regional: 10,
            stubs: 60,
            blocks_per_stub: 1,
            seed: 99,
            ..Default::default()
        }
        .build();
        let origin = topo.tier_members(Tier::Stub)[0];
        let rt = RouteTable::compute(&topo, &[(origin, 0)], &RoutingConfig::default());
        let mut reached = 0;
        for n in topo.nodes() {
            if let Some(path) = rt.full_path(n.id) {
                let mut seen = std::collections::HashSet::new();
                for a in &path {
                    assert!(seen.insert(*a), "loop in path {path:?}");
                }
                assert_eq!(*path.last().unwrap(), origin);
                reached += 1;
            }
        }
        // A single-homed stub origin is reachable by everyone (its provider
        // exports the customer route everywhere).
        assert_eq!(reached, topo.len());
    }

    #[test]
    fn computation_is_deterministic() {
        let topo = TopologyBuilder::default().build();
        let origins: Vec<(AsId, u32)> = topo
            .tier_members(Tier::Regional)
            .iter()
            .take(3)
            .enumerate()
            .map(|(i, &a)| (a, i as u32))
            .collect();
        let a = RouteTable::compute(&topo, &origins, &RoutingConfig::default());
        let b = RouteTable::compute(&topo, &origins, &RoutingConfig::default());
        for n in topo.nodes() {
            assert_eq!(a.route(n.id), b.route(n.id));
        }
    }

    #[test]
    fn disabled_link_is_order_insensitive() {
        let mut cfg = RoutingConfig::default();
        cfg.disable_link(AsId(5), AsId(2));
        assert!(cfg.link_disabled(AsId(2), AsId(5)));
        assert!(cfg.link_disabled(AsId(5), AsId(2)));
        assert!(!cfg.link_disabled(AsId(2), AsId(4)));
    }

    #[test]
    fn route_hop_accessor() {
        let r = Route {
            path: vec![AsId(1), AsId(2)],
            origin: AsId(2),
            site: 0,
            pref: 3,
            class: 3,
        };
        assert_eq!(r.hop(0), None);
        assert_eq!(r.hop(1), Some(AsId(1)));
        assert_eq!(r.hop(2), Some(AsId(2)));
        assert_eq!(r.hop(3), None);
    }
}
