//! BGP-style route computation under Gao–Rexford policies.
//!
//! Routing in the simulator is destination-based, like BGP: a
//! [`RouteTable`] holds every AS's best route toward one *origin set* — a
//! single AS for unicast, several `(AS, site)` pairs for an anycast prefix.
//! The decision process mirrors the classic model:
//!
//! 1. **Local preference** by business relationship: routes learned from
//!    customers beat routes from peers beat routes from providers.
//! 2. **Shortest AS path** among equally preferred routes.
//! 3. Deterministic tie-break (lowest next-hop ASN, then lowest site tag).
//!
//! Export follows the valley-free rule: routes learned from a customer (or
//! originated locally) are exported to everyone; routes learned from a peer
//! or provider are exported only to customers.
//!
//! [`RoutingConfig`] injects the events Fenrir must detect: failed links
//! and per-AS preference overrides (a third party pinning traffic to one
//! neighbor — invisible to the service operator, visible in catchments).

use crate::topology::{AsId, Relationship, Topology};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};

/// Local-preference classes, highest first. `PREF_ORIGIN` sits above
/// `PREF_CUSTOMER + PREF_OVERRIDE_BONUS` so a locally-originated route wins
/// over *any* learned route, boosted or not — as in real BGP, where local
/// routes beat learned local-pref. This is not cosmetic: if an override
/// bonus could outrank an AS's own origin route, bringing a site up at an
/// AS with a preference pin would admit two stable fixpoints (keep the
/// pinned route vs. switch to the origin route), and incremental
/// reconvergence could legitimately settle differently than a from-scratch
/// computation.
const PREF_ORIGIN: u8 = 16;
const PREF_CUSTOMER: u8 = 3;
const PREF_PEER: u8 = 2;
const PREF_PROVIDER: u8 = 1;
/// Bonus applied by a preference override; large enough to dominate the
/// relationship classes, as an operator's explicit local-pref would.
const PREF_OVERRIDE_BONUS: u8 = 10;

/// Routing-time modifications of the base topology.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RoutingConfig {
    /// Links that are down, stored normalized as `(min, max)`.
    pub disabled_links: HashSet<(AsId, AsId)>,
    /// `a → b`: AS `a` prefers any route learned from neighbor `b`
    /// (a traffic-engineering local-pref pin).
    pub pref_override: HashMap<AsId, AsId>,
    /// AS-path prepending by origin: routes originated by the key AS
    /// compare as if their path were this many hops longer — the classic
    /// reachability-preserving traffic engineering anycast operators use
    /// to deflate a site's catchment.
    pub prepend: HashMap<AsId, u8>,
}

impl RoutingConfig {
    /// Disable the link between `a` and `b` (order-insensitive).
    pub fn disable_link(&mut self, a: AsId, b: AsId) {
        self.disabled_links.insert((a.min(b), a.max(b)));
    }

    /// Whether the link is disabled.
    pub fn link_disabled(&self, a: AsId, b: AsId) -> bool {
        self.disabled_links.contains(&(a.min(b), a.max(b)))
    }

    /// Make `who` prefer routes learned from `via`.
    pub fn prefer(&mut self, who: AsId, via: AsId) {
        self.pref_override.insert(who, via);
    }

    /// Prepend `count` extra hops to announcements originated by `origin`.
    pub fn prepend(&mut self, origin: AsId, count: u8) {
        self.prepend.insert(origin, count);
    }

    /// The prepend penalty for routes originated by `origin`.
    pub fn prepend_penalty(&self, origin: AsId) -> usize {
        self.prepend.get(&origin).copied().unwrap_or(0) as usize
    }
}

/// One AS's best route toward the origin set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// AS path from this AS to the origin: `path[0]` is the next hop,
    /// `path.last()` the origin. Empty at an origin itself.
    pub path: Vec<AsId>,
    /// The originating AS.
    pub origin: AsId,
    /// Site tag of the origin (anycast site index; 0 for unicast).
    pub site: u32,
    /// Effective local preference (includes any override bonus).
    pub pref: u8,
    /// Relationship class the route was learned through (PREF_ORIGIN,
    /// PREF_CUSTOMER, PREF_PEER, or PREF_PROVIDER) — drives export policy
    /// independently of any preference override.
    class: u8,
}

impl Route {
    /// Number of inter-AS hops to the origin.
    pub fn hops(&self) -> usize {
        self.path.len()
    }

    /// AS at hop `k` (1-based; hop 1 is the next hop). `None` past the
    /// origin.
    pub fn hop(&self, k: usize) -> Option<AsId> {
        if k == 0 {
            None
        } else {
            self.path.get(k - 1).copied()
        }
    }
}

/// How a route computation reached (or failed to reach) its fixed point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvergenceStats {
    /// Work-queue pops performed — the actual amount of recomputation, the
    /// quantity the incremental path is designed to shrink.
    pub pops: usize,
    /// Whether the queue drained (and, for batch computes, the final
    /// verification sweep found no violations) within the pop budget.
    /// `false` only for pathological configurations, e.g. a cycle of
    /// preference overrides forming a dispute wheel.
    pub converged: bool,
}

impl Default for ConvergenceStats {
    fn default() -> Self {
        ConvergenceStats {
            pops: 0,
            converged: true,
        }
    }
}

/// A single routing-relevant change, the unit [`RouteTable::recompute_after`]
/// reconverges from. Where [`crate::events::EventKind`] describes operator
/// intent on a scenario timeline, a `RouteEvent` is the low-level delta to
/// the `(origins, config)` pair the route computation actually consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteEvent {
    /// The link between `a` and `b` goes down.
    LinkDown {
        /// One endpoint.
        a: AsId,
        /// The other endpoint.
        b: AsId,
    },
    /// The link between `a` and `b` comes back up.
    LinkUp {
        /// One endpoint.
        a: AsId,
        /// The other endpoint.
        b: AsId,
    },
    /// AS `who` starts preferring routes learned from `via`.
    PrefSet {
        /// The AS applying the local-pref pin.
        who: AsId,
        /// The neighbor it pins to.
        via: AsId,
    },
    /// AS `who` drops its preference override.
    PrefClear {
        /// The AS clearing its pin.
        who: AsId,
    },
    /// Announcements originated by `origin` compare as `count` hops longer
    /// (`count = 0` clears the prepend).
    PrependSet {
        /// The prepending origin.
        origin: AsId,
        /// Extra hops; 0 removes the entry.
        count: u8,
    },
    /// `origin` starts announcing for site `site`.
    OriginAdd {
        /// The announcing AS.
        origin: AsId,
        /// Site tag it announces for.
        site: u32,
    },
    /// `origin` withdraws its announcement for site `site`.
    OriginRemove {
        /// The withdrawing AS.
        origin: AsId,
        /// Site tag being withdrawn.
        site: u32,
    },
}

impl RouteEvent {
    /// Apply this event to the `(origins, config)` state the route
    /// computation consumes.
    pub fn apply(&self, origins: &mut Vec<(AsId, u32)>, config: &mut RoutingConfig) {
        match *self {
            RouteEvent::LinkDown { a, b } => config.disable_link(a, b),
            RouteEvent::LinkUp { a, b } => {
                config.disabled_links.remove(&(a.min(b), a.max(b)));
            }
            RouteEvent::PrefSet { who, via } => {
                config.pref_override.insert(who, via);
            }
            RouteEvent::PrefClear { who } => {
                config.pref_override.remove(&who);
            }
            RouteEvent::PrependSet { origin, count } => {
                if count == 0 {
                    config.prepend.remove(&origin);
                } else {
                    config.prepend.insert(origin, count);
                }
            }
            RouteEvent::OriginAdd { origin, site } => origins.push((origin, site)),
            RouteEvent::OriginRemove { origin, site } => {
                if let Some(p) = origins.iter().position(|&e| e == (origin, site)) {
                    origins.remove(p);
                }
            }
        }
    }

    /// The dirty frontier: every AS whose *local* best-route decision can
    /// change immediately when this event lands on a converged table. At a
    /// fixed point an AS's decision depends only on its own candidates
    /// (its origin entries plus its neighbors' current routes), so:
    ///
    /// - a link event perturbs only its two endpoints;
    /// - a preference event perturbs only the overriding AS (its import
    ///   preferences change, nobody else's);
    /// - an origin event perturbs only the announcing AS;
    /// - a prepend event perturbs every AS currently *carrying* a route
    ///   from that origin (its incumbent re-ranks) and their neighbors
    ///   (a candidate re-ranks).
    ///
    /// Everyone else changes only if a neighbor's route changes first,
    /// which the propagation queue handles.
    fn frontier(&self, topo: &Topology, routes: &[Option<Route>]) -> Vec<AsId> {
        match *self {
            RouteEvent::LinkDown { a, b } | RouteEvent::LinkUp { a, b } => vec![a, b],
            RouteEvent::PrefSet { who, .. } | RouteEvent::PrefClear { who } => vec![who],
            RouteEvent::OriginAdd { origin, .. } | RouteEvent::OriginRemove { origin, .. } => {
                vec![origin]
            }
            RouteEvent::PrependSet { origin, .. } => {
                let mut f = Vec::new();
                for node in topo.nodes() {
                    let carries = routes[node.id.index()]
                        .as_ref()
                        .is_some_and(|r| r.origin == origin);
                    if carries {
                        f.push(node.id);
                        for &(nb, _) in topo.neighbors(node.id) {
                            f.push(nb);
                        }
                    }
                }
                f
            }
        }
    }
}

/// Pop budget for one fixpoint run. Safe Gao–Rexford configurations settle
/// in a few pops per AS; the slack covers deep withdrawal cascades, and
/// blowing the budget is how dispute-wheel configurations are detected.
fn pop_budget(n: usize) -> usize {
    32 * n.max(1) + 1024
}

/// Whether `config` stays inside the class of configurations whose routing
/// fixed point is provably unique. The Gao–Rexford conditions (customer
/// routes preferred over peer/provider routes, valley-free export, acyclic
/// customer-provider hierarchy) exclude dispute wheels, and intra-class
/// re-ranking (prepends, customer pins) cannot reintroduce one. A
/// preference pin toward a *peer or provider*, however, ranks that route
/// above customer routes — the inversion behind RFC 4264 "BGP wedgies" —
/// and then several stable states can exist, so which one a computation
/// lands in depends on where it started. Incremental reconvergence must
/// not trust its warm start in that regime.
fn unique_fixpoint(topo: &Topology, config: &RoutingConfig) -> bool {
    config.pref_override.iter().all(|(&who, &via)| {
        topo.neighbors(who)
            .iter()
            .find(|&&(b, _)| b == via)
            // A pin naming a non-neighbor never matches an import, so it
            // cannot invert anything.
            .is_none_or(|&(_, rel)| rel == Relationship::Customer)
    })
}

/// Recompute AS `x`'s best route from its own origin entries and its
/// neighbors' current routes — the per-node step of the fixpoint. Unlike
/// monotone relaxation this re-derives the decision from scratch, so a
/// neighbor's route getting *worse* (or vanishing) is picked up too.
fn local_best(
    topo: &Topology,
    origins: &[(AsId, u32)],
    config: &RoutingConfig,
    best: &[Option<Route>],
    x: AsId,
) -> Option<Route> {
    let mut cur: Option<Route> = None;
    for &(o, site) in origins {
        if o == x {
            let candidate = Route {
                path: Vec::new(),
                origin: o,
                site,
                pref: PREF_ORIGIN,
                class: PREF_ORIGIN,
            };
            // An AS originating for two sites keeps the lower site tag.
            if better(&candidate, cur.as_ref(), config) {
                cur = Some(candidate);
            }
        }
    }
    for &(a, rel_a_to_x) in topo.neighbors(x) {
        if config.link_disabled(x, a) {
            continue;
        }
        let Some(route_a) = best[a.index()].as_ref() else {
            continue;
        };
        // Export rule at a: customer/origin routes go to everyone;
        // peer/provider routes only to a's customers. `rel_a_to_x` is what
        // a is to x, so x is a's customer exactly when a is x's provider.
        let export_widely = route_a.class >= PREF_CUSTOMER;
        if !export_widely && rel_a_to_x != Relationship::Provider {
            continue;
        }
        // Loop prevention: x must not already appear in the path.
        if x == route_a.origin || route_a.path.contains(&x) {
            continue;
        }
        // Import preference at x: what a is to x.
        let class = match rel_a_to_x {
            Relationship::Customer => PREF_CUSTOMER,
            Relationship::Peer => PREF_PEER,
            Relationship::Provider => PREF_PROVIDER,
        };
        let mut pref = class;
        if config.pref_override.get(&x) == Some(&a) {
            pref += PREF_OVERRIDE_BONUS;
        }
        let mut path = Vec::with_capacity(route_a.path.len() + 1);
        path.push(a);
        path.extend_from_slice(&route_a.path);
        let candidate = Route {
            path,
            origin: route_a.origin,
            site: route_a.site,
            pref,
            class,
        };
        if better(&candidate, cur.as_ref(), config) {
            cur = Some(candidate);
        }
    }
    cur
}

/// Drain the work queue to quiescence: pop an AS, re-derive its local best,
/// and on change enqueue its neighbors. Returns `false` if the pop budget
/// ran out first.
#[allow(clippy::too_many_arguments)]
fn drain(
    topo: &Topology,
    origins: &[(AsId, u32)],
    config: &RoutingConfig,
    best: &mut [Option<Route>],
    queue: &mut VecDeque<AsId>,
    in_queue: &mut [bool],
    pops: &mut usize,
    budget: usize,
) -> bool {
    while let Some(x) = queue.pop_front() {
        in_queue[x.index()] = false;
        if *pops >= budget {
            return false;
        }
        *pops += 1;
        let nb = local_best(topo, origins, config, best, x);
        if nb != best[x.index()] {
            best[x.index()] = nb;
            for &(b, _) in topo.neighbors(x) {
                if !in_queue[b.index()] {
                    in_queue[b.index()] = true;
                    queue.push_back(b);
                }
            }
        }
    }
    true
}

/// Best routes of every AS toward one origin set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouteTable {
    routes: Vec<Option<Route>>,
    #[serde(default)]
    stats: ConvergenceStats,
}

impl RouteTable {
    /// Compute routes toward `origins` (each an `(AS, site-tag)` pair)
    /// under `config`.
    ///
    /// Runs a work-queue fixpoint seeded at the origin ASes: each pop
    /// re-derives one AS's best route from its neighbors, and changes
    /// enqueue the neighborhood. The queue draining *is* the convergence
    /// check — quiescence means no AS's decision can change — and a final
    /// verification sweep re-derives every AS once to confirm it (checked,
    /// not assumed). A pop budget guards against dispute-wheel
    /// configurations; exhaustion is recorded in
    /// [`RouteTable::convergence`].
    pub fn compute(topo: &Topology, origins: &[(AsId, u32)], config: &RoutingConfig) -> Self {
        let n = topo.len();
        let mut best: Vec<Option<Route>> = vec![None; n];
        let mut queue = VecDeque::new();
        let mut in_queue = vec![false; n];
        for &(o, _) in origins {
            if !in_queue[o.index()] {
                in_queue[o.index()] = true;
                queue.push_back(o);
            }
        }
        let budget = pop_budget(n);
        let mut pops = 0;
        let mut converged = drain(
            topo,
            origins,
            config,
            &mut best,
            &mut queue,
            &mut in_queue,
            &mut pops,
            budget,
        );
        while converged {
            // Verification sweep: every AS's decision must reproduce from
            // the final state. Violations (none are expected — the queue
            // invariant covers them) are re-enqueued and drained again.
            for node in topo.nodes() {
                let x = node.id;
                if local_best(topo, origins, config, &best, x) != best[x.index()]
                    && !in_queue[x.index()]
                {
                    in_queue[x.index()] = true;
                    queue.push_back(x);
                }
            }
            if queue.is_empty() {
                break;
            }
            converged = drain(
                topo,
                origins,
                config,
                &mut best,
                &mut queue,
                &mut in_queue,
                &mut pops,
                budget,
            );
        }
        RouteTable {
            routes: best,
            stats: ConvergenceStats { pops, converged },
        }
    }

    /// Reconverge after a single event instead of recomputing from scratch.
    ///
    /// Seeds the work queue with the event's dirty frontier — only the
    /// ASes whose local decision the event can directly change — applies
    /// the event to `(origins, config)`, and propagates until quiescent. On
    /// a converged table this reaches the same fixed point as a full
    /// [`RouteTable::compute`] of the post-event state (the property tests
    /// assert equality), while touching a neighborhood instead of the whole
    /// topology: a single link flap costs pops proportional to the
    /// affected region.
    ///
    /// Falls back to a full compute when the table was not converged to
    /// begin with (the frontier argument needs a fixed point as its
    /// starting state), when propagation blows its pop budget, or when the
    /// post-event configuration contains a peer/provider preference pin —
    /// outside the Gao–Rexford uniqueness guarantee several stable states
    /// can exist, and reconverging from a warm start could settle in a
    /// different one than a from-scratch computation would.
    pub fn recompute_after(
        &mut self,
        topo: &Topology,
        origins: &mut Vec<(AsId, u32)>,
        config: &mut RoutingConfig,
        event: &RouteEvent,
    ) {
        if !self.stats.converged {
            event.apply(origins, config);
            *self = Self::compute(topo, origins, config);
            return;
        }
        let n = topo.len();
        let frontier = event.frontier(topo, &self.routes);
        event.apply(origins, config);
        if !unique_fixpoint(topo, config) {
            *self = Self::compute(topo, origins, config);
            return;
        }
        let mut queue = VecDeque::new();
        let mut in_queue = vec![false; n];
        for a in frontier {
            if !in_queue[a.index()] {
                in_queue[a.index()] = true;
                queue.push_back(a);
            }
        }
        let budget = pop_budget(n);
        let mut pops = 0;
        let ok = drain(
            topo,
            origins,
            config,
            &mut self.routes,
            &mut queue,
            &mut in_queue,
            &mut pops,
            budget,
        );
        if ok {
            self.stats = ConvergenceStats {
                pops,
                converged: true,
            };
        } else {
            *self = Self::compute(topo, origins, config);
        }
    }

    /// How the last (re)computation converged.
    pub fn convergence(&self) -> ConvergenceStats {
        self.stats
    }

    /// The best route of `a`, if it has any.
    pub fn route(&self, a: AsId) -> Option<&Route> {
        self.routes[a.index()].as_ref()
    }

    /// The site tag `a`'s traffic lands on — the anycast catchment.
    pub fn catchment(&self, a: AsId) -> Option<u32> {
        self.route(a).map(|r| r.site)
    }

    /// The full AS path from `a` to the origin, starting with `a` itself.
    pub fn full_path(&self, a: AsId) -> Option<Vec<AsId>> {
        self.route(a).map(|r| {
            let mut p = Vec::with_capacity(r.path.len() + 1);
            p.push(a);
            p.extend_from_slice(&r.path);
            p
        })
    }

    /// Number of ASes with a route.
    pub fn reachable_count(&self) -> usize {
        self.routes.iter().filter(|r| r.is_some()).count()
    }
}

/// BGP decision process: higher pref, then shorter (prepend-adjusted)
/// path, then lowest next-hop ASN, then lowest site tag.
fn better(candidate: &Route, incumbent: Option<&Route>, config: &RoutingConfig) -> bool {
    let Some(inc) = incumbent else { return true };
    let key = |r: &Route| {
        (
            std::cmp::Reverse(r.pref),
            r.path.len() + config.prepend_penalty(r.origin),
            r.path.first().copied().unwrap_or(AsId(0)),
            r.site,
        )
    };
    key(candidate) < key(inc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoPoint;
    use crate::topology::{Tier, TopologyBuilder};

    /// Hand-built diamond:
    ///
    /// ```text
    ///        T0 ---- T1          (peers)
    ///        |        |
    ///        R0      R1          (customers of T0 / T1)
    ///         \      /
    ///          S0 (dual-homed stub)
    /// ```
    fn diamond() -> (Topology, [AsId; 5]) {
        let mut t = Topology::new();
        let t0 = t.add_node(Tier::Transit, GeoPoint::default(), vec![]);
        let t1 = t.add_node(Tier::Transit, GeoPoint::default(), vec![]);
        let r0 = t.add_node(Tier::Regional, GeoPoint::default(), vec![]);
        let r1 = t.add_node(Tier::Regional, GeoPoint::default(), vec![]);
        let s0 = t.add_node(Tier::Stub, GeoPoint::default(), vec![]);
        t.add_edge(t0, t1, Relationship::Peer);
        t.add_edge(r0, t0, Relationship::Provider);
        t.add_edge(r1, t1, Relationship::Provider);
        t.add_edge(s0, r0, Relationship::Provider);
        t.add_edge(s0, r1, Relationship::Provider);
        (t, [t0, t1, r0, r1, s0])
    }

    #[test]
    fn origin_has_empty_path() {
        let (t, [t0, ..]) = diamond();
        let rt = RouteTable::compute(&t, &[(t0, 0)], &RoutingConfig::default());
        let r = rt.route(t0).unwrap();
        assert!(r.path.is_empty());
        assert_eq!(r.hops(), 0);
        assert_eq!(r.origin, t0);
    }

    #[test]
    fn everyone_reaches_a_transit_origin() {
        let (t, [t0, ..]) = diamond();
        let rt = RouteTable::compute(&t, &[(t0, 0)], &RoutingConfig::default());
        assert_eq!(rt.reachable_count(), 5);
    }

    #[test]
    fn stub_picks_lowest_next_hop_on_tie() {
        // S0 reaches T0 via R0 (2 hops) or R1+T1 (3 hops): picks R0.
        let (t, [t0, _, r0, _, s0]) = diamond();
        let rt = RouteTable::compute(&t, &[(t0, 0)], &RoutingConfig::default());
        let path = rt.full_path(s0).unwrap();
        assert_eq!(path, vec![s0, r0, t0]);
    }

    #[test]
    fn customer_route_preferred_over_shorter_provider_route() {
        // Build: provider P with customer C; C has customer D; P also has
        // a direct peer link to D's other neighbor? Simpler: give P two
        // paths to origin O: via its customer chain (long) and via a peer
        // (short). Customer must win.
        let mut t = Topology::new();
        let p = t.add_node(Tier::Transit, GeoPoint::default(), vec![]);
        let peer = t.add_node(Tier::Transit, GeoPoint::default(), vec![]);
        let c1 = t.add_node(Tier::Regional, GeoPoint::default(), vec![]);
        let c2 = t.add_node(Tier::Stub, GeoPoint::default(), vec![]);
        let origin = t.add_node(Tier::Stub, GeoPoint::default(), vec![]);
        // Customer chain p <- c1 <- c2 <- origin (origin is customer of c2…)
        t.add_edge(c1, p, Relationship::Provider);
        t.add_edge(c2, c1, Relationship::Provider);
        t.add_edge(origin, c2, Relationship::Provider);
        // Short peer path: p -- peer -- origin (origin customer of peer).
        t.add_edge(p, peer, Relationship::Peer);
        t.add_edge(origin, peer, Relationship::Provider);
        let rt = RouteTable::compute(&t, &[(origin, 0)], &RoutingConfig::default());
        let r = rt.route(p).unwrap();
        assert_eq!(r.pref, PREF_CUSTOMER);
        assert_eq!(
            r.path,
            vec![c1, c2, origin],
            "3-hop customer beats 2-hop peer"
        );
    }

    #[test]
    fn valley_free_blocks_peer_to_peer_transit() {
        // origin -- peerA -- peerB: peerB must NOT learn the route through
        // peerA (peer routes are not exported to peers).
        let mut t = Topology::new();
        let origin = t.add_node(Tier::Regional, GeoPoint::default(), vec![]);
        let peer_a = t.add_node(Tier::Regional, GeoPoint::default(), vec![]);
        let peer_b = t.add_node(Tier::Regional, GeoPoint::default(), vec![]);
        t.add_edge(origin, peer_a, Relationship::Peer);
        t.add_edge(peer_a, peer_b, Relationship::Peer);
        let rt = RouteTable::compute(&t, &[(origin, 0)], &RoutingConfig::default());
        assert!(rt.route(peer_a).is_some());
        assert!(rt.route(peer_b).is_none(), "valley-free violated");
    }

    #[test]
    fn provider_route_not_exported_to_provider() {
        // origin <- provider P; P's own provider G learns via its customer
        // P — allowed. But a *customer* of origin exporting its provider
        // route upward must not happen: chain G <- P <- C, origin is C's
        // provider: C learns origin via provider, must not export to its
        // own provider P.
        let mut t = Topology::new();
        let g = t.add_node(Tier::Transit, GeoPoint::default(), vec![]);
        let p = t.add_node(Tier::Regional, GeoPoint::default(), vec![]);
        let c = t.add_node(Tier::Stub, GeoPoint::default(), vec![]);
        let origin = t.add_node(Tier::Regional, GeoPoint::default(), vec![]);
        t.add_edge(p, g, Relationship::Provider);
        t.add_edge(c, p, Relationship::Provider);
        t.add_edge(c, origin, Relationship::Provider); // origin is c's provider
        let rt = RouteTable::compute(&t, &[(origin, 0)], &RoutingConfig::default());
        assert!(rt.route(c).is_some());
        assert!(
            rt.route(p).is_none(),
            "provider-learned route leaked upward"
        );
        assert!(rt.route(g).is_none());
    }

    #[test]
    fn anycast_partitions_by_proximity() {
        let (t, [t0, t1, r0, r1, s0]) = diamond();
        // Two sites: one at each regional.
        let rt = RouteTable::compute(&t, &[(r0, 0), (r1, 1)], &RoutingConfig::default());
        assert_eq!(rt.catchment(r0), Some(0));
        assert_eq!(rt.catchment(r1), Some(1));
        assert_eq!(rt.catchment(t0), Some(0), "T0 hears its customer R0");
        assert_eq!(rt.catchment(t1), Some(1));
        // The dual-homed stub ties on path length; lowest next-hop wins.
        assert_eq!(rt.catchment(s0), Some(0));
    }

    #[test]
    fn link_failure_shifts_catchment() {
        let (t, [.., r0, _, s0]) = diamond();
        let mut cfg = RoutingConfig::default();
        cfg.disable_link(s0, r0);
        let rt = RouteTable::compute(&t, &[(r0, 0), (AsId(3), 1)], &cfg);
        // With the S0–R0 link down, S0 must land on site 1 via R1.
        assert_eq!(rt.catchment(s0), Some(1));
    }

    #[test]
    fn pref_override_steers_a_third_party() {
        let (t, [.., r1, s0]) = diamond();
        let r0 = AsId(2);
        let mut cfg = RoutingConfig::default();
        cfg.prefer(s0, r1);
        let rt = RouteTable::compute(&t, &[(r0, 0), (r1, 1)], &cfg);
        // S0 normally lands on site 0 (tie-break); the override pins it to
        // R1's site — a "third-party" TE change the origin never made.
        assert_eq!(rt.catchment(s0), Some(1));
        assert!(rt.route(s0).unwrap().pref > PREF_CUSTOMER);
    }

    #[test]
    fn paths_are_loop_free_on_generated_topologies() {
        let topo = TopologyBuilder {
            transit: 4,
            regional: 10,
            stubs: 60,
            blocks_per_stub: 1,
            seed: 99,
            ..Default::default()
        }
        .build();
        let origin = topo.tier_members(Tier::Stub)[0];
        let rt = RouteTable::compute(&topo, &[(origin, 0)], &RoutingConfig::default());
        let mut reached = 0;
        for n in topo.nodes() {
            if let Some(path) = rt.full_path(n.id) {
                let mut seen = std::collections::HashSet::new();
                for a in &path {
                    assert!(seen.insert(*a), "loop in path {path:?}");
                }
                assert_eq!(*path.last().unwrap(), origin);
                reached += 1;
            }
        }
        // A single-homed stub origin is reachable by everyone (its provider
        // exports the customer route everywhere).
        assert_eq!(reached, topo.len());
    }

    #[test]
    fn computation_is_deterministic() {
        let topo = TopologyBuilder::default().build();
        let origins: Vec<(AsId, u32)> = topo
            .tier_members(Tier::Regional)
            .iter()
            .take(3)
            .enumerate()
            .map(|(i, &a)| (a, i as u32))
            .collect();
        let a = RouteTable::compute(&topo, &origins, &RoutingConfig::default());
        let b = RouteTable::compute(&topo, &origins, &RoutingConfig::default());
        for n in topo.nodes() {
            assert_eq!(a.route(n.id), b.route(n.id));
        }
    }

    #[test]
    fn disabled_link_is_order_insensitive() {
        let mut cfg = RoutingConfig::default();
        cfg.disable_link(AsId(5), AsId(2));
        assert!(cfg.link_disabled(AsId(2), AsId(5)));
        assert!(cfg.link_disabled(AsId(5), AsId(2)));
        assert!(!cfg.link_disabled(AsId(2), AsId(4)));
    }

    #[test]
    fn compute_reports_convergence() {
        let (t, [t0, ..]) = diamond();
        let rt = RouteTable::compute(&t, &[(t0, 0)], &RoutingConfig::default());
        let stats = rt.convergence();
        assert!(stats.converged);
        assert!(stats.pops > 0);
    }

    /// Assert `recompute_after` over `events` lands on the same table as a
    /// batch compute of the final state, and return the incremental table.
    fn assert_incremental_matches_batch(
        topo: &Topology,
        mut origins: Vec<(AsId, u32)>,
        mut config: RoutingConfig,
        events: &[RouteEvent],
    ) -> RouteTable {
        let mut table = RouteTable::compute(topo, &origins, &config);
        for ev in events {
            table.recompute_after(topo, &mut origins, &mut config, ev);
        }
        let batch = RouteTable::compute(topo, &origins, &config);
        for node in topo.nodes() {
            assert_eq!(
                table.route(node.id),
                batch.route(node.id),
                "divergence at {:?} after {events:?}",
                node.id
            );
        }
        assert!(table.convergence().converged);
        table
    }

    #[test]
    fn recompute_after_link_down_and_up() {
        let (t, [.., r0, _, s0]) = diamond();
        let origins = vec![(r0, 0), (AsId(3), 1)];
        let rt = assert_incremental_matches_batch(
            &t,
            origins.clone(),
            RoutingConfig::default(),
            &[RouteEvent::LinkDown { a: s0, b: r0 }],
        );
        assert_eq!(rt.catchment(s0), Some(1), "catchment shifted by the flap");
        // Down then up restores the original table.
        let restored = assert_incremental_matches_batch(
            &t,
            origins,
            RoutingConfig::default(),
            &[
                RouteEvent::LinkDown { a: s0, b: r0 },
                RouteEvent::LinkUp { a: s0, b: r0 },
            ],
        );
        assert_eq!(restored.catchment(s0), Some(0));
    }

    #[test]
    fn recompute_after_pref_set_and_clear() {
        let (t, [.., r1, s0]) = diamond();
        let r0 = AsId(2);
        let origins = vec![(r0, 0), (r1, 1)];
        let rt = assert_incremental_matches_batch(
            &t,
            origins.clone(),
            RoutingConfig::default(),
            &[RouteEvent::PrefSet { who: s0, via: r1 }],
        );
        assert_eq!(rt.catchment(s0), Some(1));
        let cleared = assert_incremental_matches_batch(
            &t,
            origins,
            RoutingConfig::default(),
            &[
                RouteEvent::PrefSet { who: s0, via: r1 },
                RouteEvent::PrefClear { who: s0 },
            ],
        );
        assert_eq!(cleared.catchment(s0), Some(0));
    }

    #[test]
    fn recompute_after_origin_add_and_remove() {
        let (t, [_, _, r0, r1, s0]) = diamond();
        // Start unicast at r0; add a second site at r1, then withdraw it.
        let rt = assert_incremental_matches_batch(
            &t,
            vec![(r0, 0)],
            RoutingConfig::default(),
            &[RouteEvent::OriginAdd {
                origin: r1,
                site: 1,
            }],
        );
        assert_eq!(rt.catchment(r1), Some(1));
        let rt = assert_incremental_matches_batch(
            &t,
            vec![(r0, 0)],
            RoutingConfig::default(),
            &[
                RouteEvent::OriginAdd {
                    origin: r1,
                    site: 1,
                },
                RouteEvent::OriginRemove {
                    origin: r1,
                    site: 1,
                },
            ],
        );
        assert_eq!(rt.catchment(r1), Some(0), "withdrawal fully propagates");
        assert_eq!(rt.catchment(s0), Some(0));
    }

    #[test]
    fn recompute_after_prepend() {
        let (t, [.., s0]) = diamond();
        let (r0, r1) = (AsId(2), AsId(3));
        // s0 ties between the two sites and picks r0; prepending r0's
        // announcements deflates its catchment so s0 moves to r1.
        let rt = assert_incremental_matches_batch(
            &t,
            vec![(r0, 0), (r1, 1)],
            RoutingConfig::default(),
            &[RouteEvent::PrependSet {
                origin: r0,
                count: 2,
            }],
        );
        assert_eq!(rt.catchment(s0), Some(1));
        // Clearing the prepend (count 0) restores the tie-break.
        let rt = assert_incremental_matches_batch(
            &t,
            vec![(r0, 0), (r1, 1)],
            RoutingConfig::default(),
            &[
                RouteEvent::PrependSet {
                    origin: r0,
                    count: 2,
                },
                RouteEvent::PrependSet {
                    origin: r0,
                    count: 0,
                },
            ],
        );
        assert_eq!(rt.catchment(s0), Some(0));
    }

    #[test]
    fn single_link_flap_touches_a_neighborhood_not_the_topology() {
        let topo = TopologyBuilder {
            transit: 5,
            regional: 20,
            stubs: 200,
            blocks_per_stub: 1,
            seed: 7,
            ..Default::default()
        }
        .build();
        let origin = topo.tier_members(Tier::Regional)[0];
        let mut origins = vec![(origin, 0)];
        let mut config = RoutingConfig::default();
        let mut table = RouteTable::compute(&topo, &origins, &config);
        let full_pops = table.convergence().pops;
        // Flap a stub's access link: only the stub's neighborhood reroutes.
        let stub = topo.tier_members(Tier::Stub)[0];
        let &(provider, _) = topo.neighbors(stub).first().expect("stub has a provider");
        table.recompute_after(
            &topo,
            &mut origins,
            &mut config,
            &RouteEvent::LinkDown {
                a: stub,
                b: provider,
            },
        );
        let incr_pops = table.convergence().pops;
        assert!(
            incr_pops * 5 <= full_pops,
            "incremental reconvergence ({incr_pops} pops) should be at least \
             5x cheaper than from scratch ({full_pops} pops)"
        );
        let batch = RouteTable::compute(&topo, &origins, &config);
        for n in topo.nodes() {
            assert_eq!(table.route(n.id), batch.route(n.id));
        }
    }

    #[test]
    fn recompute_after_event_sequence_on_generated_topology() {
        let topo = TopologyBuilder {
            transit: 4,
            regional: 10,
            stubs: 60,
            blocks_per_stub: 1,
            seed: 3,
            ..Default::default()
        }
        .build();
        let regionals = topo.tier_members(Tier::Regional);
        let stubs = topo.tier_members(Tier::Stub);
        let events = [
            RouteEvent::OriginAdd {
                origin: regionals[1],
                site: 1,
            },
            RouteEvent::LinkDown {
                a: stubs[0],
                b: topo.neighbors(stubs[0])[0].0,
            },
            RouteEvent::PrefSet {
                who: stubs[5],
                via: topo.neighbors(stubs[5])[0].0,
            },
            RouteEvent::PrependSet {
                origin: regionals[0],
                count: 3,
            },
            RouteEvent::LinkUp {
                a: stubs[0],
                b: topo.neighbors(stubs[0])[0].0,
            },
            RouteEvent::OriginRemove {
                origin: regionals[1],
                site: 1,
            },
        ];
        assert_incremental_matches_batch(
            &topo,
            vec![(regionals[0], 0)],
            RoutingConfig::default(),
            &events,
        );
    }

    #[test]
    fn inversion_pins_leave_the_uniqueness_class() {
        let (t, [t0, _, r0, _, s0]) = diamond();
        let mut cfg = RoutingConfig::default();
        assert!(unique_fixpoint(&t, &cfg));
        // A regional pinning its stub customer stays safe.
        cfg.prefer(r0, s0);
        assert!(unique_fixpoint(&t, &cfg));
        // A stub pinning one of its providers is the wedgie-prone shape.
        cfg.prefer(s0, r0);
        assert!(!unique_fixpoint(&t, &cfg));
        cfg.pref_override.remove(&s0);
        // A pin naming a non-neighbor matches no import and stays safe.
        cfg.prefer(t0, s0);
        assert!(unique_fixpoint(&t, &cfg));
    }

    /// The RFC 4264 wedgie shape: a regional pinned to its *provider*
    /// prefers that route over a customer route, so when its customer
    /// starts originating, "keep the pinned route" and "switch to the
    /// customer" are both stable. `recompute_after` must detect the
    /// inversion pin and fall back to a from-scratch computation so its
    /// answer still matches batch bit-for-bit.
    #[test]
    fn recompute_after_falls_back_to_batch_under_inversion_pins() {
        let topo = TopologyBuilder {
            transit: 3,
            regional: 6,
            stubs: 25,
            blocks_per_stub: 1,
            seed: 4,
            ..Default::default()
        }
        .build();
        let regionals = topo.tier_members(Tier::Regional);
        let stubs = topo.tier_members(Tier::Stub);
        // Pin every regional to its first provider (a transit): maximally
        // inversion-prone.
        let mut config = RoutingConfig::default();
        for &r in &regionals {
            if let Some(&(p, _)) = topo
                .neighbors(r)
                .iter()
                .find(|&&(_, rel)| rel == Relationship::Provider)
            {
                config.prefer(r, p);
            }
        }
        assert!(!unique_fixpoint(&topo, &config));
        let mut origins = vec![(regionals[0], 0)];
        let mut table = RouteTable::compute(&topo, &origins, &config);
        // New origins light up under several pinned regionals: without the
        // fallback, incremental can legitimately keep the pinned routes
        // while batch switches to the new customer routes.
        for (i, &s) in stubs.iter().take(4).enumerate() {
            let ev = RouteEvent::OriginAdd {
                origin: s,
                site: 1 + i as u32,
            };
            table.recompute_after(&topo, &mut origins, &mut config, &ev);
            let batch = RouteTable::compute(&topo, &origins, &config);
            for n in topo.nodes() {
                assert_eq!(table.route(n.id), batch.route(n.id), "after {ev:?}");
            }
        }
    }

    #[test]
    fn route_hop_accessor() {
        let r = Route {
            path: vec![AsId(1), AsId(2)],
            origin: AsId(2),
            site: 0,
            pref: 3,
            class: 3,
        };
        assert_eq!(r.hop(0), None);
        assert_eq!(r.hop(1), Some(AsId(1)));
        assert_eq!(r.hop(2), Some(AsId(2)));
        assert_eq!(r.hop(3), None);
    }
}
