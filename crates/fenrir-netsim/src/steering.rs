//! Disturbance search: find third-party routing changes with a *verified*
//! effect on catchments.
//!
//! Fenrir's evaluation needs scripted events that demonstrably shift
//! catchments — a drain of an empty site or a preference pin that changes
//! paths but not sites would make the scenarios vacuous. This module
//! enumerates candidate disturbances (local-pref pins at transit/regional/
//! probe ASes, and provider-link failures), simulates each against the
//! quiescent baseline, and reports the fraction of probe ASes whose
//! catchment moves.

use crate::anycast::AnycastService;
use crate::events::EventKind;
use crate::routing::RoutingConfig;
use crate::topology::{AsId, Relationship, Tier, Topology};

/// A candidate disturbance with its verified effect.
#[derive(Debug, Clone)]
pub struct Disturbance {
    /// The event to schedule (always a `Prefer` or `LinkDown`).
    pub kind: EventKind,
    /// Fraction of probe ASes whose catchment changed, in `[0, 1]`.
    pub effect: f64,
}

/// Enumerate disturbances affecting at least `min_effect` of `probes`'
/// catchments toward `service`, sorted by descending effect.
///
/// `probes` are the ASes whose catchments matter (VP hosts or block
/// owners); candidates are preference pins at every transit/regional/probe
/// AS toward each non-customer neighbor, plus failures of every
/// provider link of regionals and probes.
pub fn find_disturbances(
    topo: &Topology,
    service: &AnycastService,
    probes: &[AsId],
    min_effect: f64,
) -> Vec<Disturbance> {
    let base = service.routes(topo, &RoutingConfig::default());
    let baseline: Vec<Option<u32>> = probes.iter().map(|&p| base.catchment(p)).collect();
    let effect_of = |cfg: &RoutingConfig| {
        if probes.is_empty() {
            return 0.0;
        }
        let rt = service.routes(topo, cfg);
        let moved = probes
            .iter()
            .zip(&baseline)
            .filter(|&(&p, &b)| rt.catchment(p) != b)
            .count();
        moved as f64 / probes.len() as f64
    };

    let mut candidates: Vec<AsId> = topo.tier_members(Tier::Transit);
    candidates.extend(topo.tier_members(Tier::Regional));
    candidates.extend(probes.iter().copied());
    candidates.sort();
    candidates.dedup();

    let mut out = Vec::new();
    for r in candidates {
        for &(n, rel) in topo.neighbors(r) {
            if rel != Relationship::Customer {
                let mut cfg = RoutingConfig::default();
                cfg.prefer(r, n);
                let effect = effect_of(&cfg);
                if effect >= min_effect {
                    out.push(Disturbance {
                        kind: EventKind::Prefer { who: r, via: n },
                        effect,
                    });
                }
            }
            if rel == Relationship::Provider {
                let mut cfg = RoutingConfig::default();
                cfg.disable_link(r, n);
                let effect = effect_of(&cfg);
                if effect >= min_effect {
                    out.push(Disturbance {
                        kind: EventKind::LinkDown { a: r, b: n },
                        effect,
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| b.effect.partial_cmp(&a.effect).expect("finite effects"));
    out
}

/// The first disturbance whose effect falls inside `range` — for scripting
/// "smaller" events like the paper's secondary CMH→SAT shift.
pub fn find_in_range(
    topo: &Topology,
    service: &AnycastService,
    probes: &[AsId],
    range: std::ops::Range<f64>,
) -> Option<Disturbance> {
    find_disturbances(topo, service, probes, range.start)
        .into_iter()
        .rev() // ascending effect
        .find(|d| range.contains(&d.effect))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::cities;
    use crate::topology::TopologyBuilder;

    fn setup() -> (Topology, AnycastService, Vec<AsId>) {
        let topo = TopologyBuilder {
            transit: 3,
            regional: 8,
            stubs: 60,
            blocks_per_stub: 2,
            seed: 0x6007,
            ..Default::default()
        }
        .build();
        let regionals = topo.tier_members(Tier::Regional);
        let mut svc = AnycastService::new("x");
        svc.add_site("A", regionals[0], cities::LAX);
        svc.add_site("B", regionals[1], cities::AMS);
        svc.add_site("C", regionals[2], cities::SIN);
        let probes = topo.tier_members(Tier::Stub);
        (topo, svc, probes)
    }

    #[test]
    fn finds_effective_disturbances() {
        let (topo, svc, probes) = setup();
        let ds = find_disturbances(&topo, &svc, &probes, 0.02);
        assert!(!ds.is_empty(), "expected some effective disturbances");
        // Sorted descending.
        for w in ds.windows(2) {
            assert!(w[0].effect >= w[1].effect);
        }
        // Every reported effect clears the threshold.
        assert!(ds.iter().all(|d| d.effect >= 0.02));
    }

    #[test]
    fn effects_are_reproducible() {
        let (topo, svc, probes) = setup();
        let a = find_disturbances(&topo, &svc, &probes, 0.02);
        let b = find_disturbances(&topo, &svc, &probes, 0.02);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.effect, y.effect);
        }
    }

    #[test]
    fn find_in_range_respects_bounds() {
        let (topo, svc, probes) = setup();
        if let Some(d) = find_in_range(&topo, &svc, &probes, 0.02..0.2) {
            assert!((0.02..0.2).contains(&d.effect), "effect {}", d.effect);
        }
    }

    #[test]
    fn empty_probes_yield_nothing() {
        let (topo, svc, _) = setup();
        assert!(find_disturbances(&topo, &svc, &[], 0.01).is_empty());
    }
}
