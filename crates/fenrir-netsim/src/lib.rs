//! # fenrir-netsim
//!
//! An AS-level Internet substrate for Fenrir experiments.
//!
//! The paper measures the real Internet: B-Root's anycast catchments, USC's
//! upstream routing cone, Google's and Wikipedia's front-end selection. A
//! reproduction cannot, so this crate simulates the part of the Internet
//! Fenrir observes — *policy routing over an AS graph* — with enough
//! fidelity that the phenomena the paper studies all emerge:
//!
//! * **Topology** ([`topology`]): a seeded generator produces a three-tier
//!   AS graph (transit core, regional providers, multihomed stubs) with
//!   customer/provider and peer edges and geographic placement.
//! * **Routing** ([`routing`]): per-destination BGP-style route selection
//!   under Gao–Rexford policies — prefer customer routes over peer routes
//!   over provider routes, then shortest AS path, with valley-free export.
//!   Anycast is modelled natively: a prefix originated from several sites
//!   partitions the graph into catchments.
//! * **Events** ([`events`]): scripted site drains/additions/moves, link
//!   failures, and third-party policy changes — plus the *invisible*
//!   internal maintenance the paper's Table 4 validation needs.
//! * **Latency** ([`geo`]): great-circle RTT between ASes, so catchment
//!   changes move client latency the way Figure 4 shows.
//!
//! Determinism: every generator takes an explicit seed; two runs with the
//! same seed produce identical topologies, routes, and events.

pub mod adversary;
pub mod anycast;
pub mod events;
pub mod geo;
pub mod incremental;
pub mod prefix;
pub mod routing;
pub mod steering;
pub mod topology;

pub use adversary::{
    AdversaryPlan, AdversarySession, ByzantineStrategy, ByzantineVp, RowTamper, SpoofedReplies,
    SybilPopulation,
};
pub use anycast::{AnycastService, SiteDef};
pub use events::{EventKind, Scenario, ScenarioEvent};
pub use geo::GeoPoint;
pub use incremental::{diff_states, GuardedAdvance, IncrementalRoutes};
pub use prefix::BlockId;
pub use routing::{ConvergenceStats, Route, RouteEvent, RouteTable};
pub use steering::{find_disturbances, find_in_range, Disturbance};
pub use topology::{AsId, Relationship, Tier, Topology, TopologyBuilder};
