//! Property tests of the routing substrate: on randomly generated
//! topologies, computed paths must respect the Gao–Rexford contract —
//! loop-free, valley-free, and consistent under anycast partitioning.

// The offline `proptest` stand-in expands `proptest! { .. }` to nothing,
// which makes the strategies and their imports look dead to the compiler
// even though the real proptest harness uses them all.
#![allow(unused_imports, dead_code)]

use fenrir_netsim::anycast::AnycastService;
use fenrir_netsim::geo::GeoPoint;
use fenrir_netsim::routing::{RouteEvent, RouteTable, RoutingConfig};
use fenrir_netsim::topology::{AsId, Relationship, Tier, Topology, TopologyBuilder};
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    (2usize..5, 3usize..9, 10usize..40, any::<u64>()).prop_map(
        |(transit, regional, stubs, seed)| {
            TopologyBuilder {
                transit,
                regional,
                stubs,
                blocks_per_stub: 1,
                multihome_prob: 0.5,
                regional_peer_prob: 0.2,
                seed,
            }
            .build()
        },
    )
}

/// Classify each step of a path by relationship, as seen walking from the
/// client toward the origin.
fn steps(topo: &Topology, path: &[AsId]) -> Vec<Relationship> {
    path.windows(2)
        .map(|w| topo.relationship(w[0], w[1]).expect("adjacent"))
        .collect()
}

/// Minimal deterministic generator (splitmix64) for the seeded equivalence
/// tests below, which must run even where the proptest runner is absent.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

/// Draw a random but valid `RouteEvent` for `topo` given the current state.
/// Preference pins are restricted to *customer* neighbors: pinning a peer
/// or provider ranks that route above customer routes, which breaks the
/// Gao–Rexford prefer-customer condition and admits multiple stable fixed
/// points (an RFC 4264 "BGP wedgie") — batch and incremental could then
/// legitimately settle in different, equally stable, states. Customer pins
/// only reorder routes *within* the customer class, which preserves the
/// uniqueness guarantee.
fn random_event(
    mix: &mut Mix,
    topo: &Topology,
    origins: &[(AsId, u32)],
    config: &RoutingConfig,
) -> RouteEvent {
    let nodes = topo.nodes();
    loop {
        match mix.pick(8) {
            0 => {
                let x = nodes[mix.pick(nodes.len())].id;
                let nbrs = topo.neighbors(x);
                if nbrs.is_empty() {
                    continue;
                }
                let (b, _) = nbrs[mix.pick(nbrs.len())];
                return RouteEvent::LinkDown { a: x, b };
            }
            1 => {
                // Sort before picking: set iteration order is not stable.
                let mut down: Vec<(AsId, AsId)> = config.disabled_links.iter().copied().collect();
                if down.is_empty() {
                    continue;
                }
                down.sort();
                let (a, b) = down[mix.pick(down.len())];
                return RouteEvent::LinkUp { a, b };
            }
            2 => {
                let x = nodes[mix.pick(nodes.len())].id;
                let customers: Vec<AsId> = topo
                    .neighbors(x)
                    .iter()
                    .filter(|&&(_, rel)| rel == Relationship::Customer)
                    .map(|&(b, _)| b)
                    .collect();
                if customers.is_empty() {
                    continue;
                }
                let via = customers[mix.pick(customers.len())];
                return RouteEvent::PrefSet { who: x, via };
            }
            3 => {
                let mut pinned: Vec<AsId> = config.pref_override.keys().copied().collect();
                if pinned.is_empty() {
                    continue;
                }
                pinned.sort();
                let who = pinned[mix.pick(pinned.len())];
                return RouteEvent::PrefClear { who };
            }
            4 => {
                let &(origin, _) = &origins[mix.pick(origins.len())];
                return RouteEvent::PrependSet {
                    origin,
                    count: mix.pick(4) as u8,
                };
            }
            5 => {
                let origin = nodes[mix.pick(nodes.len())].id;
                return RouteEvent::OriginAdd {
                    origin,
                    site: mix.pick(4) as u32,
                };
            }
            6 if origins.len() > 1 => {
                let &(origin, site) = &origins[mix.pick(origins.len())];
                return RouteEvent::OriginRemove { origin, site };
            }
            _ => {
                let x = nodes[mix.pick(nodes.len())].id;
                let nbrs = topo.neighbors(x);
                if nbrs.is_empty() {
                    continue;
                }
                let (b, _) = nbrs[mix.pick(nbrs.len())];
                return RouteEvent::LinkUp { a: x, b };
            }
        }
    }
}

/// Core equivalence check: drive a table through `events` incrementally and
/// compare against a batch fixed point of the final state.
fn check_incremental_equivalence(topo: &Topology, seed: u64, events_count: usize) {
    let mut mix = Mix(seed);
    let regionals = topo.tier_members(Tier::Regional);
    let mut origins: Vec<(AsId, u32)> = vec![(regionals[0], 0)];
    let mut config = RoutingConfig::default();
    let mut table = RouteTable::compute(topo, &origins, &config);
    for step in 0..events_count {
        let ev = random_event(&mut mix, topo, &origins, &config);
        table.recompute_after(topo, &mut origins, &mut config, &ev);
        let batch = RouteTable::compute(topo, &origins, &config);
        for node in topo.nodes() {
            assert_eq!(
                table.route(node.id),
                batch.route(node.id),
                "seed {seed}: divergence at {:?} after step {step} ({ev:?})",
                node.id
            );
        }
    }
}

/// Runs without the proptest runner: randomized event sequences on several
/// seeded topologies, incremental must equal batch after every event.
#[test]
fn recompute_after_equals_compute_over_random_event_sequences() {
    for seed in 0..12u64 {
        let topo = TopologyBuilder {
            transit: 3,
            regional: 6,
            stubs: 25,
            blocks_per_stub: 1,
            multihome_prob: 0.5,
            regional_peer_prob: 0.2,
            seed,
        }
        .build();
        check_incremental_equivalence(&topo, seed * 31 + 7, 12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn unicast_paths_are_loop_free_and_valley_free(topo in arb_topology()) {
        let origin = topo.tier_members(Tier::Stub)[0];
        let rt = RouteTable::compute(&topo, &[(origin, 0)], &RoutingConfig::default());
        for node in topo.nodes() {
            let Some(path) = rt.full_path(node.id) else { continue };
            // Loop-free.
            let mut seen = std::collections::HashSet::new();
            for a in &path {
                prop_assert!(seen.insert(*a), "loop in {path:?}");
            }
            prop_assert_eq!(*path.last().expect("nonempty"), origin);
            // Valley-free: once the path goes "down" (toward a customer) or
            // across a peer link, it may never go "up" (toward a provider)
            // or cross another peer link.
            // Walking client→origin, a step to a Provider means the client
            // is sending *up*; classify the reverse direction (origin→client
            // announcement flow) instead: announcements go customer→provider
            // (up), then at most one peer link, then provider→customer
            // (down). Client-side: steps are Provider* Peer? Customer*.
            let st = steps(&topo, &path);
            let mut phase = 0; // 0 = up (provider steps), 1 = peer used, 2 = down
            for s in st {
                match s {
                    Relationship::Provider => {
                        prop_assert_eq!(phase, 0, "up after peer/down in {:?}", path);
                    }
                    Relationship::Peer => {
                        prop_assert!(phase == 0, "second peer or peer after down");
                        phase = 1;
                    }
                    Relationship::Customer => {
                        phase = 2;
                    }
                }
            }
        }
    }

    #[test]
    fn anycast_is_a_partition_of_unicast_reachability(topo in arb_topology()) {
        // Every AS that can reach ANY single site can reach the anycast
        // set, and its catchment is one of the announced sites.
        let regionals = topo.tier_members(Tier::Regional);
        let mut svc = AnycastService::new("p");
        let origins: Vec<AsId> = regionals.iter().take(3).copied().collect();
        for (i, &r) in origins.iter().enumerate() {
            svc.add_site(&format!("S{i}"), r, GeoPoint::default());
        }
        let cfg = RoutingConfig::default();
        let any = svc.routes(&topo, &cfg);
        let singles: Vec<RouteTable> = origins
            .iter()
            .map(|&o| RouteTable::compute(&topo, &[(o, 0)], &cfg))
            .collect();
        for node in topo.nodes() {
            let reach_any_single = singles.iter().any(|rt| rt.route(node.id).is_some());
            let catch = any.catchment(node.id);
            prop_assert_eq!(reach_any_single, catch.is_some());
            if let Some(site) = catch {
                prop_assert!((site as usize) < origins.len());
                // The chosen site is individually reachable too.
                prop_assert!(singles[site as usize].route(node.id).is_some());
            }
        }
    }

    #[test]
    fn anycast_path_never_longer_than_best_single_site(topo in arb_topology()) {
        // At equal preference class, anycast picks a site at most as far as
        // the nearest individually-reachable site.
        let regionals = topo.tier_members(Tier::Regional);
        let mut svc = AnycastService::new("p");
        let origins: Vec<AsId> = regionals.iter().take(2).copied().collect();
        for (i, &r) in origins.iter().enumerate() {
            svc.add_site(&format!("S{i}"), r, GeoPoint::default());
        }
        let cfg = RoutingConfig::default();
        let any = svc.routes(&topo, &cfg);
        let singles: Vec<RouteTable> = origins
            .iter()
            .map(|&o| RouteTable::compute(&topo, &[(o, 0)], &cfg))
            .collect();
        for node in topo.nodes() {
            let Some(any_route) = any.route(node.id) else { continue };
            let best_single = singles
                .iter()
                .filter_map(|rt| rt.route(node.id))
                .map(|r| (std::cmp::Reverse(r.pref), r.hops()))
                .min();
            if let Some((best_pref, best_hops)) = best_single {
                let got = (std::cmp::Reverse(any_route.pref), any_route.hops());
                prop_assert!(
                    got <= (best_pref, best_hops),
                    "anycast route worse than best single-site route"
                );
            }
        }
    }

    #[test]
    fn incremental_reconvergence_equals_batch(topo in arb_topology(), seed in any::<u64>()) {
        // The tentpole invariant: after every event, recompute_after's
        // frontier-seeded reconvergence lands on the same fixed point as a
        // from-scratch compute of the post-event state.
        check_incremental_equivalence(&topo, seed, 10);
    }

    #[test]
    fn link_down_never_creates_routes(topo in arb_topology()) {
        // Disabling a link can only remove reachability, never add it.
        let origin = topo.tier_members(Tier::Regional)[0];
        let cfg = RoutingConfig::default();
        let base = RouteTable::compute(&topo, &[(origin, 0)], &cfg);
        // Disable the origin's first link.
        if let Some(&(nbr, _)) = topo.neighbors(origin).first() {
            let mut broken = RoutingConfig::default();
            broken.disable_link(origin, nbr);
            let after = RouteTable::compute(&topo, &[(origin, 0)], &broken);
            for node in topo.nodes() {
                if after.route(node.id).is_some() {
                    prop_assert!(
                        base.route(node.id).is_some(),
                        "link-down created reachability for {}",
                        node.id
                    );
                }
            }
            prop_assert!(after.reachable_count() <= base.reachable_count());
        }
    }

    #[test]
    fn rtt_is_a_metric_like_quantity(
        a in -60.0f64..60.0, b in -180.0f64..180.0,
        c in -60.0f64..60.0, d in -180.0f64..180.0
    ) {
        let p = GeoPoint::new(a, b);
        let q = GeoPoint::new(c, d);
        let rtt_pq = p.rtt_ms(q);
        let rtt_qp = q.rtt_ms(p);
        prop_assert!((rtt_pq - rtt_qp).abs() < 1e-9, "asymmetric RTT");
        prop_assert!(rtt_pq >= fenrir_netsim::geo::BASE_RTT_MS);
        // Bounded by half the planet both ways at fibre speed + overhead.
        prop_assert!(rtt_pq < 210.0 + fenrir_netsim::geo::BASE_RTT_MS);
    }
}
