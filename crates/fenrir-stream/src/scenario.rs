//! Streaming variants of the ROADMAP scenarios: run a clean campaign
//! batch-style, then hand back its observations as ordered submit rows
//! so a test or example can drive them through a real server one frame
//! at a time.
//!
//! Two stories, mirroring [`fenrir_measure::adversarial`]'s templates
//! without the adversary:
//!
//! * [`hypergiant_churn`] — a hypergiant whose front-end clusters
//!   reshuffle weekly (days 7 and 14 of a 21-day EDNS-CS campaign);
//!   the reshuffles are the mode transitions a subscriber should see.
//! * [`ddos_catchment_flip`] — a three-site B-Root replica losing one
//!   site to a DDoS across days 5–10 of a 15-day Verfploeter campaign;
//!   the drain onset and recovery are the expected transitions.
//!
//! Both are deterministic under `seed`, which perturbs the campaign's
//! own RNG stream (so a CI-pinned `FENRIR_STREAM_SEED` exercises one
//! reproducible path while still proving nothing is hard-coded).

use fenrir_core::error::Result;
use fenrir_core::ids::SiteTable;
use fenrir_core::time::Timestamp;
use fenrir_measure::ednscs::{EdnsCsCampaign, FrontendPolicy};
use fenrir_measure::submit::{rows_from_ednscs, rows_from_sweep, SubmitRow};
use fenrir_measure::verfploeter::Verfploeter;
use fenrir_measure::RunnerConfig;
use fenrir_netsim::anycast::AnycastService;
use fenrir_netsim::events::Scenario;
use fenrir_netsim::geo::cities;
use fenrir_netsim::topology::{Tier, TopologyBuilder};

/// A campaign rendered as an ordered submit feed.
#[derive(Debug, Clone)]
pub struct StreamScenario {
    /// Scenario name (used in logs and bench output).
    pub name: &'static str,
    /// Site table the codes refer to.
    pub sites: SiteTable,
    /// Vantage points per observation.
    pub networks: usize,
    /// The feed, ordered by sequence number.
    pub rows: Vec<SubmitRow>,
    /// Observation indices where the scenario's script changes routing
    /// (reshuffle epochs, drain boundaries) — where transitions are
    /// *expected*, give or take discovery lag.
    pub scripted_changes: Vec<usize>,
}

/// A hypergiant with weekly front-end reshuffles: 21 daily EDNS-CS
/// sweeps over 50 stub networks, cluster reshuffles at days 7 and 14.
pub fn hypergiant_churn(seed: u64) -> Result<StreamScenario> {
    let topo = TopologyBuilder {
        transit: 3,
        regional: 6,
        stubs: 50,
        blocks_per_stub: 1,
        seed: 0xAD00,
        ..Default::default()
    }
    .build();
    let svc = AnycastService::new("hypergiant");
    let campaign = EdnsCsCampaign {
        hostname: "www.hypergiant.example".into(),
        policy: FrontendPolicy::Churn {
            clusters: 24,
            epoch_secs: 7 * 86_400,
            era: 9,
            sticky_frac: 0.15,
            daily_churn: 0.01,
        },
        loss_prob: 0.02,
        seed: 0x44D5_0001 ^ seed,
    };
    let times: Vec<Timestamp> = (0..21).map(Timestamp::from_days).collect();
    let result = campaign.run_with(
        &topo,
        &svc,
        &Scenario::new(),
        &times,
        &RunnerConfig::default(),
        None,
    )?;
    Ok(StreamScenario {
        name: "hypergiant_churn",
        sites: result.series.sites().clone(),
        networks: result.series.networks(),
        rows: rows_from_ednscs(&result),
        scripted_changes: vec![7, 14],
    })
}

/// A three-site B-Root replica losing LAX to a DDoS across days 5–10
/// of a 15-day Verfploeter campaign: the drain and the recovery are
/// catchment flips every honest block observes.
pub fn ddos_catchment_flip(seed: u64) -> Result<StreamScenario> {
    let topo = TopologyBuilder {
        transit: 3,
        regional: 6,
        stubs: 40,
        blocks_per_stub: 2,
        seed: 0xAD01,
        ..Default::default()
    }
    .build();
    let regionals = topo.tier_members(Tier::Regional);
    let mut svc = AnycastService::new("B-Root");
    svc.add_site("LAX", regionals[0], cities::LAX);
    svc.add_site("MIA", regionals[1], cities::MIA);
    svc.add_site("AMS", regionals[2], cities::AMS);
    let mut scenario = Scenario::new();
    scenario.drain(
        0,
        Timestamp::from_days(5).as_secs(),
        Timestamp::from_days(10).as_secs(),
        "ddos",
    );
    let campaign = Verfploeter {
        mean_response_rate: 0.75,
        seed: 0x0D05_0001 ^ seed,
    };
    let times: Vec<Timestamp> = (0..15).map(Timestamp::from_days).collect();
    let result = campaign.run_with(
        &topo,
        &svc,
        &scenario,
        &times,
        &RunnerConfig::default(),
        None,
    )?;
    Ok(StreamScenario {
        name: "ddos_catchment_flip",
        sites: result.series.sites().clone(),
        networks: result.series.networks(),
        rows: rows_from_sweep(&result),
        scripted_changes: vec![5, 10],
    })
}
