//! Fenced leader failover for streaming ingest.
//!
//! A [`ReplicatedIngestor`] is one node of a replicated write path
//! whose shared truth lives entirely in the object tier: a [`Lease`]
//! object electing the leader, a [`FencedWal`] holding every acked
//! observation, and the sealed [`TieredJournal`] epochs. A node's
//! local disk holds only its hot tail — losing a node loses nothing
//! that was ever acked.
//!
//! ## The ack contract
//!
//! The leader accepts a `Submit` only after the observation is in the
//! WAL (its head CAS is the linearization point) *and* folded into the
//! journaled pipeline. A crash between the two leaves the observation
//! in the WAL, where the next leader's replay recovers it — so a
//! `SubmitAck { Accepted }` is never lost, and the client's retry of
//! an in-doubt submit earns a `Duplicate` ack from whoever leads next.
//!
//! ## Fencing
//!
//! Every epoch of leadership carries a fencing epoch from the lease,
//! monotonically increasing by one per holder change. The epoch is
//! stamped on the WAL head and the tier manifest at takeover; every
//! later WAL append, tiered seal, and manifest commit is conditional
//! on it. A deposed leader — paused, partitioned, or just slow to
//! notice — has its first conflicting write refused with
//! [`Error::Fenced`], at which point it steps down to standby and
//! redirects clients. Wall clocks never arbitrate: the lease TTL only
//! schedules *when* a takeover is attempted; the CAS epoch decides
//! *who won*.
//!
//! ## Takeover
//!
//! Promotion runs: acquire the lease (epoch `e`) → claim the WAL under
//! `e` → hydrate the analysis state from the sealed tier → stamp `e`
//! on the tier manifest → replay the WAL suffix beyond the hydrated
//! prefix through the normal fold path → serve. Replayed transitions
//! enter the announce history (resuming subscribers replay them) but
//! are never re-broadcast — history is never announced twice.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use fenrir_core::error::{Error, Result};
use fenrir_core::health::CampaignHealth;
use fenrir_core::ids::SiteTable;
use fenrir_data::storage::{FencedWal, Lease, ObsRecord, RetryPolicy, Storage};
use fenrir_serve::protocol::{ERR_BAD_REQUEST, ERR_INTERNAL};
use fenrir_serve::{Reply, StreamEvent, StreamHandler, SubmitOutcome};
use parking_lot::Mutex;

use crate::ingest::{StreamConfig, StreamIngestor};
use crate::metrics::FailoverMetrics;

#[allow(unused_imports)] // doc links
use fenrir_data::storage::TieredJournal;

/// A millisecond clock. Injected so chaos suites replay
/// deterministically — production nodes pass [`wall_clock`].
pub type Clock = Arc<dyn Fn() -> u64 + Send + Sync>;

/// The system clock, for production deployments.
pub fn wall_clock() -> Clock {
    Arc::new(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64)
    })
}

/// Everything one replicated node needs besides the store and clock.
#[derive(Debug, Clone)]
pub struct ReplicatedConfig {
    /// This node's local hot-tail path.
    pub hot_path: PathBuf,
    /// The shared tier prefix (journal epochs, manifest, lease, WAL).
    pub prefix: String,
    /// Retry policy for every tier operation.
    pub retry: RetryPolicy,
    /// Site table for the analysis pipeline.
    pub sites: SiteTable,
    /// Vantage points per observation.
    pub networks: usize,
    /// Analysis configuration (pipeline, adaptive threshold, trust).
    pub stream: StreamConfig,
    /// This node's advertised address. Doubles as its lease identity,
    /// so a standby's lease view *is* the redirect hint it serves.
    pub advertise: String,
    /// Lease term: a leader renews within it, a standby takes over
    /// after it lapses.
    pub lease_ttl_ms: u64,
}

/// What a node currently is. The leader's durable machinery lives in
/// its role — stepping down drops the WAL handle and the pipeline, so
/// a deposed leader cannot even try to write.
enum Role {
    Standby,
    Leader {
        epoch: u64,
        wal: FencedWal,
        ingestor: Arc<StreamIngestor>,
    },
}

impl std::fmt::Debug for Role {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Role::Standby => f.write_str("Standby"),
            Role::Leader { epoch, .. } => f.debug_struct("Leader").field("epoch", epoch).finish(),
        }
    }
}

struct Node {
    lease: Lease,
    role: Role,
}

/// One node of the replicated ingest path. Implements
/// [`StreamHandler`], so it plugs into
/// [`fenrir_serve::Server::start_with_stream`] exactly like a plain
/// [`StreamIngestor`] — a standby answers every `Submit` with
/// [`Reply::NotLeader`] and its best redirect hint.
pub struct ReplicatedIngestor {
    store: Arc<dyn Storage>,
    cfg: ReplicatedConfig,
    clock: Clock,
    node: Mutex<Node>,
    metrics: FailoverMetrics,
}

impl std::fmt::Debug for ReplicatedIngestor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedIngestor")
            .field("advertise", &self.cfg.advertise)
            .field("role", &self.node.lock().role)
            .finish()
    }
}

impl ReplicatedIngestor {
    /// A node in standby. Nothing is read or written until the first
    /// [`ReplicatedIngestor::tick`].
    pub fn new(
        store: Arc<dyn Storage>,
        cfg: ReplicatedConfig,
        clock: Clock,
    ) -> Result<ReplicatedIngestor> {
        let lease = Lease::new(
            Arc::clone(&store),
            &cfg.prefix,
            cfg.advertise.clone(),
            cfg.retry.clone(),
        )?;
        Ok(ReplicatedIngestor {
            store,
            cfg,
            clock,
            node: Mutex::new(Node {
                lease,
                role: Role::Standby,
            }),
            metrics: FailoverMetrics::new(),
        })
    }

    fn now(&self) -> u64 {
        (self.clock)()
    }

    /// Drive the lease once: a standby tries to take over, a leader
    /// renews (and steps down if it cannot). Call this on a timer —
    /// any period comfortably under `lease_ttl_ms` — or explicitly
    /// from a chaos harness. Returns whether this node leads after
    /// the tick.
    pub fn tick(&self) -> Result<bool> {
        let now = self.now();
        let mut node = self.node.lock();
        match &node.role {
            Role::Leader { .. } => {
                if node.lease.renew(now, self.cfg.lease_ttl_ms)? {
                    Ok(true)
                } else {
                    self.step_down(&mut node);
                    Ok(false)
                }
            }
            Role::Standby => match node.lease.acquire(now, self.cfg.lease_ttl_ms)? {
                Some(epoch) => match self.promote(&mut node, epoch) {
                    Ok(()) => Ok(true),
                    Err(e) => {
                        // A lost race (someone fenced past us mid-
                        // takeover) is a normal election outcome, not
                        // a fault; anything else propagates.
                        self.step_down(&mut node);
                        match e {
                            Error::Fenced { .. } => {
                                self.metrics.fenced_rejects.inc();
                                Ok(false)
                            }
                            other => Err(other),
                        }
                    }
                },
                None => Ok(false),
            },
        }
    }

    /// Whether this node currently leads.
    pub fn is_leader(&self) -> bool {
        matches!(self.node.lock().role, Role::Leader { .. })
    }

    /// The fencing epoch held while leading.
    pub fn fence_epoch(&self) -> Option<u64> {
        match &self.node.lock().role {
            Role::Leader { epoch, .. } => Some(*epoch),
            Role::Standby => None,
        }
    }

    /// The leader's pipeline, while leading. Chaos suites use this to
    /// fingerprint state; a standby has no analysis state to show.
    pub fn ingestor(&self) -> Option<Arc<StreamIngestor>> {
        match &self.node.lock().role {
            Role::Leader { ingestor, .. } => Some(Arc::clone(ingestor)),
            Role::Standby => None,
        }
    }

    /// Leadership/failover instruments; bind into a registry with
    /// [`FailoverMetrics::bind`].
    pub fn metrics(&self) -> &FailoverMetrics {
        &self.metrics
    }

    /// Release the lease (clean handover: the next claimant need not
    /// wait out the TTL) and step down.
    pub fn resign(&self) -> Result<()> {
        let now = self.now();
        let mut node = self.node.lock();
        if matches!(node.role, Role::Leader { .. }) {
            self.step_down(&mut node);
            node.lease.release(now)?;
        }
        Ok(())
    }

    /// Seal the leader's delta tail into the tier, then raise the WAL
    /// floor past everything sealed — the records below it are
    /// tier-durable twice over and only cost takeover replay time.
    pub fn compact(&self) -> Result<()> {
        let mut node = self.node.lock();
        let Role::Leader { wal, ingestor, .. } = &mut node.role else {
            return Err(Error::InvalidParameter {
                name: "compact",
                message: "only the leader can seal the shared tier".into(),
            });
        };
        ingestor.compact()?;
        let sealed = ingestor.observations();
        wal.truncate_to(sealed)
    }

    /// Promote to leader under `epoch`: claim the WAL, hydrate from
    /// the sealed tier, stamp the fence, replay the acked WAL suffix,
    /// and only then serve.
    fn promote(&self, node: &mut Node, epoch: u64) -> Result<()> {
        let wal = FencedWal::open(
            Arc::clone(&self.store),
            &self.cfg.prefix,
            self.cfg.retry.clone(),
            epoch,
        )?;
        let ingestor = StreamIngestor::open_tiered(
            &self.cfg.hot_path,
            Arc::clone(&self.store),
            &self.cfg.prefix,
            self.cfg.retry.clone(),
            self.cfg.sites.clone(),
            self.cfg.networks,
            self.cfg.stream.clone(),
        )?;
        ingestor.set_fence_epoch(epoch)?;
        // The hydrated prefix (sealed epochs + any surviving local hot
        // tail) ends below the WAL head whenever the old leader acked
        // past its last seal — or died between the WAL advance and its
        // own fold. Replay closes the gap through the identical fold
        // path, so the resulting state is bit-equal to the acked
        // history folded in order.
        let have = ingestor.observations();
        for rec in wal.replay(have)? {
            ingestor.replay_observation(rec.time, &rec.codes, rec.health)?;
        }
        node.role = Role::Leader {
            epoch,
            wal,
            ingestor: Arc::new(ingestor),
        };
        self.metrics.takeovers.inc();
        self.metrics.is_leader.store(1, Ordering::Relaxed);
        self.metrics.fence_epoch.store(epoch, Ordering::Relaxed);
        Ok(())
    }

    fn step_down(&self, node: &mut Node) {
        if matches!(node.role, Role::Leader { .. }) {
            self.metrics.step_downs.inc();
        }
        node.role = Role::Standby;
        self.metrics.is_leader.store(0, Ordering::Relaxed);
    }

    /// The best redirect hint this node can give: the lease record's
    /// holder, which is the leader's advertised address — unless the
    /// record is expired or names this node itself. A freshly deposed
    /// leader's last observation is its *own* dead claim, so a useless
    /// view is re-read once from the store before giving up.
    fn leader_hint(&self, node: &mut Node) -> Option<String> {
        let useless = |rec: Option<&fenrir_data::storage::LeaseRecord>, now: u64| match rec {
            Some(rec) => rec.holder == self.cfg.advertise || !rec.is_live_at(now),
            None => true,
        };
        let now = self.now();
        if useless(node.lease.observed_record(), now) {
            // Best effort only: a failed read just means no hint, and
            // the client falls back to rotating its candidate list.
            let _ = node.lease.observe();
        }
        let rec = node.lease.observed_record()?;
        if useless(Some(rec), now) {
            return None;
        }
        Some(rec.holder.clone())
    }

    fn not_leader(&self, node: &mut Node) -> Reply {
        self.metrics.not_leader.inc();
        Reply::NotLeader {
            hint: self.leader_hint(node),
        }
    }
}

impl StreamHandler for ReplicatedIngestor {
    fn submit(
        &self,
        seq: u64,
        time: i64,
        codes: &[u16],
        health: CampaignHealth,
    ) -> (Reply, Vec<StreamEvent>) {
        let mut node = self.node.lock();
        let Role::Leader { wal, ingestor, .. } = &mut node.role else {
            return (self.not_leader(&mut node), Vec::new());
        };

        // Sequencing and shape checks precede the WAL: a duplicate is
        // already durable (ack it again, write nothing), a gap or a
        // malformed row must never become durable at all.
        let expected = ingestor.expected_seq();
        if seq < expected {
            return (
                Reply::SubmitAck {
                    seq,
                    outcome: SubmitOutcome::Duplicate,
                },
                Vec::new(),
            );
        }
        if seq > expected {
            return (
                Reply::SubmitAck {
                    seq,
                    outcome: SubmitOutcome::Gap { expected },
                },
                Vec::new(),
            );
        }
        if codes.len() != self.cfg.networks {
            return (
                Reply::Error {
                    code: ERR_BAD_REQUEST,
                    message: format!(
                        "observation carries {} codes, stream expects {}",
                        codes.len(),
                        self.cfg.networks
                    ),
                },
                Vec::new(),
            );
        }

        // WAL first: the head CAS is the ack linearization point, and
        // it doubles as the deposition check — a higher fence here
        // means another leader exists, so step down and redirect.
        let rec = ObsRecord {
            time,
            codes: codes.to_vec(),
            health: health.clone(),
        };
        if let Err(e) = wal.append(&rec) {
            return match e {
                Error::Fenced { .. } => {
                    self.metrics.fenced_rejects.inc();
                    self.step_down(&mut node);
                    (self.not_leader(&mut node), Vec::new())
                }
                other => (
                    Reply::Error {
                        code: ERR_INTERNAL,
                        message: other.to_string(),
                    },
                    Vec::new(),
                ),
            };
        }

        // Then the fold. A fence refusal mid-fold (a tiered seal lost
        // to a successor) also steps down — the observation is already
        // WAL-durable, so the successor's replay owns it and the
        // client's retry will earn a Duplicate ack there.
        match ingestor.submit_typed(seq, time, codes, health) {
            Ok((outcome, events)) => (Reply::SubmitAck { seq, outcome }, events),
            Err(Error::Fenced { .. }) => {
                self.metrics.fenced_rejects.inc();
                self.step_down(&mut node);
                (self.not_leader(&mut node), Vec::new())
            }
            Err(e) => (
                Reply::Error {
                    code: ERR_INTERNAL,
                    message: e.to_string(),
                },
                Vec::new(),
            ),
        }
    }

    fn boundary_count(&self) -> u64 {
        match &self.node.lock().role {
            Role::Leader { ingestor, .. } => ingestor.boundary_count(),
            Role::Standby => 0,
        }
    }

    fn events_since(&self, from: u64) -> Vec<StreamEvent> {
        match &self.node.lock().role {
            Role::Leader { ingestor, .. } => StreamHandler::events_since(ingestor.as_ref(), from),
            Role::Standby => Vec::new(),
        }
    }
}
