//! # fenrir-stream — streaming observation ingest and live mode
//! discovery
//!
//! The batch pipeline answers "what were the modes?" after a campaign
//! is sealed. This crate answers it *while the campaign runs*: each
//! observation arrives over the serve path as a protocol-v4 `Submit`
//! frame, is made durable before its ack, folds into the incremental
//! analysis state, and — whenever the re-derived clustering
//! reveals a mode boundary the previous step's did not — pushes a `ModeTransition` event to
//! every subscribed connection.
//!
//! The layering:
//!
//! * [`ingest`] — [`StreamIngestor`], the durable sequenced write path
//!   (implements [`fenrir_serve::StreamHandler`]); plus [`StateBits`],
//!   the bit-exact state fingerprint the equivalence suite compares;
//! * [`serve`] — [`StreamServer`], ingestor + read-only query store +
//!   TCP server over one journal;
//! * [`client`] — [`SubmitClient`] / [`Subscriber`], the campaign-side
//!   helpers (ack tracking, event interleaving, explicit `Lagged`);
//! * [`metrics`] — the ingestor's `fenrir_stream_*` metric families;
//! * [`scenario`] — the ROADMAP scenarios re-cut as submit feeds.
//!
//! ## The equivalence bar
//!
//! After any prefix of submissions — including across a kill/restart
//! at any frame boundary — the streamed similarity matrix, merge tree,
//! adaptive threshold and mode labels are bit-identical to a batch
//! recomputation over the same observations. The ingestor earns this
//! by construction: it appends through the same
//! [`RecoverablePipeline`](fenrir_data::journal::RecoverablePipeline)
//! the batch pipeline uses, and derives modes through the same
//! [`AdaptiveThreshold`](fenrir_core::cluster::AdaptiveThreshold)
//! sweep the serve fleet's snapshots use. There is no second analysis
//! implementation to drift.

#![warn(missing_docs)]

pub mod client;
pub mod ingest;
pub mod metrics;
pub mod replicated;
pub mod scenario;
pub mod serve;

pub use client::{FailoverSubmitClient, FailoverSubscriber, SubmitClient, SubmitResponse, Subscriber};
pub use ingest::{state_bits, StateBits, StreamConfig, StreamIngestor};
pub use metrics::{FailoverMetrics, StreamMetrics};
pub use replicated::{wall_clock, Clock, ReplicatedConfig, ReplicatedIngestor};
pub use scenario::{ddos_catchment_flip, hypergiant_churn, StreamScenario};
pub use serve::StreamServer;
