//! The stream ingestor: durable sequenced ingest plus live mode
//! discovery.
//!
//! [`StreamIngestor`] is the serve fleet's write path. Each accepted
//! `Submit` frame is appended to a [`RecoverablePipeline`] journal —
//! `fsync`ed *before* the ack leaves the server — and folded into the
//! live analysis state through the exact incremental entry points the
//! batch pipeline uses ([`SimilarityMatrix::extend`],
//! [`Dendrogram::extend`] behind the divergence guard,
//! [`AdaptiveThreshold::choose`]), so after any prefix of submissions
//! the streamed matrix, merge tree, threshold and mode labels are
//! bit-identical to a batch recomputation over the same observations —
//! including across a kill/restart at any frame boundary.
//!
//! ## Sequencing
//!
//! The next expected sequence number is always the journal's
//! observation count. `seq` below it is a [`SubmitOutcome::Duplicate`]
//! (the at-least-once retry path: ack again, apply nothing); above it
//! is a [`SubmitOutcome::Gap`] naming the expected number (nothing is
//! journaled, so a lost frame can never leave a hole).
//!
//! ## Transition detection
//!
//! After each accepted fold the adaptive sweep re-derives the mode
//! labels, and the new labeling's *boundary set* — the positions where
//! consecutive observations change mode — is diffed against the
//! previous step's. Each newly appeared boundary is announced as a
//! [`StreamEvent::ModeTransition`]. Comparing boundary positions
//! rather than raw labels makes detection immune to cluster-id
//! renumbering, and tolerates the chooser's minimum-cluster-size
//! guard: a regime change is credited the moment the nascent mode is
//! big enough to stand (typically one frame after it opens), with the
//! event's `seq` naming the observation that opened it.
//!
//! ## Trust weighting
//!
//! With a [`TrustConfig`] installed, every accepted row first passes
//! through a [`TrustModel`] fold. Trust never rewrites the stored codes
//! or the Φ weights — that would fork the stream from its batch twin —
//! it only (a) stamps the health record's `distrusted` count before the
//! row is journaled and (b) annotates emitted transitions: `trusted`
//! is whether the step excluded no vantage point, and `step_phi` is the
//! step similarity under the step's trust-adjusted weights. On restart
//! the model is rebuilt by replaying the journaled series, so its
//! window state is as durable as the observations themselves.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use fenrir_core::cluster::AdaptiveThreshold;
use fenrir_core::error::{Error, Result};
use fenrir_core::health::CampaignHealth;
use fenrir_core::ids::SiteTable;
use fenrir_core::similarity::{self, UnknownPolicy};
use fenrir_core::time::Timestamp;
use fenrir_core::trust::{TrustConfig, TrustModel};
use fenrir_core::vector::{RoutingVector, CODE_ERR, CODE_UNKNOWN};
use fenrir_core::weight::Weights;
use fenrir_data::journal::{PipelineConfig, RecoverablePipeline};
use fenrir_data::storage::{RetryPolicy, Storage};
use fenrir_serve::protocol::{ERR_BAD_REQUEST, ERR_INTERNAL};
use fenrir_serve::{Reply, StreamEvent, StreamHandler, SubmitOutcome};
use parking_lot::Mutex;

use crate::metrics::StreamMetrics;

#[allow(unused_imports)] // doc links
use fenrir_core::cluster::Dendrogram;
#[allow(unused_imports)] // doc links
use fenrir_core::similarity::SimilarityMatrix;

/// Whether a vantage point's code counts as a real answer for trust
/// scoring (unknown and error cells carry no routing claim to lie
/// about).
fn vp_known(c: u16) -> bool {
    c != CODE_UNKNOWN && c != CODE_ERR
}

/// Everything a [`StreamIngestor`] needs besides the journal location.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Analysis parameters the journal is bound to (weights, unknown
    /// policy, linkage, guard sampling, compaction cadence).
    pub pipeline: PipelineConfig,
    /// The adaptive threshold rule used to re-derive modes after each
    /// accepted fold.
    pub adaptive: AdaptiveThreshold,
    /// Optional byzantine-resilience fold applied to each accepted row
    /// before journaling. `None` trusts every vantage point.
    pub trust: Option<TrustConfig>,
}

impl StreamConfig {
    /// Paper-default analysis over `networks` vantage points, no trust
    /// fold.
    pub fn new(networks: usize) -> Self {
        StreamConfig {
            pipeline: PipelineConfig::new(networks),
            adaptive: AdaptiveThreshold::default(),
            trust: None,
        }
    }

    /// Install a trust fold.
    pub fn with_trust(mut self, trust: TrustConfig) -> Self {
        self.trust = Some(trust);
        self
    }
}

/// The live analysis state in `f64::to_bits` form: what the
/// equivalence bar compares. Two states are equal iff every Φ cell,
/// every merge, the chosen threshold and the flat mode labels match
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateBits {
    /// Observations folded so far.
    pub observations: usize,
    /// Condensed Φ matrix, cell by cell.
    pub matrix: Vec<u64>,
    /// Merge tree: `(a, b, distance bits, size)` per merge.
    pub merges: Vec<(usize, usize, u64, usize)>,
    /// Chosen adaptive threshold.
    pub threshold: u64,
    /// Flat mode labels at that threshold.
    pub labels: Vec<usize>,
    /// Cluster count at that threshold.
    pub clusters: usize,
}

/// Flatten a pipeline's derived state to comparable bits. An empty
/// pipeline yields the empty state (zero observations, no cells).
pub fn state_bits(pipe: &RecoverablePipeline, adaptive: &AdaptiveThreshold) -> Result<StateBits> {
    let n = pipe.series().len();
    if n == 0 {
        return Ok(StateBits {
            observations: 0,
            matrix: Vec::new(),
            merges: Vec::new(),
            threshold: 0,
            labels: Vec::new(),
            clusters: 0,
        });
    }
    let matrix = pipe
        .matrix()
        .ok_or(Error::EmptyInput("similarity matrix"))?;
    let dendro = pipe.dendrogram().ok_or(Error::EmptyInput("dendrogram"))?;
    let choice = adaptive.choose(dendro)?;
    Ok(StateBits {
        observations: n,
        matrix: matrix.raw().iter().map(|v| v.to_bits()).collect(),
        merges: dendro
            .merges()
            .iter()
            .map(|m| (m.a, m.b, m.distance.to_bits(), m.size))
            .collect(),
        threshold: choice.threshold.to_bits(),
        labels: choice.labels,
        clusters: choice.clusters,
    })
}

/// Positions where consecutive observations change mode: `b` is a
/// boundary iff `labels[b] != labels[b - 1]`. Boundary *positions* are
/// stable under cluster-id permutation, which raw labels are not —
/// comparing label vectors across steps would misfire every time the
/// chooser renumbers clusters.
fn mode_boundaries(labels: &[usize]) -> Vec<usize> {
    (1..labels.len())
        .filter(|&i| labels[i] != labels[i - 1])
        .collect()
}

struct Inner {
    pipe: RecoverablePipeline,
    trust: Option<TrustModel<u16>>,
    /// The previous step's mode boundaries; the diff against the
    /// current step's is exactly the set of transitions to announce.
    boundaries: Vec<usize>,
    /// Boundaries that predate this ingestor's announce history: the
    /// journaled prefix at attach. A subscriber resuming from below
    /// this gets an in-band `Lagged` marker, never a re-announcement.
    announced_base: u64,
    /// Every transition announced since attach, in announce order —
    /// the replay source for resuming subscribers. Boundary index `i`
    /// (for `i >= announced_base`) is `announced[i - announced_base]`.
    announced: Vec<StreamEvent>,
}

impl Inner {
    /// Lifetime boundary count: journaled history plus everything
    /// announced since attach.
    fn boundary_count(&self) -> u64 {
        self.announced_base + self.announced.len() as u64
    }
}

/// Durable, sequenced, trust-aware streaming ingest over one pipeline
/// journal. Implements [`StreamHandler`], so an `Arc<StreamIngestor>`
/// plugs straight into [`fenrir_serve::Server::start_with_stream`].
pub struct StreamIngestor {
    inner: Mutex<Inner>,
    adaptive: AdaptiveThreshold,
    base: Weights,
    policy: UnknownPolicy,
    trust_cfg: Option<TrustConfig>,
    metrics: StreamMetrics,
}

impl std::fmt::Debug for StreamIngestor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamIngestor")
            .field("observations", &self.observations())
            .field("networks", &self.base.len())
            .field("trust", &self.trust_cfg.is_some())
            .finish()
    }
}

impl StreamIngestor {
    /// A fresh in-memory ingestor (tests, benches).
    pub fn in_memory(sites: SiteTable, networks: usize, cfg: StreamConfig) -> Result<Self> {
        let pipe = RecoverablePipeline::in_memory(sites, networks, cfg.pipeline.clone())?;
        Self::attach(pipe, cfg)
    }

    /// Open (or create) a file-backed ingestor. Recovery restores the
    /// analysis state from the journal's clean frame prefix and replays
    /// the series through a fresh trust model, so a restarted ingestor
    /// resumes exactly where the durable prefix ends.
    pub fn open(path: &Path, sites: SiteTable, networks: usize, cfg: StreamConfig) -> Result<Self> {
        let pipe = RecoverablePipeline::open(path, sites, networks, cfg.pipeline.clone())?;
        Self::attach(pipe, cfg)
    }

    /// Open (or create) a tiered ingestor: hot tail at `hot_path`,
    /// sealed epochs under `prefix` in the object tier.
    pub fn open_tiered(
        hot_path: &Path,
        store: Arc<dyn Storage>,
        prefix: &str,
        retry: RetryPolicy,
        sites: SiteTable,
        networks: usize,
        cfg: StreamConfig,
    ) -> Result<Self> {
        let pipe = RecoverablePipeline::open_tiered(
            hot_path,
            store,
            prefix,
            retry,
            sites,
            networks,
            cfg.pipeline.clone(),
        )?;
        Self::attach(pipe, cfg)
    }

    fn attach(pipe: RecoverablePipeline, cfg: StreamConfig) -> Result<Self> {
        let base = pipe.config().weights.clone();
        let policy = pipe.config().policy;
        let trust = Self::replay_trust(&pipe, cfg.trust, &base)?;
        // Recompute the boundary set from the journaled prefix so a
        // restarted ingestor announces only boundaries discovered
        // *after* the restart, never the history again.
        let boundaries = match pipe.dendrogram() {
            Some(d) if pipe.series().len() >= 2 => mode_boundaries(&cfg.adaptive.choose(d)?.labels),
            _ => Vec::new(),
        };
        Ok(StreamIngestor {
            inner: Mutex::new(Inner {
                pipe,
                trust,
                announced_base: boundaries.len() as u64,
                announced: Vec::new(),
                boundaries,
            }),
            adaptive: cfg.adaptive,
            base,
            policy,
            trust_cfg: cfg.trust,
            metrics: StreamMetrics::new(),
        })
    }

    /// Build a trust model whose window state is the fold of the
    /// journaled series — recovery and crash-repair share this.
    fn replay_trust(
        pipe: &RecoverablePipeline,
        cfg: Option<TrustConfig>,
        base: &Weights,
    ) -> Result<Option<TrustModel<u16>>> {
        let Some(tc) = cfg else { return Ok(None) };
        let mut tm = TrustModel::new(tc, base, None)?;
        for i in 0..pipe.series().len() {
            tm.observe(pipe.series().get(i).codes(), vp_known)?;
        }
        Ok(Some(tm))
    }

    /// Observations journaled so far — also the next expected sequence
    /// number.
    pub fn observations(&self) -> u64 {
        self.inner.lock().pipe.series().len() as u64
    }

    /// The sequence number the next `Submit` must carry.
    pub fn expected_seq(&self) -> u64 {
        self.observations()
    }

    /// Vantage points currently quarantined by the trust fold (0
    /// without trust).
    pub fn quarantined(&self) -> usize {
        self.inner
            .lock()
            .trust
            .as_ref()
            .map_or(0, |t| t.quarantined_count())
    }

    /// This ingestor's always-on instrument set (see
    /// [`StreamMetrics`]); [`Self::bind_metrics`] exports it.
    pub fn metrics(&self) -> &StreamMetrics {
        &self.metrics
    }

    /// Export the ingestor's instruments into a registry — typically
    /// the serving fleet's, right after
    /// [`fenrir_serve::Server::start_with_stream`].
    pub fn bind_metrics(&self, registry: &fenrir_obs::Registry) {
        self.metrics.bind(registry);
    }

    /// The adaptive threshold rule in effect.
    pub fn adaptive(&self) -> &AdaptiveThreshold {
        &self.adaptive
    }

    /// Snapshot the live analysis state as comparable bits.
    pub fn state_bits(&self) -> Result<StateBits> {
        state_bits(&self.inner.lock().pipe, &self.adaptive)
    }

    /// Seal the journal's delta tail into a snapshot (or the object
    /// tier for a tiered journal).
    pub fn compact(&self) -> Result<()> {
        self.inner.lock().pipe.compact()
    }

    /// Lifetime boundary count (see [`StreamHandler::boundary_count`]).
    pub fn boundary_count(&self) -> u64 {
        self.inner.lock().boundary_count()
    }

    /// Stamp a fencing epoch on the tiered backend: every later seal
    /// and manifest commit carries it, so a deposed leader's writes are
    /// refused by the tier. Errors on a non-tiered journal — fencing
    /// without a shared tier would protect nothing.
    pub fn set_fence_epoch(&self, epoch: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        match inner.pipe.tier_mut() {
            Some(tier) => tier.set_fence_epoch(epoch),
            None => Err(Error::InvalidParameter {
                name: "fence epoch",
                message: "fencing requires a tiered journal".into(),
            }),
        }
    }

    /// Re-apply one write-ahead-logged observation through the normal
    /// fold path. Used by a new leader replaying its predecessor's
    /// acked suffix: the fold is identical to a live submit — journal,
    /// trust, boundary diff — and discovered transitions enter the
    /// announce history (resuming subscribers replay them), but nothing
    /// is broadcast, because nothing is being submitted *now*.
    pub fn replay_observation(
        &self,
        time: i64,
        codes: &[u16],
        health: CampaignHealth,
    ) -> Result<()> {
        let mut inner = self.inner.lock();
        if codes.len() != self.base.len() {
            return Err(Error::InvalidParameter {
                name: "replayed codes",
                message: format!(
                    "observation carries {} codes, stream expects {}",
                    codes.len(),
                    self.base.len()
                ),
            });
        }
        self.fold(&mut inner, time, codes, health).map(|_| ())
    }

    fn fold(
        &self,
        inner: &mut Inner,
        time: i64,
        codes: &[u16],
        mut health: CampaignHealth,
    ) -> Result<(SubmitOutcome, Vec<StreamEvent>)> {
        let mut trusted = true;
        let mut step_weights = None;
        if let Some(tm) = &mut inner.trust {
            tm.observe(codes, vp_known)?;
            let excluded = tm.step_excluded_count();
            health.distrusted = excluded;
            if excluded > 0 {
                trusted = false;
                step_weights = Some(tm.step_weights(&self.base));
            }
        }
        let v = RoutingVector::from_codes(Timestamp::from_secs(time), codes.to_vec());
        if let Err(e) = inner.pipe.observe(v, health) {
            // The trust window already advanced for a row that never
            // became durable; re-fold it from the journal so the model
            // stays a pure function of the journaled series.
            inner.trust = Self::replay_trust(&inner.pipe, self.trust_cfg, &self.base)?;
            return Err(e);
        }
        let n = inner.pipe.series().len();
        let mut events = Vec::new();
        let mut transitions = 0u32;
        if n >= 2 {
            let dendro = inner
                .pipe
                .dendrogram()
                .ok_or(Error::EmptyInput("dendrogram"))?;
            let choice = self.adaptive.choose(dendro)?;
            let bounds = mode_boundaries(&choice.labels);
            let w = match step_weights {
                // An all-excluded step degenerates to the base
                // weights: zero total weight cannot price a step.
                Some(vals) => Weights::from_values(vals).unwrap_or_else(|_| self.base.clone()),
                None => self.base.clone(),
            };
            for &b in &bounds {
                // Only *newly discovered* boundaries are transitions;
                // the rest were announced on an earlier step. A nascent
                // mode clears the chooser's minimum-cluster-size guard
                // one frame after it opens, so `b` trails `seq` by up
                // to that discovery lag.
                if inner.boundaries.contains(&b) {
                    continue;
                }
                let opened = inner.pipe.series().get(b);
                events.push(StreamEvent::ModeTransition {
                    seq: b as u64,
                    time: opened.time().as_secs(),
                    from_mode: choice.labels[b - 1] as u64,
                    to_mode: choice.labels[b] as u64,
                    modes: choice.clusters as u64,
                    threshold: choice.threshold,
                    step_phi: similarity::phi(
                        inner.pipe.series().get(b - 1),
                        opened,
                        &w,
                        self.policy,
                    ),
                    trusted,
                });
                transitions += 1;
                self.metrics.transitions.inc();
            }
            inner.boundaries = bounds;
            // Announce history feeds resuming subscribers; it must see
            // every transition exactly once, in announce order.
            inner.announced.extend(events.iter().cloned());
        }
        Ok((
            SubmitOutcome::Accepted {
                observations: n as u64,
                transitions,
            },
            events,
        ))
    }
}

impl StreamIngestor {
    /// The sequencing and fold core behind [`StreamHandler::submit`],
    /// with typed errors: a replicated leader needs to *see*
    /// [`Error::Fenced`] to step down, which a stringified protocol
    /// reply would hide. Duplicate and gap outcomes are data, not
    /// errors; a codes-length mismatch is [`Error::InvalidParameter`].
    pub fn submit_typed(
        &self,
        seq: u64,
        time: i64,
        codes: &[u16],
        health: CampaignHealth,
    ) -> Result<(SubmitOutcome, Vec<StreamEvent>)> {
        self.metrics.submits.inc();
        let start = Instant::now();
        let mut inner = self.inner.lock();
        let expected = inner.pipe.series().len() as u64;
        if seq < expected {
            self.metrics.duplicates.inc();
            self.metrics.acks.inc();
            return Ok((SubmitOutcome::Duplicate, Vec::new()));
        }
        if seq > expected {
            self.metrics.gaps.inc();
            self.metrics.acks.inc();
            return Ok((SubmitOutcome::Gap { expected }, Vec::new()));
        }
        if codes.len() != self.base.len() {
            return Err(Error::InvalidParameter {
                name: "submit codes",
                message: format!(
                    "observation carries {} codes, stream expects {}",
                    codes.len(),
                    self.base.len()
                ),
            });
        }
        let (outcome, events) = self.fold(&mut inner, time, codes, health)?;
        self.metrics.acks.inc();
        self.metrics
            .fold_latency
            .observe(start.elapsed().as_micros() as u64);
        Ok((outcome, events))
    }
}

impl StreamHandler for StreamIngestor {
    fn submit(
        &self,
        seq: u64,
        time: i64,
        codes: &[u16],
        health: CampaignHealth,
    ) -> (Reply, Vec<StreamEvent>) {
        match self.submit_typed(seq, time, codes, health) {
            Ok((outcome, events)) => (Reply::SubmitAck { seq, outcome }, events),
            Err(e @ Error::InvalidParameter { .. }) => (
                Reply::Error {
                    code: ERR_BAD_REQUEST,
                    message: e.to_string(),
                },
                Vec::new(),
            ),
            Err(e) => (
                Reply::Error {
                    code: ERR_INTERNAL,
                    message: e.to_string(),
                },
                Vec::new(),
            ),
        }
    }

    fn boundary_count(&self) -> u64 {
        self.inner.lock().boundary_count()
    }

    fn events_since(&self, from: u64) -> Vec<StreamEvent> {
        let inner = self.inner.lock();
        let base = inner.announced_base;
        let mut events = Vec::new();
        let start = if from < base {
            // The gap below the announce history was journaled before
            // this ingestor attached; it is never re-announced, only
            // marked.
            events.push(StreamEvent::Lagged { missed: base - from });
            0
        } else {
            (from - base) as usize
        };
        if start < inner.announced.len() {
            events.extend_from_slice(&inner.announced[start..]);
        }
        events
    }
}
