//! One-call streaming deployment: ingestor + query store + TCP server
//! over a single journal file.
//!
//! [`StreamServer`] wires the write path and the read path to the same
//! durable artifact: the [`StreamIngestor`] owns the journal and
//! appends to it, while the server's [`ModeStore`] follows the same
//! file read-only (opened with
//! [`allow_empty`](StoreOptions::allow_empty), so a freshly created
//! stream serves `NOT_FOUND` instead of refusing to start) and hot-
//! reloads as submissions land. Queries therefore converge on
//! submitted data within one follow tick, and both sides survive a
//! process kill at any frame boundary — the journal is the only state.

use std::net::SocketAddr;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use fenrir_core::error::Result;
use fenrir_core::ids::SiteTable;
use fenrir_serve::{ModeStore, ServeConfig, Server, StoreOptions, StreamHandler};

use crate::ingest::{StreamConfig, StreamIngestor};

/// A running streaming deployment: TCP server, query store, ingestor.
pub struct StreamServer {
    ingestor: Arc<StreamIngestor>,
    server: Server,
}

impl std::fmt::Debug for StreamServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamServer")
            .field("addr", &self.server.addr())
            .field("ingestor", &self.ingestor)
            .finish()
    }
}

impl StreamServer {
    /// Open (or create) the journal at `path`, start a protocol-v4
    /// server over it, and export the ingestor's metric families into
    /// the server's registry. `serve_cfg.follow` defaults to 25 ms when
    /// unset so the query side actually tracks submissions.
    pub fn start(
        path: &Path,
        sites: SiteTable,
        networks: usize,
        cfg: StreamConfig,
        mut serve_cfg: ServeConfig,
    ) -> Result<StreamServer> {
        let adaptive = cfg.adaptive;
        let ingestor = Arc::new(StreamIngestor::open(path, sites, networks, cfg)?);
        let store = Arc::new(ModeStore::open(
            path,
            StoreOptions {
                adaptive,
                allow_empty: true,
                ..StoreOptions::default()
            },
        )?);
        if serve_cfg.follow.is_none() {
            serve_cfg.follow = Some(Duration::from_millis(25));
        }
        let handler: Arc<dyn StreamHandler> = Arc::clone(&ingestor) as Arc<dyn StreamHandler>;
        let server = Server::start_with_stream(store, handler, serve_cfg)?;
        ingestor.bind_metrics(&server.registry());
        Ok(StreamServer { ingestor, server })
    }

    /// Where the server is listening.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// The write path.
    pub fn ingestor(&self) -> &Arc<StreamIngestor> {
        &self.ingestor
    }

    /// The underlying query server.
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Stop accepting, drain, close every subscription with a final
    /// `Closed` event, and join every thread.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}
