//! Ingestor-side stream metric families.
//!
//! The instruments live on the [`StreamMetrics`] struct itself — plain
//! lock-free counters and one histogram, recorded into whether or not
//! any registry exists — and [`StreamMetrics::bind`] exports them into
//! a [`Registry`] as closure-backed series (histogram adopted whole),
//! the same pattern the serve fleet uses for store and breaker tallies.
//! Families:
//!
//! | family | meaning |
//! |---|---|
//! | `fenrir_stream_submits_total` | `Submit` frames handled |
//! | `fenrir_stream_acks_total` | `SubmitAck` replies produced |
//! | `fenrir_stream_duplicates_total` | acks with a `Duplicate` outcome |
//! | `fenrir_stream_gaps_total` | acks with a `Gap` outcome |
//! | `fenrir_stream_transitions_total` | mode transitions emitted |
//! | `fenrir_stream_fold_latency_us` | accepted-fold latency histogram |
//!
//! The subscriber-side families (`fenrir_stream_subscribers`,
//! `fenrir_stream_events_pushed_total`,
//! `fenrir_stream_lagged_drops_total`) are registered by every
//! `fenrir-serve` server, stream-enabled or not.

use fenrir_obs::{Counter, Histogram, Registry, DEFAULT_LATENCY_BOUNDS_US};

/// Always-on instruments for one ingestor.
#[derive(Debug, Clone)]
pub struct StreamMetrics {
    /// `Submit` frames handled (any outcome).
    pub submits: Counter,
    /// `SubmitAck` replies produced.
    pub acks: Counter,
    /// Duplicate outcomes (at-least-once retries absorbed).
    pub duplicates: Counter,
    /// Gap outcomes (out-of-order submissions refused).
    pub gaps: Counter,
    /// Mode transitions emitted.
    pub transitions: Counter,
    /// Latency of accepted folds (journal append + incremental
    /// re-derivation), microseconds.
    pub fold_latency: Histogram,
}

impl Default for StreamMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamMetrics {
    /// Fresh zeroed instruments.
    pub fn new() -> Self {
        StreamMetrics {
            submits: Counter::new(),
            acks: Counter::new(),
            duplicates: Counter::new(),
            gaps: Counter::new(),
            transitions: Counter::new(),
            fold_latency: Histogram::new(DEFAULT_LATENCY_BOUNDS_US),
        }
    }

    /// Export every family into `registry`. Safe to call more than
    /// once; later binds replace earlier ones.
    pub fn bind(&self, registry: &Registry) {
        let c = self.submits.clone();
        registry.counter_fn("fenrir_stream_submits_total", &[], move || c.get() as f64);
        let c = self.acks.clone();
        registry.counter_fn("fenrir_stream_acks_total", &[], move || c.get() as f64);
        let c = self.duplicates.clone();
        registry.counter_fn("fenrir_stream_duplicates_total", &[], move || {
            c.get() as f64
        });
        let c = self.gaps.clone();
        registry.counter_fn("fenrir_stream_gaps_total", &[], move || c.get() as f64);
        let c = self.transitions.clone();
        registry.counter_fn("fenrir_stream_transitions_total", &[], move || {
            c.get() as f64
        });
        registry.adopt_histogram(
            "fenrir_stream_fold_latency_us",
            &[],
            self.fold_latency.clone(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_exports_all_six_families() {
        let m = StreamMetrics::new();
        m.submits.inc();
        m.fold_latency.observe(42);
        let r = Registry::new();
        m.bind(&r);
        let text = r.render();
        for family in [
            "fenrir_stream_submits_total",
            "fenrir_stream_acks_total",
            "fenrir_stream_duplicates_total",
            "fenrir_stream_gaps_total",
            "fenrir_stream_transitions_total",
            "fenrir_stream_fold_latency_us",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family}")),
                "missing {family}"
            );
        }
        assert!(text.contains("fenrir_stream_submits_total 1\n"));
        assert!(text.contains("fenrir_stream_fold_latency_us_count 1\n"));
    }
}
