//! Ingestor-side stream metric families.
//!
//! The instruments live on the [`StreamMetrics`] struct itself — plain
//! lock-free counters and one histogram, recorded into whether or not
//! any registry exists — and [`StreamMetrics::bind`] exports them into
//! a [`Registry`] as closure-backed series (histogram adopted whole),
//! the same pattern the serve fleet uses for store and breaker tallies.
//! Families:
//!
//! | family | meaning |
//! |---|---|
//! | `fenrir_stream_submits_total` | `Submit` frames handled |
//! | `fenrir_stream_acks_total` | `SubmitAck` replies produced |
//! | `fenrir_stream_duplicates_total` | acks with a `Duplicate` outcome |
//! | `fenrir_stream_gaps_total` | acks with a `Gap` outcome |
//! | `fenrir_stream_transitions_total` | mode transitions emitted |
//! | `fenrir_stream_fold_latency_us` | accepted-fold latency histogram |
//!
//! The subscriber-side families (`fenrir_stream_subscribers`,
//! `fenrir_stream_events_pushed_total`,
//! `fenrir_stream_lagged_drops_total`) are registered by every
//! `fenrir-serve` server, stream-enabled or not.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fenrir_obs::{Counter, Histogram, Registry, DEFAULT_LATENCY_BOUNDS_US};

/// Always-on instruments for one ingestor.
#[derive(Debug, Clone)]
pub struct StreamMetrics {
    /// `Submit` frames handled (any outcome).
    pub submits: Counter,
    /// `SubmitAck` replies produced.
    pub acks: Counter,
    /// Duplicate outcomes (at-least-once retries absorbed).
    pub duplicates: Counter,
    /// Gap outcomes (out-of-order submissions refused).
    pub gaps: Counter,
    /// Mode transitions emitted.
    pub transitions: Counter,
    /// Latency of accepted folds (journal append + incremental
    /// re-derivation), microseconds.
    pub fold_latency: Histogram,
}

impl Default for StreamMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamMetrics {
    /// Fresh zeroed instruments.
    pub fn new() -> Self {
        StreamMetrics {
            submits: Counter::new(),
            acks: Counter::new(),
            duplicates: Counter::new(),
            gaps: Counter::new(),
            transitions: Counter::new(),
            fold_latency: Histogram::new(DEFAULT_LATENCY_BOUNDS_US),
        }
    }

    /// Export every family into `registry`. Safe to call more than
    /// once; later binds replace earlier ones.
    pub fn bind(&self, registry: &Registry) {
        let c = self.submits.clone();
        registry.counter_fn("fenrir_stream_submits_total", &[], move || c.get() as f64);
        let c = self.acks.clone();
        registry.counter_fn("fenrir_stream_acks_total", &[], move || c.get() as f64);
        let c = self.duplicates.clone();
        registry.counter_fn("fenrir_stream_duplicates_total", &[], move || {
            c.get() as f64
        });
        let c = self.gaps.clone();
        registry.counter_fn("fenrir_stream_gaps_total", &[], move || c.get() as f64);
        let c = self.transitions.clone();
        registry.counter_fn("fenrir_stream_transitions_total", &[], move || {
            c.get() as f64
        });
        registry.adopt_histogram(
            "fenrir_stream_fold_latency_us",
            &[],
            self.fold_latency.clone(),
        );
    }
}

/// Leadership and failover instruments for one replicated node.
///
/// | family | meaning |
/// |---|---|
/// | `fenrir_stream_leader` | 1 while this node holds the lease |
/// | `fenrir_stream_fence_epoch` | the fencing epoch last held (sticky across step-down) |
/// | `fenrir_stream_takeovers_total` | standby→leader promotions |
/// | `fenrir_stream_step_downs_total` | leader→standby demotions (deposed or lease lost) |
/// | `fenrir_stream_fenced_rejects_total` | own writes refused by a higher fence |
/// | `fenrir_stream_not_leader_total` | `NotLeader` redirects sent to clients |
#[derive(Debug, Clone, Default)]
pub struct FailoverMetrics {
    /// 1 while leading, 0 as a standby.
    pub is_leader: Arc<AtomicU64>,
    /// The fencing epoch last held; stays at its final value after a
    /// step-down so dashboards can see which election this node lost.
    pub fence_epoch: Arc<AtomicU64>,
    /// Standby→leader promotions.
    pub takeovers: Counter,
    /// Leader→standby demotions.
    pub step_downs: Counter,
    /// Own writes refused by a higher fence.
    pub fenced_rejects: Counter,
    /// `NotLeader` redirects sent.
    pub not_leader: Counter,
}

impl FailoverMetrics {
    /// Fresh zeroed instruments.
    pub fn new() -> Self {
        Self::default()
    }

    /// Export every family into `registry`.
    pub fn bind(&self, registry: &Registry) {
        let g = Arc::clone(&self.is_leader);
        registry.gauge_fn("fenrir_stream_leader", &[], move || {
            g.load(Ordering::Relaxed) as f64
        });
        let g = Arc::clone(&self.fence_epoch);
        registry.gauge_fn("fenrir_stream_fence_epoch", &[], move || {
            g.load(Ordering::Relaxed) as f64
        });
        let c = self.takeovers.clone();
        registry.counter_fn("fenrir_stream_takeovers_total", &[], move || {
            c.get() as f64
        });
        let c = self.step_downs.clone();
        registry.counter_fn("fenrir_stream_step_downs_total", &[], move || {
            c.get() as f64
        });
        let c = self.fenced_rejects.clone();
        registry.counter_fn("fenrir_stream_fenced_rejects_total", &[], move || {
            c.get() as f64
        });
        let c = self.not_leader.clone();
        registry.counter_fn("fenrir_stream_not_leader_total", &[], move || {
            c.get() as f64
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_exports_all_six_families() {
        let m = StreamMetrics::new();
        m.submits.inc();
        m.fold_latency.observe(42);
        let r = Registry::new();
        m.bind(&r);
        let text = r.render();
        for family in [
            "fenrir_stream_submits_total",
            "fenrir_stream_acks_total",
            "fenrir_stream_duplicates_total",
            "fenrir_stream_gaps_total",
            "fenrir_stream_transitions_total",
            "fenrir_stream_fold_latency_us",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family}")),
                "missing {family}"
            );
        }
        assert!(text.contains("fenrir_stream_submits_total 1\n"));
        assert!(text.contains("fenrir_stream_fold_latency_us_count 1\n"));
    }

    #[test]
    fn failover_bind_exports_all_six_families() {
        let m = FailoverMetrics::new();
        m.is_leader.store(1, Ordering::Relaxed);
        m.fence_epoch.store(7, Ordering::Relaxed);
        m.takeovers.inc();
        let r = Registry::new();
        m.bind(&r);
        let text = r.render();
        for family in [
            "fenrir_stream_leader",
            "fenrir_stream_fence_epoch",
            "fenrir_stream_takeovers_total",
            "fenrir_stream_step_downs_total",
            "fenrir_stream_fenced_rejects_total",
            "fenrir_stream_not_leader_total",
        ] {
            assert!(
                text.contains(&format!("# TYPE {family}")),
                "missing {family}"
            );
        }
        assert!(text.contains("fenrir_stream_leader 1\n"));
        assert!(text.contains("fenrir_stream_fence_epoch 7\n"));
        assert!(text.contains("fenrir_stream_takeovers_total 1\n"));
    }
}
