//! Client-side helpers for the streaming protocol: a sequenced
//! submitter and a push subscriber, both thin wrappers over the
//! blocking [`fenrir_serve::Client`].
//!
//! Both helpers tolerate interleaving: once a connection subscribes,
//! `Event` frames can land between any reply and the next, so every
//! receive loop here skips what it is not waiting for instead of
//! treating it as a protocol violation. In particular an unsubscribe's
//! final `Closed` event may arrive *before* the `Subscribed` reply —
//! the server tears the subscription down first so the goodbye is
//! always on the wire.

use std::net::SocketAddr;
use std::time::Duration;

use fenrir_core::error::{Error, Result};
use fenrir_core::health::CampaignHealth;
use fenrir_measure::submit::SubmitRow;
use fenrir_serve::protocol::Request;
use fenrir_serve::{Client, Reply, StreamEvent, SubmitOutcome};

/// A sequenced submitter over one connection.
#[derive(Debug)]
pub struct SubmitClient {
    client: Client,
}

impl SubmitClient {
    /// Connect to a streaming server.
    pub fn connect(addr: SocketAddr) -> Result<SubmitClient> {
        Ok(SubmitClient {
            client: Client::connect(addr)?,
        })
    }

    /// Bound each ack wait (None blocks indefinitely).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.client.set_read_timeout(timeout)
    }

    /// Submit one observation and wait for its ack. Pushed events that
    /// land in between (a connection can submit *and* subscribe) are
    /// skipped, not errors.
    pub fn submit(
        &mut self,
        seq: u64,
        time: i64,
        codes: Vec<u16>,
        health: CampaignHealth,
    ) -> Result<SubmitOutcome> {
        self.client.send(&Request::Submit {
            seq,
            time,
            codes,
            health,
        })?;
        self.client.flush()?;
        loop {
            match self.client.recv()? {
                Reply::SubmitAck {
                    seq: acked,
                    outcome,
                } if acked == seq => return Ok(outcome),
                Reply::SubmitAck { .. } | Reply::Event(_) => continue,
                Reply::Error { code, message } => {
                    return Err(Error::Internal {
                        what: "stream submit",
                        message: format!("server error {code}: {message}"),
                    })
                }
                other => {
                    return Err(Error::Internal {
                        what: "stream submit",
                        message: format!("expected a SubmitAck, got {other:?}"),
                    })
                }
            }
        }
    }

    /// Submit one prepared row.
    pub fn submit_row(&mut self, row: &SubmitRow) -> Result<SubmitOutcome> {
        self.submit(row.seq, row.time, row.codes.clone(), row.health.clone())
    }

    /// Drive a whole campaign: submit every row in order, absorbing
    /// `Duplicate` acks (at-least-once retries of rows the stream
    /// already holds) and erroring on `Gap` — the rows are ordered, so
    /// a gap means the stream and the campaign disagree. Returns the
    /// total transitions the server reported.
    pub fn submit_all(&mut self, rows: &[SubmitRow]) -> Result<u64> {
        let mut transitions = 0u64;
        for row in rows {
            match self.submit_row(row)? {
                SubmitOutcome::Accepted { transitions: t, .. } => transitions += u64::from(t),
                SubmitOutcome::Duplicate => {}
                SubmitOutcome::Gap { expected } => {
                    return Err(Error::Internal {
                        what: "stream submit",
                        message: format!("seq {} refused: server expects {expected}", row.seq),
                    })
                }
            }
        }
        Ok(transitions)
    }

    /// Access the underlying protocol client (queries on the same
    /// connection, raw frames in tests).
    pub fn inner(&mut self) -> &mut Client {
        &mut self.client
    }
}

/// A push subscriber over one connection.
#[derive(Debug)]
pub struct Subscriber {
    client: Client,
}

impl Subscriber {
    /// Connect and subscribe. Errors if the server refuses (draining
    /// servers do).
    pub fn connect(addr: SocketAddr) -> Result<Subscriber> {
        let mut client = Client::connect(addr)?;
        match client.request(&Request::Subscribe { enable: true })? {
            Reply::Subscribed { active: true, .. } => Ok(Subscriber { client }),
            Reply::Error { code, message } => Err(Error::Internal {
                what: "stream subscribe",
                message: format!("server error {code}: {message}"),
            }),
            other => Err(Error::Internal {
                what: "stream subscribe",
                message: format!("expected an active Subscribed reply, got {other:?}"),
            }),
        }
    }

    /// Bound each event wait (None blocks indefinitely).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.client.set_read_timeout(timeout)
    }

    /// Wait for the next pushed event. Replies to any queries the
    /// caller pipelined on this connection are skipped.
    pub fn next_event(&mut self) -> Result<StreamEvent> {
        loop {
            if let Reply::Event(ev) = self.client.recv()? {
                return Ok(ev);
            }
        }
    }

    /// Collect events until `Closed` arrives (drain/shutdown) or the
    /// read deadline trips; the `Closed` itself is not included.
    pub fn drain(&mut self) -> Result<Vec<StreamEvent>> {
        let mut events = Vec::new();
        loop {
            match self.next_event()? {
                StreamEvent::Closed => return Ok(events),
                ev => events.push(ev),
            }
        }
    }

    /// Deregister. The server sends the subscription's final `Closed`
    /// event and then confirms with an inactive `Subscribed` reply (in
    /// that order); both are consumed here.
    pub fn unsubscribe(mut self) -> Result<Vec<StreamEvent>> {
        self.client.send(&Request::Subscribe { enable: false })?;
        self.client.flush()?;
        let mut missed = Vec::new();
        loop {
            match self.client.recv()? {
                Reply::Event(StreamEvent::Closed) => continue,
                Reply::Event(ev) => missed.push(ev),
                Reply::Subscribed { active: false, .. } => return Ok(missed),
                other => {
                    return Err(Error::Internal {
                        what: "stream unsubscribe",
                        message: format!("unexpected reply {other:?}"),
                    })
                }
            }
        }
    }

    /// Access the underlying protocol client.
    pub fn inner(&mut self) -> &mut Client {
        &mut self.client
    }
}
