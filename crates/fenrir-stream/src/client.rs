//! Client-side helpers for the streaming protocol: a sequenced
//! submitter and a push subscriber, both thin wrappers over the
//! blocking [`fenrir_serve::Client`].
//!
//! Both helpers tolerate interleaving: once a connection subscribes,
//! `Event` frames can land between any reply and the next, so every
//! receive loop here skips what it is not waiting for instead of
//! treating it as a protocol violation. In particular an unsubscribe's
//! final `Closed` event may arrive *before* the `Subscribed` reply —
//! the server tears the subscription down first so the goodbye is
//! always on the wire.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::time::Duration;

use fenrir_core::error::{Error, Result};
use fenrir_core::health::CampaignHealth;
use fenrir_measure::submit::SubmitRow;
use fenrir_serve::protocol::Request;
use fenrir_serve::{Client, Reply, StreamEvent, SubmitOutcome};

/// How many recently delivered transitions a [`Subscriber`] remembers
/// for duplicate suppression. Resume replay is at-least-once: an event
/// announced while the subscription was registering can arrive both
/// replayed and live, and the window absorbs the overlap.
const DEDUP_WINDOW: usize = 64;

/// What a submit produced: the ack, or a redirect to the leader.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitResponse {
    /// The durability decision.
    Ack(SubmitOutcome),
    /// This node is not the leader.
    NotLeader {
        /// Its best guess at who the leader is (`host:port`).
        hint: Option<String>,
    },
}

/// A sequenced submitter over one connection.
#[derive(Debug)]
pub struct SubmitClient {
    client: Client,
}

impl SubmitClient {
    /// Connect to a streaming server.
    pub fn connect(addr: SocketAddr) -> Result<SubmitClient> {
        Ok(SubmitClient {
            client: Client::connect(addr)?,
        })
    }

    /// Bound each ack wait (None blocks indefinitely).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.client.set_read_timeout(timeout)
    }

    /// Submit one observation and wait for its ack. Pushed events that
    /// land in between (a connection can submit *and* subscribe) are
    /// skipped, not errors.
    pub fn submit(
        &mut self,
        seq: u64,
        time: i64,
        codes: Vec<u16>,
        health: CampaignHealth,
    ) -> Result<SubmitOutcome> {
        match self.try_submit(seq, time, codes, health)? {
            SubmitResponse::Ack(outcome) => Ok(outcome),
            SubmitResponse::NotLeader { hint } => Err(Error::Internal {
                what: "stream submit",
                message: match hint {
                    Some(h) => format!("not the leader: try {h}"),
                    None => "not the leader: no hint available".into(),
                },
            }),
        }
    }

    /// Like [`SubmitClient::submit`], but surfaces a `NotLeader`
    /// redirect as data instead of an error, so a failover-aware caller
    /// can follow the hint.
    pub fn try_submit(
        &mut self,
        seq: u64,
        time: i64,
        codes: Vec<u16>,
        health: CampaignHealth,
    ) -> Result<SubmitResponse> {
        self.client.send(&Request::Submit {
            seq,
            time,
            codes,
            health,
        })?;
        self.client.flush()?;
        loop {
            match self.client.recv()? {
                Reply::SubmitAck {
                    seq: acked,
                    outcome,
                } if acked == seq => return Ok(SubmitResponse::Ack(outcome)),
                Reply::NotLeader { hint } => return Ok(SubmitResponse::NotLeader { hint }),
                Reply::SubmitAck { .. } | Reply::Event(_) => continue,
                Reply::Error { code, message } => {
                    return Err(Error::Internal {
                        what: "stream submit",
                        message: format!("server error {code}: {message}"),
                    })
                }
                other => {
                    return Err(Error::Internal {
                        what: "stream submit",
                        message: format!("expected a SubmitAck, got {other:?}"),
                    })
                }
            }
        }
    }

    /// Submit one prepared row.
    pub fn submit_row(&mut self, row: &SubmitRow) -> Result<SubmitOutcome> {
        self.submit(row.seq, row.time, row.codes.clone(), row.health.clone())
    }

    /// Drive a whole campaign: submit every row in order, absorbing
    /// `Duplicate` acks (at-least-once retries of rows the stream
    /// already holds) and erroring on `Gap` — the rows are ordered, so
    /// a gap means the stream and the campaign disagree. Returns the
    /// total transitions the server reported.
    pub fn submit_all(&mut self, rows: &[SubmitRow]) -> Result<u64> {
        let mut transitions = 0u64;
        for row in rows {
            match self.submit_row(row)? {
                SubmitOutcome::Accepted { transitions: t, .. } => transitions += u64::from(t),
                SubmitOutcome::Duplicate => {}
                SubmitOutcome::Gap { expected } => {
                    return Err(Error::Internal {
                        what: "stream submit",
                        message: format!("seq {} refused: server expects {expected}", row.seq),
                    })
                }
            }
        }
        Ok(transitions)
    }

    /// Access the underlying protocol client (queries on the same
    /// connection, raw frames in tests).
    pub fn inner(&mut self) -> &mut Client {
        &mut self.client
    }
}

/// A push subscriber over one connection.
///
/// The subscriber tracks a **boundary cursor**: the number of mode
/// boundaries it has fully accounted for, seeded from the server's
/// `Subscribed.boundary_count` (or the caller's resume point) and
/// advanced by every delivered transition and every in-band `Lagged`
/// marker. Passing the cursor back via
/// [`Subscriber::connect_resuming`] after a disconnect replays exactly
/// the missed transitions — never a skip, and duplicates from the
/// at-least-once replay overlap are suppressed by a recent-event
/// window.
#[derive(Debug)]
pub struct Subscriber {
    client: Client,
    cursor: u64,
    recent: VecDeque<StreamEvent>,
    /// Events that arrived on the wire before the `Subscribed`
    /// confirmation: the resume replay is pushed by the server's
    /// pusher thread, which can beat the confirmation onto the socket.
    pending: VecDeque<StreamEvent>,
}

impl Subscriber {
    /// Connect and subscribe at the live edge. Errors if the server
    /// refuses (draining servers do).
    pub fn connect(addr: SocketAddr) -> Result<Subscriber> {
        Self::connect_inner(addr, None)
    }

    /// Connect and subscribe, replaying every transition announced at
    /// boundary indices `>= resume_from` before going live. A cursor
    /// below the server's retained history yields an in-band
    /// [`StreamEvent::Lagged`] marker first.
    pub fn connect_resuming(addr: SocketAddr, resume_from: u64) -> Result<Subscriber> {
        Self::connect_inner(addr, Some(resume_from))
    }

    fn connect_inner(addr: SocketAddr, resume_from: Option<u64>) -> Result<Subscriber> {
        let mut client = Client::connect(addr)?;
        client.send(&Request::Subscribe {
            enable: true,
            resume_from,
        })?;
        client.flush()?;
        let mut pending = VecDeque::new();
        loop {
            match client.recv()? {
                Reply::Subscribed {
                    active: true,
                    boundary_count,
                    ..
                } => {
                    return Ok(Subscriber {
                        client,
                        // Resuming: replayed events advance the cursor
                        // from the resume point. Fresh: nothing before
                        // the live edge will be delivered, so start
                        // there.
                        cursor: resume_from.unwrap_or(boundary_count),
                        recent: VecDeque::new(),
                        pending,
                    });
                }
                // The resume replay races the confirmation onto the
                // wire; keep anything that won for the first
                // `next_event` calls.
                Reply::Event(ev) => pending.push_back(ev),
                Reply::Error { code, message } => {
                    return Err(Error::Internal {
                        what: "stream subscribe",
                        message: format!("server error {code}: {message}"),
                    })
                }
                other => {
                    return Err(Error::Internal {
                        what: "stream subscribe",
                        message: format!("expected an active Subscribed reply, got {other:?}"),
                    })
                }
            }
        }
    }

    /// Bound each event wait (None blocks indefinitely).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<()> {
        self.client.set_read_timeout(timeout)
    }

    /// The boundary index this subscriber has consumed up to — pass to
    /// [`Subscriber::connect_resuming`] to pick up where it left off.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Wait for the next pushed event, advancing the boundary cursor.
    /// Replies to any queries the caller pipelined on this connection
    /// are skipped, as are duplicate transition deliveries from the
    /// at-least-once resume overlap.
    pub fn next_event(&mut self) -> Result<StreamEvent> {
        loop {
            let reply = match self.pending.pop_front() {
                Some(ev) => Reply::Event(ev),
                None => self.client.recv()?,
            };
            match reply {
                Reply::Event(ev @ StreamEvent::ModeTransition { .. }) => {
                    if self.recent.contains(&ev) {
                        continue; // replay/live overlap: already seen
                    }
                    if self.recent.len() == DEDUP_WINDOW {
                        self.recent.pop_front();
                    }
                    self.recent.push_back(ev.clone());
                    self.cursor += 1;
                    return Ok(ev);
                }
                Reply::Event(ev @ StreamEvent::Lagged { missed }) => {
                    // The shed boundaries passed us by; account for
                    // them so a resume does not replay the world.
                    self.cursor += missed;
                    return Ok(ev);
                }
                Reply::Event(ev) => return Ok(ev),
                _ => continue,
            }
        }
    }

    /// Collect events until `Closed` arrives (drain/shutdown) or the
    /// read deadline trips; the `Closed` itself is not included.
    pub fn drain(&mut self) -> Result<Vec<StreamEvent>> {
        let mut events = Vec::new();
        loop {
            match self.next_event()? {
                StreamEvent::Closed => return Ok(events),
                ev => events.push(ev),
            }
        }
    }

    /// Deregister. The server sends the subscription's final `Closed`
    /// event and then confirms with an inactive `Subscribed` reply (in
    /// that order); both are consumed here.
    pub fn unsubscribe(mut self) -> Result<Vec<StreamEvent>> {
        self.client.send(&Request::Subscribe {
            enable: false,
            resume_from: None,
        })?;
        self.client.flush()?;
        let mut missed: Vec<StreamEvent> = self
            .pending
            .drain(..)
            .filter(|ev| !matches!(ev, StreamEvent::Closed))
            .collect();
        loop {
            match self.client.recv()? {
                Reply::Event(StreamEvent::Closed) => continue,
                Reply::Event(ev) => missed.push(ev),
                Reply::Subscribed { active: false, .. } => return Ok(missed),
                other => {
                    return Err(Error::Internal {
                        what: "stream unsubscribe",
                        message: format!("unexpected reply {other:?}"),
                    })
                }
            }
        }
    }

    /// Access the underlying protocol client.
    pub fn inner(&mut self) -> &mut Client {
        &mut self.client
    }
}

/// A submitter that follows the leader across a replica set.
///
/// Submits go to whichever node last accepted one. A `NotLeader`
/// redirect is followed immediately — to its hint when one is carried,
/// otherwise round-robin to the next candidate — and a transport error
/// (the leader died mid-request) rotates the same way. Each submit is
/// bounded to a few laps around the candidate list before giving up,
/// so a fully-down fleet fails fast instead of spinning.
#[derive(Debug)]
pub struct FailoverSubmitClient {
    addrs: Vec<SocketAddr>,
    current: usize,
    conn: Option<SubmitClient>,
    read_timeout: Option<Duration>,
}

impl FailoverSubmitClient {
    /// Remember the candidate set; connections are made lazily.
    pub fn new(addrs: Vec<SocketAddr>) -> Result<FailoverSubmitClient> {
        if addrs.is_empty() {
            return Err(Error::InvalidParameter {
                name: "failover submit addrs",
                message: "at least one candidate address is required".into(),
            });
        }
        Ok(FailoverSubmitClient {
            addrs,
            current: 0,
            conn: None,
            read_timeout: Some(Duration::from_secs(5)),
        })
    }

    /// Bound each ack wait (None blocks indefinitely).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.read_timeout = timeout;
        self.conn = None; // reconnect picks the new deadline up
    }

    /// The candidate currently believed to be the leader.
    pub fn current_addr(&self) -> SocketAddr {
        self.addrs[self.current]
    }

    /// Point `current` at `hint` when it names a known candidate (or
    /// parses as an address at all); otherwise rotate.
    fn follow(&mut self, hint: Option<&str>) {
        self.conn = None;
        if let Some(addr) = hint.and_then(|h| h.parse::<SocketAddr>().ok()) {
            if let Some(i) = self.addrs.iter().position(|a| *a == addr) {
                self.current = i;
                return;
            }
            // A hint outside the configured set is still worth trying:
            // the fleet may have grown since this client was built.
            self.addrs.push(addr);
            self.current = self.addrs.len() - 1;
            return;
        }
        self.current = (self.current + 1) % self.addrs.len();
    }

    fn connected(&mut self) -> Result<&mut SubmitClient> {
        if self.conn.is_none() {
            let mut c = SubmitClient::connect(self.addrs[self.current])?;
            c.set_read_timeout(self.read_timeout)?;
            self.conn = Some(c);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Submit one observation, following leadership until a node acks
    /// it. At-least-once across failover: a retried submit the old
    /// leader already journaled earns a `Duplicate` ack from the new
    /// one, which callers treat as success.
    pub fn submit(
        &mut self,
        seq: u64,
        time: i64,
        codes: Vec<u16>,
        health: CampaignHealth,
    ) -> Result<SubmitOutcome> {
        // Three laps: every candidate gets a chance to have finished
        // its takeover, plus slack for one hint chase per lap.
        let attempts = self.addrs.len() * 3 + 2;
        let mut last_err: Option<Error> = None;
        for _ in 0..attempts {
            let conn = match self.connected() {
                Ok(c) => c,
                Err(e) => {
                    last_err = Some(e);
                    self.follow(None);
                    continue;
                }
            };
            match conn.try_submit(seq, time, codes.clone(), health.clone()) {
                Ok(SubmitResponse::Ack(outcome)) => return Ok(outcome),
                Ok(SubmitResponse::NotLeader { hint }) => {
                    self.follow(hint.as_deref());
                }
                Err(e) => {
                    last_err = Some(e);
                    self.follow(None);
                }
            }
        }
        Err(last_err.unwrap_or(Error::Internal {
            what: "failover submit",
            message: format!("no candidate accepted seq {seq} after {attempts} attempts"),
        }))
    }

    /// Submit one prepared row.
    pub fn submit_row(&mut self, row: &SubmitRow) -> Result<SubmitOutcome> {
        self.submit(row.seq, row.time, row.codes.clone(), row.health.clone())
    }
}

/// A subscriber that survives leader failover.
///
/// Wraps [`Subscriber`], carrying its boundary cursor across
/// reconnects: when the connection drops (or the server says goodbye
/// with `Closed`), the next candidate is subscribed with
/// `resume_from = cursor`, so the transitions announced during the
/// outage are replayed rather than skipped, and the dedup window
/// absorbs any replay/live overlap.
#[derive(Debug)]
pub struct FailoverSubscriber {
    addrs: Vec<SocketAddr>,
    current: usize,
    sub: Option<Subscriber>,
    cursor: u64,
    read_timeout: Option<Duration>,
}

impl FailoverSubscriber {
    /// Subscribe to the first reachable candidate at the live edge.
    pub fn connect(addrs: Vec<SocketAddr>) -> Result<FailoverSubscriber> {
        if addrs.is_empty() {
            return Err(Error::InvalidParameter {
                name: "failover subscribe addrs",
                message: "at least one candidate address is required".into(),
            });
        }
        let mut this = FailoverSubscriber {
            addrs,
            current: 0,
            sub: None,
            cursor: 0,
            read_timeout: Some(Duration::from_secs(5)),
        };
        let sub = this.reconnect(None)?;
        this.cursor = sub.cursor();
        Ok(this)
    }

    /// Bound each event wait (None blocks indefinitely).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) {
        self.read_timeout = timeout;
        if let Some(sub) = &mut self.sub {
            let _ = sub.set_read_timeout(timeout);
        }
    }

    /// The boundary index consumed so far.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Subscribe to the next reachable candidate, resuming from
    /// `resume_from` when given (reconnect) or at the live edge (first
    /// connect). Leaves `self.sub` holding the fresh subscription.
    fn reconnect(&mut self, resume_from: Option<u64>) -> Result<&mut Subscriber> {
        self.sub = None;
        let mut last_err: Option<Error> = None;
        for lap in 0..self.addrs.len() * 3 {
            let i = (self.current + lap) % self.addrs.len();
            let attempt = match resume_from {
                Some(from) => Subscriber::connect_resuming(self.addrs[i], from),
                None => Subscriber::connect(self.addrs[i]),
            };
            match attempt {
                Ok(mut sub) => {
                    sub.set_read_timeout(self.read_timeout)?;
                    self.current = i;
                    self.sub = Some(sub);
                    return Ok(self.sub.as_mut().expect("just subscribed"));
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or(Error::Internal {
            what: "failover subscribe",
            message: "no candidate accepted the subscription".into(),
        }))
    }

    /// Wait for the next event, reconnecting (and resuming from the
    /// cursor) when the current server closes the stream or the wire
    /// drops. `Closed` is absorbed as a failover trigger, not returned.
    pub fn next_event(&mut self) -> Result<StreamEvent> {
        let mut failovers = 0;
        loop {
            let cursor = self.cursor;
            let need_reconnect = self.sub.is_none();
            if need_reconnect {
                self.reconnect(Some(cursor))?;
            }
            let sub = self.sub.as_mut().expect("subscribed above");
            match sub.next_event() {
                Ok(StreamEvent::Closed) => {
                    // Drain or shutdown on that node: fail over.
                    self.cursor = sub.cursor();
                    self.sub = None;
                    self.current = (self.current + 1) % self.addrs.len();
                }
                Ok(ev) => {
                    self.cursor = sub.cursor();
                    return Ok(ev);
                }
                Err(e) => {
                    self.cursor = sub.cursor();
                    self.sub = None;
                    self.current = (self.current + 1) % self.addrs.len();
                    failovers += 1;
                    if failovers > self.addrs.len() * 3 {
                        return Err(e);
                    }
                }
            }
        }
    }
}
