//! Kill/restart at every frame boundary: an ingestor reopened from its
//! journal after any accepted submission must carry state bit-identical
//! to an uninterrupted run's, and continue accepting exactly where the
//! durable prefix ends. The ack only leaves after the fsync, so "kill
//! after the ack" and "kill after the frame" are the same boundary.

use std::fs;
use std::path::PathBuf;

use fenrir_core::health::CampaignHealth;
use fenrir_core::ids::SiteTable;
use fenrir_core::time::Timestamp;
use fenrir_core::trust::TrustConfig;
use fenrir_measure::submit::SubmitRow;
use fenrir_serve::{Reply, StreamHandler, SubmitOutcome};
use fenrir_stream::{StateBits, StreamConfig, StreamIngestor};

const NETWORKS: usize = 6;

fn sites() -> SiteTable {
    SiteTable::from_names(["LAX", "MIA", "AMS"])
}

fn temp_journal(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("fenrir-stream-{tag}-{}", std::process::id()));
    let _ = fs::remove_file(&path);
    path
}

fn synthetic_rows() -> Vec<SubmitRow> {
    (0..10)
        .map(|day| {
            let mut codes: Vec<u16> = if day < 5 {
                vec![0, 0, 1, 1, 2, 2]
            } else {
                vec![1, 1, 2, 2, 0, 0]
            };
            codes[5] = (day % 3) as u16;
            let time = Timestamp::from_days(day as i64);
            let mut health = CampaignHealth::new(time, NETWORKS);
            health.responses = NETWORKS;
            SubmitRow {
                seq: day as u64,
                time: time.as_secs(),
                codes,
                health,
            }
        })
        .collect()
}

fn accept(ing: &StreamIngestor, row: &SubmitRow) {
    let (reply, _events) = ing.submit(row.seq, row.time, &row.codes, row.health.clone());
    assert!(
        matches!(
            reply,
            Reply::SubmitAck {
                outcome: SubmitOutcome::Accepted { .. },
                ..
            }
        ),
        "seq {} not accepted: {reply:?}",
        row.seq
    );
}

/// The uninterrupted run's state after each prefix, from a single
/// in-memory ingestor that never restarts.
fn uninterrupted_states(rows: &[SubmitRow], cfg: &StreamConfig) -> Vec<StateBits> {
    let ing = StreamIngestor::in_memory(sites(), NETWORKS, cfg.clone()).expect("ingestor");
    rows.iter()
        .map(|row| {
            accept(&ing, row);
            ing.state_bits().expect("state")
        })
        .collect()
}

fn kill_at_every_frame(tag: &str, cfg: StreamConfig) {
    let rows = synthetic_rows();
    let expected = uninterrupted_states(&rows, &cfg);
    let path = temp_journal(tag);

    for (i, row) in rows.iter().enumerate() {
        // "Kill": the previous ingestor was dropped at the end of the
        // last iteration; the journal file is the only surviving state.
        let ing =
            StreamIngestor::open(&path, sites(), NETWORKS, cfg.clone()).expect("reopen journal");
        assert_eq!(ing.expected_seq(), i as u64, "resume point after kill {i}");
        if i > 0 {
            assert_eq!(
                ing.state_bits().expect("rebuilt state"),
                expected[i - 1],
                "state rebuilt from the journal diverged after kill at frame {i}"
            );
            // A retry of the last pre-kill frame (the at-least-once
            // path: ack lost in the crash) is absorbed as Duplicate.
            let prev = &rows[i - 1];
            let (reply, _) = ing.submit(prev.seq, prev.time, &prev.codes, prev.health.clone());
            assert_eq!(
                reply,
                Reply::SubmitAck {
                    seq: prev.seq,
                    outcome: SubmitOutcome::Duplicate
                }
            );
        }
        accept(&ing, row);
        assert_eq!(
            ing.state_bits().expect("state"),
            expected[i],
            "streamed state diverged after frame {i} submitted post-restart"
        );
    }

    // One final restart after the full feed: everything still there.
    let ing = StreamIngestor::open(&path, sites(), NETWORKS, cfg).expect("final reopen");
    assert_eq!(ing.expected_seq(), rows.len() as u64);
    assert_eq!(
        ing.state_bits().expect("state"),
        expected[rows.len() - 1],
        "full feed survives the final restart"
    );
    let _ = fs::remove_file(&path);
}

#[test]
fn restart_at_every_frame_is_bit_identical_to_uninterrupted() {
    kill_at_every_frame("resume", StreamConfig::new(NETWORKS));
}

#[test]
fn restart_at_every_frame_with_trust_is_bit_identical() {
    kill_at_every_frame(
        "resume-trust",
        StreamConfig::new(NETWORKS).with_trust(TrustConfig::default()),
    );
}

#[test]
fn compaction_between_restarts_preserves_the_state() {
    let rows = synthetic_rows();
    let cfg = StreamConfig::new(NETWORKS);
    let expected = uninterrupted_states(&rows, &cfg);
    let path = temp_journal("resume-compact");

    let ing = StreamIngestor::open(&path, sites(), NETWORKS, cfg.clone()).expect("open");
    for row in &rows[..6] {
        accept(&ing, row);
    }
    ing.compact().expect("compact");
    drop(ing);

    let ing = StreamIngestor::open(&path, sites(), NETWORKS, cfg).expect("reopen after compact");
    assert_eq!(
        ing.state_bits().expect("state"),
        expected[5],
        "sealed snapshot restores the same bits as replaying deltas"
    );
    for row in &rows[6..] {
        accept(&ing, row);
    }
    assert_eq!(ing.state_bits().expect("state"), expected[rows.len() - 1]);
    let _ = fs::remove_file(&path);
}
