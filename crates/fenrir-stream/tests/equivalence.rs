//! The equivalence bar, prefix by prefix: after any number of accepted
//! submissions the streamed analysis state — Φ matrix, merge tree,
//! adaptive threshold, mode labels — is bit-identical to a batch
//! recomputation over the same observations. Also pins the sequencing
//! contract (Duplicate applies nothing, Gap journals nothing) and that
//! the trust fold never forks the analysis from its trust-free twin.

use fenrir_core::health::CampaignHealth;
use fenrir_core::ids::SiteTable;
use fenrir_core::time::Timestamp;
use fenrir_core::trust::TrustConfig;
use fenrir_core::vector::RoutingVector;
use fenrir_data::journal::RecoverablePipeline;
use fenrir_measure::submit::SubmitRow;
use fenrir_serve::{Reply, StreamHandler, SubmitOutcome};
use fenrir_stream::{ddos_catchment_flip, state_bits, StreamConfig, StreamIngestor};

const NETWORKS: usize = 6;

fn sites() -> SiteTable {
    SiteTable::from_names(["LAX", "MIA", "AMS"])
}

/// A ten-day synthetic feed: one stable routing mode for days 0–4,
/// a catchment flip from day 5 on, and a single flapping vantage point
/// so consecutive days inside a mode are similar but not identical.
fn synthetic_rows() -> Vec<SubmitRow> {
    (0..10)
        .map(|day| {
            let mut codes: Vec<u16> = if day < 5 {
                vec![0, 0, 1, 1, 2, 2]
            } else {
                vec![1, 1, 2, 2, 0, 0]
            };
            codes[5] = (day % 3) as u16;
            let time = Timestamp::from_days(day as i64);
            let mut health = CampaignHealth::new(time, NETWORKS);
            health.responses = NETWORKS;
            SubmitRow {
                seq: day as u64,
                time: time.as_secs(),
                codes,
                health,
            }
        })
        .collect()
}

fn accept(ing: &StreamIngestor, row: &SubmitRow) -> u32 {
    let (reply, _events) = ing.submit(row.seq, row.time, &row.codes, row.health.clone());
    match reply {
        Reply::SubmitAck {
            seq,
            outcome: SubmitOutcome::Accepted { transitions, .. },
        } => {
            assert_eq!(seq, row.seq);
            transitions
        }
        other => panic!("seq {} not accepted: {other:?}", row.seq),
    }
}

/// For each prefix, the streamed state must equal a from-scratch batch
/// recomputation bit for bit.
fn assert_prefixes_match(rows: &[SubmitRow], sites: SiteTable, networks: usize) {
    let cfg = StreamConfig::new(networks);
    let ing = StreamIngestor::in_memory(sites.clone(), networks, cfg.clone()).expect("ingestor");
    for (i, row) in rows.iter().enumerate() {
        accept(&ing, row);
        let mut pipe =
            RecoverablePipeline::in_memory(sites.clone(), networks, cfg.pipeline.clone())
                .expect("batch pipeline");
        for r in &rows[..=i] {
            pipe.observe(
                RoutingVector::from_codes(Timestamp::from_secs(r.time), r.codes.clone()),
                r.health.clone(),
            )
            .expect("batch observe");
        }
        let batch = state_bits(&pipe, &cfg.adaptive).expect("batch state");
        let streamed = ing.state_bits().expect("streamed state");
        assert_eq!(
            streamed,
            batch,
            "streamed state diverged from batch after prefix of {}",
            i + 1
        );
    }
}

#[test]
fn every_synthetic_prefix_matches_batch_recomputation() {
    assert_prefixes_match(&synthetic_rows(), sites(), NETWORKS);
}

#[test]
fn every_ddos_scenario_prefix_matches_batch_recomputation() {
    let sc = ddos_catchment_flip(7).expect("scenario");
    assert_prefixes_match(&sc.rows, sc.sites.clone(), sc.networks);
}

#[test]
fn trust_fold_never_forks_the_analysis() {
    let rows = synthetic_rows();
    let plain =
        StreamIngestor::in_memory(sites(), NETWORKS, StreamConfig::new(NETWORKS)).expect("plain");
    let trusted = StreamIngestor::in_memory(
        sites(),
        NETWORKS,
        StreamConfig::new(NETWORKS).with_trust(TrustConfig::default()),
    )
    .expect("trusted");
    for row in &rows {
        accept(&plain, row);
        accept(&trusted, row);
        assert_eq!(
            trusted.state_bits().expect("trusted state"),
            plain.state_bits().expect("plain state"),
            "trust fold must not rewrite codes or Φ weights (seq {})",
            row.seq
        );
    }
}

#[test]
fn duplicates_ack_without_applying_and_gaps_refuse_without_journaling() {
    let rows = synthetic_rows();
    let ing = StreamIngestor::in_memory(sites(), NETWORKS, StreamConfig::new(NETWORKS))
        .expect("ingestor");
    accept(&ing, &rows[0]);
    accept(&ing, &rows[1]);
    let after_two = ing.state_bits().expect("state");

    // A retry of an already-journaled row is acked as Duplicate and
    // changes nothing — at-least-once delivery is idempotent.
    let (reply, events) = ing.submit(0, rows[0].time, &rows[0].codes, rows[0].health.clone());
    assert_eq!(
        reply,
        Reply::SubmitAck {
            seq: 0,
            outcome: SubmitOutcome::Duplicate
        }
    );
    assert!(events.is_empty());
    assert_eq!(ing.state_bits().expect("state"), after_two);

    // A future sequence number is refused with the expected one named;
    // nothing is journaled, so no hole can ever form.
    let (reply, events) = ing.submit(7, rows[2].time, &rows[2].codes, rows[2].health.clone());
    assert_eq!(
        reply,
        Reply::SubmitAck {
            seq: 7,
            outcome: SubmitOutcome::Gap { expected: 2 }
        }
    );
    assert!(events.is_empty());
    assert_eq!(ing.state_bits().expect("state"), after_two);
    assert_eq!(ing.expected_seq(), 2);

    // The metrics ledger saw all of it.
    let m = ing.metrics();
    assert_eq!(m.submits.get(), 4);
    assert_eq!(m.acks.get(), 4);
    assert_eq!(m.duplicates.get(), 1);
    assert_eq!(m.gaps.get(), 1);
    assert_eq!(m.fold_latency.count(), 2, "only accepted folds are timed");
}

#[test]
fn wrong_width_submissions_are_rejected_before_the_journal() {
    let rows = synthetic_rows();
    let ing = StreamIngestor::in_memory(sites(), NETWORKS, StreamConfig::new(NETWORKS))
        .expect("ingestor");
    accept(&ing, &rows[0]);
    let (reply, events) = ing.submit(1, rows[1].time, &[0, 1], rows[1].health.clone());
    assert!(
        matches!(reply, Reply::Error { .. }),
        "short row must be a typed error, got {reply:?}"
    );
    assert!(events.is_empty());
    assert_eq!(ing.observations(), 1, "nothing was journaled");
}

/// Mode boundaries of a labeling: positions where consecutive
/// observations change mode (the quantity transition detection diffs).
fn boundaries(labels: &[usize]) -> Vec<usize> {
    (1..labels.len())
        .filter(|&i| labels[i] != labels[i - 1])
        .collect()
}

#[test]
fn transitions_are_exactly_the_newly_discovered_mode_boundaries() {
    let rows = synthetic_rows();
    let cfg = StreamConfig::new(NETWORKS);
    let ing = StreamIngestor::in_memory(sites(), NETWORKS, cfg.clone()).expect("ingestor");
    let mut prev: Vec<usize> = Vec::new();
    let mut expected_total = 0u64;
    for row in &rows {
        let (reply, events) = ing.submit(row.seq, row.time, &row.codes, row.health.clone());
        let Reply::SubmitAck {
            outcome: SubmitOutcome::Accepted { transitions, .. },
            ..
        } = reply
        else {
            panic!("seq {} not accepted", row.seq);
        };
        // The ack's transition count and the pushed events must both
        // equal the boundary-set diff of the state the submit produced.
        let state = ing.state_bits().expect("state");
        let bounds = boundaries(&state.labels);
        let fresh: Vec<u64> = bounds
            .iter()
            .filter(|b| !prev.contains(b))
            .map(|&b| b as u64)
            .collect();
        assert_eq!(transitions as usize, fresh.len(), "seq {}", row.seq);
        let event_seqs: Vec<u64> = events
            .iter()
            .map(|ev| match ev {
                fenrir_serve::StreamEvent::ModeTransition { seq, .. } => *seq,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(event_seqs, fresh, "seq {}", row.seq);
        prev = bounds;
        expected_total += u64::from(transitions);
    }
    assert!(expected_total > 0, "the scripted flip must be discovered");
    assert_eq!(
        ing.metrics().transitions.get(),
        expected_total,
        "the counter tallies exactly the emitted transitions"
    );
}
