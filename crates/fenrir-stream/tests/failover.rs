//! Fenced-failover chaos: kill the leader at every frame boundary,
//! partition it from the tier mid-seal, let a deposed leader keep
//! writing — and prove the acked prefix survives bit-identical, every
//! stale write is refused by the fence, and no transition is ever
//! announced twice. Time is an injected counter (no wall clock), and
//! every randomised knob draws from `FENRIR_FAILOVER_SEED`, so a
//! failing run replays exactly.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fenrir_core::error::Error;
use fenrir_core::health::CampaignHealth;
use fenrir_core::ids::SiteTable;
use fenrir_core::time::Timestamp;
use fenrir_data::storage::{ObjectChaos, ObjectSim, RetryPolicy, Storage};
use fenrir_measure::submit::SubmitRow;
use fenrir_serve::{
    ModeStore, Reply, ServeConfig, Server, StoreOptions, StreamEvent, StreamHandler, SubmitOutcome,
};
use fenrir_stream::{
    Clock, FailoverSubmitClient, FailoverSubscriber, ReplicatedConfig, ReplicatedIngestor,
    StreamConfig, StreamIngestor, SubmitClient, SubmitResponse,
};

const NETWORKS: usize = 6;
const PREFIX: &str = "failover/tier";
const TTL_MS: u64 = 1_000;

/// Seed for every randomised knob in this suite; pinned in CI, override
/// to replay a failure.
fn seed() -> u64 {
    std::env::var("FENRIR_FAILOVER_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xFA17)
}

fn sites() -> SiteTable {
    SiteTable::from_names(["LAX", "MIA", "AMS"])
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fenrir-failover-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 4,
        backoff_base: Duration::from_micros(50),
        backoff_max: Duration::from_micros(200),
        deadline: Duration::from_secs(2),
        seed: seed(),
        stats: None,
    }
}

/// A hand-cranked clock: the test decides when the lease TTL lapses.
fn test_clock() -> (Arc<AtomicU64>, Clock) {
    let t = Arc::new(AtomicU64::new(0));
    let view = Arc::clone(&t);
    (t, Arc::new(move || view.load(Ordering::SeqCst)))
}

fn node_cfg(dir: &Path, name: &str, advertise: &str) -> ReplicatedConfig {
    ReplicatedConfig {
        hot_path: dir.join(format!("{name}.fnrj")),
        prefix: PREFIX.into(),
        retry: retry(),
        sites: sites(),
        networks: NETWORKS,
        stream: StreamConfig::new(NETWORKS),
        advertise: advertise.into(),
        lease_ttl_ms: TTL_MS,
    }
}

fn node(
    store: &Arc<dyn Storage>,
    dir: &Path,
    name: &str,
    advertise: &str,
    clock: Clock,
) -> ReplicatedIngestor {
    ReplicatedIngestor::new(Arc::clone(store), node_cfg(dir, name, advertise), clock)
        .expect("standby node")
}

fn sim_store() -> Arc<dyn Storage> {
    Arc::new(ObjectSim::new(ObjectChaos::none(seed())).unwrap())
}

/// Ten observations with a scripted catchment flip at frame 5 plus a
/// churning last vantage — the same feed the kill/restart suite uses.
fn synthetic_rows() -> Vec<SubmitRow> {
    (0..10)
        .map(|day| {
            let mut codes: Vec<u16> = if day < 5 {
                vec![0, 0, 1, 1, 2, 2]
            } else {
                vec![1, 1, 2, 2, 0, 0]
            };
            codes[5] = (day % 3) as u16;
            let time = Timestamp::from_days(day as i64);
            let mut health = CampaignHealth::new(time, NETWORKS);
            health.responses = NETWORKS;
            SubmitRow {
                seq: day as u64,
                time: time.as_secs(),
                codes,
                health,
            }
        })
        .collect()
}

/// Submit one row through a handler, require an `Accepted` ack, and
/// hand back the transitions that fold announced.
fn accept(h: &dyn StreamHandler, row: &SubmitRow) -> Vec<StreamEvent> {
    let (reply, events) = h.submit(row.seq, row.time, &row.codes, row.health.clone());
    assert!(
        matches!(
            reply,
            Reply::SubmitAck {
                outcome: SubmitOutcome::Accepted { .. },
                ..
            }
        ),
        "seq {} not accepted: {reply:?}",
        row.seq
    );
    events
}

fn transition_seqs(events: &[StreamEvent]) -> Vec<u64> {
    events
        .iter()
        .filter_map(|e| match e {
            StreamEvent::ModeTransition { seq, .. } => Some(*seq),
            _ => None,
        })
        .collect()
}

/// The uninterrupted reference: one in-memory ingestor, never failed
/// over, fingerprinted after every frame.
fn uninterrupted_states(rows: &[SubmitRow]) -> Vec<fenrir_stream::StateBits> {
    let ing = StreamIngestor::in_memory(sites(), NETWORKS, StreamConfig::new(NETWORKS))
        .expect("reference ingestor");
    rows.iter()
        .map(|row| {
            accept(&ing, row);
            ing.state_bits().expect("reference state")
        })
        .collect()
}

/// Kill the leader after every acked frame (drop it mid-lease: no
/// resign, no goodbye) and promote a cold standby. The successor's
/// hydrate + WAL replay must land bit-identical to the uninterrupted
/// run at the acked prefix — zero acked-observation loss at every
/// boundary — absorb the client's at-least-once retry as a Duplicate,
/// and never re-announce a replayed transition.
#[test]
fn kill_leader_at_every_frame_boundary_is_bit_identical_and_loses_no_ack() {
    let rows = synthetic_rows();
    let expected = uninterrupted_states(&rows);

    for kill in 0..rows.len() {
        let dir = scratch(&format!("kill{kill}"));
        let store = sim_store();
        let (t, clock) = test_clock();

        let a = node(&store, &dir, "a", "10.0.0.1:4477", Arc::clone(&clock));
        assert!(a.tick().unwrap(), "kill {kill}: empty lease must be won");
        let mut announced = Vec::new();
        for row in &rows[..=kill] {
            announced.extend(transition_seqs(&accept(&a, row)));
            // A mid-prefix seal makes the takeover exercise tier
            // hydration *plus* WAL-suffix replay, not replay alone.
            if row.seq == 3 {
                a.compact().unwrap();
            }
        }
        // The crash: the leader vanishes holding a live lease.
        drop(a);

        t.store(2 * TTL_MS + 1, Ordering::SeqCst);
        let b = node(&store, &dir, "b", "10.0.0.2:4477", clock);
        assert!(
            b.tick().unwrap(),
            "kill {kill}: the lapsed lease must be claimable"
        );
        let ing = b.ingestor().expect("leader pipeline");
        assert_eq!(
            ing.observations(),
            kill as u64 + 1,
            "kill {kill}: an acked observation was lost in failover"
        );
        assert_eq!(
            ing.state_bits().unwrap(),
            expected[kill],
            "kill {kill}: recovered state diverged from the acked prefix"
        );
        // Replayed history is in the announce log (resuming subscribers
        // can fetch it) but was never re-broadcast as a fresh event.
        assert_eq!(
            ing.boundary_count(),
            announced.len() as u64,
            "kill {kill}: replay changed the announced-boundary count"
        );

        // The at-least-once retry of the frame whose ack the crash may
        // have swallowed: already durable, so Duplicate — not a re-fold.
        let last = &rows[kill];
        let (reply, events) = b.submit(last.seq, last.time, &last.codes, last.health.clone());
        assert_eq!(
            reply,
            Reply::SubmitAck {
                seq: last.seq,
                outcome: SubmitOutcome::Duplicate
            },
            "kill {kill}: post-failover retry not absorbed"
        );
        assert!(events.is_empty(), "kill {kill}: duplicate announced events");

        for row in &rows[kill + 1..] {
            announced.extend(transition_seqs(&accept(&b, row)));
        }
        assert_eq!(
            b.ingestor().unwrap().state_bits().unwrap(),
            expected[rows.len() - 1],
            "kill {kill}: full feed diverged after failover"
        );
        let mut unique = announced.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(
            unique.len(),
            announced.len(),
            "kill {kill}: a transition was announced twice: {announced:?}"
        );
        assert_eq!(b.metrics().takeovers.get(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}

/// A partitioned leader that never noticed the election: its next seal
/// and its next submit both hit the fence, it steps down, and nothing
/// it wrote after deposition ever becomes durable.
#[test]
fn deposed_leader_is_fenced_on_first_write_and_steps_down() {
    let rows = synthetic_rows();
    let expected = uninterrupted_states(&rows);
    let dir = scratch("deposed");
    let store = sim_store();
    let (t, clock) = test_clock();

    let a = node(&store, &dir, "a", "10.0.0.1:4477", Arc::clone(&clock));
    assert!(a.tick().unwrap());
    let mut announced = Vec::new();
    for row in &rows[..4] {
        announced.extend(transition_seqs(&accept(&a, row)));
    }

    // A partitions: it stops renewing but keeps believing it leads.
    t.store(2 * TTL_MS + 1, Ordering::SeqCst);
    let b = node(&store, &dir, "b", "10.0.0.2:4477", clock);
    assert!(b.tick().unwrap(), "lapsed lease must fail over");
    assert_eq!(b.metrics().fence_epoch.load(Ordering::Relaxed), 2);
    announced.extend(transition_seqs(&accept(&b, &rows[4])));

    // The stale leader's seal: the manifest CAS is conditional on its
    // fence, so the tier refuses it outright.
    assert!(a.is_leader(), "A has not yet noticed the deposition");
    let e = a.compact().expect_err("stale seal must be fenced");
    assert!(matches!(e, Error::Fenced { .. }), "got {e}");

    // The stale leader's submit: refused at the WAL, answered with a
    // redirect naming the live leader, and A steps down.
    let stale = &rows[4];
    let (reply, events) = a.submit(stale.seq, stale.time, &stale.codes, stale.health.clone());
    match reply {
        Reply::NotLeader { hint } => assert_eq!(
            hint.as_deref(),
            Some("10.0.0.2:4477"),
            "the redirect must name the live leader"
        ),
        other => panic!("stale write must answer NotLeader, got {other:?}"),
    }
    assert!(events.is_empty());
    assert!(!a.is_leader(), "a fenced write must force a step-down");
    assert!(a.metrics().fenced_rejects.get() >= 1);
    assert_eq!(a.metrics().step_downs.get(), 1);

    // A stays a standby while B's lease is live, and nothing A tried
    // after deposition reached the shared truth.
    assert!(!a.tick().unwrap());
    let ing = b.ingestor().unwrap();
    assert_eq!(ing.observations(), 5);
    assert_eq!(ing.state_bits().unwrap(), expected[4]);
    for row in &rows[5..] {
        announced.extend(transition_seqs(&accept(&b, row)));
    }
    assert_eq!(ing.state_bits().unwrap(), expected[rows.len() - 1]);
    let mut unique = announced.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), announced.len(), "double-announce: {announced:?}");
    let _ = fs::remove_dir_all(&dir);
}

/// Partition the leader from the tier mid-seal: the seal fails typed,
/// no acked observation is lost, and the next leader recovers the full
/// prefix from the WAL even though the seal never landed.
#[test]
fn tier_partition_mid_seal_loses_no_ack() {
    let rows = synthetic_rows();
    let expected = uninterrupted_states(&rows);
    let dir = scratch("midseal");
    let sim = Arc::new(ObjectSim::new(ObjectChaos::none(seed())).unwrap());
    let store: Arc<dyn Storage> = Arc::clone(&sim) as Arc<dyn Storage>;
    let (t, clock) = test_clock();

    let a = node(&store, &dir, "a", "10.0.0.1:4477", Arc::clone(&clock));
    assert!(a.tick().unwrap());
    for row in &rows[..6] {
        accept(&a, row);
    }

    // Every tier put now answers SlowDown: the seal must spend its
    // retry budget and fail typed, never hang or half-publish.
    sim.set_chaos(ObjectChaos::none(seed()).throttle(1.0)).unwrap();
    let e = a.compact().expect_err("seal against a throttled tier");
    assert!(
        matches!(e, Error::Exhausted { .. } | Error::Storage { .. }),
        "untyped mid-seal failure: {e}"
    );
    sim.set_chaos(ObjectChaos::none(seed())).unwrap();
    drop(a); // and then the partitioned leader dies

    t.store(2 * TTL_MS + 1, Ordering::SeqCst);
    let b = node(&store, &dir, "b", "10.0.0.2:4477", clock);
    assert!(b.tick().unwrap());
    let ing = b.ingestor().unwrap();
    assert_eq!(ing.observations(), 6, "acked prefix lost with the seal");
    assert_eq!(
        ing.state_bits().unwrap(),
        expected[5],
        "WAL replay must cover for the failed seal bit-identically"
    );
    // And the successor's own seal works against the healed tier.
    b.compact().unwrap();
    for row in &rows[6..] {
        accept(&b, row);
    }
    assert_eq!(ing.state_bits().unwrap(), expected[rows.len() - 1]);
    let _ = fs::remove_dir_all(&dir);
}

fn tiered_read_store(store: &Arc<dyn Storage>) -> Arc<ModeStore> {
    Arc::new(
        ModeStore::open_tiered(
            Arc::clone(store),
            PREFIX,
            retry(),
            StoreOptions {
                allow_empty: true,
                ..StoreOptions::default()
            },
        )
        .expect("tiered read store"),
    )
}

/// A standby behind a real TCP server answers `Submit` with a
/// `NotLeader` redirect carrying the live leader's advertised address.
#[test]
fn standby_redirects_submits_over_tcp() {
    let rows = synthetic_rows();
    let dir = scratch("redirect");
    let store = sim_store();
    let (_t, clock) = test_clock();

    let a = Arc::new(node(&store, &dir, "a", "10.0.0.1:4477", Arc::clone(&clock)));
    let b = Arc::new(node(&store, &dir, "b", "10.0.0.2:4477", clock));
    assert!(a.tick().unwrap());
    assert!(!b.tick().unwrap(), "B must lose the election");

    // A tiered read store attaches to sealed epochs, so the leader
    // seals its first frames before the serve fleet comes up.
    for row in &rows[..2] {
        accept(a.as_ref(), row);
    }
    a.compact().unwrap();

    let server_b = Server::start_with_stream(
        tiered_read_store(&store),
        Arc::clone(&b) as Arc<dyn StreamHandler>,
        ServeConfig::default(),
    )
    .expect("standby server");

    let mut client = SubmitClient::connect(server_b.addr()).expect("connect");
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let row = &rows[0];
    match client
        .try_submit(row.seq, row.time, row.codes.clone(), row.health.clone())
        .expect("submit to standby")
    {
        SubmitResponse::NotLeader { hint } => {
            assert_eq!(hint.as_deref(), Some("10.0.0.1:4477"));
        }
        SubmitResponse::Ack(outcome) => panic!("standby acked: {outcome:?}"),
    }
    assert!(b.metrics().not_leader.get() >= 1);

    server_b.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// The whole failover story over real sockets: a submitter and a
/// subscriber ride through the leader's death. Every acked transition
/// is delivered exactly once — the resume cursor replays the outage,
/// the dedup window absorbs the overlap — and the books close with
/// zero acked loss.
#[test]
fn failover_clients_ride_through_leader_death_exactly_once() {
    let rows = synthetic_rows();
    let dir = scratch("ride");
    let store = sim_store();
    let (t, clock) = test_clock();

    // Advertised names deliberately do not parse as socket addresses:
    // the redirect hint names the *node*, and the clients fall back to
    // rotating through their candidate list — the path a fleet behind
    // logical names exercises.
    let a = Arc::new(node(&store, &dir, "a", "node-a", Arc::clone(&clock)));
    let b = Arc::new(node(&store, &dir, "b", "node-b", Arc::clone(&clock)));
    assert!(a.tick().unwrap());
    assert!(!b.tick().unwrap());

    // Bootstrap: the read fleet hydrates from sealed epochs, so the
    // leader seals its first frames before the servers come up.
    for row in &rows[..2] {
        accept(a.as_ref(), row);
    }
    a.compact().unwrap();

    let server_a = Server::start_with_stream(
        tiered_read_store(&store),
        Arc::clone(&a) as Arc<dyn StreamHandler>,
        ServeConfig::default(),
    )
    .expect("server a");
    let server_b = Server::start_with_stream(
        tiered_read_store(&store),
        Arc::clone(&b) as Arc<dyn StreamHandler>,
        ServeConfig::default(),
    )
    .expect("server b");
    let addrs = vec![server_a.addr(), server_b.addr()];

    let mut sub = FailoverSubscriber::connect(addrs.clone()).expect("subscribe");
    sub.set_read_timeout(Some(Duration::from_secs(5)));
    let mut submitter = FailoverSubmitClient::new(addrs).expect("submitter");
    submitter.set_read_timeout(Some(Duration::from_secs(5)));

    let mut acked_transitions = 0u64;
    let mut seen = Vec::new();
    let drain = |sub: &mut FailoverSubscriber, seen: &mut Vec<u64>, upto: u64| {
        while (seen.len() as u64) < upto {
            match sub.next_event().expect("pushed event") {
                StreamEvent::ModeTransition { seq, .. } => seen.push(seq),
                StreamEvent::Lagged { missed } => {
                    panic!("nothing sheds at this rate, lost {missed}")
                }
                StreamEvent::Closed => unreachable!("absorbed by failover"),
            }
        }
    };

    for row in &rows[2..6] {
        match submitter.submit_row(row).expect("acked") {
            SubmitOutcome::Accepted { transitions, .. } => {
                acked_transitions += transitions as u64;
            }
            other => panic!("seq {} not accepted: {other:?}", row.seq),
        }
    }
    drain(&mut sub, &mut seen, acked_transitions);

    // The leader dies: its server goes away mid-lease, and only after
    // the TTL lapses does the standby win the next election.
    server_a.shutdown();
    drop(a);
    t.store(2 * TTL_MS + 1, Ordering::SeqCst);
    assert!(b.tick().unwrap(), "standby must take over");

    for row in &rows[6..] {
        match submitter.submit_row(row).expect("acked after failover") {
            SubmitOutcome::Accepted { transitions, .. } => {
                acked_transitions += transitions as u64;
            }
            other => panic!("seq {} not accepted post-failover: {other:?}", row.seq),
        }
    }
    drain(&mut sub, &mut seen, acked_transitions);

    // Exactly once: no skip (count matches the acks), no double
    // delivery (seqs unique), and the cursor sits at the live edge.
    let mut unique = seen.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), seen.len(), "duplicate delivery: {seen:?}");
    assert_eq!(seen.len() as u64, acked_transitions);
    let ing = b.ingestor().unwrap();
    assert_eq!(ing.observations(), rows.len() as u64, "acked loss");
    assert_eq!(sub.cursor(), ing.boundary_count());
    assert_eq!(b.metrics().takeovers.get(), 1);

    server_b.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
