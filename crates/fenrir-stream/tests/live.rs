//! The ROADMAP scenarios end-to-end through a real TCP server in
//! submit mode: a campaign streams its observations as `Submit`
//! frames, a subscribed connection receives every `ModeTransition`
//! push, and the loss accounting closes exactly — events received plus
//! explicit `Lagged` misses equal events emitted, zero silent loss.
//! Also the drain regression: a subscriber-only connection is released
//! promptly with a final `Closed` event, not held to its read deadline.

use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use fenrir_serve::protocol::AdminCmd;
use fenrir_serve::{Client, Reply, Request, ServeConfig, StreamEvent};
use fenrir_stream::{
    ddos_catchment_flip, hypergiant_churn, StreamConfig, StreamScenario, StreamServer,
    SubmitClient, Subscriber,
};

fn temp_journal(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("fenrir-stream-{tag}-{}", std::process::id()));
    let _ = fs::remove_file(&path);
    path
}

fn seed() -> u64 {
    std::env::var("FENRIR_STREAM_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// Drive one scenario through a live server with a subscriber watching,
/// and close the books on every pushed event.
fn stream_scenario(tag: &str, sc: StreamScenario) {
    let path = temp_journal(tag);
    let server = StreamServer::start(
        &path,
        sc.sites.clone(),
        sc.networks,
        StreamConfig::new(sc.networks),
        ServeConfig::default(),
    )
    .expect("start server");
    let addr = server.addr();

    // Subscribe before the first frame so every transition is pushed.
    let mut sub = Subscriber::connect(addr).expect("subscribe");
    sub.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");

    let mut submitter = SubmitClient::connect(addr).expect("submitter");
    submitter
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let acked_transitions = submitter.submit_all(&sc.rows).expect("submit campaign");
    assert!(
        acked_transitions > 0,
        "{}: the scripted routing changes must surface as transitions",
        sc.name
    );

    // Collect exactly what the acks promised; explicit Lagged markers
    // (none expected at this rate, but never silent) count as misses.
    let mut received = Vec::new();
    let mut missed = 0u64;
    while (received.len() as u64) + missed < acked_transitions {
        match sub.next_event().expect("pushed event") {
            StreamEvent::ModeTransition { seq, .. } => received.push(seq),
            StreamEvent::Lagged { missed: m } => missed += m,
            StreamEvent::Closed => panic!("{}: premature Closed", sc.name),
        }
    }

    // Every scripted change is discovered at its frame (give or take
    // one observation of discovery lag). With explicit misses the
    // attribution is unknowable, but at this rate nothing sheds.
    if missed == 0 {
        for &change in &sc.scripted_changes {
            let hit = received
                .iter()
                .any(|&s| (s as i64 - change as i64).abs() <= 1);
            assert!(
                hit,
                "{}: no transition within one frame of scripted change {change} \
                 (got {received:?})",
                sc.name
            );
        }
    }

    // The books must balance: emitted == delivered + explicitly shed.
    let registry = server.server().registry();
    let emitted = registry
        .value("fenrir_stream_transitions_total", &[])
        .expect("transitions family") as u64;
    let pushed = registry
        .value("fenrir_stream_events_pushed_total", &[])
        .expect("pushed family") as u64;
    let shed = registry
        .value("fenrir_stream_lagged_drops_total", &[])
        .expect("lagged family") as u64;
    assert_eq!(emitted, acked_transitions, "{}: acks vs counter", sc.name);
    assert_eq!(
        pushed + shed,
        emitted,
        "{}: every emitted event was either delivered or explicitly shed",
        sc.name
    );
    assert_eq!(
        received.len() as u64 + missed,
        emitted,
        "{}: the subscriber can account for every event",
        sc.name
    );
    assert_eq!(
        registry.value("fenrir_stream_submits_total", &[]),
        Some(sc.rows.len() as f64),
        "{}: one submit per row",
        sc.name
    );
    assert_eq!(
        registry.value("fenrir_stream_subscribers", &[]),
        Some(1.0),
        "{}: the subscriber is registered",
        sc.name
    );

    // The per-subscriber ledger closes against the same books: one
    // row, whose counters are this subscriber's share of the fleet
    // totals (here, all of them).
    let mut stats_client = Client::connect(addr).expect("stats client");
    let per_sub = match stats_client.request(&Request::Stats).expect("stats") {
        Reply::Stats(s) => s.subscribers,
        other => panic!("{}: stats got {other:?}", sc.name),
    };
    assert_eq!(per_sub.len(), 1, "{}: one subscriber row", sc.name);
    assert_eq!(
        per_sub[0].events_pushed, pushed,
        "{}: the row's pushed count matches the fleet counter",
        sc.name
    );
    assert_eq!(
        per_sub[0].lagged_drops, shed,
        "{}: the row's shed count matches the fleet counter",
        sc.name
    );

    // Unsubscribe cleanly; the gauge drops and late events are none.
    let late = sub.unsubscribe().expect("unsubscribe");
    assert!(
        late.is_empty(),
        "{}: no events after the feed ended",
        sc.name
    );
    assert_eq!(registry.value("fenrir_stream_subscribers", &[]), Some(0.0));

    server.shutdown();
    let _ = fs::remove_file(&path);
}

#[test]
fn ddos_catchment_flip_streams_end_to_end() {
    stream_scenario("live-ddos", ddos_catchment_flip(seed()).expect("scenario"));
}

#[test]
fn hypergiant_churn_streams_end_to_end() {
    stream_scenario(
        "live-hypergiant",
        hypergiant_churn(seed()).expect("scenario"),
    );
}

#[test]
fn duplicate_replays_over_tcp_are_absorbed() {
    let sc = ddos_catchment_flip(seed()).expect("scenario");
    let path = temp_journal("live-dup");
    let server = StreamServer::start(
        &path,
        sc.sites.clone(),
        sc.networks,
        StreamConfig::new(sc.networks),
        ServeConfig::default(),
    )
    .expect("start server");

    let mut submitter = SubmitClient::connect(server.addr()).expect("submitter");
    submitter
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    submitter.submit_all(&sc.rows[..5]).expect("first half");
    // An at-least-once retry of the whole prefix plus the rest: the
    // replayed rows ack Duplicate, the rest are accepted, and the
    // server ends with exactly one copy of everything.
    submitter.submit_all(&sc.rows).expect("replay then finish");
    assert_eq!(server.ingestor().observations(), sc.rows.len() as u64);
    let registry = server.server().registry();
    assert_eq!(
        registry.value("fenrir_stream_duplicates_total", &[]),
        Some(5.0)
    );
    assert_eq!(registry.value("fenrir_stream_gaps_total", &[]), Some(0.0));

    server.shutdown();
    let _ = fs::remove_file(&path);
}

/// The drain regression (the small-fix satellite): a subscriber-only
/// connection — no queries in flight, nothing to finish — must be
/// released promptly when the server drains, with the subscription's
/// final `Closed` event on the wire, not parked until its read
/// deadline.
#[test]
fn drain_releases_subscriber_only_connections_promptly() {
    let sc = ddos_catchment_flip(seed()).expect("scenario");
    let path = temp_journal("live-drain");
    let server = StreamServer::start(
        &path,
        sc.sites.clone(),
        sc.networks,
        StreamConfig::new(sc.networks),
        ServeConfig {
            admin_token: Some("drain-test-token".into()),
            read_deadline: Duration::from_secs(30),
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    let addr = server.addr();

    let mut sub = Subscriber::connect(addr).expect("subscribe");
    sub.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");

    let mut admin = Client::connect(addr).expect("admin client");
    match admin
        .admin("drain-test-token", AdminCmd::Drain)
        .expect("drain")
    {
        Reply::Admin { .. } => {}
        other => panic!("drain refused: {other:?}"),
    }

    let start = Instant::now();
    let events = sub.drain().expect("final Closed before the deadline");
    assert!(events.is_empty(), "no data events were pending");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "subscriber held {:?} on drain — must be released promptly, \
         not parked until the read deadline",
        start.elapsed()
    );

    server.shutdown();
    let _ = fs::remove_file(&path);
}
