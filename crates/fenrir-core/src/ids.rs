//! Identifiers for the two populations Fenrir relates: client **networks**
//! (the `N` of the paper, e.g. /24 blocks, Atlas vantage points, EDNS client
//! subnets) and service **sites** (the `S` of the paper, e.g. anycast sites,
//! upstream transit providers, web front-ends).
//!
//! Sites are interned through [`SiteTable`] so a routing vector can store a
//! compact 2-byte code per network while analyses still print human-readable
//! names ("LAX", "AS2152", "codfw").

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of a client network within a routing vector.
///
/// Networks are positional: element `n` of every vector in a series refers to
/// the same network. `NetworkId` is a transparent index used where code wants
/// to be explicit that a `usize` means "network slot".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NetworkId(pub u32);

impl NetworkId {
    /// The network's position within a routing vector.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetworkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net#{}", self.0)
    }
}

/// Interned identifier of a service site (anycast site, upstream AS, web
/// front-end). At most [`SiteId::MAX_SITES`] distinct sites may exist in one
/// [`SiteTable`]; the remaining code space is reserved for the sentinel
/// catchment states (`Err`, `Other`, `Unknown`, see [`crate::vector::Catchment`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub u16);

impl SiteId {
    /// Largest number of distinct sites one table may intern.
    ///
    /// Three codes at the top of the `u16` space are reserved for the
    /// sentinel catchment states.
    pub const MAX_SITES: usize = (u16::MAX - 3) as usize;

    /// The site's position within a [`SiteTable`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

/// Bidirectional map between site names and compact [`SiteId`]s.
///
/// ```
/// use fenrir_core::ids::SiteTable;
/// let mut t = SiteTable::new();
/// let lax = t.intern("LAX");
/// assert_eq!(t.intern("LAX"), lax);          // idempotent
/// assert_eq!(t.name(lax), "LAX");
/// assert_eq!(t.lookup("AMS"), None);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SiteTable {
    names: Vec<String>,
    by_name: HashMap<String, SiteId>,
}

impl SiteTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a table from an ordered list of names. Duplicate names collapse
    /// to the first occurrence.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut t = Self::new();
        for n in names {
            t.intern(n.as_ref());
        }
        t
    }

    /// Return the id for `name`, interning it if new.
    ///
    /// # Panics
    ///
    /// Panics if the table already holds [`SiteId::MAX_SITES`] sites; Fenrir
    /// deployments have at most thousands of sites (Google front-ends), far
    /// below the limit, so exceeding it indicates corrupted input.
    pub fn intern(&mut self, name: &str) -> SiteId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        assert!(
            self.names.len() < SiteId::MAX_SITES,
            "site table overflow: more than {} sites",
            SiteId::MAX_SITES
        );
        let id = SiteId(self.names.len() as u16);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Look a name up without interning.
    pub fn lookup(&self, name: &str) -> Option<SiteId> {
        self.by_name.get(name).copied()
    }

    /// The name for an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: SiteId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned sites (`|S|` in the paper).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no site has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (SiteId(i as u16), n.as_str()))
    }

    /// All ids in interning order.
    pub fn ids(&self) -> impl Iterator<Item = SiteId> + '_ {
        (0..self.names.len()).map(|i| SiteId(i as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SiteTable::new();
        let a = t.intern("LAX");
        let b = t.intern("LAX");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn intern_assigns_sequential_ids() {
        let mut t = SiteTable::new();
        assert_eq!(t.intern("LAX"), SiteId(0));
        assert_eq!(t.intern("AMS"), SiteId(1));
        assert_eq!(t.intern("SIN"), SiteId(2));
    }

    #[test]
    fn lookup_does_not_intern() {
        let t = SiteTable::new();
        assert_eq!(t.lookup("LAX"), None);
        assert!(t.is_empty());
    }

    #[test]
    fn name_round_trips() {
        let mut t = SiteTable::new();
        let id = t.intern("codfw");
        assert_eq!(t.name(id), "codfw");
    }

    #[test]
    fn from_names_collapses_duplicates() {
        let t = SiteTable::from_names(["a", "b", "a", "c"]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.lookup("a"), Some(SiteId(0)));
        assert_eq!(t.lookup("c"), Some(SiteId(2)));
    }

    #[test]
    fn iter_preserves_order() {
        let t = SiteTable::from_names(["x", "y"]);
        let v: Vec<_> = t.iter().map(|(id, n)| (id.0, n.to_owned())).collect();
        assert_eq!(v, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NetworkId(7).to_string(), "net#7");
        assert_eq!(SiteId(3).to_string(), "site#3");
    }

    #[test]
    fn network_id_index() {
        assert_eq!(NetworkId(12).index(), 12);
    }
}
