//! Time series of routing vectors.
//!
//! A [`VectorSeries`] is the unit every downstream analysis consumes: an
//! ordered sequence of [`RoutingVector`]s over the *same* network population,
//! together with the [`SiteTable`] naming the catchment states. The series
//! enforces the two invariants the math of §2.6 relies on:
//!
//! 1. every vector has the same length `N` (elements are positionally
//!    aligned across time), and
//! 2. vectors are strictly ordered by timestamp (no duplicates).

use crate::error::{Error, Result};
use crate::ids::SiteTable;
use crate::time::Timestamp;
use crate::vector::{Aggregate, RoutingVector};
use serde::{Deserialize, Serialize};

/// An ordered, positionally-aligned sequence of routing vectors.
///
/// ```
/// use fenrir_core::prelude::*;
///
/// let sites = SiteTable::from_names(["LAX", "AMS"]);
/// let mut s = VectorSeries::new(sites, 2);
/// s.push(RoutingVector::unknown(Timestamp::from_days(0), 2)).unwrap();
/// s.push(RoutingVector::unknown(Timestamp::from_days(1), 2)).unwrap();
/// assert_eq!(s.len(), 2);
/// assert!(s.push(RoutingVector::unknown(Timestamp::from_days(1), 2)).is_err());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VectorSeries {
    sites: SiteTable,
    networks: usize,
    vectors: Vec<RoutingVector>,
}

impl VectorSeries {
    /// Empty series over `networks` positional network slots.
    pub fn new(sites: SiteTable, networks: usize) -> Self {
        VectorSeries {
            sites,
            networks,
            vectors: Vec::new(),
        }
    }

    /// Build from pre-collected vectors. Vectors are sorted by time; errors
    /// on a length mismatch or duplicate timestamp.
    pub fn from_vectors(
        sites: SiteTable,
        networks: usize,
        mut vectors: Vec<RoutingVector>,
    ) -> Result<Self> {
        vectors.sort_by_key(|v| v.time());
        for v in &vectors {
            if v.len() != networks {
                return Err(Error::ShapeMismatch {
                    what: "routing vector",
                    expected: networks,
                    actual: v.len(),
                });
            }
        }
        for w in vectors.windows(2) {
            if w[0].time() == w[1].time() {
                return Err(Error::DuplicateTimestamp(w[0].time().as_secs()));
            }
        }
        Ok(VectorSeries {
            sites,
            networks,
            vectors,
        })
    }

    /// Append a vector. Must be later than the last one and of matching
    /// length.
    pub fn push(&mut self, v: RoutingVector) -> Result<()> {
        if v.len() != self.networks {
            return Err(Error::ShapeMismatch {
                what: "routing vector",
                expected: self.networks,
                actual: v.len(),
            });
        }
        if let Some(last) = self.vectors.last() {
            if v.time() == last.time() {
                return Err(Error::DuplicateTimestamp(v.time().as_secs()));
            }
            if v.time() < last.time() {
                return Err(Error::InvalidParameter {
                    name: "vector.time",
                    message: format!("out of order: {} does not follow {}", v.time(), last.time()),
                });
            }
        }
        self.vectors.push(v);
        Ok(())
    }

    /// The site table naming this service's catchments.
    pub fn sites(&self) -> &SiteTable {
        &self.sites
    }

    /// Mutable access to the site table (e.g. to intern a site discovered
    /// mid-measurement).
    pub fn sites_mut(&mut self) -> &mut SiteTable {
        &mut self.sites
    }

    /// Number of network slots `N`.
    pub fn networks(&self) -> usize {
        self.networks
    }

    /// Number of observation times `|T|`.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the series holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Vector at position `i` (time order).
    pub fn get(&self, i: usize) -> &RoutingVector {
        &self.vectors[i]
    }

    /// Mutable vector at position `i`.
    pub fn get_mut(&mut self, i: usize) -> &mut RoutingVector {
        &mut self.vectors[i]
    }

    /// All vectors in time order.
    pub fn vectors(&self) -> &[RoutingVector] {
        &self.vectors
    }

    /// Mutable access to all vectors (cleaning passes use this).
    pub fn vectors_mut(&mut self) -> &mut [RoutingVector] {
        &mut self.vectors
    }

    /// Timestamps in order.
    pub fn times(&self) -> Vec<Timestamp> {
        self.vectors.iter().map(|v| v.time()).collect()
    }

    /// Position of the vector at exactly time `t`.
    pub fn index_of(&self, t: Timestamp) -> Result<usize> {
        self.vectors
            .binary_search_by_key(&t, |v| v.time())
            .map_err(|_| Error::NoSuchTime(t.as_secs()))
    }

    /// Vector at exactly time `t`.
    pub fn at(&self, t: Timestamp) -> Result<&RoutingVector> {
        self.index_of(t).map(|i| &self.vectors[i])
    }

    /// Position of the latest vector observed at or before `t` — the
    /// as-of lookup a query server needs ("which catchment served this
    /// block at time t?" between observation instants). `None` when `t`
    /// precedes the first observation or the series is empty.
    pub fn index_at_or_before(&self, t: Timestamp) -> Option<usize> {
        match self.vectors.binary_search_by_key(&t, |v| v.time()) {
            Ok(i) => Some(i),
            Err(0) => None,
            Err(i) => Some(i - 1),
        }
    }

    /// Aggregate `A(t)` for every observation time — the input to the
    /// paper's stack plots (Figures 1, 2a, 3a, 6a).
    pub fn aggregates(&self) -> Vec<Aggregate> {
        let s = self.sites.len();
        self.vectors.iter().map(|v| v.aggregate(s)).collect()
    }

    /// Sub-series covering `[from, to]` inclusive (e.g. the paper's
    /// "blue-boxed region" of Figure 3 for the latency study).
    pub fn slice_time(&self, from: Timestamp, to: Timestamp) -> VectorSeries {
        let vectors: Vec<RoutingVector> = self
            .vectors
            .iter()
            .filter(|v| v.time() >= from && v.time() <= to)
            .cloned()
            .collect();
        VectorSeries {
            sites: self.sites.clone(),
            networks: self.networks,
            vectors,
        }
    }

    /// Mean fraction of networks with a known state across the series.
    pub fn mean_coverage(&self) -> f64 {
        if self.vectors.is_empty() {
            return 0.0;
        }
        self.vectors.iter().map(|v| v.coverage()).sum::<f64>() / self.vectors.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::Catchment;

    fn ts(d: i64) -> Timestamp {
        Timestamp::from_days(d)
    }

    fn table() -> SiteTable {
        SiteTable::from_names(["A", "B"])
    }

    #[test]
    fn push_enforces_length() {
        let mut s = VectorSeries::new(table(), 3);
        let err = s.push(RoutingVector::unknown(ts(0), 2)).unwrap_err();
        assert!(matches!(
            err,
            Error::ShapeMismatch {
                expected: 3,
                actual: 2,
                ..
            }
        ));
    }

    #[test]
    fn push_enforces_time_order() {
        let mut s = VectorSeries::new(table(), 1);
        s.push(RoutingVector::unknown(ts(5), 1)).unwrap();
        // A duplicate gets the typed error; merely-out-of-order does not.
        assert!(matches!(
            s.push(RoutingVector::unknown(ts(5), 1)),
            Err(Error::DuplicateTimestamp(t)) if t == ts(5).as_secs()
        ));
        assert!(matches!(
            s.push(RoutingVector::unknown(ts(4), 1)),
            Err(Error::InvalidParameter { .. })
        ));
        assert!(s.push(RoutingVector::unknown(ts(6), 1)).is_ok());
    }

    #[test]
    fn from_vectors_sorts_by_time() {
        let v = vec![
            RoutingVector::unknown(ts(2), 1),
            RoutingVector::unknown(ts(0), 1),
            RoutingVector::unknown(ts(1), 1),
        ];
        let s = VectorSeries::from_vectors(table(), 1, v).unwrap();
        assert_eq!(s.times(), vec![ts(0), ts(1), ts(2)]);
    }

    #[test]
    fn index_at_or_before_resolves_between_observations() {
        let v = vec![
            RoutingVector::unknown(ts(0), 1),
            RoutingVector::unknown(ts(10), 1),
            RoutingVector::unknown(ts(20), 1),
        ];
        let s = VectorSeries::from_vectors(table(), 1, v).unwrap();
        assert_eq!(s.index_at_or_before(ts(-1)), None);
        assert_eq!(s.index_at_or_before(ts(0)), Some(0));
        assert_eq!(s.index_at_or_before(ts(15)), Some(1));
        assert_eq!(s.index_at_or_before(ts(20)), Some(2));
        assert_eq!(s.index_at_or_before(ts(99)), Some(2));
        assert_eq!(
            VectorSeries::new(table(), 1).index_at_or_before(ts(0)),
            None
        );
    }

    #[test]
    fn from_vectors_rejects_duplicates() {
        let v = vec![
            RoutingVector::unknown(ts(1), 1),
            RoutingVector::unknown(ts(1), 1),
        ];
        assert!(matches!(
            VectorSeries::from_vectors(table(), 1, v),
            Err(Error::DuplicateTimestamp(t)) if t == ts(1).as_secs()
        ));
    }

    #[test]
    fn from_vectors_rejects_duplicates_hidden_by_sorting() {
        // Duplicates that are not adjacent in the input must still be
        // caught after the sort pass (binary-search `index_of`/`at` would
        // silently resolve to an arbitrary one of the pair otherwise).
        let v = vec![
            RoutingVector::unknown(ts(2), 1),
            RoutingVector::unknown(ts(0), 1),
            RoutingVector::unknown(ts(2), 1),
        ];
        assert!(matches!(
            VectorSeries::from_vectors(table(), 1, v),
            Err(Error::DuplicateTimestamp(t)) if t == ts(2).as_secs()
        ));
    }

    #[test]
    fn from_vectors_rejects_bad_length() {
        let v = vec![RoutingVector::unknown(ts(1), 2)];
        assert!(VectorSeries::from_vectors(table(), 1, v).is_err());
    }

    #[test]
    fn index_and_at() {
        let mut s = VectorSeries::new(table(), 1);
        s.push(RoutingVector::unknown(ts(0), 1)).unwrap();
        s.push(RoutingVector::unknown(ts(7), 1)).unwrap();
        assert_eq!(s.index_of(ts(7)).unwrap(), 1);
        assert_eq!(s.at(ts(0)).unwrap().time(), ts(0));
        assert!(matches!(s.at(ts(3)), Err(Error::NoSuchTime(_))));
    }

    #[test]
    fn slice_time_is_inclusive() {
        let mut s = VectorSeries::new(table(), 1);
        for d in 0..10 {
            s.push(RoutingVector::unknown(ts(d), 1)).unwrap();
        }
        let sub = s.slice_time(ts(3), ts(6));
        assert_eq!(sub.len(), 4);
        assert_eq!(sub.get(0).time(), ts(3));
        assert_eq!(sub.get(3).time(), ts(6));
    }

    #[test]
    fn mean_coverage() {
        let mut s = VectorSeries::new(table(), 2);
        let mut v0 = RoutingVector::unknown(ts(0), 2);
        v0.set(0, Catchment::Site(crate::ids::SiteId(0)));
        s.push(v0).unwrap(); // coverage 0.5
        s.push(RoutingVector::unknown(ts(1), 2)).unwrap(); // coverage 0.0
        assert!((s.mean_coverage() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_series_mean_coverage_zero() {
        let s = VectorSeries::new(table(), 2);
        assert_eq!(s.mean_coverage(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn aggregates_align_with_vectors() {
        let mut s = VectorSeries::new(table(), 2);
        let mut v = RoutingVector::unknown(ts(0), 2);
        v.set(0, Catchment::Site(crate::ids::SiteId(1)));
        s.push(v).unwrap();
        let a = s.aggregates();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].per_site, vec![0, 1]);
        assert_eq!(a[0].unknown, 1);
    }
}
