//! Transition matrices (§2.7, Table 3 of the paper).
//!
//! A transition matrix `T(t,t′)` is an `(|S|+3) × (|S|+3)` matrix whose
//! `(s, s′)` cell counts the networks that were in state `s` at time `t` and
//! state `s′` at time `t′`. For quiescent routing the matrix is diagonal and
//! equals `A(t)`; off-diagonal mass localises *who moved where* — e.g. the
//! paper's Table 3a shows 3097 networks moving STR → NAP during a drain.
//!
//! States are the service sites plus the three sentinels (`err`, `other`,
//! `unknown`), mirroring the paper's rows "sites … plus error and other
//! states".

use crate::error::{Error, Result};
use crate::ids::{SiteId, SiteTable};
use crate::vector::{Catchment, RoutingVector};
use crate::weight::Weights;
use serde::{Deserialize, Serialize};

/// Weighted transition matrix between two routing vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionMatrix {
    /// Number of real sites `|S|`; the matrix has `|S| + 3` states.
    num_sites: usize,
    /// Row-major `(|S|+3)²` counts; row = initial state, column = subsequent
    /// state. With uniform weights these are plain network counts.
    cells: Vec<f64>,
}

/// State index layout: sites `0..|S|`, then `err`, `other`, `unknown`.
fn state_index(c: Catchment, num_sites: usize) -> usize {
    match c {
        Catchment::Site(SiteId(s)) if (s as usize) < num_sites => s as usize,
        Catchment::Site(_) | Catchment::Other => num_sites + 1,
        Catchment::Err => num_sites,
        Catchment::Unknown => num_sites + 2,
    }
}

/// A single off-diagonal flow extracted from a transition matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Initial state label.
    pub from: String,
    /// Subsequent state label.
    pub to: String,
    /// Moved weight (count under uniform weights).
    pub weight: f64,
}

impl TransitionMatrix {
    /// Count transitions between `a` (time `t`) and `b` (time `t′`), each
    /// network contributing weight 1.
    pub fn compute(a: &RoutingVector, b: &RoutingVector, num_sites: usize) -> Result<Self> {
        let w = Weights::uniform(a.len());
        Self::compute_weighted(a, b, num_sites, &w)
    }

    /// Count transitions with per-network weights (§2.5 weighting applies to
    /// transition mass just as it does to Φ).
    pub fn compute_weighted(
        a: &RoutingVector,
        b: &RoutingVector,
        num_sites: usize,
        weights: &Weights,
    ) -> Result<Self> {
        if a.len() != b.len() {
            return Err(Error::ShapeMismatch {
                what: "routing vector pair",
                expected: a.len(),
                actual: b.len(),
            });
        }
        if weights.len() != a.len() {
            return Err(Error::ShapeMismatch {
                what: "weights",
                expected: a.len(),
                actual: weights.len(),
            });
        }
        let states = num_sites + 3;
        let mut cells = vec![0.0; states * states];
        for ((ca, cb), &w) in a.iter().zip(b.iter()).zip(weights.values()) {
            let i = state_index(ca, num_sites);
            let j = state_index(cb, num_sites);
            cells[i * states + j] += w;
        }
        Ok(TransitionMatrix { num_sites, cells })
    }

    /// Number of states (`|S| + 3`).
    pub fn states(&self) -> usize {
        self.num_sites + 3
    }

    /// Number of real sites `|S|`.
    pub fn num_sites(&self) -> usize {
        self.num_sites
    }

    /// Cell `(from, to)` by state index.
    pub fn get(&self, from: usize, to: usize) -> f64 {
        self.cells[from * self.states() + to]
    }

    /// The raw cell buffer, row-major `states() × states()` — the
    /// zero-copy slice a serialiser or query server reads instead of
    /// calling [`TransitionMatrix::get`] per cell.
    pub fn cells(&self) -> &[f64] {
        &self.cells
    }

    /// Cell addressed by catchment states.
    pub fn get_catchment(&self, from: Catchment, to: Catchment) -> f64 {
        self.get(
            state_index(from, self.num_sites),
            state_index(to, self.num_sites),
        )
    }

    /// Human-readable state label for index `i`.
    pub fn state_label(&self, i: usize, sites: &SiteTable) -> String {
        if i < self.num_sites {
            sites.name(SiteId(i as u16)).to_owned()
        } else {
            match i - self.num_sites {
                0 => "err".to_owned(),
                1 => "oth".to_owned(),
                _ => "unk".to_owned(),
            }
        }
    }

    /// Total transition mass (equals total weight of the population).
    pub fn total(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// Mass on the diagonal — networks that kept their state.
    pub fn diagonal_mass(&self) -> f64 {
        (0..self.states()).map(|i| self.get(i, i)).sum()
    }

    /// Fraction of mass off the diagonal — the "how much moved" headline.
    pub fn churn(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            1.0 - self.diagonal_mass() / total
        }
    }

    /// Whether the matrix is (numerically) diagonal — quiescent routing.
    pub fn is_diagonal(&self) -> bool {
        self.churn() == 0.0
    }

    /// Off-diagonal flows sorted by descending weight, labelled through
    /// `sites` — "3097 networks move from STR to NAP".
    pub fn top_flows(&self, sites: &SiteTable, limit: usize) -> Vec<Flow> {
        let states = self.states();
        let mut flows: Vec<Flow> = Vec::new();
        for i in 0..states {
            for j in 0..states {
                if i != j {
                    let w = self.get(i, j);
                    if w > 0.0 {
                        flows.push(Flow {
                            from: self.state_label(i, sites),
                            to: self.state_label(j, sites),
                            weight: w,
                        });
                    }
                }
            }
        }
        flows.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite weights"));
        flows.truncate(limit);
        flows
    }

    /// Render in the layout of the paper's Table 3: initial states as rows,
    /// subsequent states as columns.
    pub fn render(&self, sites: &SiteTable) -> String {
        let states = self.states();
        let labels: Vec<String> = (0..states).map(|i| self.state_label(i, sites)).collect();
        let width = labels
            .iter()
            .map(|l| l.len())
            .chain(self.cells.iter().map(|c| format!("{c:.0}").len()))
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        out.push_str(&format!("{:>width$} |", ""));
        for l in &labels {
            out.push_str(&format!(" {l:>width$}"));
        }
        out.push('\n');
        out.push_str(&"-".repeat((width + 2) + states * (width + 1)));
        out.push('\n');
        for (i, l) in labels.iter().enumerate() {
            out.push_str(&format!("{l:>width$} |"));
            for j in 0..states {
                out.push_str(&format!(" {:>width$.0}", self.get(i, j)));
            }
            out.push('\n');
        }
        out
    }

    /// Export as CSV with header row/column labels.
    pub fn to_csv(&self, sites: &SiteTable) -> String {
        let states = self.states();
        let labels: Vec<String> = (0..states).map(|i| self.state_label(i, sites)).collect();
        let mut out = String::from("from\\to");
        for l in &labels {
            out.push(',');
            out.push_str(l);
        }
        out.push('\n');
        for (i, l) in labels.iter().enumerate() {
            out.push_str(l);
            for j in 0..states {
                out.push_str(&format!(",{}", self.get(i, j)));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn s(n: u16) -> Catchment {
        Catchment::Site(SiteId(n))
    }

    fn v(cs: &[Catchment]) -> RoutingVector {
        RoutingVector::from_catchments(Timestamp::from_days(0), cs.to_vec())
    }

    #[test]
    fn quiescent_routing_is_diagonal() {
        let a = v(&[s(0), s(1), s(1), Catchment::Err]);
        let t = TransitionMatrix::compute(&a, &a, 2).unwrap();
        assert!(t.is_diagonal());
        assert_eq!(t.churn(), 0.0);
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(1, 1), 2.0);
        assert_eq!(t.get_catchment(Catchment::Err, Catchment::Err), 1.0);
        assert_eq!(t.total(), 4.0);
        // The raw buffer is the same data get() reads, row-major.
        assert_eq!(t.cells().len(), t.states() * t.states());
        assert_eq!(t.cells()[0], 1.0);
        assert_eq!(t.cells().iter().sum::<f64>(), t.total());
    }

    #[test]
    fn drain_shows_up_off_diagonal() {
        // STR (site 2) drains to NAP (site 1), as in Table 3a.
        let a = v(&[s(2), s(2), s(2), s(0)]);
        let b = v(&[s(1), s(1), Catchment::Err, s(0)]);
        let t = TransitionMatrix::compute(&a, &b, 3).unwrap();
        assert_eq!(t.get_catchment(s(2), s(1)), 2.0);
        assert_eq!(t.get_catchment(s(2), Catchment::Err), 1.0);
        assert_eq!(t.get_catchment(s(0), s(0)), 1.0);
        assert!((t.churn() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn weighted_transitions_scale_mass() {
        let a = v(&[s(0), s(1)]);
        let b = v(&[s(1), s(1)]);
        let w = Weights::from_values(vec![10.0, 1.0]).unwrap();
        let t = TransitionMatrix::compute_weighted(&a, &b, 2, &w).unwrap();
        assert_eq!(t.get_catchment(s(0), s(1)), 10.0);
        assert_eq!(t.get_catchment(s(1), s(1)), 1.0);
        assert!((t.churn() - 10.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn shape_mismatches_rejected() {
        let a = v(&[s(0)]);
        let b = v(&[s(0), s(1)]);
        assert!(TransitionMatrix::compute(&a, &b, 2).is_err());
        let b1 = v(&[s(0)]);
        let w = Weights::uniform(2);
        assert!(TransitionMatrix::compute_weighted(&a, &b1, 2, &w).is_err());
    }

    #[test]
    fn unknown_is_a_state() {
        let a = v(&[Catchment::Unknown, s(0)]);
        let b = v(&[s(0), Catchment::Unknown]);
        let t = TransitionMatrix::compute(&a, &b, 1).unwrap();
        assert_eq!(t.get_catchment(Catchment::Unknown, s(0)), 1.0);
        assert_eq!(t.get_catchment(s(0), Catchment::Unknown), 1.0);
        assert_eq!(t.churn(), 1.0);
    }

    #[test]
    fn out_of_range_site_folds_into_other() {
        let a = v(&[s(9)]);
        let b = v(&[Catchment::Other]);
        let t = TransitionMatrix::compute(&a, &b, 2).unwrap();
        assert_eq!(t.get_catchment(Catchment::Other, Catchment::Other), 1.0);
    }

    #[test]
    fn top_flows_ranks_by_mass() {
        let sites = SiteTable::from_names(["CMH", "NAP", "STR"]);
        let a = v(&[s(2), s(2), s(2), s(0)]);
        let b = v(&[s(1), s(1), Catchment::Err, s(1)]);
        let t = TransitionMatrix::compute(&a, &b, 3).unwrap();
        let flows = t.top_flows(&sites, 10);
        assert_eq!(flows[0].from, "STR");
        assert_eq!(flows[0].to, "NAP");
        assert_eq!(flows[0].weight, 2.0);
        assert_eq!(flows.len(), 3);
        let limited = t.top_flows(&sites, 1);
        assert_eq!(limited.len(), 1);
    }

    #[test]
    fn render_contains_labels_and_counts() {
        let sites = SiteTable::from_names(["CMH", "NAP"]);
        let a = v(&[s(0), s(1), s(1)]);
        let b = v(&[s(0), s(0), s(1)]);
        let t = TransitionMatrix::compute(&a, &b, 2).unwrap();
        let r = t.render(&sites);
        assert!(r.contains("CMH"));
        assert!(r.contains("NAP"));
        assert!(r.contains("err"));
        assert!(r.contains("unk"));
    }

    #[test]
    fn csv_round_shape() {
        let sites = SiteTable::from_names(["A"]);
        let a = v(&[s(0)]);
        let t = TransitionMatrix::compute(&a, &a, 1).unwrap();
        let csv = t.to_csv(&sites);
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 5); // header + 4 states (A, err, oth, unk)
        assert!(lines[0].starts_with("from\\to,A,err,oth,unk"));
    }

    #[test]
    fn empty_matrix_has_zero_churn() {
        let a = v(&[]);
        let t = TransitionMatrix::compute(&a, &a, 2).unwrap();
        assert_eq!(t.churn(), 0.0);
        assert!(t.is_diagonal());
    }
}
