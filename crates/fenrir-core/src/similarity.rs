//! Pairwise comparison of routing vectors (§2.6.1 of the paper).
//!
//! Fenrir adopts a weighted Gower similarity between two routing vectors
//! `D(t)` and `D(t′)`. Element `n` *matches* when both vectors place it in
//! the same catchment and that catchment is known:
//!
//! ```text
//! M(t,t′,n) = 1  if D(t,n) = D(t′,n) ∧ D(t,n) ≠ unknown
//!             0  otherwise
//!
//! Φ(t,t′) = Σ_n M(t,t′,n)·D_w(n) / Σ_n D_w(n)
//! ```
//!
//! `Φ` is the weighted fraction of networks whose catchment is *the same* in
//! both vectors — "is routing 80% like last month?".
//!
//! Two [`UnknownPolicy`]s are provided. [`UnknownPolicy::Pessimistic`] is the
//! paper's default and treats any unknown as a non-match, which caps Φ at the
//! known fraction (the paper observes Verfploeter's ~50% non-response pins
//! stable-routing Φ to 0.5–0.6). [`UnknownPolicy::KnownOnly`] is the paper's
//! stated ongoing work: it drops networks that are unknown in either vector
//! from both numerator and denominator, so Φ measures similarity *of known
//! networks* and stable routing scores near 1.0.

use crate::error::{Error, Result};
use crate::guard::DivergenceGuard;
use crate::series::VectorSeries;
use crate::vector::{RoutingVector, CODE_UNKNOWN};
use crate::weight::Weights;
use serde::{Deserialize, Serialize};

/// How unknown observations enter Φ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum UnknownPolicy {
    /// Paper default (§2.6.1): an unknown on either side is a non-match and
    /// its weight stays in the denominator. Pessimistic — imperfect coverage
    /// depresses Φ.
    #[default]
    Pessimistic,
    /// Paper's stated ongoing work: networks unknown in either vector are
    /// excluded from numerator *and* denominator, so Φ compares only
    /// commonly-known networks. Returns 0 when nothing is commonly known.
    KnownOnly,
}

/// Weighted Gower similarity `Φ(t,t′) ∈ [0, 1]` between two vectors.
///
/// # Panics
///
/// Debug-asserts that both vectors and the weights have equal length; use
/// [`phi_checked`] for a fallible variant.
pub fn phi(a: &RoutingVector, b: &RoutingVector, w: &Weights, policy: UnknownPolicy) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "vector lengths differ");
    debug_assert_eq!(a.len(), w.len(), "weights length differs");
    let wa = w.values();
    match policy {
        UnknownPolicy::Pessimistic => {
            let mut num = 0.0;
            for ((&ca, &cb), &wn) in a.codes().iter().zip(b.codes()).zip(wa) {
                if ca == cb && ca != CODE_UNKNOWN {
                    num += wn;
                }
            }
            if w.total() == 0.0 {
                0.0
            } else {
                num / w.total()
            }
        }
        UnknownPolicy::KnownOnly => {
            let mut num = 0.0;
            let mut den = 0.0;
            for ((&ca, &cb), &wn) in a.codes().iter().zip(b.codes()).zip(wa) {
                if ca == CODE_UNKNOWN || cb == CODE_UNKNOWN {
                    continue;
                }
                den += wn;
                if ca == cb {
                    num += wn;
                }
            }
            if den == 0.0 {
                0.0
            } else {
                num / den
            }
        }
    }
}

/// Fallible wrapper around [`phi`] validating shapes (for callers handling
/// untrusted data).
pub fn phi_checked(
    a: &RoutingVector,
    b: &RoutingVector,
    w: &Weights,
    policy: UnknownPolicy,
) -> Result<f64> {
    if a.len() != b.len() {
        return Err(Error::ShapeMismatch {
            what: "routing vector pair",
            expected: a.len(),
            actual: b.len(),
        });
    }
    if w.len() != a.len() {
        return Err(Error::ShapeMismatch {
            what: "weights",
            expected: a.len(),
            actual: w.len(),
        });
    }
    Ok(phi(a, b, w, policy))
}

/// Gower *distance* `1 − Φ` — what the clustering operates on.
pub fn gower_distance(
    a: &RoutingVector,
    b: &RoutingVector,
    w: &Weights,
    policy: UnknownPolicy,
) -> f64 {
    1.0 - phi(a, b, w, policy)
}

/// Number of stored cells for an `n × n` symmetric matrix kept as its lower
/// triangle (diagonal included).
#[inline]
fn tri_len(n: usize) -> usize {
    n * (n + 1) / 2
}

/// Symmetric all-pairs similarity matrix over a series — the backing data of
/// the paper's heatmaps (Figures 2b, 3b, 5, 6b) and the input to clustering.
///
/// Φ is symmetric, so only the lower triangle (diagonal included) is stored:
/// `n·(n+1)/2` cells instead of `n²`, halving resident memory and serialized
/// size for the multi-year matrices the daily-operations workflow keeps
/// around. The triangle is row-major — row `i` holds `Φ(i, 0..=i)` — so
/// appending an observation appends one contiguous row and
/// [`SimilarityMatrix::extend`] never re-embeds history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilarityMatrix {
    n: usize,
    /// Lower triangle with diagonal, row-major: `values[i·(i+1)/2 + j]` is
    /// `Φ(i, j)` for `j ≤ i`.
    values: Vec<f64>,
}

impl SimilarityMatrix {
    /// Position of `(i, j)` in the condensed buffer (order-insensitive).
    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.n && j < self.n, "({i}, {j}) out of {}", self.n);
        let (lo, hi) = if i <= j { (i, j) } else { (j, i) };
        hi * (hi + 1) / 2 + lo
    }

    /// Compute Φ for all pairs of vectors in `series`, sequentially.
    ///
    /// Errors if the series is empty or weights mismatch the population.
    pub fn compute(series: &VectorSeries, w: &Weights, policy: UnknownPolicy) -> Result<Self> {
        Self::validate(series, w)?;
        let n = series.len();
        let mut values = Vec::with_capacity(tri_len(n));
        for i in 0..n {
            let a = series.get(i);
            for j in 0..=i {
                values.push(phi(a, series.get(j), w, policy));
            }
        }
        Ok(SimilarityMatrix { n, values })
    }

    /// Like [`SimilarityMatrix::compute`] but splits rows across `threads`
    /// OS threads with `crossbeam::scope`. All-pairs Φ is `O(|T|²·N)` and is
    /// the dominant cost on multi-year datasets.
    ///
    /// A worker panic surfaces as [`Error::Internal`] instead of aborting
    /// the process, so campaign runners can quarantine the analysis and
    /// continue with the rest of the batch.
    pub fn compute_parallel(
        series: &VectorSeries,
        w: &Weights,
        policy: UnknownPolicy,
        threads: usize,
    ) -> Result<Self> {
        Self::validate(series, w)?;
        let n = series.len();
        let threads = threads.max(1).min(n);
        let mut values = vec![0.0; tri_len(n)];
        {
            // Hand each worker a disjoint set of triangle rows, strided so
            // the growing rows (row i holds i+1 cells) balance out.
            let mut per_thread: Vec<Vec<(usize, &mut [f64])>> =
                (0..threads).map(|_| Vec::new()).collect();
            let mut rest: &mut [f64] = &mut values;
            for i in 0..n {
                let (row, tail) = rest.split_at_mut(i + 1);
                per_thread[i % threads].push((i, row));
                rest = tail;
            }
            let joined = crossbeam::scope(|scope| {
                for rows in per_thread {
                    scope.spawn(move |_| {
                        for (i, row) in rows {
                            let a = series.get(i);
                            for (j, cell) in row.iter_mut().enumerate() {
                                *cell = phi(a, series.get(j), w, policy);
                            }
                        }
                    });
                }
            });
            if joined.is_err() {
                return Err(Error::Internal {
                    what: "similarity worker",
                    message: "a worker thread panicked while computing Φ rows".into(),
                });
            }
        }
        Ok(SimilarityMatrix { n, values })
    }

    fn validate(series: &VectorSeries, w: &Weights) -> Result<()> {
        if series.is_empty() {
            return Err(Error::EmptyInput("vector series"));
        }
        if w.len() != series.networks() {
            return Err(Error::ShapeMismatch {
                what: "weights",
                expected: series.networks(),
                actual: w.len(),
            });
        }
        Ok(())
    }

    /// Extend an existing matrix with rows/columns for observations newly
    /// appended to `series` — the daily-operations path: an operator adds
    /// one observation per sweep and must not recompute `O(|T|²·N)` history.
    ///
    /// The first `self.len()` observations of `series` must be the ones
    /// this matrix was computed from; a corner cell is recomputed as a
    /// cheap spot check and a mismatch is rejected. Only the
    /// `series.len() − self.len()` new rows are computed, each `O(|T|·N)`.
    ///
    /// Errors if the series is shorter than the matrix, weights mismatch,
    /// or the spot check fails.
    pub fn extend(
        &mut self,
        series: &VectorSeries,
        w: &Weights,
        policy: UnknownPolicy,
    ) -> Result<()> {
        Self::validate(series, w)?;
        let old_n = self.n;
        let new_n = series.len();
        if new_n < old_n {
            return Err(Error::ShapeMismatch {
                what: "extended series",
                expected: old_n,
                actual: new_n,
            });
        }
        if new_n == old_n {
            return Ok(());
        }
        // Spot check: the most distant stored pair must still reproduce.
        let check = phi(series.get(0), series.get(old_n - 1), w, policy);
        if (check - self.get(0, old_n - 1)).abs() > 1e-12 {
            return Err(Error::InvalidParameter {
                name: "series",
                message: format!(
                    "prefix changed since the matrix was computed: Φ(0, {}) is {check},                      matrix has {}",
                    old_n - 1,
                    self.get(0, old_n - 1)
                ),
            });
        }
        // The condensed triangle grows by appending one contiguous row per
        // new observation — stored history is never touched or re-embedded.
        self.values.reserve(tri_len(new_n) - tri_len(old_n));
        for i in old_n..new_n {
            let a = series.get(i);
            for j in 0..=i {
                self.values.push(phi(a, series.get(j), w, policy));
            }
        }
        self.n = new_n;
        Ok(())
    }

    /// Like [`SimilarityMatrix::extend`], but wrapped in a runtime
    /// [`DivergenceGuard`]: sampled extends are cross-checked against a
    /// full batch recompute, a bitwise mismatch records a typed
    /// [`Error::IncrementalDivergence`](crate::error::Error) on the guard,
    /// the batch matrix replaces the diverged one, and the guard's
    /// quarantine steers every later call straight to the batch path. The
    /// returned `Result` only carries *caller* errors (shape mismatches, a
    /// changed prefix); a divergence repairs itself and reports through
    /// the guard instead of failing the campaign.
    pub fn extend_guarded(
        &mut self,
        series: &VectorSeries,
        w: &Weights,
        policy: UnknownPolicy,
        guard: &mut DivergenceGuard,
    ) -> Result<()> {
        if guard.quarantined() {
            *self = Self::compute(series, w, policy)?;
            return Ok(());
        }
        let old_n = self.n;
        self.extend(series, w, policy)?;
        if guard.should_check(self.n > old_n) {
            let batch = Self::compute(series, w, policy)?;
            let mismatch = self.n != batch.n
                || self
                    .values
                    .iter()
                    .zip(&batch.values)
                    .any(|(a, b)| a.to_bits() != b.to_bits());
            if mismatch {
                let cell = self
                    .values
                    .iter()
                    .zip(&batch.values)
                    .position(|(a, b)| a.to_bits() != b.to_bits());
                guard.record(
                    "similarity matrix",
                    match cell {
                        Some(k) => format!(
                            "condensed cell {k} is {}, batch computed {}",
                            self.values[k], batch.values[k]
                        ),
                        None => format!("dimension {} vs batch {}", self.n, batch.n),
                    },
                );
                *self = batch;
            }
        }
        Ok(())
    }

    /// Rebuild a matrix from its condensed lower-triangle buffer (the
    /// exact bytes [`SimilarityMatrix::raw`] exposes) — the journal
    /// restore path. Validates the cell count and that every Φ is finite
    /// and within `[0, 1]`.
    pub fn from_condensed(n: usize, values: Vec<f64>) -> Result<Self> {
        if values.len() != tri_len(n) {
            return Err(Error::ShapeMismatch {
                what: "condensed similarity buffer",
                expected: tri_len(n),
                actual: values.len(),
            });
        }
        for (k, &v) in values.iter().enumerate() {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(Error::InvalidParameter {
                    name: "values",
                    message: format!(
                        "Φ at condensed cell {k} is {v}, not a finite value in [0, 1]"
                    ),
                });
            }
        }
        Ok(SimilarityMatrix { n, values })
    }

    /// The condensed cells appended for observation `i`: `Φ(i, 0..=i)`,
    /// `i + 1` values. This is the per-observation delta a journal frame
    /// persists — history rows never change, so replaying these slices in
    /// order reproduces [`SimilarityMatrix::raw`] bit-for-bit.
    pub fn condensed_row(&self, i: usize) -> &[f64] {
        &self.values[tri_len(i)..tri_len(i + 1)]
    }

    /// Build from a precomputed row-major `n × n` dense buffer (used by
    /// tests and ingestion paths). The buffer must be exactly symmetric;
    /// only its lower triangle is kept.
    pub fn from_raw(n: usize, values: Vec<f64>) -> Result<Self> {
        if values.len() != n * n {
            return Err(Error::ShapeMismatch {
                what: "similarity matrix buffer",
                expected: n * n,
                actual: values.len(),
            });
        }
        let mut condensed = Vec::with_capacity(tri_len(n));
        for i in 0..n {
            for j in 0..=i {
                let lower = values[i * n + j];
                let upper = values[j * n + i];
                if lower.to_bits() != upper.to_bits() {
                    return Err(Error::InvalidParameter {
                        name: "values",
                        message: format!(
                            "matrix is not symmetric at ({i}, {j}): {lower} vs {upper}"
                        ),
                    });
                }
                condensed.push(lower);
            }
        }
        Ok(SimilarityMatrix {
            n,
            values: condensed,
        })
    }

    /// Matrix dimension (number of observation times).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is 0×0.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// `Φ` between observations `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[self.idx(i, j)]
    }

    /// Gower distance `1 − Φ` between observations `i` and `j`.
    #[inline]
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        1.0 - self.get(i, j)
    }

    /// `Φ` between observations `i` and `j` with bounds checking — the
    /// single-pair lookup for callers holding untrusted indices (a query
    /// server resolving client-supplied times). [`SimilarityMatrix::get`]
    /// stays the hot unchecked path for internal iteration.
    pub fn get_checked(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.n || j >= self.n {
            return Err(Error::InvalidParameter {
                name: "similarity index",
                message: format!("pair ({i}, {j}) out of range for {} observations", self.n),
            });
        }
        Ok(self.get(i, j))
    }

    /// Full row `i` (all `n` columns, symmetry expanded).
    pub fn row(&self, i: usize) -> Vec<f64> {
        (0..self.n).map(|j| self.get(i, j)).collect()
    }

    /// Raw condensed buffer: the lower triangle with diagonal, row-major
    /// (`n·(n+1)/2` cells). Two matrices over the same observations are
    /// equal iff their raw buffers are equal.
    pub fn raw(&self) -> &[f64] {
        &self.values
    }

    /// `[min, max]` of Φ over a set of index pairs — the paper reports mode
    /// similarity as ranges like `Φ in [0.31, 0.65]`.
    pub fn range_over<I: IntoIterator<Item = (usize, usize)>>(
        &self,
        pairs: I,
    ) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut any = false;
        for (i, j) in pairs {
            let v = self.get(i, j);
            lo = lo.min(v);
            hi = hi.max(v);
            any = true;
        }
        any.then_some((lo, hi))
    }

    /// Φ range over all distinct pairs within one group of indices —
    /// intra-mode similarity. Returns `None` for groups with <2 members.
    pub fn intra_range(&self, group: &[usize]) -> Option<(f64, f64)> {
        let mut pairs = Vec::new();
        for (k, &i) in group.iter().enumerate() {
            for &j in &group[k + 1..] {
                pairs.push((i, j));
            }
        }
        self.range_over(pairs)
    }

    /// Φ range over the cross product of two groups — inter-mode similarity
    /// like the paper's `Φ(M_i, M_ii) = [0.11, 0.48]`.
    pub fn inter_range(&self, a: &[usize], b: &[usize]) -> Option<(f64, f64)> {
        let mut pairs = Vec::new();
        for &i in a {
            for &j in b {
                pairs.push((i, j));
            }
        }
        self.range_over(pairs)
    }

    /// Mean Φ over the cross product of two groups.
    pub fn inter_mean(&self, a: &[usize], b: &[usize]) -> Option<f64> {
        if a.is_empty() || b.is_empty() {
            return None;
        }
        let mut sum = 0.0;
        for &i in a {
            for &j in b {
                sum += self.get(i, j);
            }
        }
        Some(sum / (a.len() * b.len()) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{SiteId, SiteTable};
    use crate::time::Timestamp;
    use crate::vector::Catchment;

    fn ts(d: i64) -> Timestamp {
        Timestamp::from_days(d)
    }

    fn v(d: i64, cs: &[Catchment]) -> RoutingVector {
        RoutingVector::from_catchments(ts(d), cs.to_vec())
    }

    fn s(n: u16) -> Catchment {
        Catchment::Site(SiteId(n))
    }

    #[test]
    fn identical_known_vectors_have_phi_one() {
        let a = v(0, &[s(0), s(1), Catchment::Err]);
        let b = v(1, &[s(0), s(1), Catchment::Err]);
        let w = Weights::uniform(3);
        assert_eq!(phi(&a, &b, &w, UnknownPolicy::Pessimistic), 1.0);
        assert_eq!(phi(&a, &b, &w, UnknownPolicy::KnownOnly), 1.0);
    }

    #[test]
    fn get_checked_rejects_out_of_range_pairs() {
        let a = v(0, &[s(0), s(1)]);
        let b = v(1, &[s(0), s(0)]);
        let series =
            VectorSeries::from_vectors(SiteTable::from_names(["A", "B"]), 2, vec![a, b]).unwrap();
        let m =
            SimilarityMatrix::compute(&series, &Weights::uniform(2), UnknownPolicy::Pessimistic)
                .unwrap();
        assert_eq!(
            m.get_checked(0, 1).unwrap().to_bits(),
            m.get(0, 1).to_bits()
        );
        assert!(matches!(
            m.get_checked(0, 2),
            Err(Error::InvalidParameter { .. })
        ));
        assert!(m.get_checked(5, 0).is_err());
    }

    #[test]
    fn fully_disjoint_vectors_have_phi_zero() {
        let a = v(0, &[s(0), s(0)]);
        let b = v(1, &[s(1), s(1)]);
        let w = Weights::uniform(2);
        assert_eq!(phi(&a, &b, &w, UnknownPolicy::Pessimistic), 0.0);
    }

    #[test]
    fn pessimistic_counts_unknown_as_changed() {
        // Both unknown at slot 1 — still a non-match under the paper rule.
        let a = v(0, &[s(0), Catchment::Unknown]);
        let b = v(1, &[s(0), Catchment::Unknown]);
        let w = Weights::uniform(2);
        assert_eq!(phi(&a, &b, &w, UnknownPolicy::Pessimistic), 0.5);
    }

    #[test]
    fn known_only_drops_unknowns_from_denominator() {
        let a = v(0, &[s(0), Catchment::Unknown, s(1)]);
        let b = v(1, &[s(0), s(2), Catchment::Unknown]);
        let w = Weights::uniform(3);
        // Only slot 0 is known on both sides, and it matches.
        assert_eq!(phi(&a, &b, &w, UnknownPolicy::KnownOnly), 1.0);
    }

    #[test]
    fn known_only_with_nothing_known_is_zero() {
        let a = v(0, &[Catchment::Unknown]);
        let b = v(1, &[Catchment::Unknown]);
        let w = Weights::uniform(1);
        assert_eq!(phi(&a, &b, &w, UnknownPolicy::KnownOnly), 0.0);
    }

    #[test]
    fn verfploeter_ceiling_effect() {
        // Paper: with ~half the networks unknown, a stable catchment shows
        // Φ between 0.5 and 0.6 under the pessimistic policy.
        let n = 1000;
        let cs: Vec<Catchment> = (0..n)
            .map(|i| if i % 2 == 0 { s(0) } else { Catchment::Unknown })
            .collect();
        let a = RoutingVector::from_catchments(ts(0), cs.clone());
        let b = RoutingVector::from_catchments(ts(1), cs);
        let w = Weights::uniform(n);
        let p = phi(&a, &b, &w, UnknownPolicy::Pessimistic);
        assert!((p - 0.5).abs() < 1e-12);
        // Known-only lifts the ceiling back to 1.0.
        assert_eq!(phi(&a, &b, &w, UnknownPolicy::KnownOnly), 1.0);
    }

    #[test]
    fn weights_shift_phi() {
        let a = v(0, &[s(0), s(1)]);
        let b = v(1, &[s(0), s(2)]);
        // Slot 0 matches; weight it 3x as heavy as slot 1.
        let w = Weights::from_values(vec![3.0, 1.0]).unwrap();
        assert!((phi(&a, &b, &w, UnknownPolicy::Pessimistic) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn phi_is_symmetric() {
        let a = v(0, &[s(0), Catchment::Unknown, s(2), Catchment::Err]);
        let b = v(1, &[s(1), s(1), s(2), Catchment::Unknown]);
        let w = Weights::from_values(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        for p in [UnknownPolicy::Pessimistic, UnknownPolicy::KnownOnly] {
            assert_eq!(phi(&a, &b, &w, p), phi(&b, &a, &w, p));
        }
    }

    #[test]
    fn err_and_other_are_matchable_states() {
        // The err state is a real observation; two vectors that both put a
        // network in err agree (the paper's transition matrices treat err as
        // a state).
        let a = v(0, &[Catchment::Err, Catchment::Other]);
        let b = v(1, &[Catchment::Err, Catchment::Other]);
        let w = Weights::uniform(2);
        assert_eq!(phi(&a, &b, &w, UnknownPolicy::Pessimistic), 1.0);
    }

    #[test]
    fn checked_rejects_mismatched_shapes() {
        let a = v(0, &[s(0)]);
        let b = v(1, &[s(0), s(1)]);
        let w = Weights::uniform(1);
        assert!(phi_checked(&a, &b, &w, UnknownPolicy::Pessimistic).is_err());
        let b1 = v(1, &[s(0)]);
        let w2 = Weights::uniform(2);
        assert!(phi_checked(&a, &b1, &w2, UnknownPolicy::Pessimistic).is_err());
        assert!(phi_checked(&a, &b1, &w, UnknownPolicy::Pessimistic).is_ok());
    }

    #[test]
    fn distance_is_one_minus_phi() {
        let a = v(0, &[s(0), s(1)]);
        let b = v(1, &[s(0), s(2)]);
        let w = Weights::uniform(2);
        let d = gower_distance(&a, &b, &w, UnknownPolicy::Pessimistic);
        assert!((d - 0.5).abs() < 1e-12);
    }

    fn small_series() -> (VectorSeries, Weights) {
        let sites = SiteTable::from_names(["A", "B", "C"]);
        let vs = vec![
            v(0, &[s(0), s(0), s(1), s(2)]),
            v(1, &[s(0), s(0), s(1), s(2)]),
            v(2, &[s(1), s(1), s(1), s(2)]),
            v(3, &[s(1), s(1), s(2), s(2)]),
        ];
        let series = VectorSeries::from_vectors(sites, 4, vs).unwrap();
        let w = Weights::uniform(4);
        (series, w)
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let (series, w) = small_series();
        let m = SimilarityMatrix::compute(&series, &w, UnknownPolicy::Pessimistic).unwrap();
        for i in 0..4 {
            assert_eq!(m.get(i, i), 1.0);
            for j in 0..4 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
        assert_eq!(m.get(0, 1), 1.0);
        assert!((m.get(0, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_sequential() {
        let (series, w) = small_series();
        let a = SimilarityMatrix::compute(&series, &w, UnknownPolicy::Pessimistic).unwrap();
        for threads in [1, 2, 3, 8] {
            let b = SimilarityMatrix::compute_parallel(
                &series,
                &w,
                UnknownPolicy::Pessimistic,
                threads,
            )
            .unwrap();
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn extend_matches_full_recompute() {
        let (series, w) = small_series();
        // Compute over the 2-observation prefix, then extend to 4.
        let prefix = series.slice_time(series.get(0).time(), series.get(1).time());
        for policy in [UnknownPolicy::Pessimistic, UnknownPolicy::KnownOnly] {
            let mut m = SimilarityMatrix::compute(&prefix, &w, policy).unwrap();
            m.extend(&series, &w, policy).unwrap();
            let full = SimilarityMatrix::compute(&series, &w, policy).unwrap();
            assert_eq!(m, full, "{policy:?}");
        }
    }

    #[test]
    fn extend_is_a_noop_for_same_length() {
        let (series, w) = small_series();
        let mut m = SimilarityMatrix::compute(&series, &w, UnknownPolicy::Pessimistic).unwrap();
        let before = m.clone();
        m.extend(&series, &w, UnknownPolicy::Pessimistic).unwrap();
        assert_eq!(m, before);
    }

    #[test]
    fn extend_rejects_changed_prefix() {
        let (series, w) = small_series();
        let prefix = series.slice_time(series.get(0).time(), series.get(1).time());
        let mut m = SimilarityMatrix::compute(&prefix, &w, UnknownPolicy::Pessimistic).unwrap();
        // Mutate the prefix region before extending.
        let mut altered = series.clone();
        for c in altered.get_mut(1).codes_mut() {
            *c = 2;
        }
        assert!(
            m.extend(&altered, &w, UnknownPolicy::Pessimistic).is_err(),
            "changed prefix must be rejected"
        );
    }

    #[test]
    fn extend_rejects_shrunken_series() {
        let (series, w) = small_series();
        let mut m = SimilarityMatrix::compute(&series, &w, UnknownPolicy::Pessimistic).unwrap();
        let prefix = series.slice_time(series.get(0).time(), series.get(1).time());
        assert!(m.extend(&prefix, &w, UnknownPolicy::Pessimistic).is_err());
    }

    #[test]
    fn matrix_rejects_empty_series() {
        let sites = SiteTable::from_names(["A"]);
        let series = VectorSeries::new(sites, 1);
        let w = Weights::uniform(1);
        assert!(matches!(
            SimilarityMatrix::compute(&series, &w, UnknownPolicy::Pessimistic),
            Err(Error::EmptyInput(_))
        ));
    }

    #[test]
    fn matrix_rejects_weight_mismatch() {
        let (series, _) = small_series();
        let w = Weights::uniform(3);
        assert!(SimilarityMatrix::compute(&series, &w, UnknownPolicy::Pessimistic).is_err());
    }

    #[test]
    fn from_condensed_round_trips_raw() {
        let (series, w) = small_series();
        let m = SimilarityMatrix::compute(&series, &w, UnknownPolicy::Pessimistic).unwrap();
        let back = SimilarityMatrix::from_condensed(m.len(), m.raw().to_vec()).unwrap();
        assert_eq!(m, back);
        // Condensed rows concatenate back into the raw buffer.
        let rebuilt: Vec<f64> = (0..m.len())
            .flat_map(|i| m.condensed_row(i).to_vec())
            .collect();
        assert_eq!(rebuilt, m.raw());
    }

    #[test]
    fn from_condensed_rejects_bad_cells() {
        assert!(SimilarityMatrix::from_condensed(2, vec![1.0; 2]).is_err());
        assert!(SimilarityMatrix::from_condensed(2, vec![1.0, f64::NAN, 1.0]).is_err());
        assert!(SimilarityMatrix::from_condensed(2, vec![1.0, 1.5, 1.0]).is_err());
        assert!(SimilarityMatrix::from_condensed(2, vec![1.0, 0.5, 1.0]).is_ok());
    }

    #[test]
    fn extend_guarded_matches_plain_extend_when_clean() {
        let (series, w) = small_series();
        let prefix = series.slice_time(series.get(0).time(), series.get(1).time());
        let mut guard = crate::guard::DivergenceGuard::new(crate::guard::SamplingRate::always());
        let mut m = SimilarityMatrix::compute(&prefix, &w, UnknownPolicy::Pessimistic).unwrap();
        m.extend_guarded(&series, &w, UnknownPolicy::Pessimistic, &mut guard)
            .unwrap();
        let full = SimilarityMatrix::compute(&series, &w, UnknownPolicy::Pessimistic).unwrap();
        assert_eq!(m, full);
        assert!(!guard.quarantined());
        assert_eq!(guard.drain_new(), 0);
    }

    #[test]
    fn extend_guarded_repairs_and_quarantines_on_divergence() {
        let (series, w) = small_series();
        let prefix = series.slice_time(series.get(0).time(), series.get(1).time());
        let mut guard = crate::guard::DivergenceGuard::new(crate::guard::SamplingRate::always());
        let mut m = SimilarityMatrix::compute(&prefix, &w, UnknownPolicy::Pessimistic).unwrap();
        // Poison a stored cell: the diagonal spot-check still passes (it
        // recomputes Φ(0, old_n−1), cell index 1), so corrupt the diagonal
        // of row 1 instead — only the guard's batch cross-check sees it.
        m.values[2] = 0.123;
        m.extend_guarded(&series, &w, UnknownPolicy::Pessimistic, &mut guard)
            .unwrap();
        // The batch result replaced the poisoned matrix...
        let full = SimilarityMatrix::compute(&series, &w, UnknownPolicy::Pessimistic).unwrap();
        assert_eq!(m, full);
        // ...and the guard recorded + quarantined.
        assert!(guard.quarantined());
        assert_eq!(guard.drain_new(), 1);
        // Further guarded extends take the batch path and stay correct.
        m.extend_guarded(&series, &w, UnknownPolicy::Pessimistic, &mut guard)
            .unwrap();
        assert_eq!(m, full);
    }

    #[test]
    fn from_raw_validates_size() {
        assert!(SimilarityMatrix::from_raw(2, vec![0.0; 3]).is_err());
        assert!(SimilarityMatrix::from_raw(2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn from_raw_rejects_asymmetry() {
        let m = SimilarityMatrix::from_raw(2, vec![1.0, 0.3, 0.4, 1.0]);
        assert!(matches!(m, Err(Error::InvalidParameter { .. })));
    }

    #[test]
    fn from_raw_round_trips_through_get() {
        let dense = vec![1.0, 0.25, 0.25, 1.0];
        let m = SimilarityMatrix::from_raw(2, dense).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 0.25);
        assert_eq!(m.get(1, 0), 0.25);
    }

    #[test]
    fn ranges() {
        let (series, w) = small_series();
        let m = SimilarityMatrix::compute(&series, &w, UnknownPolicy::Pessimistic).unwrap();
        let (lo, hi) = m.intra_range(&[0, 1]).unwrap();
        assert_eq!((lo, hi), (1.0, 1.0));
        assert!(m.intra_range(&[0]).is_none());
        let (lo, hi) = m.inter_range(&[0, 1], &[2, 3]).unwrap();
        assert!(lo <= hi);
        assert!(hi <= 1.0 && lo >= 0.0);
        assert!(m.inter_mean(&[0], &[]).is_none());
        assert!((m.inter_mean(&[0, 1], &[0, 1]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn row_slices() {
        let (series, w) = small_series();
        let m = SimilarityMatrix::compute(&series, &w, UnknownPolicy::Pessimistic).unwrap();
        assert_eq!(m.row(0).len(), 4);
        assert_eq!(m.row(0)[1], m.get(0, 1));
        assert_eq!(m.row(2), (0..4).map(|j| m.get(2, j)).collect::<Vec<_>>());
        // Condensed storage: lower triangle with diagonal, not n².
        assert_eq!(m.raw().len(), 10);
    }
}
