//! Byzantine-resilient trust weighting for vantage-point populations.
//!
//! The detection pipeline (similarity Φ, [`ChangeDetector`]) implicitly
//! trusts every vantage point. A measurement substrate does not deserve
//! that: VPs get compromised and lie about their catchment, sybil
//! operators clone one view under many identities, and off-path attackers
//! inject replies for VPs that never probed. [`TrustModel`] scores VPs by
//! *cross-VP agreement* over a sliding window and turns those scores into
//! weights for the similarity matrix and the change detector, so a
//! bounded fraction of byzantine VPs (target: f < 1/3 of the voting
//! weight, evenly scattered across catchments) can neither fabricate a
//! mode transition nor suppress a real one.
//!
//! The mechanism is deliberately simple and auditable:
//!
//! * **Corroboration.** A VP's claimed catchment *flip* only counts when
//!   the majority (by identity-capped weight) of the other VPs that
//!   shared its previous catchment also moved. Routing changes move whole
//!   catchments; a lone or minority flip is more likely a lie than a
//!   routing event, so it is excluded from that step's Φ.
//! * **Non-movement is also a claim.** When a VP's group overwhelmingly
//!   moved and it did not, it is excluded too (a constant or stale liar
//!   would otherwise dilute a real event), and it is marked as owing a
//!   *catch-up flip*: if it later "discovers" the move on its own, that
//!   echo is excluded as well instead of registering a second event.
//! * **Recurrence.** Routing modes recur — that is the paper's whole
//!   point — so a flip *back* to a catchment the VP itself recently
//!   reported while trusted is self-corroborating even when the group
//!   vote fails. Without this rule, liars parked inside a catchment
//!   could vote-stuff its group and suppress a genuine recovery (the
//!   minority of VPs returning to a restored site). The returning VP is
//!   included in Φ but still charged a disagreement, and the rule only
//!   applies if its *previous* step was trusted — so a fabricate-then-
//!   "return" ping-pong stays excluded and walks into quarantine.
//! * **Quarantine.** Disagreements accumulate in a sliding window
//!   ([`TrustModel::suspicion`]); persistent disagreement earns strikes
//!   and then quarantine (weight 0 everywhere, no vote). Quarantined VPs
//!   that behave consistently for a probation period are re-admitted.
//! * **Identity caps.** When the caller knows VP identities (an AS, a
//!   /24, an account), the *voting* weight of each identity is split
//!   among its VPs, so a sybil bloc votes once no matter how many clones
//!   it registers. Caps apply to voting only — Φ weights are untouched,
//!   so a clean population produces bit-identical detection results.
//!
//! Robust aggregation primitives ([`trimmed_mean`], [`median_of_means`])
//! are exported on their own: the same seam that rejects lying vantage
//! points rejects poisoned gradients, so [`TrustModel`] is generic over
//! the observation value type (`u16` catchment codes by default).
//!
//! [`detect_trusted`] wires it all together: trust-weighted per-step Φ
//! fed through [`ChangeDetector::detect_from_steps`], gated by both
//! measurement coverage and the surviving trusted fraction, with
//! exclusions surfaced in [`CampaignHealth::distrusted`].

use crate::detect::{ChangeDetector, GatedDetection, SuppressReason, SuppressedEvent};
use crate::error::{Error, Result};
use crate::health::CampaignHealth;
use crate::series::VectorSeries;
use crate::similarity::phi;
use crate::vector::{CODE_ERR, CODE_UNKNOWN};
use crate::weight::Weights;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// Tuning for [`TrustModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrustConfig {
    /// Sliding-window length (in observations) over which disagreements
    /// are remembered, and for how long an owed catch-up flip is tracked.
    pub window: usize,
    /// Fraction trimmed from each tail when robustly aggregating
    /// per-group movement rates (see [`trimmed_mean`]).
    pub trim_frac: f64,
    /// A VP whose windowed disagreement rate reaches this threshold earns
    /// a strike. The rate is normalised by `window` capacity, so a single
    /// disagreement in a long window never strikes.
    pub suspicion_threshold: f64,
    /// Consecutive strikes before quarantine.
    pub quarantine_strikes: usize,
    /// Consecutive agreeing observations a quarantined VP must produce
    /// before re-admission.
    pub probation: usize,
    /// Minimum fraction of total base weight that must remain trusted for
    /// a step (or a whole run) to support a detection verdict.
    pub min_trusted_frac: f64,
    /// When at least this fraction of the population is excluded in one
    /// step for *uncorroborated flips*, the step is reported as
    /// [contested](ContestedStep): the group vote itself may have been
    /// captured (a super-minority of coordinated liars out-voting honest
    /// movers), so a transition could be hiding in the excluded mass.
    pub contested_frac: f64,
}

impl Default for TrustConfig {
    fn default() -> Self {
        TrustConfig {
            window: 8,
            trim_frac: 0.25,
            suspicion_threshold: 0.3,
            quarantine_strikes: 2,
            probation: 3,
            min_trusted_frac: 0.5,
            contested_frac: 0.15,
        }
    }
}

impl TrustConfig {
    /// Reject configurations outside their documented domains.
    pub fn validate(&self) -> Result<()> {
        if self.window == 0 {
            return Err(Error::Config {
                name: "window",
                message: "must be at least 1".into(),
            });
        }
        if !(0.0..0.5).contains(&self.trim_frac) {
            return Err(Error::Config {
                name: "trim_frac",
                message: format!("must lie in [0, 0.5), got {}", self.trim_frac),
            });
        }
        if !(0.0..=1.0).contains(&self.suspicion_threshold) || self.suspicion_threshold == 0.0 {
            return Err(Error::Config {
                name: "suspicion_threshold",
                message: format!("must lie in (0, 1], got {}", self.suspicion_threshold),
            });
        }
        if self.quarantine_strikes == 0 {
            return Err(Error::Config {
                name: "quarantine_strikes",
                message: "must be at least 1".into(),
            });
        }
        if self.probation == 0 {
            return Err(Error::Config {
                name: "probation",
                message: "must be at least 1".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.min_trusted_frac) {
            return Err(Error::Config {
                name: "min_trusted_frac",
                message: format!("must lie in [0, 1], got {}", self.min_trusted_frac),
            });
        }
        if !(0.0..=1.0).contains(&self.contested_frac) || self.contested_frac == 0.0 {
            return Err(Error::Config {
                name: "contested_frac",
                message: format!("must lie in (0, 1], got {}", self.contested_frac),
            });
        }
        Ok(())
    }
}

/// Mean of `xs` after dropping the `trim_frac` smallest and largest
/// fractions — the classic robust location estimator: up to `trim_frac`
/// of arbitrarily-corrupted values cannot move it past the clean range.
/// Returns the median when trimming would drop everything, 0 for empty
/// input.
pub fn trimmed_mean(xs: &[f64], trim_frac: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let k = (v.len() as f64 * trim_frac.clamp(0.0, 0.5)).floor() as usize;
    let kept = &v[k..v.len() - k];
    if kept.is_empty() {
        v[v.len() / 2]
    } else {
        kept.iter().sum::<f64>() / kept.len() as f64
    }
}

/// [`trimmed_mean`] specialised to a multiset of `zeros` 0.0s and
/// `ones` 1.0s: sorted, the ones occupy the tail, so the trimmed sum is
/// an interval-overlap count and no sort is needed. Bit-identical to
/// the general form.
fn trimmed_indicator_mean(zeros: usize, ones: usize, trim_frac: f64) -> f64 {
    let len = zeros + ones;
    if len == 0 {
        return 0.0;
    }
    let k = (len as f64 * trim_frac.clamp(0.0, 0.5)).floor() as usize;
    if 2 * k >= len {
        // Over-trimming falls back to the median element v[len / 2].
        return if len / 2 >= zeros { 1.0 } else { 0.0 };
    }
    let kept = len - 2 * k;
    let ones_kept = (len - k).saturating_sub(zeros.max(k));
    ones_kept as f64 / kept as f64
}

/// Median of `groups` interleaved group means — the other standard robust
/// aggregator: a minority of corrupted values can poison at most a
/// minority of groups, and the median ignores those. Returns 0 for empty
/// input; `groups` is clamped to `[1, xs.len()]`.
pub fn median_of_means(xs: &[f64], groups: usize) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let g = groups.clamp(1, xs.len());
    let mut means: Vec<f64> = (0..g)
        .map(|i| {
            let mut sum = 0.0;
            let mut n = 0usize;
            let mut j = i;
            while j < xs.len() {
                sum += xs[j];
                n += 1;
                j += g;
            }
            sum / n as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mid = means.len() / 2;
    if means.len() % 2 == 1 {
        means[mid]
    } else {
        (means[mid - 1] + means[mid]) / 2.0
    }
}

/// Per-VP trust status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Status {
    Trusted,
    Quarantined,
}

/// Per-sweep movement tally of one previous-value group.
#[derive(Debug, Clone)]
struct Group<T> {
    total: f64,
    moved: f64,
    // Destination tallies of the group's movers, and the running
    // heaviest one. Updated in VP index order with a strictly-greater
    // test, so the winner is deterministic.
    dest: Vec<(T, f64)>,
    best_dest: Option<(T, f64)>,
}

/// Cross-VP agreement scoring over a sliding window.
///
/// Generic over the observation value type: `u16` catchment codes by
/// default, but any `Copy + Eq + Hash` value works (a quantized latency
/// band, a gradient sign, …). Feed one observation row per sweep via
/// [`observe`](Self::observe); read back per-step exclusions, quarantine
/// state, and weight vectors.
#[derive(Debug, Clone)]
pub struct TrustModel<T: Copy + Eq + Hash = u16> {
    cfg: TrustConfig,
    /// Identity-capped voting weights (never used for Φ).
    vote_w: Vec<f64>,
    prev: Option<Vec<T>>,
    /// Recent disagreement indicators per VP (1.0 = disagreed): one flat
    /// `n × window` block of fixed rings — contiguous, so the per-VP
    /// sweep loop streams instead of chasing one heap pointer per VP —
    /// with a running sum per VP (indicators are 0/1, so the incremental
    /// sum is exact).
    win: Vec<f64>,
    win_len: Vec<u32>,
    win_pos: Vec<u32>,
    win_sum: Vec<f64>,
    strikes: Vec<usize>,
    status: Vec<Status>,
    clean_streak: Vec<usize>,
    /// Whether each VP is excluded from the *current* step's Φ.
    excluded: Vec<bool>,
    /// Scratch: each VP's group index in the current sweep's grouping
    /// pass (`u32::MAX` = not grouped), so the per-VP verdict loop never
    /// re-scans the group list.
    gidx: Vec<u32>,
    /// Scratch: the per-sweep group tallies, retained so steady-state
    /// sweeps reuse its allocation.
    groups_scratch: Vec<(T, Group<T>)>,
    /// `suspicion_threshold * window`, precomputed: the strike test
    /// compares the windowed disagreement *sum* against this once per VP
    /// per sweep, avoiding a division on the hot path.
    strike_bar: f64,
    /// Recent values each VP reported while trusted, for the recurrence
    /// rule: flat `n × window` rings like `win` (slots past `hist_len`
    /// are uninitialised fill and never read). Allocated lazily on the
    /// first observed row, since `new` has no `T` value to fill with.
    hist: Vec<T>,
    hist_len: Vec<u32>,
    hist_pos: Vec<u32>,
    /// The value of each VP's most recent hist push, and how many
    /// consecutive pushes held it: once a ring is uniformly one value,
    /// pushing that value again is a no-op, which is every VP on every
    /// stable sweep.
    hist_last: Vec<T>,
    hist_run: Vec<u32>,
    /// How many trusted VPs the current step excluded for uncorroborated
    /// flips — the contested-step signal.
    fabricated: usize,
    /// How many VPs the current step excluded in total (quarantined or
    /// step-disagreeing) — maintained so per-step callers need not
    /// re-scan the exclusion flags.
    excluded_now: usize,
    /// The value each pending catch-up flip is owed *to* (the modal
    /// destination of the VP's group when it failed to move). Only a
    /// late flip to this value is an echo; a corroborated flip anywhere
    /// else is a genuine new transition.
    pending_to: Vec<Option<T>>,
    /// Sweep index until which an owed catch-up flip is tracked (0 =
    /// none owed).
    pending_until: Vec<usize>,
    sweep: usize,
    /// True when the previous sweep left every VP trusted, unexcluded,
    /// with saturated all-zero disagreement rings, saturated single-value
    /// hist rings, and no pending catch-up — the precondition for the
    /// steady-state shortcut in [`observe`](Self::observe).
    steady: bool,
}

impl<T: Copy + Eq + Hash> TrustModel<T> {
    /// Build a model for the population described by `base` weights.
    ///
    /// `identities`, when given (one per VP), caps each identity's total
    /// *voting* weight at its base share: the voting weight of VP `v`
    /// becomes `base[v] / multiplicity(identity[v])`.
    pub fn new(cfg: TrustConfig, base: &Weights, identities: Option<&[u64]>) -> Result<Self> {
        cfg.validate()?;
        let n = base.len();
        let vote_w = match identities {
            Some(ids) => {
                if ids.len() != n {
                    return Err(Error::ShapeMismatch {
                        what: "identities",
                        expected: n,
                        actual: ids.len(),
                    });
                }
                let mut mult: HashMap<u64, f64> = HashMap::new();
                for &id in ids {
                    *mult.entry(id).or_insert(0.0) += 1.0;
                }
                (0..n).map(|v| base.get(v) / mult[&ids[v]]).collect()
            }
            None => base.values().to_vec(),
        };
        Ok(TrustModel {
            cfg,
            vote_w,
            prev: None,
            win: vec![0.0; n * cfg.window],
            win_len: vec![0; n],
            win_pos: vec![0; n],
            win_sum: vec![0.0; n],
            strikes: vec![0; n],
            status: vec![Status::Trusted; n],
            clean_streak: vec![0; n],
            excluded: vec![false; n],
            gidx: vec![u32::MAX; n],
            groups_scratch: Vec::new(),
            excluded_now: 0,
            strike_bar: cfg.suspicion_threshold * cfg.window as f64,
            hist: Vec::new(),
            hist_len: vec![0; n],
            hist_pos: vec![0; n],
            hist_last: Vec::new(),
            hist_run: vec![0; n],
            fabricated: 0,
            pending_to: vec![None; n],
            pending_until: vec![0; n],
            sweep: 0,
            steady: false,
        })
    }

    /// Number of vantage points.
    pub fn len(&self) -> usize {
        self.vote_w.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.vote_w.is_empty()
    }

    /// Feed one observation row. `known` says whether a value is a real
    /// observation (unknown values carry no agreement evidence either
    /// way). Updates per-step exclusions, suspicion, and quarantine.
    pub fn observe(&mut self, row: &[T], known: impl Fn(T) -> bool) -> Result<()> {
        let n = self.len();
        if row.len() != n {
            return Err(Error::ShapeMismatch {
                what: "observation row",
                expected: n,
                actual: row.len(),
            });
        }
        self.fabricated = 0;
        if self.hist.is_empty() && n > 0 {
            // Lazy fill: any value works, slots past `hist_len` are
            // never read.
            self.hist = vec![row[0]; n * self.cfg.window];
            self.hist_last = vec![row[0]; n];
        }
        let Some(mut prev) = self.prev.take() else {
            for (v, &c) in row.iter().enumerate() {
                if known(c) {
                    self.push_hist(v, c);
                }
            }
            self.prev = Some(row.to_vec());
            return Ok(());
        };
        self.sweep += 1;

        if self.steady {
            // Steady-state shortcut. Every VP is trusted and unexcluded,
            // its disagreement ring is a full window of zeros (pushing
            // another zero is a no-op), its hist ring is uniformly its
            // settled value `hist_last` (pushing that value again is a
            // no-op), and no catch-up flip is owed. A known previous
            // value therefore equals `hist_last`, so if every known cell
            // of this row also matches `hist_last` no VP flipped, no
            // group vote can exclude anyone, and not one piece of state
            // changes: the whole update is this read-only scan. This is
            // the overwhelmingly common sweep of a healthy campaign.
            let unchanged = (0..n).all(|v| !known(row[v]) || row[v] == self.hist_last[v]);
            if unchanged {
                prev.clear();
                prev.extend_from_slice(row);
                self.prev = Some(prev);
                return Ok(());
            }
        }

        // Group the trusted, fully-observed VPs by previous value and
        // accumulate identity-capped moved/total weight per group.
        // Association lists, not hash maps: the value alphabet is tiny
        // (a handful of sites or bands), and this runs per VP per sweep
        // on the hot detection path, where a linear scan over a few
        // entries is several times cheaper than hashing every key. The
        // list itself is a reusable scratch so steady-state sweeps
        // allocate nothing.
        let mut groups: Vec<(T, Group<T>)> = std::mem::take(&mut self.groups_scratch);
        groups.clear();
        let mut stayed = 0usize;
        let mut moved_count = 0usize;
        for v in 0..n {
            if self.status[v] != Status::Trusted || !known(prev[v]) || !known(row[v]) {
                self.gidx[v] = u32::MAX;
                continue;
            }
            if row[v] != prev[v] {
                moved_count += 1;
            } else {
                stayed += 1;
            }
            let gi = match groups.iter().position(|(k, _)| *k == prev[v]) {
                Some(i) => i,
                None => {
                    groups.push((
                        prev[v],
                        Group {
                            total: 0.0,
                            moved: 0.0,
                            dest: Vec::new(),
                            best_dest: None,
                        },
                    ));
                    groups.len() - 1
                }
            };
            self.gidx[v] = gi as u32;
            let g = &mut groups[gi].1;
            g.total += self.vote_w[v];
            if row[v] != prev[v] {
                g.moved += self.vote_w[v];
                let w = match g.dest.iter_mut().find(|(k, _)| *k == row[v]) {
                    Some((_, w)) => {
                        *w += self.vote_w[v];
                        *w
                    }
                    None => {
                        g.dest.push((row[v], self.vote_w[v]));
                        self.vote_w[v]
                    }
                };
                if g.best_dest.is_none_or(|(_, bw)| w > bw) {
                    g.best_dest = Some((row[v], w));
                }
            }
        }
        // Robust population-wide movement rate, for VPs whose group is
        // too small to out-vote them (a singleton would otherwise
        // corroborate its own lie). The trimmed mean over per-VP flip
        // indicators discards the tails, so a minority of liars cannot
        // drag the rate across the majority threshold. Indicators are
        // 0/1, so the trimmed mean reduces to counting — no per-step
        // sort (this runs once per sweep on the hot detection path).
        let population_rate = trimmed_indicator_mean(stayed, moved_count, self.cfg.trim_frac);

        for v in 0..n {
            let quarantined = self.status[v] == Status::Quarantined;
            let was_excluded = self.excluded[v];
            self.excluded[v] = quarantined;
            if !known(prev[v]) || !known(row[v]) {
                // Absent either side: no agreement evidence.
                if !quarantined {
                    self.push_disagreement(v, 0.0);
                }
                continue;
            }
            let flipped = row[v] != prev[v];
            // Corroboration excludes the VP's own vote and demands a
            // strict majority of the *rest* of its previous catchment:
            // an exact split never corroborates either side.
            let corroborated = if quarantined {
                // Quarantined VPs are not in the group stats; judge them
                // against the trusted group as-is.
                match groups.iter().find(|(k, _)| *k == prev[v]).map(|(_, g)| g) {
                    Some(g) if g.total > 0.0 => g.moved > 0.5 * g.total,
                    _ => population_rate > 0.5,
                }
            } else {
                // Trusted with both sides known: the grouping pass above
                // indexed this VP, so its group is a direct lookup.
                let g = &groups[self.gidx[v] as usize].1;
                let others_total = g.total - self.vote_w[v];
                let others_moved = if flipped {
                    g.moved - self.vote_w[v]
                } else {
                    g.moved
                };
                if others_total > 0.0 {
                    others_moved > 0.5 * others_total
                } else {
                    population_rate > 0.5
                }
            };
            let pending = self.pending_until[v] > self.sweep;
            let disagree = match (flipped, corroborated) {
                // A flip nobody else in the catchment saw. If it returns
                // the VP to a catchment it recently reported while
                // trusted, it is a recurrence (a minority recovering its
                // old mode — e.g. a restored site's former clients
                // flowing back against a vote-stuffed group) and stays
                // in Φ, though it still costs a disagreement. Otherwise:
                // fabricated, excluded. The previous step must have been
                // trusted, so a lie-then-"return" ping-pong never earns
                // the recurrence discount.
                (true, false) => {
                    if !quarantined && !was_excluded && self.hist_contains(v, row[v]) {
                        self.pending_until[v] = 0;
                    } else {
                        self.excluded[v] = true;
                        if !quarantined {
                            self.fabricated += 1;
                        }
                    }
                    1.0
                }
                // The catchment moved and this VP claims it did not:
                // stale or constant. It now owes a catch-up flip to
                // wherever its group went.
                (false, true) => {
                    self.excluded[v] = true;
                    self.pending_until[v] = self.sweep + self.cfg.window;
                    self.pending_to[v] = groups
                        .iter()
                        .find(|(k, _)| *k == prev[v])
                        .and_then(|(_, g)| g.best_dest.map(|(t, _)| t));
                    1.0
                }
                // A flip while a catch-up is owed. Landing on the value
                // the group moved to is the owed flip arriving late — an
                // echo of a transition already detected, not a new
                // event. A corroborated flip anywhere *else* is a
                // genuine transition (e.g. a recovery the VP observes on
                // time) and clears the debt.
                (true, true) if pending => {
                    if self.pending_to[v] == Some(row[v]) {
                        self.excluded[v] = true;
                        self.pending_until[v] = 0;
                        1.0
                    } else {
                        self.pending_until[v] = 0;
                        0.0
                    }
                }
                _ => 0.0,
            };
            if quarantined {
                // Probation: consistent behaviour earns re-admission.
                if disagree == 0.0 {
                    self.clean_streak[v] += 1;
                    if self.clean_streak[v] >= self.cfg.probation {
                        self.status[v] = Status::Trusted;
                        self.strikes[v] = 0;
                        self.win_len[v] = 0;
                        self.win_pos[v] = 0;
                        self.win_sum[v] = 0.0;
                        self.hist_len[v] = 0;
                        self.hist_pos[v] = 0;
                        self.hist_run[v] = 0;
                        self.pending_until[v] = 0;
                        self.clean_streak[v] = 0;
                    }
                } else {
                    self.clean_streak[v] = 0;
                }
            } else {
                self.push_disagreement(v, disagree);
            }
            if !self.excluded[v] && known(row[v]) {
                self.push_hist(v, row[v]);
            }
        }
        let w = self.cfg.window;
        let mut excluded_now = 0usize;
        let mut steady = true;
        for v in 0..n {
            excluded_now += usize::from(self.excluded[v]);
            steady = steady
                && self.status[v] == Status::Trusted
                && !self.excluded[v]
                && self.pending_until[v] <= self.sweep
                && self.win_sum[v] == 0.0
                && self.win_len[v] as usize == w
                && self.hist_run[v] as usize >= w;
        }
        self.excluded_now = excluded_now;
        self.steady = steady;
        // Reuse the previous-row buffer instead of allocating per sweep.
        prev.clear();
        prev.extend_from_slice(row);
        self.prev = Some(prev);
        self.groups_scratch = groups;
        Ok(())
    }

    /// Whether VP `v`'s recurrence ring holds `val`.
    fn hist_contains(&self, v: usize, val: T) -> bool {
        let base = v * self.cfg.window;
        self.hist[base..base + self.hist_len[v] as usize].contains(&val)
    }

    /// Record a trusted value in VP `v`'s recurrence ring (overwriting
    /// the oldest once `cfg.window` entries are held).
    fn push_hist(&mut self, v: usize, val: T) {
        let w = self.cfg.window;
        if self.hist_run[v] as usize >= w && val == self.hist_last[v] {
            // The ring is already uniformly `val`: another push moves
            // the cursor around identical slots — a no-op. This is every
            // VP on every stable sweep.
            return;
        }
        let pos = self.hist_pos[v] as usize;
        self.hist[v * w + pos] = val;
        self.hist_pos[v] = ((pos + 1) % w) as u32;
        if (self.hist_len[v] as usize) < w {
            self.hist_len[v] += 1;
        }
        if val == self.hist_last[v] {
            self.hist_run[v] += 1;
        } else {
            self.hist_last[v] = val;
            self.hist_run[v] = 1;
        }
    }

    fn push_disagreement(&mut self, v: usize, d: f64) {
        let w = self.cfg.window;
        if d == 0.0 && self.win_sum[v] == 0.0 && self.win_len[v] as usize == w {
            // A full ring of zeros absorbing another zero: nothing can
            // change — not the slots, not the sum, not the strike state
            // (the sum is below the bar, so strikes would reset, and a
            // zero sum implies they already are). The steady-state VP
            // costs two loads here and no stores.
            return;
        }
        let pos = self.win_pos[v] as usize;
        let slot = v * w + pos;
        if self.win_len[v] as usize == w {
            self.win_sum[v] -= self.win[slot];
        } else {
            self.win_len[v] += 1;
        }
        self.win[slot] = d;
        self.win_sum[v] += d;
        self.win_pos[v] = ((pos + 1) % w) as u32;
        if self.win_sum[v] >= self.strike_bar {
            self.strikes[v] += 1;
            if self.strikes[v] >= self.cfg.quarantine_strikes {
                self.status[v] = Status::Quarantined;
                self.excluded[v] = true;
                self.clean_streak[v] = 0;
                self.pending_until[v] = 0;
            }
        } else {
            self.strikes[v] = 0;
        }
    }

    /// Windowed disagreement rate of VP `v`, normalised by window
    /// *capacity* so early observations cannot dominate.
    pub fn suspicion(&self, v: usize) -> f64 {
        self.win_sum[v] / self.cfg.window as f64
    }

    /// Whether VP `v` is currently quarantined.
    pub fn is_quarantined(&self, v: usize) -> bool {
        self.status[v] == Status::Quarantined
    }

    /// Number of currently-quarantined VPs.
    pub fn quarantined_count(&self) -> usize {
        self.status
            .iter()
            .filter(|&&s| s == Status::Quarantined)
            .count()
    }

    /// Which VPs are excluded from the current step's Φ (quarantined or
    /// step-disagreeing).
    pub fn step_excluded(&self) -> &[bool] {
        &self.excluded
    }

    /// How many VPs the current step excluded — `step_excluded` counted,
    /// without the scan.
    pub fn step_excluded_count(&self) -> usize {
        self.excluded_now
    }

    /// How many trusted VPs the current step excluded for uncorroborated
    /// flips. A large value means the group vote rejected a mass
    /// movement — on a healthy population that never happens, so it is
    /// evidence the vote itself was captured (see
    /// [`TrustConfig::contested_frac`]).
    pub fn step_fabricated(&self) -> usize {
        self.fabricated
    }

    /// Φ weights for the current step: `base` with excluded VPs zeroed.
    pub fn step_weights(&self, base: &Weights) -> Vec<f64> {
        (0..self.len().min(base.len()))
            .map(|v| if self.excluded[v] { 0.0 } else { base.get(v) })
            .collect()
    }

    /// Long-run trust weights: `base` with quarantined VPs zeroed — the
    /// vector to hand to `SimilarityMatrix::compute`. Errors with
    /// [`Error::ZeroWeight`] if the whole population is quarantined.
    pub fn final_weights(&self, base: &Weights) -> Result<Weights> {
        Weights::from_values(
            (0..self.len().min(base.len()))
                .map(|v| {
                    if self.is_quarantined(v) {
                        0.0
                    } else {
                        base.get(v)
                    }
                })
                .collect(),
        )
    }

    /// Fraction of total base weight not currently quarantined.
    pub fn trusted_fraction(&self, base: &Weights) -> f64 {
        if base.total() == 0.0 {
            return 0.0;
        }
        (0..self.len().min(base.len()))
            .filter(|&v| !self.is_quarantined(v))
            .map(|v| base.get(v))
            .sum::<f64>()
            / base.total()
    }
}

/// Summary of a trust pass over a whole series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrustReport {
    /// Final per-VP windowed disagreement rates.
    pub suspicion: Vec<f64>,
    /// Final per-VP quarantine flags.
    pub quarantined: Vec<bool>,
    /// Fraction of base weight still trusted at the end of the run.
    pub trusted_fraction: f64,
    /// Number of steps whose trusted weight fell below the floor.
    pub untrusted_steps: usize,
}

/// A step where the group vote excluded an outsized share of the
/// population for uncorroborated flips. On a healthy population mass
/// movements corroborate each other, so this only happens when a
/// coordinated bloc has captured the vote — a transition may be hiding
/// in the excluded mass, and the verdict at this step must not be
/// trusted silently.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContestedStep {
    /// Observation index of the later side of the step.
    pub index: usize,
    /// Fraction of the population excluded as uncorroborated flippers.
    pub excluded_fraction: f64,
}

/// Result of trust-weighted, coverage- and trust-gated detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrustedDetection {
    /// Events plus explicit suppressions.
    pub gated: GatedDetection,
    /// Final trust state of the population.
    pub trust: TrustReport,
    /// The input health series with [`CampaignHealth::distrusted`]
    /// filled in per observation.
    pub health: Vec<CampaignHealth>,
    /// True when so much of the population ended up quarantined that no
    /// verdict is trustworthy; every event is then suppressed with
    /// [`SuppressReason::UntrustedPopulation`] rather than reported.
    pub degraded: bool,
    /// Steps whose group vote threw out at least
    /// [`TrustConfig::contested_frac`] of the population as
    /// uncorroborated flippers — the explicit "a super-minority may have
    /// out-voted a real transition here" degradation signal.
    pub contested: Vec<ContestedStep>,
}

/// Run trust-weighted change detection over a catchment-code series.
///
/// Per step, VPs excluded by the [`TrustModel`] get weight zero in that
/// step's Φ; the resulting step series feeds
/// [`ChangeDetector::detect_from_steps`]. Detections are then gated
/// twice: by measurement coverage (as in
/// [`ChangeDetector::detect_gated`], floor `coverage_floor`) and by the
/// trusted fraction of the population around the step
/// (`cfg.min_trusted_frac`). On a clean substrate no VP is ever excluded
/// and the result is identical to ungated detection.
///
/// `identities`, when given, caps sybil voting weight — see
/// [`TrustModel::new`].
pub fn detect_trusted(
    detector: &ChangeDetector,
    series: &VectorSeries,
    base: &Weights,
    health: &[CampaignHealth],
    coverage_floor: f64,
    cfg: TrustConfig,
    identities: Option<&[u64]>,
) -> Result<TrustedDetection> {
    if !(0.0..=1.0).contains(&coverage_floor) {
        return Err(Error::InvalidParameter {
            name: "coverage_floor",
            message: format!("must lie in [0, 1], got {coverage_floor}"),
        });
    }
    if health.len() != series.len() {
        return Err(Error::ShapeMismatch {
            what: "health series",
            expected: series.len(),
            actual: health.len(),
        });
    }
    if base.len() != series.networks() {
        return Err(Error::ShapeMismatch {
            what: "weights",
            expected: series.networks(),
            actual: base.len(),
        });
    }
    let known = |c: u16| c != CODE_UNKNOWN && c != CODE_ERR;
    let mut model: TrustModel<u16> = TrustModel::new(cfg, base, identities)?;
    let mut health_out = health.to_vec();
    let mut steps: Vec<f64> = Vec::with_capacity(series.len().saturating_sub(1));
    let mut step_trusted: Vec<f64> = Vec::with_capacity(steps.capacity());
    if !series.is_empty() {
        model.observe(series.get(0).codes(), known)?;
    }
    let mut contested: Vec<ContestedStep> = Vec::new();
    for (i, step_health) in health_out.iter_mut().enumerate().skip(1) {
        model.observe(series.get(i).codes(), known)?;
        let fabricated = model.step_fabricated() as f64 / model.len().max(1) as f64;
        if fabricated >= cfg.contested_frac {
            contested.push(ContestedStep {
                index: i,
                excluded_fraction: fabricated,
            });
        }
        let distrusted = model.step_excluded_count();
        step_health.distrusted = distrusted;
        let (p, trusted) = if distrusted == 0 {
            // Nobody excluded — the overwhelmingly common step on a
            // healthy substrate: Φ under the base weights, no per-step
            // weight vector to build and re-validate.
            (
                phi(series.get(i - 1), series.get(i), base, detector.policy),
                1.0,
            )
        } else {
            let step_w = model.step_weights(base);
            let trusted = step_w.iter().sum::<f64>() / base.total();
            let p = match Weights::from_values(step_w) {
                Ok(w) => phi(series.get(i - 1), series.get(i), &w, detector.policy),
                // Nobody trustworthy observed the step: no similarity
                // evidence at all. Record a full drop so the step
                // surfaces as a detection — which the trust gate below
                // then suppresses explicitly instead of silently
                // skipping.
                Err(Error::ZeroWeight) => 0.0,
                Err(e) => return Err(e),
            };
            (p, trusted)
        };
        steps.push(p);
        step_trusted.push(trusted);
    }
    let times = series.times();
    let trusted_fraction = model.trusted_fraction(base);
    let degraded = trusted_fraction < cfg.min_trusted_frac;
    let mut gated = GatedDetection::default();
    let untrusted_steps = step_trusted
        .iter()
        .filter(|&&t| t < cfg.min_trusted_frac)
        .count();
    for event in detector.detect_from_steps(&steps, &times) {
        let before = health_out[event.index - 1].coverage();
        let at = health_out[event.index].coverage();
        let coverage = before.min(at);
        let trusted_here = step_trusted[event.index - 1];
        if coverage < coverage_floor {
            gated.suppressed.push(SuppressedEvent {
                event,
                reason: SuppressReason::LowCoverage {
                    coverage,
                    floor: coverage_floor,
                },
            });
        } else if degraded || trusted_here < cfg.min_trusted_frac {
            gated.suppressed.push(SuppressedEvent {
                event,
                reason: SuppressReason::UntrustedPopulation {
                    trusted_fraction: if degraded {
                        trusted_fraction
                    } else {
                        trusted_here
                    },
                    floor: cfg.min_trusted_frac,
                },
            });
        } else {
            gated.events.push(event);
        }
    }
    let trust = TrustReport {
        suspicion: (0..model.len()).map(|v| model.suspicion(v)).collect(),
        quarantined: (0..model.len()).map(|v| model.is_quarantined(v)).collect(),
        trusted_fraction,
        untrusted_steps,
    };
    Ok(TrustedDetection {
        gated,
        trust,
        health: health_out,
        degraded,
        contested,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SiteTable;
    use crate::time::Timestamp;
    use crate::vector::RoutingVector;

    fn ts(d: i64) -> Timestamp {
        Timestamp::from_days(d)
    }

    fn series_from(rows: &[Vec<u16>]) -> VectorSeries {
        let sites = SiteTable::from_names(["A", "B", "C", "D"]);
        let mut series = VectorSeries::new(sites, rows[0].len());
        for (d, row) in rows.iter().enumerate() {
            series
                .push(RoutingVector::from_codes(ts(d as i64), row.clone()))
                .unwrap();
        }
        series
    }

    fn full_health(n: usize, targets: usize) -> Vec<CampaignHealth> {
        (0..n)
            .map(|d| {
                let mut h = CampaignHealth::new(ts(d as i64), targets);
                h.responses = targets;
                h
            })
            .collect()
    }

    /// 10 VPs: stable on site 0 for `pre` sweeps, then all move to 1.
    fn shift_rows(pre: usize, post: usize) -> Vec<Vec<u16>> {
        (0..pre + post)
            .map(|d| vec![if d < pre { 0u16 } else { 1 }; 10])
            .collect()
    }

    #[test]
    fn trimmed_mean_resists_outliers() {
        let clean = [0.5, 0.5, 0.5, 0.5];
        assert!((trimmed_mean(&clean, 0.25) - 0.5).abs() < 1e-12);
        let poisoned = [0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 100.0, -100.0];
        assert!((trimmed_mean(&poisoned, 0.25) - 0.5).abs() < 1e-12);
        assert_eq!(trimmed_mean(&[], 0.25), 0.0);
        // Over-trimming falls back to the median.
        assert_eq!(trimmed_mean(&[1.0], 0.49), 1.0);
    }

    #[test]
    fn indicator_trimmed_mean_matches_the_general_form() {
        for zeros in 0..12usize {
            for ones in 0..12usize {
                for trim in [0.0, 0.1, 0.25, 0.33, 0.49] {
                    let mut xs = vec![0.0f64; zeros];
                    xs.resize(zeros + ones, 1.0);
                    let general = trimmed_mean(&xs, trim);
                    let fast = trimmed_indicator_mean(zeros, ones, trim);
                    assert!(
                        (general - fast).abs() < 1e-12,
                        "zeros {zeros} ones {ones} trim {trim}: {general} vs {fast}"
                    );
                }
            }
        }
    }

    #[test]
    fn median_of_means_resists_outliers() {
        let poisoned = [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1000.0];
        let m = median_of_means(&poisoned, 4);
        assert!(m < 2.0, "{m}");
        assert_eq!(median_of_means(&[], 3), 0.0);
        assert_eq!(median_of_means(&[7.0], 3), 7.0);
    }

    #[test]
    fn config_validation_rejects_out_of_domain() {
        let mut c = TrustConfig::default();
        assert!(c.validate().is_ok());
        c.window = 0;
        assert!(c.validate().is_err());
        c = TrustConfig {
            trim_frac: 0.5,
            ..TrustConfig::default()
        };
        assert!(c.validate().is_err());
        c = TrustConfig {
            suspicion_threshold: 0.0,
            ..TrustConfig::default()
        };
        assert!(c.validate().is_err());
        c = TrustConfig {
            min_trusted_frac: 1.5,
            ..TrustConfig::default()
        };
        assert!(c.validate().is_err());
        c = TrustConfig {
            contested_frac: 0.0,
            ..TrustConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn clean_population_is_never_excluded() {
        let rows = shift_rows(8, 8);
        let base = Weights::uniform(10);
        let mut m: TrustModel = TrustModel::new(TrustConfig::default(), &base, None).unwrap();
        for row in &rows {
            m.observe(row, |c| c != CODE_UNKNOWN).unwrap();
            assert!(m.step_excluded().iter().all(|&e| !e));
        }
        assert_eq!(m.quarantined_count(), 0);
        assert!((m.trusted_fraction(&base) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fabricated_minority_flip_is_excluded() {
        // VPs 0-1 flip to site 2 at sweep 5; the other 8 stay on 0.
        let mut rows = shift_rows(10, 0);
        for row in rows.iter_mut().skip(5) {
            row[0] = 2;
            row[1] = 2;
        }
        let base = Weights::uniform(10);
        let mut m: TrustModel = TrustModel::new(TrustConfig::default(), &base, None).unwrap();
        for (d, row) in rows.iter().enumerate() {
            m.observe(row, |c| c != CODE_UNKNOWN).unwrap();
            if d == 5 {
                assert!(m.step_excluded()[0] && m.step_excluded()[1]);
                assert!(m.step_excluded()[2..].iter().all(|&e| !e));
            }
        }
        // One-shot lie: suspicious but not quarantined.
        assert!(m.suspicion(0) > 0.0);
        assert_eq!(m.quarantined_count(), 0);
    }

    #[test]
    fn non_mover_during_corroborated_move_is_excluded_and_echo_killed() {
        // Everyone moves 0 -> 1 at sweep 5, except VP 9 which lags by two
        // sweeps (a stale replayer).
        let mut rows = shift_rows(5, 7);
        rows[5][9] = 0;
        rows[6][9] = 0;
        let base = Weights::uniform(10);
        let mut m: TrustModel = TrustModel::new(TrustConfig::default(), &base, None).unwrap();
        for (d, row) in rows.iter().enumerate() {
            m.observe(row, |c| c != CODE_UNKNOWN).unwrap();
            match d {
                5 => assert!(m.step_excluded()[9], "non-mover at the transition"),
                7 => assert!(m.step_excluded()[9], "late catch-up flip is an echo"),
                8 => assert!(!m.step_excluded()[9], "back in good standing"),
                _ => {}
            }
        }
    }

    #[test]
    fn recurrence_beats_a_vote_stuffed_group() {
        // VPs 0-5 sit constantly on site 1 (a parked liar bloc); VPs 6-9
        // genuinely move 0 -> 1 at sweep 5 and recover to 0 at sweep 9.
        // At the recovery the bloc out-votes the returning minority, but
        // the flip lands on a catchment each returner recently held
        // while trusted: the recurrence rule keeps them in Φ.
        let rows: Vec<Vec<u16>> = (0..12)
            .map(|d| {
                let mut row = vec![1u16; 10];
                let honest = if (5..9).contains(&d) { 1 } else { 0 };
                for cell in row.iter_mut().skip(6) {
                    *cell = honest;
                }
                row
            })
            .collect();
        let base = Weights::uniform(10);
        let mut m: TrustModel = TrustModel::new(TrustConfig::default(), &base, None).unwrap();
        for (d, row) in rows.iter().enumerate() {
            m.observe(row, |c| c != CODE_UNKNOWN).unwrap();
            if d == 9 {
                assert!(
                    m.step_excluded().iter().all(|&e| !e),
                    "recurring returners must stay in Φ"
                );
                assert_eq!(m.step_fabricated(), 0);
            }
        }
        assert_eq!(m.quarantined_count(), 0);
    }

    #[test]
    fn pending_flip_to_a_new_catchment_is_not_an_echo() {
        // Everyone moves 0 -> 1 at sweep 3; VP 9 misses it and owes a
        // catch-up flip to site 1. At sweep 6 the whole population — VP 9
        // included — moves on to site 2: that flip is corroborated and
        // lands away from the owed value, so it is a genuine transition,
        // not an echo, and VP 9 stays in Φ.
        let rows: Vec<Vec<u16>> = (0..9)
            .map(|d| {
                let mut row = vec![
                    if d < 3 {
                        0u16
                    } else if d < 6 {
                        1
                    } else {
                        2
                    };
                    10
                ];
                if d < 6 {
                    row[9] = 0;
                }
                row
            })
            .collect();
        let base = Weights::uniform(10);
        let mut m: TrustModel = TrustModel::new(TrustConfig::default(), &base, None).unwrap();
        for (d, row) in rows.iter().enumerate() {
            m.observe(row, |c| c != CODE_UNKNOWN).unwrap();
            match d {
                3 => assert!(m.step_excluded()[9], "non-mover at the transition"),
                6 => assert!(
                    !m.step_excluded()[9],
                    "corroborated flip to a third site is not an echo"
                ),
                _ => {}
            }
        }
    }

    #[test]
    fn captured_vote_surfaces_as_a_contested_step() {
        // Three of ten VPs fabricate a flip to a novel site at sweep 5:
        // 30% of the population thrown out as uncorroborated flippers
        // crosses the default contested threshold, and the verdict says
        // so. A fully-corroborated shift never does.
        let mut rows = shift_rows(10, 0);
        for row in rows.iter_mut().skip(5) {
            row[0] = 3;
            row[1] = 3;
            row[2] = 3;
        }
        let detector = ChangeDetector::default();
        let base = Weights::uniform(10);
        let d = detect_trusted(
            &detector,
            &series_from(&rows),
            &base,
            &full_health(rows.len(), 10),
            0.0,
            TrustConfig::default(),
            None,
        )
        .unwrap();
        assert_eq!(d.contested.len(), 1, "{:?}", d.contested);
        assert_eq!(d.contested[0].index, 5);
        assert!((d.contested[0].excluded_fraction - 0.3).abs() < 1e-12);

        let clean = detect_trusted(
            &detector,
            &series_from(&shift_rows(5, 5)),
            &base,
            &full_health(10, 10),
            0.0,
            TrustConfig::default(),
            None,
        )
        .unwrap();
        assert!(clean.contested.is_empty());
    }

    #[test]
    fn persistent_liar_is_quarantined_then_readmitted_after_probation() {
        // VP 0 fabricates a lone flip every sweep (ping-ponging 2 <-> 3)
        // for 8 sweeps, then behaves forever after.
        let n_sweeps = 24usize;
        let rows: Vec<Vec<u16>> = (0..n_sweeps)
            .map(|d| {
                let mut row = vec![0u16; 10];
                if d < 8 {
                    row[0] = if d % 2 == 0 { 2 } else { 3 };
                }
                row
            })
            .collect();
        let base = Weights::uniform(10);
        let cfg = TrustConfig::default();
        let mut m: TrustModel = TrustModel::new(cfg, &base, None).unwrap();
        let mut quarantined_at = None;
        let mut readmitted_at = None;
        for (d, row) in rows.iter().enumerate() {
            m.observe(row, |c| c != CODE_UNKNOWN).unwrap();
            if quarantined_at.is_none() && m.is_quarantined(0) {
                quarantined_at = Some(d);
            }
            if quarantined_at.is_some() && readmitted_at.is_none() && !m.is_quarantined(0) {
                readmitted_at = Some(d);
            }
        }
        let q = quarantined_at.expect("persistent liar must be quarantined");
        assert!(q < 8, "quarantined while still lying, got {q}");
        let r = readmitted_at.expect("reformed liar must be re-admitted");
        // Probation starts once it behaves (sweep 8; its first clean
        // comparison is sweep 9's step).
        assert!(r >= 8 + cfg.probation, "readmitted too early at {r}");
        assert_eq!(m.quarantined_count(), 0);
    }

    #[test]
    fn identity_caps_split_sybil_voting_weight() {
        // 6 VPs; 0-3 share one identity. A bloc flip by the 4 clones
        // must not corroborate itself against 2 honest singletons.
        let rows = vec![vec![0u16; 6], vec![2, 2, 2, 2, 0, 0]];
        let base = Weights::uniform(6);
        let ids = [7u64, 7, 7, 7, 1, 2];
        let mut m: TrustModel = TrustModel::new(TrustConfig::default(), &base, Some(&ids)).unwrap();
        for row in &rows {
            m.observe(row, |c| c != CODE_UNKNOWN).unwrap();
        }
        // Capped: clones carry 1/4 weight each (1 total) vs 2 honest.
        for v in 0..4 {
            assert!(m.step_excluded()[v], "sybil clone {v} must be excluded");
        }
        assert!(!m.step_excluded()[4] && !m.step_excluded()[5]);

        // Without caps the bloc out-votes the honest pair.
        let mut naive: TrustModel = TrustModel::new(TrustConfig::default(), &base, None).unwrap();
        for row in &rows {
            naive.observe(row, |c| c != CODE_UNKNOWN).unwrap();
        }
        assert!(
            !naive.step_excluded()[0],
            "uncapped bloc corroborates itself"
        );
    }

    #[test]
    fn step_and_final_weights_zero_the_right_vps() {
        let rows = vec![vec![0u16; 4], vec![2, 0, 0, 0]];
        let base = Weights::uniform(4);
        let mut m: TrustModel = TrustModel::new(TrustConfig::default(), &base, None).unwrap();
        for row in &rows {
            m.observe(row, |c| c != CODE_UNKNOWN).unwrap();
        }
        assert_eq!(m.step_weights(&base), vec![0.0, 1.0, 1.0, 1.0]);
        // Not quarantined, so long-run weights are untouched.
        assert_eq!(m.final_weights(&base).unwrap().values(), base.values());
        assert!((m.trusted_fraction(&base) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detect_trusted_matches_plain_detection_on_clean_data() {
        let rows = shift_rows(10, 10);
        let series = series_from(&rows);
        let base = Weights::uniform(10);
        let det = ChangeDetector::default();
        let plain = det.detect(&series, &base);
        let trusted = detect_trusted(
            &det,
            &series,
            &base,
            &full_health(20, 10),
            0.2,
            TrustConfig::default(),
            None,
        )
        .unwrap();
        assert!(!trusted.degraded);
        assert!(trusted.gated.suppressed.is_empty());
        assert_eq!(trusted.gated.events, plain);
        assert!(trusted.trust.quarantined.iter().all(|&q| !q));
        assert!(trusted.health.iter().all(|h| h.distrusted == 0));
    }

    #[test]
    fn detect_trusted_drops_fabricated_event_and_keeps_real_one() {
        // Real shift at 10; two liars fabricate a lone flip at 5.
        let mut rows = shift_rows(10, 10);
        for row in rows.iter_mut().take(10).skip(5) {
            row[0] = 2;
            row[1] = 2;
        }
        // After the real shift the liars follow everyone to site 1, so
        // their catch-up is co-timed with the transition.
        let series = series_from(&rows);
        let base = Weights::uniform(10);
        let det = ChangeDetector::default();
        let trusted = detect_trusted(
            &det,
            &series,
            &base,
            &full_health(20, 10),
            0.2,
            TrustConfig::default(),
            None,
        )
        .unwrap();
        let indices: Vec<usize> = trusted.gated.events.iter().map(|e| e.index).collect();
        assert_eq!(indices, vec![10], "{:?}", trusted.gated);
        assert!(trusted.health[5].distrusted > 0);
    }

    #[test]
    fn detect_trusted_gates_low_coverage_and_zero_trust_steps() {
        let rows = shift_rows(10, 10);
        let series = series_from(&rows);
        let base = Weights::uniform(10);
        let mut health = full_health(20, 10);
        health[9].responses = 0;
        let det = ChangeDetector::default();
        let trusted = detect_trusted(
            &det,
            &series,
            &base,
            &health,
            0.5,
            TrustConfig::default(),
            None,
        )
        .unwrap();
        assert!(trusted.gated.events.is_empty());
        assert_eq!(trusted.gated.suppressed.len(), 1);
        assert!(matches!(
            trusted.gated.suppressed[0].reason,
            SuppressReason::LowCoverage { .. }
        ));
    }

    #[test]
    fn detect_trusted_rejects_shape_mismatches() {
        let rows = shift_rows(4, 4);
        let series = series_from(&rows);
        let base = Weights::uniform(10);
        let det = ChangeDetector::default();
        assert!(detect_trusted(
            &det,
            &series,
            &base,
            &full_health(7, 10),
            0.2,
            TrustConfig::default(),
            None
        )
        .is_err());
        assert!(detect_trusted(
            &det,
            &series,
            &Weights::uniform(9),
            &full_health(8, 10),
            0.2,
            TrustConfig::default(),
            None
        )
        .is_err());
        assert!(detect_trusted(
            &det,
            &series,
            &base,
            &full_health(8, 10),
            1.5,
            TrustConfig::default(),
            None
        )
        .is_err());
    }

    #[test]
    fn majority_quarantined_population_degrades_explicitly() {
        // 10 VPs, six liars (0-5) that each bounce between the honest
        // catchment and a fake site on alternating phases, desynchronised
        // so only a scattered minority flips out of the honest group at
        // any sweep (never corroborated). Every liar accumulates
        // disagreements and lands in quarantine; with 6 of 10 VPs out,
        // the run must degrade explicitly rather than report anything.
        let rows: Vec<Vec<u16>> = (0..30)
            .map(|d| {
                let mut row = vec![0u16; 10];
                for (v, cell) in row.iter_mut().enumerate().take(6) {
                    if (d + v) % 2 == 0 {
                        *cell = 2;
                    }
                }
                row
            })
            .collect();
        let series = series_from(&rows);
        let base = Weights::uniform(10);
        let det = ChangeDetector::default();
        let trusted = detect_trusted(
            &det,
            &series,
            &base,
            &full_health(30, 10),
            0.2,
            TrustConfig::default(),
            None,
        )
        .unwrap();
        assert!(
            trusted.trust.quarantined.iter().filter(|&&q| q).count() >= 6,
            "{:?}",
            trusted.trust.quarantined
        );
        assert!(trusted.degraded);
        assert!(
            trusted.gated.events.is_empty(),
            "{:?}",
            trusted.gated.events
        );
    }

    #[test]
    fn trust_model_is_generic_over_observation_type() {
        // The poisoned-gradient seam: observations are sign bits.
        let base = Weights::uniform(4);
        let mut m: TrustModel<i8> = TrustModel::new(TrustConfig::default(), &base, None).unwrap();
        m.observe(&[1i8, 1, 1, 1], |_| true).unwrap();
        m.observe(&[1i8, 1, 1, -1], |_| true).unwrap();
        assert!(m.step_excluded()[3], "lone sign flip excluded");
    }
}
