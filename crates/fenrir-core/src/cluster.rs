//! Hierarchical Agglomerative Clustering (§2.6.2 of the paper).
//!
//! Fenrir discovers routing "modes" by clustering routing vectors on their
//! Gower distance `1 − Φ`. The paper cites SLINK (single linkage); this
//! module implements the nearest-neighbour-chain algorithm, which yields
//! exact single, complete, and average linkage in `O(|T|²)` time — |T| is
//! observation times, a few thousand even for five years of daily data.
//!
//! The paper's **adaptive distance threshold** rule is implemented by
//! [`AdaptiveThreshold`]: sweep thresholds from 0 to 1 in steps of 0.01 and
//! accept the first flat clustering with fewer than 15 clusters, each backed
//! by at least 2 valid observations.

use crate::error::{Error, Result};
use crate::similarity::SimilarityMatrix;
use serde::{Deserialize, Serialize};

/// Linkage criterion for merging clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Linkage {
    /// Minimum pairwise distance (SLINK, the paper's citation). Prone to
    /// chaining but cheap and faithful to the paper.
    #[default]
    Single,
    /// Maximum pairwise distance; produces compact, similar-diameter modes.
    Complete,
    /// Unweighted average pairwise distance (UPGMA); the middle ground,
    /// benched in the ablation suite.
    Average,
}

/// One agglomeration step: clusters `a` and `b` merge at `distance` into a
/// new cluster of `size` leaves.
///
/// Cluster numbering follows the scipy convention: ids `0..n` are leaves
/// (observation indices); the merge at position `k` of
/// [`Dendrogram::merges`] creates cluster `n + k`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Linkage distance at which the merge happens.
    pub distance: f64,
    /// Number of leaves in the new cluster.
    pub size: usize,
}

/// The full merge tree produced by HAC, with merges sorted by ascending
/// distance so that cutting at a threshold is a single union-find pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Run HAC over the Gower distances of `sim` with the given linkage.
    ///
    /// Errors if the matrix is empty.
    pub fn build(sim: &SimilarityMatrix, linkage: Linkage) -> Result<Self> {
        let n = sim.len();
        if n == 0 {
            return Err(Error::EmptyInput("similarity matrix"));
        }
        if n == 1 {
            return Ok(Dendrogram {
                n,
                merges: Vec::new(),
            });
        }

        // Working copy of the condensed distance matrix, mutated by
        // Lance-Williams updates as clusters merge.
        let mut d = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = sim.distance(i, j);
            }
        }
        let mut size = vec![1usize; n]; // leaves per active cluster
        let mut active = vec![true; n];
        // Map slot -> current dendrogram cluster id (scipy numbering).
        let mut cluster_id: Vec<usize> = (0..n).collect();
        let mut next_id = n;

        let mut raw_merges: Vec<Merge> = Vec::with_capacity(n - 1);
        let mut chain: Vec<usize> = Vec::with_capacity(n);

        for _ in 0..n - 1 {
            // Start (or resume) the nearest-neighbour chain.
            if chain.is_empty() {
                let start = active
                    .iter()
                    .position(|&a| a)
                    .expect("at least two active clusters remain");
                chain.push(start);
            }
            let (x, y, dist) = loop {
                let x = *chain.last().expect("chain nonempty");
                // Nearest active neighbour of x (smallest distance; ties to
                // the lowest index for determinism).
                let mut best = usize::MAX;
                let mut best_d = f64::INFINITY;
                for j in 0..n {
                    if j != x && active[j] {
                        let dj = d[x * n + j];
                        if dj < best_d {
                            best_d = dj;
                            best = j;
                        }
                    }
                }
                debug_assert_ne!(best, usize::MAX);
                // Reciprocal pair found when the nearest neighbour is the
                // previous chain element.
                if chain.len() >= 2 && best == chain[chain.len() - 2] {
                    chain.pop();
                    let y = chain.pop().expect("chain had two elements");
                    break (x, y, best_d);
                }
                chain.push(best);
            };

            // Merge y into slot x; retire slot y.
            let (sx, sy) = (size[x], size[y]);
            raw_merges.push(Merge {
                a: cluster_id[x.min(y)],
                b: cluster_id[x.max(y)],
                distance: dist,
                size: sx + sy,
            });
            for m in 0..n {
                if m == x || m == y || !active[m] {
                    continue;
                }
                let dxm = d[x * n + m];
                let dym = d[y * n + m];
                let new = match linkage {
                    Linkage::Single => dxm.min(dym),
                    Linkage::Complete => dxm.max(dym),
                    Linkage::Average => (sx as f64 * dxm + sy as f64 * dym) / (sx + sy) as f64,
                };
                d[x * n + m] = new;
                d[m * n + x] = new;
            }
            active[y] = false;
            size[x] = sx + sy;
            cluster_id[x] = next_id;
            next_id += 1;
            // Under tied distances the remaining chain can still reference
            // x or y; truncate at the first stale entry so every element
            // stays an active, pre-merge cluster.
            if let Some(pos) = chain.iter().position(|&e| e == x || e == y) {
                chain.truncate(pos);
            }
        }

        // NN-chain discovers merges out of height order; sort ascending and
        // relabel the internal cluster ids to match the sorted order.
        let mut order: Vec<usize> = (0..raw_merges.len()).collect();
        order.sort_by(|&i, &j| {
            raw_merges[i]
                .distance
                .partial_cmp(&raw_merges[j].distance)
                .expect("distances are finite")
                .then(i.cmp(&j))
        });
        let mut relabel = vec![0usize; raw_merges.len()];
        for (new_pos, &old_pos) in order.iter().enumerate() {
            relabel[old_pos] = n + new_pos;
        }
        let remap = |id: usize| if id < n { id } else { relabel[id - n] };
        let merges: Vec<Merge> = order
            .iter()
            .map(|&old| {
                let m = raw_merges[old];
                let (a, b) = (remap(m.a), remap(m.b));
                Merge {
                    a: a.min(b),
                    b: a.max(b),
                    distance: m.distance,
                    size: m.size,
                }
            })
            .collect();
        debug_assert!(
            merges.windows(2).all(|w| w[0].distance <= w[1].distance),
            "merge heights must be monotone after sorting"
        );

        Ok(Dendrogram { n, merges })
    }

    /// Number of leaves (observation times).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the dendrogram has no leaves.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The merge steps, ascending by distance.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Flat clustering: apply every merge with `distance <= threshold` and
    /// return one label per leaf. Labels are compacted to `0..k` in order of
    /// first appearance (so label ordering follows time for time-ordered
    /// inputs).
    pub fn cut(&self, threshold: f64) -> Vec<usize> {
        let mut parent: Vec<usize> = (0..self.n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]]; // path halving
                x = parent[x];
            }
            x
        }
        // Union leaves through each qualifying merge. Internal-node ids are
        // mapped to a representative leaf lazily via `rep`.
        let mut rep: Vec<Option<usize>> = vec![None; self.n + self.merges.len()];
        for (i, r) in rep.iter_mut().enumerate().take(self.n) {
            *r = Some(i);
        }
        for (k, m) in self.merges.iter().enumerate() {
            let ra = rep[m.a].expect("child created before parent");
            let rb = rep[m.b].expect("child created before parent");
            if m.distance <= threshold {
                let (fa, fb) = (find(&mut parent, ra), find(&mut parent, rb));
                parent[fa.max(fb)] = fa.min(fb);
            }
            rep[self.n + k] = Some(ra);
        }
        // Compact labels in order of first appearance.
        let mut label_of_root: Vec<Option<usize>> = vec![None; self.n];
        let mut labels = Vec::with_capacity(self.n);
        let mut next = 0usize;
        for i in 0..self.n {
            let r = find(&mut parent, i);
            let l = *label_of_root[r].get_or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            labels.push(l);
        }
        labels
    }

    /// Number of clusters produced by [`Dendrogram::cut`] at `threshold`.
    pub fn cluster_count(&self, threshold: f64) -> usize {
        self.cut(threshold)
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m + 1)
    }
}

/// The paper's adaptive distance-threshold selection (§2.6.2):
///
/// > "we loop over a range of distance threshold \[0,1\] with step 0.01 and
/// > construct a new HAC model with the distance threshold. We choose the
/// > first HAC model with less than 15 clusters with at least 2 valid
/// > observations."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveThreshold {
    /// Sweep step (paper: 0.01).
    pub step: f64,
    /// Accept a model only when it has fewer than this many clusters
    /// (paper: 15).
    pub max_clusters: usize,
    /// Every cluster must contain at least this many observations
    /// (paper: 2).
    pub min_cluster_size: usize,
}

impl Default for AdaptiveThreshold {
    fn default() -> Self {
        AdaptiveThreshold {
            step: 0.01,
            max_clusters: 15,
            min_cluster_size: 2,
        }
    }
}

/// Result of an adaptive-threshold sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdChoice {
    /// The accepted threshold.
    pub threshold: f64,
    /// Flat cluster labels at that threshold, one per observation.
    pub labels: Vec<usize>,
    /// Number of clusters at that threshold.
    pub clusters: usize,
}

impl AdaptiveThreshold {
    /// Sweep thresholds ascending and return the first qualifying model.
    ///
    /// If no threshold in `[0, 1]` qualifies (possible only for degenerate
    /// inputs, e.g. a single observation), falls back to the full merge at
    /// threshold 1.0.
    ///
    /// Errors if parameters are out of domain.
    pub fn choose(&self, dendro: &Dendrogram) -> Result<ThresholdChoice> {
        if !(self.step > 0.0 && self.step <= 1.0) {
            return Err(Error::InvalidParameter {
                name: "step",
                message: format!("{} not in (0, 1]", self.step),
            });
        }
        if self.max_clusters == 0 {
            return Err(Error::InvalidParameter {
                name: "max_clusters",
                message: "must be at least 1".into(),
            });
        }
        let mut t = 0.0;
        while t <= 1.0 + 1e-9 {
            let labels = dendro.cut(t);
            if let Some(choice) = self.qualify(t, labels) {
                return Ok(choice);
            }
            t += self.step;
        }
        let labels = dendro.cut(1.0);
        let clusters = labels.iter().copied().max().map_or(0, |m| m + 1);
        Ok(ThresholdChoice {
            threshold: 1.0,
            labels,
            clusters,
        })
    }

    fn qualify(&self, threshold: f64, labels: Vec<usize>) -> Option<ThresholdChoice> {
        let clusters = labels.iter().copied().max().map_or(0, |m| m + 1);
        if clusters == 0 || clusters >= self.max_clusters {
            return None;
        }
        let mut sizes = vec![0usize; clusters];
        for &l in &labels {
            sizes[l] += 1;
        }
        if sizes.iter().any(|&s| s < self.min_cluster_size) {
            return None;
        }
        Some(ThresholdChoice {
            threshold,
            labels,
            clusters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Similarity matrix from explicit distances.
    fn sim_from_dist(n: usize, f: impl Fn(usize, usize) -> f64) -> SimilarityMatrix {
        let mut v = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                v[i * n + j] = if i == j { 1.0 } else { 1.0 - f(i, j) };
            }
        }
        SimilarityMatrix::from_raw(n, v).unwrap()
    }

    /// Two tight groups {0,1,2} and {3,4} far apart.
    fn two_blobs() -> SimilarityMatrix {
        sim_from_dist(5, |i, j| {
            let g = |x: usize| usize::from(x >= 3);
            if g(i) == g(j) {
                0.1
            } else {
                0.9
            }
        })
    }

    #[test]
    fn empty_matrix_is_error() {
        let sim = SimilarityMatrix::from_raw(0, vec![]).unwrap();
        assert!(Dendrogram::build(&sim, Linkage::Single).is_err());
    }

    #[test]
    fn single_leaf_has_no_merges() {
        let sim = SimilarityMatrix::from_raw(1, vec![1.0]).unwrap();
        let d = Dendrogram::build(&sim, Linkage::Single).unwrap();
        assert!(d.merges().is_empty());
        assert_eq!(d.cut(0.5), vec![0]);
    }

    #[test]
    fn merges_are_monotone_and_complete() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = Dendrogram::build(&two_blobs(), linkage).unwrap();
            assert_eq!(d.merges().len(), 4);
            assert!(d
                .merges()
                .windows(2)
                .all(|w| w[0].distance <= w[1].distance));
            assert_eq!(d.merges().last().unwrap().size, 5);
        }
    }

    #[test]
    fn cut_recovers_the_two_blobs() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = Dendrogram::build(&two_blobs(), linkage).unwrap();
            let labels = d.cut(0.5);
            assert_eq!(labels[0], labels[1]);
            assert_eq!(labels[1], labels[2]);
            assert_eq!(labels[3], labels[4]);
            assert_ne!(labels[0], labels[3]);
            assert_eq!(d.cluster_count(0.5), 2);
        }
    }

    #[test]
    fn cut_at_one_merges_everything() {
        let d = Dendrogram::build(&two_blobs(), Linkage::Single).unwrap();
        assert_eq!(d.cluster_count(1.0), 1);
    }

    #[test]
    fn cut_below_min_distance_keeps_singletons() {
        let d = Dendrogram::build(&two_blobs(), Linkage::Single).unwrap();
        assert_eq!(d.cluster_count(0.05), 5);
    }

    #[test]
    fn labels_follow_first_appearance_order() {
        let d = Dendrogram::build(&two_blobs(), Linkage::Single).unwrap();
        let labels = d.cut(0.5);
        assert_eq!(labels[0], 0); // first observation always labelled 0
        assert_eq!(labels[3], 1); // second cluster appears later in time
    }

    #[test]
    fn single_vs_complete_linkage_differ_on_chains() {
        // A chain 0-1-2-3 where consecutive points are 0.2 apart and the
        // ends are 0.6 apart. Single linkage merges the whole chain at 0.2;
        // complete linkage cannot join the ends until much higher.
        let sim = sim_from_dist(4, |i, j| {
            let d = i.abs_diff(j);
            match d {
                1 => 0.2,
                2 => 0.4,
                _ => 0.6,
            }
        });
        let ds = Dendrogram::build(&sim, Linkage::Single).unwrap();
        assert_eq!(ds.cluster_count(0.25), 1, "single linkage chains");
        let dc = Dendrogram::build(&sim, Linkage::Complete).unwrap();
        assert!(
            dc.cluster_count(0.25) > 1,
            "complete linkage resists chains"
        );
    }

    #[test]
    fn average_linkage_is_between_single_and_complete() {
        let sim = sim_from_dist(4, |i, j| {
            let d = i.abs_diff(j);
            match d {
                1 => 0.2,
                2 => 0.4,
                _ => 0.6,
            }
        });
        let height = |l: Linkage| {
            Dendrogram::build(&sim, l)
                .unwrap()
                .merges()
                .last()
                .unwrap()
                .distance
        };
        let (s, a, c) = (
            height(Linkage::Single),
            height(Linkage::Average),
            height(Linkage::Complete),
        );
        assert!(
            s <= a && a <= c,
            "single {s} <= average {a} <= complete {c}"
        );
    }

    #[test]
    fn adaptive_threshold_picks_the_blob_structure() {
        let d = Dendrogram::build(&two_blobs(), Linkage::Single).unwrap();
        let choice = AdaptiveThreshold::default().choose(&d).unwrap();
        assert_eq!(choice.clusters, 2);
        // Accepted at the first sweep step reaching the intra-blob distance
        // (0.1 up to float rounding in both the step accumulation and the
        // 1 − Φ conversion).
        assert!(choice.threshold >= 0.1 - 1e-9 && choice.threshold < 0.2);
        assert_eq!(choice.labels, d.cut(choice.threshold));
    }

    #[test]
    fn adaptive_threshold_rejects_singleton_models() {
        // Distances: {0,1} at 0.1, {2} an outlier at 0.8 from both.
        let sim = sim_from_dist(3, |i, j| {
            if (i, j) == (0, 1) || (i, j) == (1, 0) {
                0.1
            } else {
                0.8
            }
        });
        let d = Dendrogram::build(&sim, Linkage::Single).unwrap();
        let choice = AdaptiveThreshold::default().choose(&d).unwrap();
        // At 0.1 the model is {0,1},{2}: rejected (singleton). The accepted
        // threshold must swallow the outlier.
        assert!(choice.threshold >= 0.8 - 1e-9);
        assert_eq!(choice.clusters, 1);
    }

    #[test]
    fn adaptive_threshold_validates_parameters() {
        let d = Dendrogram::build(&two_blobs(), Linkage::Single).unwrap();
        let bad_step = AdaptiveThreshold {
            step: 0.0,
            ..Default::default()
        };
        assert!(bad_step.choose(&d).is_err());
        let bad_max = AdaptiveThreshold {
            max_clusters: 0,
            ..Default::default()
        };
        assert!(bad_max.choose(&d).is_err());
    }

    #[test]
    fn adaptive_threshold_single_observation_falls_back() {
        let sim = SimilarityMatrix::from_raw(1, vec![1.0]).unwrap();
        let d = Dendrogram::build(&sim, Linkage::Single).unwrap();
        let choice = AdaptiveThreshold::default().choose(&d).unwrap();
        assert_eq!(choice.clusters, 1);
        assert_eq!(choice.labels, vec![0]);
    }

    #[test]
    fn max_clusters_bound_is_exclusive() {
        // 4 equidistant points: any threshold below 0.5 gives 4 singletons;
        // at 0.5 everything merges. With max_clusters = 1 nothing qualifies
        // below full merge... with max 2, the 1-cluster model qualifies.
        let sim = sim_from_dist(4, |_, _| 0.5);
        let d = Dendrogram::build(&sim, Linkage::Single).unwrap();
        let at = AdaptiveThreshold {
            max_clusters: 2,
            ..Default::default()
        };
        let choice = at.choose(&d).unwrap();
        assert_eq!(choice.clusters, 1);
    }

    #[test]
    fn identical_observations_merge_at_zero() {
        let sim = sim_from_dist(3, |_, _| 0.0);
        let d = Dendrogram::build(&sim, Linkage::Complete).unwrap();
        assert_eq!(d.cluster_count(0.0), 1);
    }
}
