//! Hierarchical Agglomerative Clustering (§2.6.2 of the paper).
//!
//! Fenrir discovers routing "modes" by clustering routing vectors on their
//! Gower distance `1 − Φ`. The paper cites SLINK (single linkage); this
//! module implements the nearest-neighbour-chain algorithm, which yields
//! exact single, complete, and average linkage in `O(|T|²)` time — |T| is
//! observation times, a few thousand even for five years of daily data.
//!
//! The paper's **adaptive distance threshold** rule is implemented by
//! [`AdaptiveThreshold`]: sweep thresholds from 0 to 1 in steps of 0.01 and
//! accept the first flat clustering with fewer than 15 clusters, each backed
//! by at least 2 valid observations.

use crate::error::{Error, Result};
use crate::guard::DivergenceGuard;
use crate::similarity::SimilarityMatrix;
use serde::{Deserialize, Serialize};

/// Linkage criterion for merging clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Linkage {
    /// Minimum pairwise distance (SLINK, the paper's citation). Prone to
    /// chaining but cheap and faithful to the paper.
    #[default]
    Single,
    /// Maximum pairwise distance; produces compact, similar-diameter modes.
    Complete,
    /// Unweighted average pairwise distance (UPGMA); the middle ground,
    /// benched in the ablation suite.
    Average,
}

/// One agglomeration step: clusters `a` and `b` merge at `distance` into a
/// new cluster of `size` leaves.
///
/// Cluster numbering follows the scipy convention: ids `0..n` are leaves
/// (observation indices); the merge at position `k` of
/// [`Dendrogram::merges`] creates cluster `n + k`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// First merged cluster id.
    pub a: usize,
    /// Second merged cluster id.
    pub b: usize,
    /// Linkage distance at which the merge happens.
    pub distance: f64,
    /// Number of leaves in the new cluster.
    pub size: usize,
}

/// The full merge tree produced by HAC, with merges in ascending distance
/// order so that cutting at a threshold is a single union-find pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dendrogram {
    n: usize,
    #[serde(default)]
    linkage: Linkage,
    merges: Vec<Merge>,
}

/// Working state of the greedy global-minimum agglomeration shared by
/// [`Dendrogram::build`] and [`Dendrogram::extend`].
///
/// Each *slot* is one leaf index; a merged cluster lives on in the slot of
/// its smaller member and the other slot retires. Every candidate pair is
/// ranked by a total-order key (see [`Engine::key`]) so the merge sequence
/// is a pure function of the distance matrix — independent of discovery
/// order, which is what lets an incremental resume reproduce the batch
/// result bit for bit.
struct Engine {
    linkage: Linkage,
    slots: usize,
    /// `slots × slots` working distances, Lance-Williams-updated on merge.
    d: Vec<f64>,
    active: Vec<bool>,
    size: Vec<usize>,
    /// Current dendrogram cluster id (scipy numbering) held by each slot.
    cluster_id: Vec<usize>,
    next_id: usize,
    /// Cached nearest neighbour per slot `(distance, neighbour_slot)`,
    /// cleared whenever a merge could change the answer.
    nn: Vec<Option<(f64, usize)>>,
}

impl Engine {
    fn from_leaves(sim: &SimilarityMatrix, linkage: Linkage) -> Engine {
        let n = sim.len();
        let mut d = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                d[i * n + j] = sim.distance(i, j);
            }
        }
        Engine {
            linkage,
            slots: n,
            d,
            active: vec![true; n],
            size: vec![1; n],
            cluster_id: (0..n).collect(),
            next_id: n,
            nn: vec![None; n],
        }
    }

    /// Lexicographic merge key: distance first under `f64::total_cmp` (so a
    /// NaN distance sorts after every number instead of panicking the sort,
    /// and ties are never resolved by discovery order), then the cluster-id
    /// pair. Keys are distinct across candidate pairs, making the greedy
    /// choice canonical.
    fn key(&self, dist: f64, i: usize, j: usize) -> (f64, usize, usize) {
        let (ci, cj) = (self.cluster_id[i], self.cluster_id[j]);
        (dist, ci.min(cj), ci.max(cj))
    }

    fn key_lt(a: &(f64, usize, usize), b: &(f64, usize, usize)) -> bool {
        a.0.total_cmp(&b.0)
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
            .is_lt()
    }

    /// Nearest active neighbour of slot `i` by merge key.
    fn nearest(&self, i: usize) -> (f64, usize) {
        let mut best: Option<((f64, usize, usize), usize)> = None;
        for j in 0..self.slots {
            if j == i || !self.active[j] {
                continue;
            }
            let k = self.key(self.d[i * self.slots + j], i, j);
            if best.is_none_or(|(bk, _)| Self::key_lt(&k, &bk)) {
                best = Some((k, j));
            }
        }
        let (k, j) = best.expect("at least two active clusters");
        (k.0, j)
    }

    /// Merge the clusters in slots `x < y`, retiring `y`. Returns the
    /// recorded merge step.
    fn merge_slots(&mut self, x: usize, y: usize) -> Merge {
        debug_assert!(x < y && self.active[x] && self.active[y]);
        let n = self.slots;
        let dist = self.d[x * n + y];
        let (sx, sy) = (self.size[x], self.size[y]);
        let merge = Merge {
            a: self.cluster_id[x].min(self.cluster_id[y]),
            b: self.cluster_id[x].max(self.cluster_id[y]),
            distance: dist,
            size: sx + sy,
        };
        for m in 0..n {
            if m == x || m == y || !self.active[m] {
                continue;
            }
            let dxm = self.d[x * n + m];
            let dym = self.d[y * n + m];
            let new = match self.linkage {
                Linkage::Single => dxm.min(dym),
                Linkage::Complete => dxm.max(dym),
                Linkage::Average => (sx as f64 * dxm + sy as f64 * dym) / (sx + sy) as f64,
            };
            self.d[x * n + m] = new;
            self.d[m * n + x] = new;
            // The cache survives only if it cannot have been affected: its
            // neighbour still exists and the merged cluster is strictly
            // farther (a tie would need the id-based key re-evaluated).
            if let Some((cd, cj)) = self.nn[m] {
                if cj == x || cj == y || new.total_cmp(&cd).is_le() {
                    self.nn[m] = None;
                }
            }
        }
        self.active[y] = false;
        self.nn[y] = None;
        self.nn[x] = None;
        self.size[x] = sx + sy;
        self.cluster_id[x] = self.next_id;
        self.next_id += 1;
        merge
    }

    /// One greedy step: merge the globally closest pair of active clusters.
    fn merge_best(&mut self) -> Merge {
        let mut best: Option<((f64, usize, usize), usize, usize)> = None;
        for i in 0..self.slots {
            if !self.active[i] {
                continue;
            }
            let (dist, j) = match self.nn[i] {
                Some(cached) => cached,
                None => {
                    let fresh = self.nearest(i);
                    self.nn[i] = Some(fresh);
                    fresh
                }
            };
            let k = self.key(dist, i, j);
            if best.is_none_or(|(bk, _, _)| Self::key_lt(&k, &bk)) {
                best = Some((k, i, j));
            }
        }
        let (_, a, b) = best.expect("at least two active clusters");
        self.merge_slots(a.min(b), a.max(b))
    }

    /// Run greedy agglomeration until one cluster remains, appending each
    /// merge to `out`.
    fn run(&mut self, out: &mut Vec<Merge>) {
        let mut remaining = self.active.iter().filter(|&&a| a).count();
        while remaining > 1 {
            out.push(self.merge_best());
            remaining -= 1;
        }
    }
}

impl Dendrogram {
    /// Run HAC over the Gower distances of `sim` with the given linkage.
    ///
    /// The merge sequence is canonical: at every step the pair with the
    /// smallest `(distance, min id, max id)` key merges, so the output is a
    /// pure function of the matrix and two builds (or a build and an
    /// incremental [`Dendrogram::extend`]) agree exactly.
    ///
    /// Errors if the matrix is empty.
    pub fn build(sim: &SimilarityMatrix, linkage: Linkage) -> Result<Self> {
        let n = sim.len();
        if n == 0 {
            return Err(Error::EmptyInput("similarity matrix"));
        }
        let mut merges = Vec::with_capacity(n - 1);
        if n > 1 {
            Engine::from_leaves(sim, linkage).run(&mut merges);
        }
        debug_assert!(
            merges
                .windows(2)
                .all(|w| w[0].distance.total_cmp(&w[1].distance).is_le()),
            "greedy merges must come out in ascending distance order"
        );
        Ok(Dendrogram { n, linkage, merges })
    }

    /// Grow the tree over observations newly appended to `sim` — the
    /// daily-operations path where an operator adds one sweep per day.
    ///
    /// Let `cutoff` be the smallest distance involving any new observation.
    /// No cluster containing a new observation can take part in a merge
    /// below `cutoff`, so the existing merges strictly below it are exactly
    /// the prefix a batch build over the grown matrix would produce. Those
    /// are replayed (Lance-Williams updates only — no neighbour search),
    /// and greedy agglomeration resumes from the reconstructed state. The
    /// result is identical to `Dendrogram::build(sim, linkage)` — bit for
    /// bit, including tie resolution — which the property tests assert.
    ///
    /// The first `self.len()` observations of `sim` must be the ones this
    /// tree was built from. Errors if the matrix shrank.
    pub fn extend(&mut self, sim: &SimilarityMatrix) -> Result<()> {
        let old_n = self.n;
        let new_n = sim.len();
        if new_n < old_n {
            return Err(Error::ShapeMismatch {
                what: "extended similarity matrix",
                expected: old_n,
                actual: new_n,
            });
        }
        if new_n == old_n {
            return Ok(());
        }
        let mut cutoff = f64::INFINITY;
        for j in old_n..new_n {
            for i in 0..new_n {
                if i != j {
                    let dij = sim.distance(i, j);
                    if dij.total_cmp(&cutoff).is_lt() {
                        cutoff = dij;
                    }
                }
            }
        }
        // Stable prefix: merges strictly below the cutoff. Internal ids are
        // rebased from `old_n + p` to `new_n + p`; the remap preserves the
        // relative order of every id pair that can tie below the cutoff, so
        // replayed tie-breaks match what the batch build would choose.
        let keep = self
            .merges
            .iter()
            .take_while(|m| m.distance.total_cmp(&cutoff).is_lt())
            .count();
        let remap = |id: usize| if id < old_n { id } else { new_n + (id - old_n) };

        let mut engine = Engine::from_leaves(sim, self.linkage);
        let mut merges: Vec<Merge> = Vec::with_capacity(new_n - 1);
        // Slot currently holding each replayed cluster id.
        let mut slot_of: Vec<usize> = (0..new_n).collect();
        for m in &self.merges[..keep] {
            let (a, b) = (remap(m.a), remap(m.b));
            let (x, y) = (slot_of[a], slot_of[b]);
            let new_id = engine.next_id;
            let replayed = engine.merge_slots(x.min(y), x.max(y));
            debug_assert_eq!(replayed.distance.to_bits(), m.distance.to_bits());
            debug_assert_eq!((replayed.a, replayed.b), (a.min(b), a.max(b)));
            slot_of.push(x.min(y));
            debug_assert_eq!(slot_of.len() - 1, new_id);
            merges.push(replayed);
        }
        engine.run(&mut merges);
        self.n = new_n;
        self.merges = merges;
        Ok(())
    }

    /// Like [`Dendrogram::extend`], but wrapped in a runtime
    /// [`DivergenceGuard`]: sampled extends are cross-checked bit-for-bit
    /// against a batch [`Dendrogram::build`] over the same matrix. On
    /// mismatch the guard records a typed
    /// [`Error::IncrementalDivergence`](crate::error::Error), the batch
    /// tree replaces the diverged one, and the guard's quarantine steers
    /// every later call straight to the batch path — the campaign
    /// continues with correct results instead of aborting.
    pub fn extend_guarded(
        &mut self,
        sim: &SimilarityMatrix,
        guard: &mut DivergenceGuard,
    ) -> Result<()> {
        if guard.quarantined() {
            *self = Dendrogram::build(sim, self.linkage)?;
            return Ok(());
        }
        let old_n = self.n;
        self.extend(sim)?;
        if guard.should_check(self.n > old_n) {
            let batch = Dendrogram::build(sim, self.linkage)?;
            let same = |x: &Merge, y: &Merge| {
                x.a == y.a
                    && x.b == y.b
                    && x.size == y.size
                    && x.distance.to_bits() == y.distance.to_bits()
            };
            let mismatch = self.n != batch.n
                || self.merges.len() != batch.merges.len()
                || self
                    .merges
                    .iter()
                    .zip(&batch.merges)
                    .any(|(a, b)| !same(a, b));
            if mismatch {
                let step = self
                    .merges
                    .iter()
                    .zip(&batch.merges)
                    .position(|(a, b)| !same(a, b));
                guard.record(
                    "dendrogram",
                    match step {
                        Some(k) => format!(
                            "merge {k} is {:?}, batch built {:?}",
                            self.merges[k], batch.merges[k]
                        ),
                        None => format!(
                            "{} leaves / {} merges vs batch {} / {}",
                            self.n,
                            self.merges.len(),
                            batch.n,
                            batch.merges.len()
                        ),
                    },
                );
                *self = batch;
            }
        }
        Ok(())
    }

    /// Rebuild a tree from previously recorded parts — the journal restore
    /// path, reusing a persisted merge prefix instead of re-clustering.
    /// Validates the merge count (`n − 1` for a complete tree), ascending
    /// distance order, and the scipy id convention (merge `k` references
    /// only clusters `< n + k` and creates cluster `n + k`).
    pub fn from_parts(n: usize, linkage: Linkage, merges: Vec<Merge>) -> Result<Self> {
        if n == 0 {
            return Err(Error::EmptyInput("dendrogram leaves"));
        }
        if merges.len() != n - 1 {
            return Err(Error::ShapeMismatch {
                what: "dendrogram merges",
                expected: n - 1,
                actual: merges.len(),
            });
        }
        for (k, m) in merges.iter().enumerate() {
            if m.a >= m.b || m.b >= n + k || m.size < 2 || m.size > n {
                return Err(Error::InvalidParameter {
                    name: "merges",
                    message: format!("merge {k} ({m:?}) violates the id/size convention"),
                });
            }
        }
        if merges
            .windows(2)
            .any(|w| w[0].distance.total_cmp(&w[1].distance).is_gt())
        {
            return Err(Error::InvalidParameter {
                name: "merges",
                message: "merge distances are not ascending".into(),
            });
        }
        Ok(Dendrogram { n, linkage, merges })
    }

    /// The linkage this tree was built with.
    pub fn linkage(&self) -> Linkage {
        self.linkage
    }

    /// Number of leaves (observation times).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the dendrogram has no leaves.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The merge steps, ascending by distance.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Flat clustering: apply every merge with `distance <= threshold` and
    /// return one label per leaf. Labels are compacted to `0..k` in order of
    /// first appearance (so label ordering follows time for time-ordered
    /// inputs).
    pub fn cut(&self, threshold: f64) -> Vec<usize> {
        let mut parent: Vec<usize> = (0..self.n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]]; // path halving
                x = parent[x];
            }
            x
        }
        // Union leaves through each qualifying merge. Internal-node ids are
        // mapped to a representative leaf lazily via `rep`.
        let mut rep: Vec<Option<usize>> = vec![None; self.n + self.merges.len()];
        for (i, r) in rep.iter_mut().enumerate().take(self.n) {
            *r = Some(i);
        }
        for (k, m) in self.merges.iter().enumerate() {
            let ra = rep[m.a].expect("child created before parent");
            let rb = rep[m.b].expect("child created before parent");
            if m.distance <= threshold {
                let (fa, fb) = (find(&mut parent, ra), find(&mut parent, rb));
                parent[fa.max(fb)] = fa.min(fb);
            }
            rep[self.n + k] = Some(ra);
        }
        // Compact labels in order of first appearance.
        let mut label_of_root: Vec<Option<usize>> = vec![None; self.n];
        let mut labels = Vec::with_capacity(self.n);
        let mut next = 0usize;
        for i in 0..self.n {
            let r = find(&mut parent, i);
            let l = *label_of_root[r].get_or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            labels.push(l);
        }
        labels
    }

    /// Mode membership at an untrusted threshold: like [`Dendrogram::cut`]
    /// but validating the threshold domain first, for callers (e.g. a
    /// query server) that cannot vouch for the value. A non-finite or
    /// out-of-`[0, 1]` threshold is refused with a typed error instead of
    /// silently producing the all-separate or all-merged clustering.
    pub fn membership_at(&self, threshold: f64) -> Result<Vec<usize>> {
        if !threshold.is_finite() || !(0.0..=1.0).contains(&threshold) {
            return Err(Error::InvalidParameter {
                name: "threshold",
                message: format!("{threshold} is not a distance in [0, 1]"),
            });
        }
        Ok(self.cut(threshold))
    }

    /// Number of clusters produced by [`Dendrogram::cut`] at `threshold`.
    pub fn cluster_count(&self, threshold: f64) -> usize {
        self.cut(threshold)
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m + 1)
    }
}

/// The paper's adaptive distance-threshold selection (§2.6.2):
///
/// > "we loop over a range of distance threshold \[0,1\] with step 0.01 and
/// > construct a new HAC model with the distance threshold. We choose the
/// > first HAC model with less than 15 clusters with at least 2 valid
/// > observations."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveThreshold {
    /// Sweep step (paper: 0.01).
    pub step: f64,
    /// Accept a model only when it has fewer than this many clusters
    /// (paper: 15).
    pub max_clusters: usize,
    /// Every cluster must contain at least this many observations
    /// (paper: 2).
    pub min_cluster_size: usize,
}

impl Default for AdaptiveThreshold {
    fn default() -> Self {
        AdaptiveThreshold {
            step: 0.01,
            max_clusters: 15,
            min_cluster_size: 2,
        }
    }
}

/// Result of an adaptive-threshold sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdChoice {
    /// The accepted threshold.
    pub threshold: f64,
    /// Flat cluster labels at that threshold, one per observation.
    pub labels: Vec<usize>,
    /// Number of clusters at that threshold.
    pub clusters: usize,
}

impl AdaptiveThreshold {
    /// Sweep thresholds ascending and return the first qualifying model.
    ///
    /// If no threshold in `[0, 1]` qualifies (possible only for degenerate
    /// inputs, e.g. a single observation), falls back to the full merge at
    /// threshold 1.0.
    ///
    /// Errors if parameters are out of domain.
    pub fn choose(&self, dendro: &Dendrogram) -> Result<ThresholdChoice> {
        if !(self.step > 0.0 && self.step <= 1.0) {
            return Err(Error::InvalidParameter {
                name: "step",
                message: format!("{} not in (0, 1]", self.step),
            });
        }
        if self.max_clusters == 0 {
            return Err(Error::InvalidParameter {
                name: "max_clusters",
                message: "must be at least 1".into(),
            });
        }
        // Sweep by integer index: `t += step` accumulates binary
        // representation error (0.01 is not exactly representable), so the
        // swept thresholds would drift and 1.0 might be skipped or tested
        // twice depending on a fudge factor. `i as f64 * step` keeps each
        // threshold within one rounding of the ideal value, and the final
        // index is clamped so exactly 1.0 is always the last threshold.
        let steps = (1.0 / self.step).ceil() as usize;
        for i in 0..=steps {
            let t = if i == steps {
                1.0
            } else {
                i as f64 * self.step
            };
            let labels = dendro.cut(t);
            if let Some(choice) = self.qualify(t, labels) {
                return Ok(choice);
            }
        }
        let labels = dendro.cut(1.0);
        let clusters = labels.iter().copied().max().map_or(0, |m| m + 1);
        Ok(ThresholdChoice {
            threshold: 1.0,
            labels,
            clusters,
        })
    }

    fn qualify(&self, threshold: f64, labels: Vec<usize>) -> Option<ThresholdChoice> {
        let clusters = labels.iter().copied().max().map_or(0, |m| m + 1);
        if clusters == 0 || clusters >= self.max_clusters {
            return None;
        }
        let mut sizes = vec![0usize; clusters];
        for &l in &labels {
            sizes[l] += 1;
        }
        if sizes.iter().any(|&s| s < self.min_cluster_size) {
            return None;
        }
        Some(ThresholdChoice {
            threshold,
            labels,
            clusters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Similarity matrix from explicit distances.
    fn sim_from_dist(n: usize, f: impl Fn(usize, usize) -> f64) -> SimilarityMatrix {
        let mut v = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                v[i * n + j] = if i == j { 1.0 } else { 1.0 - f(i, j) };
            }
        }
        SimilarityMatrix::from_raw(n, v).unwrap()
    }

    /// Two tight groups {0,1,2} and {3,4} far apart.
    fn two_blobs() -> SimilarityMatrix {
        sim_from_dist(5, |i, j| {
            let g = |x: usize| usize::from(x >= 3);
            if g(i) == g(j) {
                0.1
            } else {
                0.9
            }
        })
    }

    #[test]
    fn empty_matrix_is_error() {
        let sim = SimilarityMatrix::from_raw(0, vec![]).unwrap();
        assert!(Dendrogram::build(&sim, Linkage::Single).is_err());
    }

    #[test]
    fn membership_at_validates_threshold_domain() {
        let d = Dendrogram::build(&two_blobs(), Linkage::Average).unwrap();
        assert_eq!(d.membership_at(0.5).unwrap(), d.cut(0.5));
        for bad in [f64::NAN, f64::INFINITY, -0.01, 1.01] {
            assert!(matches!(
                d.membership_at(bad),
                Err(Error::InvalidParameter { .. })
            ));
        }
    }

    #[test]
    fn single_leaf_has_no_merges() {
        let sim = SimilarityMatrix::from_raw(1, vec![1.0]).unwrap();
        let d = Dendrogram::build(&sim, Linkage::Single).unwrap();
        assert!(d.merges().is_empty());
        assert_eq!(d.cut(0.5), vec![0]);
    }

    #[test]
    fn merges_are_monotone_and_complete() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = Dendrogram::build(&two_blobs(), linkage).unwrap();
            assert_eq!(d.merges().len(), 4);
            assert!(d
                .merges()
                .windows(2)
                .all(|w| w[0].distance <= w[1].distance));
            assert_eq!(d.merges().last().unwrap().size, 5);
        }
    }

    #[test]
    fn cut_recovers_the_two_blobs() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = Dendrogram::build(&two_blobs(), linkage).unwrap();
            let labels = d.cut(0.5);
            assert_eq!(labels[0], labels[1]);
            assert_eq!(labels[1], labels[2]);
            assert_eq!(labels[3], labels[4]);
            assert_ne!(labels[0], labels[3]);
            assert_eq!(d.cluster_count(0.5), 2);
        }
    }

    #[test]
    fn cut_at_one_merges_everything() {
        let d = Dendrogram::build(&two_blobs(), Linkage::Single).unwrap();
        assert_eq!(d.cluster_count(1.0), 1);
    }

    #[test]
    fn cut_below_min_distance_keeps_singletons() {
        let d = Dendrogram::build(&two_blobs(), Linkage::Single).unwrap();
        assert_eq!(d.cluster_count(0.05), 5);
    }

    #[test]
    fn labels_follow_first_appearance_order() {
        let d = Dendrogram::build(&two_blobs(), Linkage::Single).unwrap();
        let labels = d.cut(0.5);
        assert_eq!(labels[0], 0); // first observation always labelled 0
        assert_eq!(labels[3], 1); // second cluster appears later in time
    }

    #[test]
    fn single_vs_complete_linkage_differ_on_chains() {
        // A chain 0-1-2-3 where consecutive points are 0.2 apart and the
        // ends are 0.6 apart. Single linkage merges the whole chain at 0.2;
        // complete linkage cannot join the ends until much higher.
        let sim = sim_from_dist(4, |i, j| {
            let d = i.abs_diff(j);
            match d {
                1 => 0.2,
                2 => 0.4,
                _ => 0.6,
            }
        });
        let ds = Dendrogram::build(&sim, Linkage::Single).unwrap();
        assert_eq!(ds.cluster_count(0.25), 1, "single linkage chains");
        let dc = Dendrogram::build(&sim, Linkage::Complete).unwrap();
        assert!(
            dc.cluster_count(0.25) > 1,
            "complete linkage resists chains"
        );
    }

    #[test]
    fn average_linkage_is_between_single_and_complete() {
        let sim = sim_from_dist(4, |i, j| {
            let d = i.abs_diff(j);
            match d {
                1 => 0.2,
                2 => 0.4,
                _ => 0.6,
            }
        });
        let height = |l: Linkage| {
            Dendrogram::build(&sim, l)
                .unwrap()
                .merges()
                .last()
                .unwrap()
                .distance
        };
        let (s, a, c) = (
            height(Linkage::Single),
            height(Linkage::Average),
            height(Linkage::Complete),
        );
        assert!(
            s <= a && a <= c,
            "single {s} <= average {a} <= complete {c}"
        );
    }

    #[test]
    fn adaptive_threshold_picks_the_blob_structure() {
        let d = Dendrogram::build(&two_blobs(), Linkage::Single).unwrap();
        let choice = AdaptiveThreshold::default().choose(&d).unwrap();
        assert_eq!(choice.clusters, 2);
        // Accepted at the first sweep step reaching the intra-blob distance
        // (0.1 up to float rounding in both the step accumulation and the
        // 1 − Φ conversion).
        assert!(choice.threshold >= 0.1 - 1e-9 && choice.threshold < 0.2);
        assert_eq!(choice.labels, d.cut(choice.threshold));
    }

    #[test]
    fn adaptive_threshold_rejects_singleton_models() {
        // Distances: {0,1} at 0.1, {2} an outlier at 0.8 from both.
        let sim = sim_from_dist(3, |i, j| {
            if (i, j) == (0, 1) || (i, j) == (1, 0) {
                0.1
            } else {
                0.8
            }
        });
        let d = Dendrogram::build(&sim, Linkage::Single).unwrap();
        let choice = AdaptiveThreshold::default().choose(&d).unwrap();
        // At 0.1 the model is {0,1},{2}: rejected (singleton). The accepted
        // threshold must swallow the outlier.
        assert!(choice.threshold >= 0.8 - 1e-9);
        assert_eq!(choice.clusters, 1);
    }

    #[test]
    fn adaptive_threshold_validates_parameters() {
        let d = Dendrogram::build(&two_blobs(), Linkage::Single).unwrap();
        let bad_step = AdaptiveThreshold {
            step: 0.0,
            ..Default::default()
        };
        assert!(bad_step.choose(&d).is_err());
        let bad_max = AdaptiveThreshold {
            max_clusters: 0,
            ..Default::default()
        };
        assert!(bad_max.choose(&d).is_err());
    }

    #[test]
    fn adaptive_threshold_single_observation_falls_back() {
        let sim = SimilarityMatrix::from_raw(1, vec![1.0]).unwrap();
        let d = Dendrogram::build(&sim, Linkage::Single).unwrap();
        let choice = AdaptiveThreshold::default().choose(&d).unwrap();
        assert_eq!(choice.clusters, 1);
        assert_eq!(choice.labels, vec![0]);
    }

    #[test]
    fn max_clusters_bound_is_exclusive() {
        // 4 equidistant points: any threshold below 0.5 gives 4 singletons;
        // at 0.5 everything merges. With max_clusters = 1 nothing qualifies
        // below full merge... with max 2, the 1-cluster model qualifies.
        let sim = sim_from_dist(4, |_, _| 0.5);
        let d = Dendrogram::build(&sim, Linkage::Single).unwrap();
        let at = AdaptiveThreshold {
            max_clusters: 2,
            ..Default::default()
        };
        let choice = at.choose(&d).unwrap();
        assert_eq!(choice.clusters, 1);
    }

    #[test]
    fn identical_observations_merge_at_zero() {
        let sim = sim_from_dist(3, |_, _| 0.0);
        let d = Dendrogram::build(&sim, Linkage::Complete).unwrap();
        assert_eq!(d.cluster_count(0.0), 1);
    }

    #[test]
    fn nan_distances_do_not_panic() {
        // A NaN distance (e.g. from a degenerate weights edge case smuggled
        // in through from_raw) must not panic the merge ordering; under
        // total_cmp NaN sorts after every number, so NaN-distance merges
        // come last and everything else is unaffected.
        let mut v = vec![f64::NAN; 9];
        for i in 0..3 {
            v[i * 3 + i] = 1.0;
        }
        // Observations 0 and 1 are close; 2 is NaN-distant from both.
        v[1] = 0.9;
        v[3] = 0.9;
        let sim = SimilarityMatrix::from_raw(3, v).unwrap();
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = Dendrogram::build(&sim, linkage).unwrap();
            assert_eq!(d.merges().len(), 2, "{linkage:?}");
            assert!((d.merges()[0].distance - 0.1).abs() < 1e-12);
            assert!(d.merges()[1].distance.is_nan());
        }
    }

    #[test]
    fn build_is_deterministic_under_ties() {
        // Every pair equidistant: the canonical key must resolve ties the
        // same way on every run, so two builds agree exactly.
        let sim = sim_from_dist(6, |_, _| 0.5);
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let a = Dendrogram::build(&sim, linkage).unwrap();
            let b = Dendrogram::build(&sim, linkage).unwrap();
            assert_eq!(a.merges(), b.merges());
            // First merge is the smallest-id pair, and ids ascend.
            assert_eq!((a.merges()[0].a, a.merges()[0].b), (0, 1));
        }
    }

    #[test]
    fn extend_matches_batch_build() {
        // Grow 5 -> 8 observations; the incrementally extended tree must be
        // bit-for-bit the batch tree over the full matrix.
        let full = sim_from_dist(8, |i, j| {
            let g = |x: usize| if x >= 6 { 2 } else { usize::from(x >= 3) };
            if g(i) == g(j) {
                0.1 + 0.01 * i.abs_diff(j) as f64
            } else {
                0.8 + 0.01 * (i + j) as f64 / 10.0
            }
        });
        let prefix = {
            let n = 5;
            let mut v = vec![0.0; n * n];
            for i in 0..n {
                for j in 0..n {
                    v[i * n + j] = full.get(i, j);
                }
            }
            SimilarityMatrix::from_raw(n, v).unwrap()
        };
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let mut grown = Dendrogram::build(&prefix, linkage).unwrap();
            grown.extend(&full).unwrap();
            let batch = Dendrogram::build(&full, linkage).unwrap();
            assert_eq!(grown.merges(), batch.merges(), "{linkage:?}");
            assert_eq!(grown.len(), batch.len());
        }
    }

    #[test]
    fn extend_matches_batch_under_ties() {
        // All-equal distances maximise tie-break pressure on the replayed
        // prefix; the id rebasing must preserve every tie resolution.
        let full = sim_from_dist(7, |_, _| 0.5);
        let prefix = sim_from_dist(4, |_, _| 0.5);
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let mut grown = Dendrogram::build(&prefix, linkage).unwrap();
            grown.extend(&full).unwrap();
            let batch = Dendrogram::build(&full, linkage).unwrap();
            assert_eq!(grown.merges(), batch.merges(), "{linkage:?}");
        }
    }

    #[test]
    fn extend_noop_and_shrink() {
        let sim = two_blobs();
        let mut d = Dendrogram::build(&sim, Linkage::Single).unwrap();
        let before = d.merges().to_vec();
        d.extend(&sim).unwrap();
        assert_eq!(d.merges(), &before[..]);
        let small = sim_from_dist(2, |_, _| 0.5);
        assert!(d.extend(&small).is_err());
    }

    #[test]
    fn from_parts_round_trips() {
        let d = Dendrogram::build(&two_blobs(), Linkage::Average).unwrap();
        let back = Dendrogram::from_parts(d.len(), d.linkage(), d.merges().to_vec()).unwrap();
        assert_eq!(back.merges(), d.merges());
        assert_eq!(back.len(), d.len());
        assert_eq!(back.linkage(), d.linkage());
    }

    #[test]
    fn from_parts_rejects_malformed_trees() {
        let d = Dendrogram::build(&two_blobs(), Linkage::Single).unwrap();
        let merges = d.merges().to_vec();
        // Wrong merge count.
        assert!(Dendrogram::from_parts(d.len(), Linkage::Single, merges[..2].to_vec()).is_err());
        // Descending distances.
        let mut reversed = merges.clone();
        reversed.reverse();
        assert!(Dendrogram::from_parts(d.len(), Linkage::Single, reversed).is_err());
        // Id out of the scipy range for its position.
        let mut bad = merges.clone();
        bad[0].b = d.len() + 5;
        assert!(Dendrogram::from_parts(d.len(), Linkage::Single, bad).is_err());
        assert!(Dendrogram::from_parts(0, Linkage::Single, vec![]).is_err());
    }

    #[test]
    fn extend_guarded_repairs_and_quarantines_on_divergence() {
        use crate::guard::{DivergenceGuard, SamplingRate};
        // Two tied pairs {0,1} and {2,3} at 0.1, far apart; a new
        // observation 4 lands at 0.3 from everyone.
        let full = sim_from_dist(5, |i, j| match (i / 2, j / 2) {
            _ if i == 4 || j == 4 => 0.3,
            (gi, gj) if gi == gj => 0.1,
            _ => 0.5,
        });
        // A *replayable but non-canonical* prefix: the tied 0.1 merges
        // recorded in the order (2,3) before (0,1). Batch tie-breaking
        // always picks the smaller id pair first, so no batch build ever
        // produces this tree — exactly the kind of state an incremental
        // bug would leave behind, and one the replay path accepts without
        // noticing (each merge is individually genuine).
        // Distances must be the bit-exact `1 − Φ` values the replay will
        // recompute, not decimal literals.
        let tie = full.distance(0, 1);
        let far = full.distance(0, 2);
        let poisoned = vec![
            Merge {
                a: 2,
                b: 3,
                distance: tie,
                size: 2,
            },
            Merge {
                a: 0,
                b: 1,
                distance: tie,
                size: 2,
            },
            Merge {
                a: 4,
                b: 5,
                distance: far,
                size: 4,
            },
        ];
        let mut d = Dendrogram::from_parts(4, Linkage::Single, poisoned).unwrap();
        let mut guard = DivergenceGuard::new(SamplingRate::always());
        d.extend_guarded(&full, &mut guard).unwrap();
        let batch = Dendrogram::build(&full, Linkage::Single).unwrap();
        assert_eq!(d.merges(), batch.merges());
        assert!(guard.quarantined());
        assert_eq!(guard.drain_new(), 1);
        // Quarantined extends keep producing the batch tree.
        d.extend_guarded(&full, &mut guard).unwrap();
        assert_eq!(d.merges(), batch.merges());
    }

    #[test]
    fn extend_guarded_clean_path_matches_batch() {
        use crate::guard::{DivergenceGuard, SamplingRate};
        let full = two_blobs();
        let prefix = sim_from_dist(3, |i, j| if i == j { 0.0 } else { 0.1 });
        let mut guard = DivergenceGuard::new(SamplingRate::always());
        let mut d = Dendrogram::build(&prefix, Linkage::Single).unwrap();
        d.extend_guarded(&full, &mut guard).unwrap();
        let batch = Dendrogram::build(&full, Linkage::Single).unwrap();
        assert_eq!(d.merges(), batch.merges());
        assert!(!guard.quarantined());
    }

    #[test]
    fn extend_from_single_leaf() {
        let prefix = SimilarityMatrix::from_raw(1, vec![1.0]).unwrap();
        let full = two_blobs();
        let mut grown = Dendrogram::build(&prefix, Linkage::Average).unwrap();
        grown.extend(&full).unwrap();
        let batch = Dendrogram::build(&full, Linkage::Average).unwrap();
        assert_eq!(grown.merges(), batch.merges());
    }
}
