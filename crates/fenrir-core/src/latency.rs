//! From similarity to performance: latency summaries (§2.8, Figure 4).
//!
//! "While heatmap identifies regions of similarity … operators care about
//! user relevant metrics". Fenrir factors latency into vectors so operators
//! can estimate the effect a routing change has on latency: the paper plots
//! per-catchment p90 latency over time (Figure 4) and weighted mean overall
//! latency.
//!
//! [`LatencyPanel`] holds per-network RTT samples aligned with a routing
//! vector; [`LatencySummary`] aggregates them per catchment with weighted
//! means and percentiles.

use crate::error::{Error, Result};
use crate::ids::{SiteId, SiteTable};
use crate::time::Timestamp;
use crate::vector::{Catchment, RoutingVector};
use crate::weight::Weights;
use serde::{Deserialize, Serialize};

/// RTT observations for every network at one instant, aligned positionally
/// with a [`RoutingVector`]. `None` = no latency sample for that network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyPanel {
    time: Timestamp,
    /// RTT in milliseconds per network.
    rtt_ms: Vec<Option<f64>>,
}

impl LatencyPanel {
    /// Build from per-network samples.
    pub fn new(time: Timestamp, rtt_ms: Vec<Option<f64>>) -> Self {
        LatencyPanel { time, rtt_ms }
    }

    /// Observation time.
    pub fn time(&self) -> Timestamp {
        self.time
    }

    /// Number of networks covered.
    pub fn len(&self) -> usize {
        self.rtt_ms.len()
    }

    /// Whether the panel is empty.
    pub fn is_empty(&self) -> bool {
        self.rtt_ms.is_empty()
    }

    /// Sample for network `n`.
    pub fn get(&self, n: usize) -> Option<f64> {
        self.rtt_ms[n]
    }

    /// All samples.
    pub fn samples(&self) -> &[Option<f64>] {
        &self.rtt_ms
    }
}

/// Latency statistics for one catchment at one time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatchmentLatency {
    /// Weighted mean RTT (ms), `None` when the catchment has no samples.
    pub mean_ms: Option<f64>,
    /// p50 RTT (weighted percentile, ms).
    pub p50_ms: Option<f64>,
    /// p90 RTT (weighted percentile, ms) — the statistic of Figure 4.
    pub p90_ms: Option<f64>,
    /// Number of networks with samples in this catchment.
    pub samples: usize,
}

/// Per-catchment latency summary of one (vector, panel) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Observation time.
    pub time: Timestamp,
    /// Per-site statistics, indexed by `SiteId`.
    pub per_site: Vec<CatchmentLatency>,
    /// Weighted mean RTT over all networks with samples, any catchment.
    pub overall_mean_ms: Option<f64>,
}

impl LatencySummary {
    /// Summarise latency per catchment.
    ///
    /// Networks contribute to the site their routing vector assigns them;
    /// sentinel states contribute only to the overall mean. Weighting
    /// follows §2.5: each sample counts with its network's weight.
    pub fn compute(
        vector: &RoutingVector,
        panel: &LatencyPanel,
        weights: &Weights,
        num_sites: usize,
    ) -> Result<Self> {
        if panel.len() != vector.len() {
            return Err(Error::ShapeMismatch {
                what: "latency panel",
                expected: vector.len(),
                actual: panel.len(),
            });
        }
        if weights.len() != vector.len() {
            return Err(Error::ShapeMismatch {
                what: "weights",
                expected: vector.len(),
                actual: weights.len(),
            });
        }
        // Collect (rtt, weight) per site.
        let mut buckets: Vec<Vec<(f64, f64)>> = vec![Vec::new(); num_sites];
        let mut all: Vec<(f64, f64)> = Vec::new();
        for n in 0..vector.len() {
            let Some(rtt) = panel.get(n) else { continue };
            let w = weights.get(n);
            if w == 0.0 {
                continue;
            }
            all.push((rtt, w));
            if let Catchment::Site(SiteId(s)) = vector.get(n) {
                if (s as usize) < num_sites {
                    buckets[s as usize].push((rtt, w));
                }
            }
        }
        let per_site = buckets
            .into_iter()
            .map(|b| CatchmentLatency {
                mean_ms: weighted_mean(&b),
                p50_ms: weighted_percentile(&b, 0.50),
                p90_ms: weighted_percentile(&b, 0.90),
                samples: b.len(),
            })
            .collect();
        Ok(LatencySummary {
            time: panel.time(),
            per_site,
            overall_mean_ms: weighted_mean(&all),
        })
    }

    /// Statistics for one site.
    pub fn site(&self, s: SiteId) -> &CatchmentLatency {
        &self.per_site[s.index()]
    }

    /// One-line-per-site rendering with site names.
    pub fn render(&self, sites: &SiteTable) -> String {
        let mut out = format!("latency @ {}\n", self.time);
        for (id, name) in sites.iter() {
            let c = self.site(id);
            match (c.mean_ms, c.p90_ms) {
                (Some(mean), Some(p90)) => out.push_str(&format!(
                    "  {name:<8} mean {mean:7.1} ms  p90 {p90:7.1} ms  ({} nets)\n",
                    c.samples
                )),
                _ => out.push_str(&format!("  {name:<8} (no clients)\n")),
            }
        }
        if let Some(m) = self.overall_mean_ms {
            out.push_str(&format!("  overall mean {m:.1} ms\n"));
        }
        out
    }
}

/// Weighted mean of `(value, weight)` samples.
fn weighted_mean(samples: &[(f64, f64)]) -> Option<f64> {
    let total_w: f64 = samples.iter().map(|&(_, w)| w).sum();
    if total_w == 0.0 {
        return None;
    }
    Some(samples.iter().map(|&(v, w)| v * w).sum::<f64>() / total_w)
}

/// Weighted percentile: smallest value `v` such that the cumulative weight
/// of samples `<= v` reaches `q` of the total weight.
fn weighted_percentile(samples: &[(f64, f64)], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted: Vec<(f64, f64)> = samples.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite RTTs"));
    let total: f64 = sorted.iter().map(|&(_, w)| w).sum();
    if total == 0.0 {
        return None;
    }
    let target = q * total;
    let mut acc = 0.0;
    for &(v, w) in &sorted {
        acc += w;
        if acc >= target {
            return Some(v);
        }
    }
    Some(sorted.last().expect("nonempty").0)
}

/// A per-catchment latency time series — the data behind Figure 4's p90
/// curves.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencySeries {
    /// One summary per observation time, ascending.
    pub summaries: Vec<LatencySummary>,
}

impl LatencySeries {
    /// Append a summary.
    pub fn push(&mut self, s: LatencySummary) {
        self.summaries.push(s);
    }

    /// p90 curve for one site: `(time, p90_ms)` for every observation where
    /// the site had clients.
    pub fn p90_curve(&self, s: SiteId) -> Vec<(Timestamp, f64)> {
        self.summaries
            .iter()
            .filter_map(|sum| sum.site(s).p90_ms.map(|v| (sum.time, v)))
            .collect()
    }

    /// CSV export of p90 per site over time.
    pub fn to_csv(&self, sites: &SiteTable) -> String {
        let mut out = String::from("time");
        for (_, name) in sites.iter() {
            out.push_str(&format!(",{name}_p90"));
        }
        out.push('\n');
        for s in &self.summaries {
            out.push_str(&s.time.to_string());
            for id in sites.ids() {
                match s.site(id).p90_ms {
                    Some(v) => out.push_str(&format!(",{v:.2}")),
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts() -> Timestamp {
        Timestamp::from_days(0)
    }

    fn s(n: u16) -> Catchment {
        Catchment::Site(SiteId(n))
    }

    #[test]
    fn weighted_mean_basic() {
        assert_eq!(weighted_mean(&[]), None);
        assert_eq!(weighted_mean(&[(10.0, 1.0)]), Some(10.0));
        // Heavier sample dominates.
        let m = weighted_mean(&[(10.0, 3.0), (20.0, 1.0)]).unwrap();
        assert!((m - 12.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_percentile_basic() {
        let samples: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, 1.0)).collect();
        assert_eq!(weighted_percentile(&samples, 0.5), Some(5.0));
        assert_eq!(weighted_percentile(&samples, 0.9), Some(9.0));
        assert_eq!(weighted_percentile(&samples, 1.0), Some(10.0));
        assert_eq!(weighted_percentile(&[], 0.9), None);
    }

    #[test]
    fn weighted_percentile_respects_weights() {
        // One huge-weight low sample pulls p90 down.
        let samples = [(1.0, 100.0), (200.0, 1.0)];
        assert_eq!(weighted_percentile(&samples, 0.9), Some(1.0));
    }

    #[test]
    fn summary_per_site() {
        let v = RoutingVector::from_catchments(ts(), vec![s(0), s(0), s(1), Catchment::Err]);
        let panel = LatencyPanel::new(ts(), vec![Some(10.0), Some(30.0), Some(100.0), Some(500.0)]);
        let w = Weights::uniform(4);
        let sum = LatencySummary::compute(&v, &panel, &w, 2).unwrap();
        assert_eq!(sum.site(SiteId(0)).samples, 2);
        assert!((sum.site(SiteId(0)).mean_ms.unwrap() - 20.0).abs() < 1e-12);
        assert_eq!(sum.site(SiteId(1)).samples, 1);
        assert_eq!(sum.site(SiteId(1)).p90_ms, Some(100.0));
        // The Err network's RTT enters only the overall mean.
        assert!((sum.overall_mean_ms.unwrap() - 160.0).abs() < 1e-12);
    }

    #[test]
    fn summary_handles_missing_samples() {
        let v = RoutingVector::from_catchments(ts(), vec![s(0), s(0)]);
        let panel = LatencyPanel::new(ts(), vec![None, Some(42.0)]);
        let w = Weights::uniform(2);
        let sum = LatencySummary::compute(&v, &panel, &w, 1).unwrap();
        assert_eq!(sum.site(SiteId(0)).samples, 1);
        assert_eq!(sum.site(SiteId(0)).mean_ms, Some(42.0));
    }

    #[test]
    fn summary_empty_catchment_has_no_stats() {
        let v = RoutingVector::from_catchments(ts(), vec![s(0)]);
        let panel = LatencyPanel::new(ts(), vec![Some(5.0)]);
        let w = Weights::uniform(1);
        let sum = LatencySummary::compute(&v, &panel, &w, 2).unwrap();
        assert_eq!(sum.site(SiteId(1)).mean_ms, None);
        assert_eq!(sum.site(SiteId(1)).samples, 0);
    }

    #[test]
    fn summary_rejects_shape_mismatch() {
        let v = RoutingVector::from_catchments(ts(), vec![s(0)]);
        let panel = LatencyPanel::new(ts(), vec![Some(1.0), Some(2.0)]);
        assert!(LatencySummary::compute(&v, &panel, &Weights::uniform(1), 1).is_err());
        let panel1 = LatencyPanel::new(ts(), vec![Some(1.0)]);
        assert!(LatencySummary::compute(&v, &panel1, &Weights::uniform(2), 1).is_err());
    }

    #[test]
    fn zero_weight_networks_are_skipped() {
        let v = RoutingVector::from_catchments(ts(), vec![s(0), s(0)]);
        let panel = LatencyPanel::new(ts(), vec![Some(10.0), Some(1000.0)]);
        let w = Weights::from_values(vec![1.0, 0.0]).unwrap();
        let sum = LatencySummary::compute(&v, &panel, &w, 1).unwrap();
        assert_eq!(sum.site(SiteId(0)).mean_ms, Some(10.0));
        assert_eq!(sum.site(SiteId(0)).samples, 1);
    }

    #[test]
    fn series_p90_curve_and_csv() {
        let sites = SiteTable::from_names(["ARI"]);
        let mut series = LatencySeries::default();
        for d in 0..3 {
            let t = Timestamp::from_days(d);
            let v =
                RoutingVector::from_catchments(t, vec![if d < 2 { s(0) } else { Catchment::Err }]);
            let panel = LatencyPanel::new(t, vec![Some(200.0 + d as f64)]);
            series.push(LatencySummary::compute(&v, &panel, &Weights::uniform(1), 1).unwrap());
        }
        // ARI vanishes on day 2 (shut down, like the paper's Chile site).
        let curve = series.p90_curve(SiteId(0));
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].1, 200.0);
        let csv = series.to_csv(&sites);
        assert!(csv.starts_with("time,ARI_p90"));
        assert_eq!(csv.trim_end().lines().count(), 4);
        // Day 2's cell is empty.
        assert!(csv.lines().nth(3).unwrap().ends_with(','));
    }

    #[test]
    fn render_mentions_sites() {
        let sites = SiteTable::from_names(["LAX"]);
        let v = RoutingVector::from_catchments(ts(), vec![s(0)]);
        let panel = LatencyPanel::new(ts(), vec![Some(12.0)]);
        let sum = LatencySummary::compute(&v, &panel, &Weights::uniform(1), 1).unwrap();
        let r = sum.render(&sites);
        assert!(r.contains("LAX"));
        assert!(r.contains("12.0"));
    }
}
