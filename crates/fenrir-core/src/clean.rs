//! Data cleaning (§2.4 of the paper).
//!
//! Raw active measurements "often have errors or gaps"; the paper cleans in
//! three ways, all implemented here:
//!
//! 1. **Remove incorrect data** — service-specific; expressed as a predicate
//!    over `(network, time, catchment)` via [`remove_incorrect`].
//! 2. **Remove micro-catchments** — sites responsible for few networks
//!    (local-only anycast sites, an enterprise's internal prefixes) are
//!    folded into `other` via [`fold_micro_catchments`].
//! 3. **Interpolate missing data** — [`interpolate_nearest`] implements the
//!    paper's nearest-neighbour imputation: a run of misses `[k … k+i]`
//!    bounded by successes takes the left value for its first half and the
//!    right value for its second half, with a cap (paper: 3 observations)
//!    on how far a value may travel. [`forward_fill`] implements the
//!    Verfploeter/EDNS-CS strategy of "replicating the most recent
//!    successful observation".

use crate::series::VectorSeries;
use crate::time::Timestamp;
use crate::vector::{Catchment, CODE_UNKNOWN};

/// Mark observations matching `is_bogus` as [`Catchment::Unknown`].
///
/// Returns the number of observations removed. The predicate receives the
/// network index, the vector timestamp, and the recorded catchment.
pub fn remove_incorrect<F>(series: &mut VectorSeries, mut is_bogus: F) -> usize
where
    F: FnMut(usize, Timestamp, Catchment) -> bool,
{
    let mut removed = 0;
    for v in series.vectors_mut() {
        let t = v.time();
        for n in 0..v.len() {
            let c = v.get(n);
            if c.is_known() && is_bogus(n, t, c) {
                v.set(n, Catchment::Unknown);
                removed += 1;
            }
        }
    }
    removed
}

/// Fold micro-catchment sites into [`Catchment::Other`].
///
/// A site is a micro-catchment when the *maximum* share of networks it ever
/// serves across the series stays below `min_fraction` of the known
/// observations at that time. Using the per-time maximum keeps sites that
/// were briefly large (e.g. a site being drained) out of the filter.
///
/// Returns the folded site indices (as raw `u16` site codes), ascending.
pub fn fold_micro_catchments(series: &mut VectorSeries, min_fraction: f64) -> Vec<u16> {
    let num_sites = series.sites().len();
    if num_sites == 0 || series.is_empty() {
        return Vec::new();
    }
    let mut max_share = vec![0.0f64; num_sites];
    for v in series.vectors() {
        let agg = v.aggregate(num_sites);
        let known: u64 = agg.per_site.iter().sum::<u64>() + agg.err + agg.other;
        if known == 0 {
            continue;
        }
        for (s, &c) in agg.per_site.iter().enumerate() {
            let share = c as f64 / known as f64;
            if share > max_share[s] {
                max_share[s] = share;
            }
        }
    }
    let micro: Vec<u16> = max_share
        .iter()
        .enumerate()
        .filter(|&(_, &sh)| sh < min_fraction)
        .map(|(s, _)| s as u16)
        .collect();
    if micro.is_empty() {
        return micro;
    }
    for v in series.vectors_mut() {
        for code in v.codes_mut() {
            if micro.binary_search(code).is_ok() {
                *code = Catchment::Other.code();
            }
        }
    }
    micro
}

/// Statistics returned by the interpolation passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FillStats {
    /// Number of `(network, time)` cells filled.
    pub filled: usize,
    /// Number of cells left unknown (gap too long or unbounded).
    pub unfilled: usize,
}

/// The paper's nearest-neighbour imputation across time.
///
/// For every network, each maximal run of `Unknown` cells `[k … k+i]` with
/// known observations on both sides is split: the first half copies the left
/// neighbour's catchment, the second half the right neighbour's. No cell is
/// filled from a source more than `limit` observations away (paper: 3); the
/// unreachable middle of a long gap stays unknown. Runs touching the series
/// edge are left untouched (no bounding observation on that side).
pub fn interpolate_nearest(series: &mut VectorSeries, limit: usize) -> FillStats {
    let t_len = series.len();
    let n_len = series.networks();
    let mut stats = FillStats::default();
    if t_len == 0 || n_len == 0 {
        return stats;
    }
    for n in 0..n_len {
        let mut t = 0usize;
        while t < t_len {
            if series.get(t).codes()[n] != CODE_UNKNOWN {
                t += 1;
                continue;
            }
            // Maximal unknown run [t, end).
            let start = t;
            while t < t_len && series.get(t).codes()[n] == CODE_UNKNOWN {
                t += 1;
            }
            let end = t; // exclusive
            let left = if start > 0 {
                Some(series.get(start - 1).codes()[n])
            } else {
                None
            };
            let right = if end < t_len {
                Some(series.get(end).codes()[n])
            } else {
                None
            };
            let (Some(lv), Some(rv)) = (left, right) else {
                stats.unfilled += end - start;
                continue;
            };
            let gap = end - start;
            // First half (ceil for odd gaps, matching "[k … k+i/2] ← k−1")
            // from the left, remainder from the right.
            let half = gap.div_ceil(2);
            for (offset, slot) in (start..end).enumerate() {
                let (src, dist) = if offset < half {
                    (lv, offset + 1)
                } else {
                    (rv, gap - offset)
                };
                if dist <= limit {
                    series.get_mut(slot).codes_mut()[n] = src;
                    stats.filled += 1;
                } else {
                    stats.unfilled += 1;
                }
            }
        }
    }
    stats
}

/// Replicate the most recent successful observation into later gaps
/// (the Verfploeter / EDNS-CS cleaning strategy). A cell is filled only when
/// the most recent known observation is at most `limit` steps back; pass
/// `usize::MAX` for unlimited carry-forward.
pub fn forward_fill(series: &mut VectorSeries, limit: usize) -> FillStats {
    let t_len = series.len();
    let n_len = series.networks();
    let mut stats = FillStats::default();
    for n in 0..n_len {
        let mut last_known: Option<(usize, u16)> = None;
        for t in 0..t_len {
            let code = series.get(t).codes()[n];
            if code != CODE_UNKNOWN {
                last_known = Some((t, code));
                continue;
            }
            match last_known {
                Some((lt, lv)) if t - lt <= limit => {
                    series.get_mut(t).codes_mut()[n] = lv;
                    stats.filled += 1;
                    // The filled value does NOT become a new source: carrying
                    // a copy of a copy would let one observation travel
                    // arbitrarily far despite the limit.
                }
                _ => stats.unfilled += 1,
            }
        }
    }
    stats
}

/// Fill position `k` of a per-hop (or any spatial) sequence from the nearest
/// viable neighbour within `limit` positions, preferring the closer side and
/// the earlier (lower-index) side on ties.
///
/// This is the paper's traceroute spatial redundancy rule: "we use this
/// spatial redundancy and propagate the nearest viable hop to fill a
/// traceroute gap".
pub fn nearest_viable<T: Copy>(seq: &[Option<T>], k: usize, limit: usize) -> Option<T> {
    if let Some(v) = seq.get(k).copied().flatten() {
        return Some(v);
    }
    for d in 1..=limit {
        if k >= d {
            if let Some(v) = seq[k - d] {
                return Some(v);
            }
        }
        if let Some(v) = seq.get(k + d).copied().flatten() {
            return Some(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{SiteId, SiteTable};
    use crate::vector::RoutingVector;

    fn ts(d: i64) -> Timestamp {
        Timestamp::from_days(d)
    }

    fn s(n: u16) -> Catchment {
        Catchment::Site(SiteId(n))
    }

    /// Series with one network whose catchment codes over time are given.
    fn single_net_series(codes: &[Catchment]) -> VectorSeries {
        let sites = SiteTable::from_names(["A", "B", "C"]);
        let mut series = VectorSeries::new(sites, 1);
        for (d, &c) in codes.iter().enumerate() {
            series
                .push(RoutingVector::from_catchments(ts(d as i64), vec![c]))
                .unwrap();
        }
        series
    }

    fn catchments_of(series: &VectorSeries, n: usize) -> Vec<Catchment> {
        series.vectors().iter().map(|v| v.get(n)).collect()
    }

    #[test]
    fn remove_incorrect_blanks_matching_cells() {
        let mut series = single_net_series(&[s(0), s(1), s(0)]);
        let removed = remove_incorrect(&mut series, |_, _, c| c == s(1));
        assert_eq!(removed, 1);
        assert_eq!(
            catchments_of(&series, 0),
            vec![s(0), Catchment::Unknown, s(0)]
        );
    }

    #[test]
    fn remove_incorrect_skips_unknown() {
        let mut series = single_net_series(&[Catchment::Unknown]);
        let removed = remove_incorrect(&mut series, |_, _, _| true);
        assert_eq!(removed, 0);
    }

    #[test]
    fn interpolate_splits_gap_between_neighbours() {
        // A _ _ _ B with limit 3: first two (ceil(4/2)=2? gap=3) —
        // gap of 3: half = 2 from the left, 1 from the right.
        let mut series = single_net_series(&[
            s(0),
            Catchment::Unknown,
            Catchment::Unknown,
            Catchment::Unknown,
            s(1),
        ]);
        let stats = interpolate_nearest(&mut series, 3);
        assert_eq!(stats.filled, 3);
        assert_eq!(stats.unfilled, 0);
        assert_eq!(
            catchments_of(&series, 0),
            vec![s(0), s(0), s(0), s(1), s(1)]
        );
    }

    #[test]
    fn interpolate_even_gap_splits_evenly() {
        let mut series = single_net_series(&[s(0), Catchment::Unknown, Catchment::Unknown, s(1)]);
        interpolate_nearest(&mut series, 3);
        assert_eq!(catchments_of(&series, 0), vec![s(0), s(0), s(1), s(1)]);
    }

    #[test]
    fn interpolate_respects_limit() {
        // Gap of 8 with limit 3: three cells fill from each side, the middle
        // two stay unknown.
        let mut codes = vec![s(0)];
        codes.extend(std::iter::repeat_n(Catchment::Unknown, 8));
        codes.push(s(1));
        let mut series = single_net_series(&codes);
        let stats = interpolate_nearest(&mut series, 3);
        assert_eq!(stats.filled, 6);
        assert_eq!(stats.unfilled, 2);
        let got = catchments_of(&series, 0);
        assert_eq!(&got[1..4], &[s(0), s(0), s(0)]);
        assert_eq!(got[4], Catchment::Unknown);
        assert_eq!(got[5], Catchment::Unknown);
        assert_eq!(&got[6..9], &[s(1), s(1), s(1)]);
    }

    #[test]
    fn interpolate_leaves_edges_untouched() {
        let mut series = single_net_series(&[Catchment::Unknown, s(0), Catchment::Unknown]);
        let stats = interpolate_nearest(&mut series, 3);
        assert_eq!(stats.filled, 0);
        assert_eq!(stats.unfilled, 2);
        assert_eq!(
            catchments_of(&series, 0),
            vec![Catchment::Unknown, s(0), Catchment::Unknown]
        );
    }

    #[test]
    fn interpolate_single_cell_gap_takes_left() {
        let mut series = single_net_series(&[s(0), Catchment::Unknown, s(1)]);
        interpolate_nearest(&mut series, 3);
        assert_eq!(catchments_of(&series, 0), vec![s(0), s(0), s(1)]);
    }

    #[test]
    fn forward_fill_replicates_recent_observation() {
        let mut series = single_net_series(&[s(0), Catchment::Unknown, Catchment::Unknown]);
        let stats = forward_fill(&mut series, usize::MAX);
        assert_eq!(stats.filled, 2);
        assert_eq!(catchments_of(&series, 0), vec![s(0), s(0), s(0)]);
    }

    #[test]
    fn forward_fill_respects_limit_without_cascading() {
        let mut series = single_net_series(&[
            s(0),
            Catchment::Unknown,
            Catchment::Unknown,
            Catchment::Unknown,
        ]);
        let stats = forward_fill(&mut series, 2);
        assert_eq!(stats.filled, 2);
        assert_eq!(stats.unfilled, 1);
        assert_eq!(
            catchments_of(&series, 0),
            vec![s(0), s(0), s(0), Catchment::Unknown]
        );
    }

    #[test]
    fn forward_fill_has_no_source_at_series_start() {
        let mut series = single_net_series(&[Catchment::Unknown, s(0)]);
        let stats = forward_fill(&mut series, usize::MAX);
        assert_eq!(stats.filled, 0);
        assert_eq!(stats.unfilled, 1);
    }

    #[test]
    fn fold_micro_catchments_folds_small_sites() {
        // Site C (2) serves 1 of 10 networks -> 10% share; threshold 0.2
        // folds it. Sites A/B stay.
        let sites = SiteTable::from_names(["A", "B", "C"]);
        let mut series = VectorSeries::new(sites, 10);
        let mut cs = vec![s(0); 5];
        cs.extend(vec![s(1); 4]);
        cs.push(s(2));
        series
            .push(RoutingVector::from_catchments(ts(0), cs))
            .unwrap();
        let folded = fold_micro_catchments(&mut series, 0.2);
        assert_eq!(folded, vec![2]);
        assert_eq!(series.get(0).get(9), Catchment::Other);
        assert_eq!(series.get(0).get(0), s(0));
    }

    #[test]
    fn fold_micro_keeps_briefly_large_sites() {
        // Site B is large on day 0 and tiny on day 1: the max-share rule
        // keeps it (it was a real catchment being drained, like STR).
        let sites = SiteTable::from_names(["A", "B"]);
        let mut series = VectorSeries::new(sites, 4);
        series
            .push(RoutingVector::from_catchments(
                ts(0),
                vec![s(0), s(1), s(1), s(1)],
            ))
            .unwrap();
        series
            .push(RoutingVector::from_catchments(
                ts(1),
                vec![s(0), s(0), s(0), s(1)],
            ))
            .unwrap();
        let folded = fold_micro_catchments(&mut series, 0.5);
        assert!(folded.is_empty());
    }

    #[test]
    fn fold_micro_handles_empty() {
        let sites = SiteTable::from_names(["A"]);
        let mut series = VectorSeries::new(sites, 1);
        assert!(fold_micro_catchments(&mut series, 0.5).is_empty());
    }

    #[test]
    fn nearest_viable_prefers_self_then_closest() {
        let seq = [Some(1), None, None, Some(4), None];
        assert_eq!(nearest_viable(&seq, 0, 3), Some(1));
        assert_eq!(nearest_viable(&seq, 2, 3), Some(4)); // dist 1 right beats dist 2 left
        assert_eq!(nearest_viable(&seq, 1, 3), Some(1)); // dist 1 left
        assert_eq!(nearest_viable(&seq, 4, 3), Some(4));
    }

    #[test]
    fn nearest_viable_ties_prefer_lower_index() {
        let seq = [Some(1), None, Some(3)];
        assert_eq!(nearest_viable(&seq, 1, 3), Some(1));
    }

    #[test]
    fn nearest_viable_respects_limit() {
        let seq = [Some(1), None, None, None, None];
        assert_eq!(nearest_viable(&seq, 4, 3), None);
        assert_eq!(nearest_viable(&seq, 3, 3), Some(1));
    }

    #[test]
    fn nearest_viable_all_none() {
        let seq: [Option<u8>; 3] = [None, None, None];
        assert_eq!(nearest_viable(&seq, 1, 5), None);
    }

    #[test]
    fn all_unknown_series_stays_all_unknown() {
        // With no known observation anywhere, neither pass can invent
        // data; every cell counts as unfilled and nothing changes.
        let codes = vec![Catchment::Unknown; 5];
        let mut a = single_net_series(&codes);
        let stats = interpolate_nearest(&mut a, 3);
        assert_eq!(
            stats,
            FillStats {
                filled: 0,
                unfilled: 5
            }
        );
        assert_eq!(catchments_of(&a, 0), codes);
        let mut b = single_net_series(&codes);
        let stats = forward_fill(&mut b, usize::MAX);
        assert_eq!(
            stats,
            FillStats {
                filled: 0,
                unfilled: 5
            }
        );
        assert_eq!(catchments_of(&b, 0), codes);
    }

    #[test]
    fn single_observation_series_is_a_no_op() {
        for c in [Catchment::Unknown, s(0)] {
            let mut a = single_net_series(&[c]);
            let i = interpolate_nearest(&mut a, 3);
            assert_eq!(i.filled, 0);
            assert_eq!(catchments_of(&a, 0), vec![c]);
            let mut b = single_net_series(&[c]);
            let f = forward_fill(&mut b, usize::MAX);
            assert_eq!(f.filled, 0);
            assert_eq!(catchments_of(&b, 0), vec![c]);
        }
    }

    #[test]
    fn interpolate_fill_exactly_at_travel_limit() {
        // Gap of 6 with limit 3: every cell is at distance <= 3 from its
        // source, so the whole gap fills — the boundary case where the
        // farthest fill sits exactly at the cap.
        let mut codes = vec![s(0)];
        codes.extend(std::iter::repeat_n(Catchment::Unknown, 6));
        codes.push(s(1));
        let mut series = single_net_series(&codes);
        let stats = interpolate_nearest(&mut series, 3);
        assert_eq!(
            stats,
            FillStats {
                filled: 6,
                unfilled: 0
            }
        );
        assert_eq!(
            catchments_of(&series, 0),
            vec![s(0), s(0), s(0), s(0), s(1), s(1), s(1), s(1)]
        );
        // One wider (gap of 7) and the middle cell is beyond the cap.
        let mut codes = vec![s(0)];
        codes.extend(std::iter::repeat_n(Catchment::Unknown, 7));
        codes.push(s(1));
        let mut series = single_net_series(&codes);
        let stats = interpolate_nearest(&mut series, 3);
        assert_eq!(
            stats,
            FillStats {
                filled: 6,
                unfilled: 1
            }
        );
        assert_eq!(catchments_of(&series, 0)[4], Catchment::Unknown);
    }

    #[test]
    fn forward_fill_exactly_at_travel_limit() {
        // The cell `limit` steps after the source fills; one step further
        // does not.
        let mut series = single_net_series(&[
            s(0),
            Catchment::Unknown,
            Catchment::Unknown,
            Catchment::Unknown,
        ]);
        let stats = forward_fill(&mut series, 3);
        assert_eq!(
            stats,
            FillStats {
                filled: 3,
                unfilled: 0
            }
        );
        assert_eq!(catchments_of(&series, 0), vec![s(0); 4]);
    }

    #[test]
    fn unknown_runs_at_both_series_boundaries() {
        // _ _ A B _ _ : the leading run has no left bound and the trailing
        // run has no right bound; interpolation must leave both alone.
        let mut series = single_net_series(&[
            Catchment::Unknown,
            Catchment::Unknown,
            s(0),
            s(1),
            Catchment::Unknown,
            Catchment::Unknown,
        ]);
        let stats = interpolate_nearest(&mut series, 3);
        assert_eq!(
            stats,
            FillStats {
                filled: 0,
                unfilled: 4
            }
        );
        assert_eq!(
            catchments_of(&series, 0),
            vec![
                Catchment::Unknown,
                Catchment::Unknown,
                s(0),
                s(1),
                Catchment::Unknown,
                Catchment::Unknown
            ]
        );
        // Forward fill handles the trailing run (from B) but still has no
        // source for the leading one.
        let mut series = single_net_series(&[
            Catchment::Unknown,
            Catchment::Unknown,
            s(0),
            s(1),
            Catchment::Unknown,
            Catchment::Unknown,
        ]);
        let stats = forward_fill(&mut series, usize::MAX);
        assert_eq!(
            stats,
            FillStats {
                filled: 2,
                unfilled: 2
            }
        );
        assert_eq!(
            catchments_of(&series, 0),
            vec![
                Catchment::Unknown,
                Catchment::Unknown,
                s(0),
                s(1),
                s(1),
                s(1)
            ]
        );
    }
}
