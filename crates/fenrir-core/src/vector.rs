//! The routing vector `D(t)` — the paper's central data structure (§2.2).
//!
//! A [`RoutingVector`] records, for one instant `t`, which catchment each of
//! the `N` client networks fell into. Each element takes one of `|S| + 3`
//! values: a service [`SiteId`], or one of the sentinel states the paper's
//! example vector uses (`ERR` — the network got no reply from any site,
//! `OTHER` — a reply that maps to no known site, and `unknown` — no
//! observation at all, the state §2.6.1 treats pessimistically).
//!
//! Storage is a compact `u16` code per network so that multi-year,
//! multi-million-network series stay cache- and memory-friendly; the public
//! API speaks the [`Catchment`] enum.

use crate::ids::{SiteId, SiteTable};
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The catchment state of one network at one time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Catchment {
    /// The network reached this service site.
    Site(SiteId),
    /// The network was probed but no site answered (the paper's `err` state).
    Err,
    /// The network answered with an identifier that maps to no known site
    /// (the paper's `other` state).
    Other,
    /// The network was not observed at all. §2.6.1 treats unknowns as
    /// "changed" under the pessimistic policy.
    Unknown,
}

/// Wire/storage code for a [`Catchment`]: site ids occupy the low range and
/// the three sentinels sit at the top of the `u16` space.
pub const CODE_UNKNOWN: u16 = u16::MAX;
/// Storage code for [`Catchment::Err`].
pub const CODE_ERR: u16 = u16::MAX - 1;
/// Storage code for [`Catchment::Other`].
pub const CODE_OTHER: u16 = u16::MAX - 2;

impl Catchment {
    /// Encode to the compact storage code.
    #[inline]
    pub fn code(self) -> u16 {
        match self {
            Catchment::Site(s) => s.0,
            Catchment::Err => CODE_ERR,
            Catchment::Other => CODE_OTHER,
            Catchment::Unknown => CODE_UNKNOWN,
        }
    }

    /// Decode from the compact storage code.
    #[inline]
    pub fn from_code(code: u16) -> Self {
        match code {
            CODE_UNKNOWN => Catchment::Unknown,
            CODE_ERR => Catchment::Err,
            CODE_OTHER => Catchment::Other,
            s => Catchment::Site(SiteId(s)),
        }
    }

    /// Whether this is a real observation (site, err, or other) rather than
    /// a missing one.
    #[inline]
    pub fn is_known(self) -> bool {
        !matches!(self, Catchment::Unknown)
    }

    /// The site id if the network reached a site.
    #[inline]
    pub fn site(self) -> Option<SiteId> {
        match self {
            Catchment::Site(s) => Some(s),
            _ => None,
        }
    }

    /// Render with site names resolved through `sites`.
    pub fn display<'a>(self, sites: &'a SiteTable) -> CatchmentDisplay<'a> {
        CatchmentDisplay { c: self, sites }
    }
}

/// Helper returned by [`Catchment::display`].
pub struct CatchmentDisplay<'a> {
    c: Catchment,
    sites: &'a SiteTable,
}

impl fmt::Display for CatchmentDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.c {
            Catchment::Site(s) => f.write_str(self.sites.name(s)),
            Catchment::Err => f.write_str("err"),
            Catchment::Other => f.write_str("other"),
            Catchment::Unknown => f.write_str("unknown"),
        }
    }
}

/// `D(t)`: the catchment of every network at time `t`.
///
/// ```
/// use fenrir_core::prelude::*;
///
/// let mut sites = SiteTable::new();
/// let lax = sites.intern("LAX");
/// let d = RoutingVector::from_catchments(
///     Timestamp::from_days(0),
///     vec![Catchment::Site(lax), Catchment::Err, Catchment::Unknown],
/// );
/// assert_eq!(d.len(), 3);
/// assert_eq!(d.get(0), Catchment::Site(lax));
/// assert_eq!(d.known_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingVector {
    time: Timestamp,
    codes: Vec<u16>,
}

impl RoutingVector {
    /// A vector where every network is [`Catchment::Unknown`].
    pub fn unknown(time: Timestamp, networks: usize) -> Self {
        RoutingVector {
            time,
            codes: vec![CODE_UNKNOWN; networks],
        }
    }

    /// Build from explicit catchment states.
    pub fn from_catchments(time: Timestamp, catchments: Vec<Catchment>) -> Self {
        RoutingVector {
            time,
            codes: catchments.into_iter().map(Catchment::code).collect(),
        }
    }

    /// Build directly from storage codes (as produced by [`Catchment::code`]).
    pub fn from_codes(time: Timestamp, codes: Vec<u16>) -> Self {
        RoutingVector { time, codes }
    }

    /// Observation time of this vector.
    #[inline]
    pub fn time(&self) -> Timestamp {
        self.time
    }

    /// Re-stamp the vector (used by cleaning when replicating a previous
    /// observation into a gap).
    pub fn with_time(mut self, time: Timestamp) -> Self {
        self.time = time;
        self
    }

    /// Number of networks `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the vector covers zero networks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Catchment of network `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= self.len()`.
    #[inline]
    pub fn get(&self, n: usize) -> Catchment {
        Catchment::from_code(self.codes[n])
    }

    /// Set the catchment of network `n`.
    #[inline]
    pub fn set(&mut self, n: usize, c: Catchment) {
        self.codes[n] = c.code();
    }

    /// Raw storage codes (cheap similarity kernels iterate these directly).
    #[inline]
    pub fn codes(&self) -> &[u16] {
        &self.codes
    }

    /// Mutable raw storage codes.
    #[inline]
    pub fn codes_mut(&mut self) -> &mut [u16] {
        &mut self.codes
    }

    /// Iterate catchments in network order.
    pub fn iter(&self) -> impl Iterator<Item = Catchment> + '_ {
        self.codes.iter().map(|&c| Catchment::from_code(c))
    }

    /// Number of networks with a known (non-`Unknown`) state.
    pub fn known_count(&self) -> usize {
        self.codes.iter().filter(|&&c| c != CODE_UNKNOWN).count()
    }

    /// Fraction of networks with a known state, in `[0, 1]`; 0 for an empty
    /// vector.
    pub fn coverage(&self) -> f64 {
        if self.codes.is_empty() {
            0.0
        } else {
            self.known_count() as f64 / self.codes.len() as f64
        }
    }

    /// The aggregate vector `A(t)` of §2.2: how many networks fall into each
    /// site, plus the `err`, `other`, and `unknown` buckets.
    ///
    /// `A(t,s) = Σ_n D*(t,n,s)` where `D*` is the one-hot form.
    pub fn aggregate(&self, num_sites: usize) -> Aggregate {
        let mut per_site = vec![0u64; num_sites];
        let (mut err, mut other, mut unknown) = (0u64, 0u64, 0u64);
        for &c in &self.codes {
            match c {
                CODE_UNKNOWN => unknown += 1,
                CODE_ERR => err += 1,
                CODE_OTHER => other += 1,
                s => {
                    // Sites beyond the table (stale codes) count as "other"
                    // rather than corrupting memory; cleaning normally maps
                    // them away first.
                    if (s as usize) < num_sites {
                        per_site[s as usize] += 1;
                    } else {
                        other += 1;
                    }
                }
            }
        }
        Aggregate {
            per_site,
            err,
            other,
            unknown,
        }
    }

    /// Weighted aggregate: like [`RoutingVector::aggregate`] but each network
    /// contributes its weight instead of 1 (the `D_w` of §2.5).
    pub fn aggregate_weighted(&self, num_sites: usize, weights: &[f64]) -> WeightedAggregate {
        debug_assert_eq!(weights.len(), self.codes.len());
        let mut per_site = vec![0f64; num_sites];
        let (mut err, mut other, mut unknown) = (0f64, 0f64, 0f64);
        for (&c, &w) in self.codes.iter().zip(weights) {
            match c {
                CODE_UNKNOWN => unknown += w,
                CODE_ERR => err += w,
                CODE_OTHER => other += w,
                s => {
                    if (s as usize) < num_sites {
                        per_site[s as usize] += w;
                    } else {
                        other += w;
                    }
                }
            }
        }
        WeightedAggregate {
            per_site,
            err,
            other,
            unknown,
        }
    }

    /// One-hot representation `D*(t)` of §2.2: an `N × (|S|+3)` row-major
    /// 0/1 matrix. Column `|S|` is `err`, `|S|+1` is `other`, `|S|+2` is
    /// `unknown`. Mostly useful for tests and for exporting to numeric
    /// tooling; analyses use the compact codes directly.
    pub fn one_hot(&self, num_sites: usize) -> Vec<u8> {
        let cols = num_sites + 3;
        let mut m = vec![0u8; self.codes.len() * cols];
        for (n, &c) in self.codes.iter().enumerate() {
            let col = match c {
                CODE_UNKNOWN => num_sites + 2,
                CODE_ERR => num_sites,
                CODE_OTHER => num_sites + 1,
                s if (s as usize) < num_sites => s as usize,
                _ => num_sites + 1,
            };
            m[n * cols + col] = 1;
        }
        m
    }
}

/// Unweighted `A(t)`: per-site counts plus sentinel buckets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Count of networks in each site, indexed by `SiteId`.
    pub per_site: Vec<u64>,
    /// Count of networks in the `err` state.
    pub err: u64,
    /// Count of networks in the `other` state.
    pub other: u64,
    /// Count of unobserved networks.
    pub unknown: u64,
}

impl Aggregate {
    /// Total networks (sites + sentinels).
    pub fn total(&self) -> u64 {
        self.per_site.iter().sum::<u64>() + self.err + self.other + self.unknown
    }

    /// Count for one site.
    pub fn site(&self, s: SiteId) -> u64 {
        self.per_site[s.index()]
    }

    /// `(site, count)` pairs sorted by descending count — the ordering used
    /// to spot micro-catchments.
    pub fn ranked(&self) -> Vec<(SiteId, u64)> {
        let mut v: Vec<(SiteId, u64)> = self
            .per_site
            .iter()
            .enumerate()
            .map(|(i, &c)| (SiteId(i as u16), c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

/// Weighted `A(t)` (see [`RoutingVector::aggregate_weighted`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedAggregate {
    /// Weight mass in each site, indexed by `SiteId`.
    pub per_site: Vec<f64>,
    /// Weight mass in the `err` state.
    pub err: f64,
    /// Weight mass in the `other` state.
    pub other: f64,
    /// Weight mass unobserved.
    pub unknown: f64,
}

impl WeightedAggregate {
    /// Total weight mass.
    pub fn total(&self) -> f64 {
        self.per_site.iter().sum::<f64>() + self.err + self.other + self.unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n: u16) -> Catchment {
        Catchment::Site(SiteId(n))
    }

    #[test]
    fn code_round_trip_for_all_states() {
        for c in [
            site(0),
            site(41),
            Catchment::Err,
            Catchment::Other,
            Catchment::Unknown,
        ] {
            assert_eq!(Catchment::from_code(c.code()), c);
        }
    }

    #[test]
    fn sentinel_codes_are_distinct_and_high() {
        assert!(CODE_OTHER > SiteId::MAX_SITES as u16 - 1);
        assert_ne!(CODE_UNKNOWN, CODE_ERR);
        assert_ne!(CODE_ERR, CODE_OTHER);
    }

    #[test]
    fn unknown_vector_has_zero_coverage() {
        let d = RoutingVector::unknown(Timestamp::from_days(0), 5);
        assert_eq!(d.len(), 5);
        assert_eq!(d.known_count(), 0);
        assert_eq!(d.coverage(), 0.0);
    }

    #[test]
    fn empty_vector_coverage_is_zero() {
        let d = RoutingVector::unknown(Timestamp::from_days(0), 0);
        assert_eq!(d.coverage(), 0.0);
    }

    #[test]
    fn get_set_round_trip() {
        let mut d = RoutingVector::unknown(Timestamp::from_days(0), 3);
        d.set(1, site(7));
        assert_eq!(d.get(1), site(7));
        assert_eq!(d.get(0), Catchment::Unknown);
        assert_eq!(d.known_count(), 1);
    }

    #[test]
    fn aggregate_matches_paper_example_shape() {
        // Mimic the §2.2 example: D = [CMH, NAP, STR, STR, OTHER, SAT, ERR].
        let d = RoutingVector::from_catchments(
            Timestamp::from_days(0),
            vec![
                site(0),
                site(1),
                site(2),
                site(2),
                Catchment::Other,
                site(3),
                Catchment::Err,
            ],
        );
        let a = d.aggregate(4);
        assert_eq!(a.per_site, vec![1, 1, 2, 1]);
        assert_eq!(a.err, 1);
        assert_eq!(a.other, 1);
        assert_eq!(a.unknown, 0);
        assert_eq!(a.total(), 7);
    }

    #[test]
    fn aggregate_out_of_range_site_counts_as_other() {
        let d = RoutingVector::from_catchments(Timestamp::from_days(0), vec![site(9)]);
        let a = d.aggregate(2);
        assert_eq!(a.per_site, vec![0, 0]);
        assert_eq!(a.other, 1);
    }

    #[test]
    fn ranked_sorts_descending_with_stable_ties() {
        let d = RoutingVector::from_catchments(
            Timestamp::from_days(0),
            vec![site(0), site(1), site(1), site(2)],
        );
        let a = d.aggregate(3);
        let r = a.ranked();
        assert_eq!(r[0], (SiteId(1), 2));
        assert_eq!(r[1], (SiteId(0), 1)); // tie with site 2 broken by id
        assert_eq!(r[2], (SiteId(2), 1));
    }

    #[test]
    fn weighted_aggregate_sums_weights() {
        let d = RoutingVector::from_catchments(
            Timestamp::from_days(0),
            vec![site(0), site(0), Catchment::Unknown],
        );
        let a = d.aggregate_weighted(1, &[2.0, 3.0, 5.0]);
        assert_eq!(a.per_site, vec![5.0]);
        assert_eq!(a.unknown, 5.0);
        assert_eq!(a.total(), 10.0);
    }

    #[test]
    fn one_hot_rows_sum_to_one() {
        let d = RoutingVector::from_catchments(
            Timestamp::from_days(0),
            vec![
                site(0),
                Catchment::Err,
                Catchment::Other,
                Catchment::Unknown,
            ],
        );
        let m = d.one_hot(2);
        let cols = 5;
        for n in 0..4 {
            let row_sum: u8 = m[n * cols..(n + 1) * cols].iter().sum();
            assert_eq!(row_sum, 1, "row {n}");
        }
        assert_eq!(m[0], 1); // net 0 -> site 0
        assert_eq!(m[cols + 2], 1); // net 1 -> err column
        assert_eq!(m[2 * cols + 3], 1); // net 2 -> other column
        assert_eq!(m[3 * cols + 4], 1); // net 3 -> unknown column
    }

    #[test]
    fn display_resolves_site_names() {
        let sites = SiteTable::from_names(["LAX"]);
        assert_eq!(site(0).display(&sites).to_string(), "LAX");
        assert_eq!(Catchment::Err.display(&sites).to_string(), "err");
        assert_eq!(Catchment::Other.display(&sites).to_string(), "other");
        assert_eq!(Catchment::Unknown.display(&sites).to_string(), "unknown");
    }

    #[test]
    fn with_time_restamps() {
        let d = RoutingVector::unknown(Timestamp::from_days(1), 2);
        let d2 = d.clone().with_time(Timestamp::from_days(9));
        assert_eq!(d2.time(), Timestamp::from_days(9));
        assert_eq!(d2.codes(), d.codes());
    }

    #[test]
    fn iter_yields_catchments_in_order() {
        let d =
            RoutingVector::from_catchments(Timestamp::from_days(0), vec![site(1), Catchment::Err]);
        let v: Vec<_> = d.iter().collect();
        assert_eq!(v, vec![site(1), Catchment::Err]);
    }
}
