//! # fenrir-core
//!
//! Core analysis library reproducing **Fenrir** (Song & Heidemann,
//! *Rediscovering Recurring Routing Results*). Fenrir summarises how Internet
//! routing assigns client *networks* to service *catchments* and answers the
//! operational questions the paper motivates:
//!
//! * *How much did routing change?* — weighted Gower similarity
//!   [`similarity::phi`] between any two routing vectors.
//! * *Is today's routing like a mode I saw before?* — hierarchical
//!   agglomerative clustering ([`cluster`]) with the paper's adaptive
//!   distance-threshold rule, and recurring-mode analysis ([`modes`]).
//! * *Who moved where?* — transition matrices ([`transition`]).
//! * *Did a third party change my routing?* — change detection and
//!   ground-truth validation ([`detect`]).
//! * *What does it look like?* — all-pairs heatmaps ([`heatmap`]), stack
//!   plots and Sankey flows ([`viz`]).
//! * *What does it cost my users?* — per-catchment latency summaries
//!   ([`latency`]).
//!
//! The pipeline mirrors Table 1 of the paper:
//!
//! ```text
//! raw observations --clean--> RoutingVector D(t) --weight--> Φ(t,t')
//!    --cluster--> modes --quantify--> heatmap + transition matrices
//!    --performance--> latency per catchment
//! ```
//!
//! ## Quick example
//!
//! ```
//! use fenrir_core::prelude::*;
//!
//! // Two sites, four networks observed at two times.
//! let mut sites = SiteTable::new();
//! let lax = sites.intern("LAX");
//! let ams = sites.intern("AMS");
//!
//! let d0 = RoutingVector::from_catchments(
//!     Timestamp::from_days(0),
//!     vec![Catchment::Site(lax), Catchment::Site(lax),
//!          Catchment::Site(ams), Catchment::Site(ams)],
//! );
//! let d1 = RoutingVector::from_catchments(
//!     Timestamp::from_days(1),
//!     vec![Catchment::Site(lax), Catchment::Site(ams),
//!          Catchment::Site(ams), Catchment::Site(ams)],
//! );
//!
//! let w = Weights::uniform(4);
//! let phi = fenrir_core::similarity::phi(&d0, &d1, &w, UnknownPolicy::Pessimistic);
//! assert!((phi - 0.75).abs() < 1e-12); // 3 of 4 networks kept their catchment
//! ```

pub mod clean;
pub mod cluster;
pub mod detect;
pub mod error;
pub mod guard;
pub mod health;
pub mod heatmap;
pub mod ids;
pub mod latency;
pub mod modes;
pub mod report;
pub mod series;
pub mod similarity;
pub mod time;
pub mod transition;
pub mod trust;
pub mod vector;
pub mod viz;
pub mod weight;

/// Convenient glob-import of the types used by almost every Fenrir program.
pub mod prelude {
    pub use crate::cluster::{AdaptiveThreshold, Dendrogram, Linkage};
    pub use crate::detect::{
        ChangeDetector, DetectedEvent, GatedDetection, SuppressedEvent, ValidationReport,
    };
    pub use crate::error::{Error, Result};
    pub use crate::guard::{DivergenceGuard, SamplingRate};
    pub use crate::health::CampaignHealth;
    pub use crate::heatmap::Heatmap;
    pub use crate::ids::{NetworkId, SiteId, SiteTable};
    pub use crate::latency::{LatencyPanel, LatencySummary};
    pub use crate::modes::{Mode, ModeAnalysis};
    pub use crate::report::{OperatorReport, ReportConfig};
    pub use crate::series::VectorSeries;
    pub use crate::similarity::{SimilarityMatrix, UnknownPolicy};
    pub use crate::time::Timestamp;
    pub use crate::transition::TransitionMatrix;
    pub use crate::trust::{
        detect_trusted, TrustConfig, TrustModel, TrustReport, TrustedDetection,
    };
    pub use crate::vector::{Catchment, RoutingVector};
    pub use crate::viz::{SankeyDiagram, StackSeries};
    pub use crate::weight::Weights;
}
