//! Routing **modes**: mostly-stable clusters of routing vectors that may
//! reappear later (§2.6.2, §4 of the paper).
//!
//! A [`ModeAnalysis`] combines the adaptive-threshold HAC clustering with the
//! similarity matrix to answer the paper's operational questions:
//!
//! * which contiguous time intervals belong to each mode (Figure 3's
//!   mode (i)…(vi) annotations),
//! * the intra-mode Φ range ("mode (i), with the similarity Φ in
//!   \[0.24, 0.49\]"),
//! * the inter-mode Φ range ("Φ(M_i, M_ii) = \[0.11, 0.48\], a huge routing
//!   change"),
//! * **recurrence**: does an earlier mode reappear ("mode (v) is somewhat
//!   like the original routing mode (i)… more so than its immediate
//!   neighbors")?

use crate::cluster::{AdaptiveThreshold, Dendrogram, Linkage, ThresholdChoice};
use crate::error::Result;
use crate::similarity::SimilarityMatrix;
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};

/// A contiguous run of observations assigned to the same mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interval {
    /// Index of the first observation of the run.
    pub start: usize,
    /// Index of the last observation of the run (inclusive).
    pub end: usize,
}

impl Interval {
    /// Number of observations covered.
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Intervals are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// One routing mode: a cluster of similar routing vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mode {
    /// Mode id (the compacted cluster label; mode 0 appears first in time).
    pub id: usize,
    /// Observation indices belonging to the mode, ascending.
    pub members: Vec<usize>,
    /// Contiguous runs of members. A mode with more than one interval
    /// *recurs*: routing left it and came back.
    pub intervals: Vec<Interval>,
    /// `[min, max]` of Φ between member pairs (`None` for singleton modes,
    /// which the adaptive threshold normally forbids).
    pub intra_phi: Option<(f64, f64)>,
}

impl Mode {
    /// Whether this mode appears in more than one disjoint time interval —
    /// a *recurring routing result*, the phenomenon the paper is named for.
    pub fn recurs(&self) -> bool {
        self.intervals.len() > 1
    }

    /// Number of observations in the mode.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the mode has no members (never produced by analysis).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Full mode decomposition of a series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModeAnalysis {
    /// Discovered modes, ordered by first appearance.
    pub modes: Vec<Mode>,
    /// Per-observation mode label (index into `modes`).
    pub labels: Vec<usize>,
    /// The accepted clustering threshold.
    pub threshold: f64,
    /// Observation timestamps, aligned with `labels`.
    pub times: Vec<Timestamp>,
}

impl ModeAnalysis {
    /// Cluster `sim` (with `times` labelling its rows) into modes using
    /// `linkage` HAC and the paper's adaptive threshold rule.
    pub fn discover(
        sim: &SimilarityMatrix,
        times: &[Timestamp],
        linkage: Linkage,
        adaptive: AdaptiveThreshold,
    ) -> Result<ModeAnalysis> {
        let dendro = Dendrogram::build(sim, linkage)?;
        let choice = adaptive.choose(&dendro)?;
        Ok(Self::from_choice(sim, times, &choice))
    }

    /// Build a mode analysis from an explicit flat clustering (e.g. a fixed
    /// threshold chosen for an ablation).
    pub fn from_choice(
        sim: &SimilarityMatrix,
        times: &[Timestamp],
        choice: &ThresholdChoice,
    ) -> ModeAnalysis {
        let n = choice.labels.len();
        let k = choice.clusters;
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
        for (i, &l) in choice.labels.iter().enumerate() {
            members[l].push(i);
        }
        let modes = members
            .into_iter()
            .enumerate()
            .map(|(id, m)| {
                let intervals = contiguous_intervals(&m);
                let intra_phi = sim.intra_range(&m);
                Mode {
                    id,
                    members: m,
                    intervals,
                    intra_phi,
                }
            })
            .collect();
        ModeAnalysis {
            modes,
            labels: choice.labels.clone(),
            threshold: choice.threshold,
            times: times.iter().copied().take(n).collect(),
        }
    }

    /// Number of discovered modes.
    pub fn len(&self) -> usize {
        self.modes.len()
    }

    /// Whether no modes were discovered (empty input).
    pub fn is_empty(&self) -> bool {
        self.modes.is_empty()
    }

    /// Inter-mode Φ range `Φ(M_a, M_b)` as the paper reports it.
    pub fn inter_phi(&self, sim: &SimilarityMatrix, a: usize, b: usize) -> Option<(f64, f64)> {
        sim.inter_range(&self.modes[a].members, &self.modes[b].members)
    }

    /// Mean inter-mode Φ — used for the paper's "mode (v) is somewhat like
    /// mode (i)" comparisons.
    pub fn inter_phi_mean(&self, sim: &SimilarityMatrix, a: usize, b: usize) -> Option<f64> {
        sim.inter_mean(&self.modes[a].members, &self.modes[b].members)
    }

    /// Modes that reappear after an absence.
    pub fn recurring(&self) -> Vec<&Mode> {
        self.modes.iter().filter(|m| m.recurs()).collect()
    }

    /// For mode `a`, the id of its most similar *other* mode by mean Φ —
    /// "is the current routing new, or like a mode I saw before?".
    pub fn most_similar_mode(&self, sim: &SimilarityMatrix, a: usize) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for b in 0..self.modes.len() {
            if b == a {
                continue;
            }
            if let Some(m) = self.inter_phi_mean(sim, a, b) {
                if best.is_none_or(|(_, bm)| m > bm) {
                    best = Some((b, m));
                }
            }
        }
        best
    }

    /// The medoid of mode `a`: the member observation with the highest
    /// mean Φ to the rest of the mode — the mode's most representative
    /// routing vector. `None` for out-of-range ids.
    pub fn medoid(&self, sim: &SimilarityMatrix, a: usize) -> Option<usize> {
        let members = &self.modes.get(a)?.members;
        if members.len() == 1 {
            return Some(members[0]);
        }
        members
            .iter()
            .map(|&i| {
                let mean: f64 = members
                    .iter()
                    .filter(|&&j| j != i)
                    .map(|&j| sim.get(i, j))
                    .sum::<f64>()
                    / (members.len() - 1) as f64;
                (i, mean)
            })
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
            .map(|(i, _)| i)
    }

    /// Classify a *new* routing vector against the discovered modes: the
    /// mode with the highest mean Φ between `vector` and the mode's member
    /// vectors in `series`, with that similarity. This answers the paper's
    /// question for live operation — "is the current routing new, or is it
    /// like a routing mode I saw before?" — without re-clustering.
    pub fn classify(
        &self,
        vector: &crate::vector::RoutingVector,
        series: &crate::series::VectorSeries,
        weights: &crate::weight::Weights,
        policy: crate::similarity::UnknownPolicy,
    ) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for m in &self.modes {
            if m.members.is_empty() {
                continue;
            }
            let mean: f64 = m
                .members
                .iter()
                .map(|&i| crate::similarity::phi(vector, series.get(i), weights, policy))
                .sum::<f64>()
                / m.members.len() as f64;
            if best.is_none_or(|(_, b)| mean > b) {
                best = Some((m.id, mean));
            }
        }
        best
    }

    /// The observation indices where the mode label changes — the mode
    /// transition instants an operator would investigate.
    pub fn change_points(&self) -> Vec<usize> {
        self.labels
            .windows(2)
            .enumerate()
            .filter(|(_, w)| w[0] != w[1])
            .map(|(i, _)| i + 1)
            .collect()
    }

    /// Human-readable summary table, one line per mode, in the style of the
    /// paper's §4 narratives.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for m in &self.modes {
            let phi = m
                .intra_phi
                .map(|(lo, hi)| format!("[{lo:.2}, {hi:.2}]"))
                .unwrap_or_else(|| "n/a".into());
            let spans: Vec<String> = m
                .intervals
                .iter()
                .map(|iv| format!("{}..{}", self.times[iv.start], self.times[iv.end]))
                .collect();
            out.push_str(&format!(
                "mode ({}) | {} obs | Φ in {} | {}{}\n",
                roman(m.id + 1),
                m.len(),
                phi,
                spans.join(", "),
                if m.recurs() { " | RECURS" } else { "" }
            ));
        }
        out
    }
}

/// Split an ascending index list into maximal contiguous runs.
fn contiguous_intervals(members: &[usize]) -> Vec<Interval> {
    let mut out = Vec::new();
    let mut iter = members.iter().copied();
    let Some(first) = iter.next() else {
        return out;
    };
    let (mut start, mut prev) = (first, first);
    for m in iter {
        if m == prev + 1 {
            prev = m;
        } else {
            out.push(Interval { start, end: prev });
            start = m;
            prev = m;
        }
    }
    out.push(Interval { start, end: prev });
    out
}

/// Lowercase roman numerals, as the paper labels its modes (i)…(vi).
pub fn roman(mut n: usize) -> String {
    const TABLE: [(usize, &str); 13] = [
        (1000, "m"),
        (900, "cm"),
        (500, "d"),
        (400, "cd"),
        (100, "c"),
        (90, "xc"),
        (50, "l"),
        (40, "xl"),
        (10, "x"),
        (9, "ix"),
        (5, "v"),
        (4, "iv"),
        (1, "i"),
    ];
    let mut out = String::new();
    for (v, s) in TABLE {
        while n >= v {
            out.push_str(s);
            n -= v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_from_dist(n: usize, f: impl Fn(usize, usize) -> f64) -> SimilarityMatrix {
        let mut v = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                v[i * n + j] = if i == j { 1.0 } else { 1.0 - f(i, j) };
            }
        }
        SimilarityMatrix::from_raw(n, v).unwrap()
    }

    fn days(n: usize) -> Vec<Timestamp> {
        (0..n as i64).map(Timestamp::from_days).collect()
    }

    /// Timeline A A A B B A A: mode A recurs after B.
    fn recurring_sim() -> SimilarityMatrix {
        let group = |i: usize| matches!(i, 3 | 4); // B at indices 3..=4
        sim_from_dist(7, move |i, j| if group(i) == group(j) { 0.05 } else { 0.9 })
    }

    #[test]
    fn contiguous_intervals_splits_runs() {
        assert_eq!(
            contiguous_intervals(&[0, 1, 2, 5, 6, 9]),
            vec![
                Interval { start: 0, end: 2 },
                Interval { start: 5, end: 6 },
                Interval { start: 9, end: 9 },
            ]
        );
        assert!(contiguous_intervals(&[]).is_empty());
        assert_eq!(
            contiguous_intervals(&[4]),
            vec![Interval { start: 4, end: 4 }]
        );
    }

    #[test]
    fn roman_numerals_match_paper_labels() {
        let labels: Vec<String> = (1..=6).map(roman).collect();
        assert_eq!(labels, vec!["i", "ii", "iii", "iv", "v", "vi"]);
        assert_eq!(roman(14), "xiv");
        assert_eq!(roman(2024), "mmxxiv");
    }

    #[test]
    fn discovers_recurring_mode() {
        let sim = recurring_sim();
        let ma = ModeAnalysis::discover(
            &sim,
            &days(7),
            Linkage::Single,
            AdaptiveThreshold::default(),
        )
        .unwrap();
        assert_eq!(ma.len(), 2);
        let a = &ma.modes[0];
        assert_eq!(a.members, vec![0, 1, 2, 5, 6]);
        assert!(a.recurs());
        assert_eq!(a.intervals.len(), 2);
        let b = &ma.modes[1];
        assert!(!b.recurs());
        assert_eq!(ma.recurring().len(), 1);
    }

    #[test]
    fn change_points_mark_label_flips() {
        let sim = recurring_sim();
        let ma = ModeAnalysis::discover(
            &sim,
            &days(7),
            Linkage::Single,
            AdaptiveThreshold::default(),
        )
        .unwrap();
        assert_eq!(ma.change_points(), vec![3, 5]);
    }

    #[test]
    fn intra_phi_reflects_cluster_tightness() {
        let sim = recurring_sim();
        let ma = ModeAnalysis::discover(
            &sim,
            &days(7),
            Linkage::Single,
            AdaptiveThreshold::default(),
        )
        .unwrap();
        let (lo, hi) = ma.modes[0].intra_phi.unwrap();
        assert!((lo - 0.95).abs() < 1e-9 && (hi - 0.95).abs() < 1e-9);
    }

    #[test]
    fn inter_phi_reflects_separation() {
        let sim = recurring_sim();
        let ma = ModeAnalysis::discover(
            &sim,
            &days(7),
            Linkage::Single,
            AdaptiveThreshold::default(),
        )
        .unwrap();
        let (lo, hi) = ma.inter_phi(&sim, 0, 1).unwrap();
        assert!((lo - 0.1).abs() < 1e-9 && (hi - 0.1).abs() < 1e-9);
        let mean = ma.inter_phi_mean(&sim, 0, 1).unwrap();
        assert!((mean - 0.1).abs() < 1e-9);
    }

    #[test]
    fn most_similar_mode_finds_the_recurrence_partner() {
        // Three groups: 0..2 (A), 3..4 (B), 5..6 (C). A and C similar (0.3
        // apart), B far from both (0.9).
        let g = |i: usize| {
            if i < 3 {
                0
            } else if i < 5 {
                1
            } else {
                2
            }
        };
        let sim = sim_from_dist(7, move |i, j| {
            let (a, b) = (g(i), g(j));
            if a == b {
                0.05
            } else if (a, b) == (0, 2) || (a, b) == (2, 0) {
                0.3
            } else {
                0.9
            }
        });
        let ma = ModeAnalysis::discover(
            &sim,
            &days(7),
            Linkage::Single,
            AdaptiveThreshold::default(),
        )
        .unwrap();
        assert_eq!(ma.len(), 3);
        // Mode C (id 2) is most like mode A (id 0), not its temporal
        // neighbour B — the paper's mode (v) ≈ mode (i) finding.
        let (partner, phi) = ma.most_similar_mode(&sim, 2).unwrap();
        assert_eq!(partner, 0);
        assert!((phi - 0.7).abs() < 1e-9);
    }

    #[test]
    fn summary_mentions_recurrence() {
        let sim = recurring_sim();
        let ma = ModeAnalysis::discover(
            &sim,
            &days(7),
            Linkage::Single,
            AdaptiveThreshold::default(),
        )
        .unwrap();
        let s = ma.summary();
        assert!(s.contains("mode (i)"));
        assert!(s.contains("RECURS"));
        assert!(s.contains("mode (ii)"));
    }

    #[test]
    fn from_choice_respects_given_labels() {
        let sim = recurring_sim();
        let choice = ThresholdChoice {
            threshold: 0.5,
            labels: vec![0, 0, 0, 1, 1, 0, 0],
            clusters: 2,
        };
        let ma = ModeAnalysis::from_choice(&sim, &days(7), &choice);
        assert_eq!(ma.threshold, 0.5);
        assert_eq!(ma.modes[1].members, vec![3, 4]);
    }

    #[test]
    fn interval_len() {
        assert_eq!(Interval { start: 2, end: 5 }.len(), 4);
        assert!(!Interval { start: 2, end: 2 }.is_empty());
    }
}

#[cfg(test)]
mod classify_tests {
    use super::*;
    use crate::cluster::{AdaptiveThreshold, Linkage};
    use crate::ids::{SiteId, SiteTable};
    use crate::series::VectorSeries;
    use crate::similarity::{SimilarityMatrix, UnknownPolicy};
    use crate::time::Timestamp;
    use crate::vector::{Catchment, RoutingVector};
    use crate::weight::Weights;

    /// Series of 8 observations over 4 networks: mode A (all site 0) for
    /// days 0-3, mode B (all site 1) for days 4-7.
    fn two_mode_series() -> (VectorSeries, Weights) {
        let sites = SiteTable::from_names(["A", "B"]);
        let mut series = VectorSeries::new(sites, 4);
        for d in 0..8 {
            let s = if d < 4 { SiteId(0) } else { SiteId(1) };
            series
                .push(RoutingVector::from_catchments(
                    Timestamp::from_days(d),
                    vec![Catchment::Site(s); 4],
                ))
                .unwrap();
        }
        (series, Weights::uniform(4))
    }

    fn analysis(series: &VectorSeries, w: &Weights) -> (ModeAnalysis, SimilarityMatrix) {
        let sim = SimilarityMatrix::compute(series, w, UnknownPolicy::Pessimistic).unwrap();
        let ma = ModeAnalysis::discover(
            &sim,
            &series.times(),
            Linkage::Single,
            AdaptiveThreshold::default(),
        )
        .unwrap();
        (ma, sim)
    }

    #[test]
    fn medoid_is_a_member() {
        let (series, w) = two_mode_series();
        let (ma, sim) = analysis(&series, &w);
        for m in 0..ma.len() {
            let medoid = ma.medoid(&sim, m).unwrap();
            assert!(ma.modes[m].members.contains(&medoid));
        }
        assert!(ma.medoid(&sim, 99).is_none());
    }

    #[test]
    fn classify_matches_the_right_mode() {
        let (series, w) = two_mode_series();
        let (ma, _) = analysis(&series, &w);
        assert_eq!(ma.len(), 2);
        // A new observation identical to mode A's routing.
        let new_a = RoutingVector::from_catchments(
            Timestamp::from_days(100),
            vec![Catchment::Site(SiteId(0)); 4],
        );
        let (mode, phi) = ma
            .classify(&new_a, &series, &w, UnknownPolicy::Pessimistic)
            .unwrap();
        assert_eq!(mode, 0);
        assert!((phi - 1.0).abs() < 1e-12);
        // A mixed observation is closer to whichever mode shares more.
        let mixed = RoutingVector::from_catchments(
            Timestamp::from_days(101),
            vec![
                Catchment::Site(SiteId(1)),
                Catchment::Site(SiteId(1)),
                Catchment::Site(SiteId(1)),
                Catchment::Site(SiteId(0)),
            ],
        );
        let (mode, phi) = ma
            .classify(&mixed, &series, &w, UnknownPolicy::Pessimistic)
            .unwrap();
        assert_eq!(mode, 1);
        assert!((phi - 0.75).abs() < 1e-12);
    }

    #[test]
    fn classify_on_singleton_analysis() {
        let sites = SiteTable::from_names(["A"]);
        let mut series = VectorSeries::new(sites, 1);
        series
            .push(RoutingVector::from_catchments(
                Timestamp::from_days(0),
                vec![Catchment::Site(SiteId(0))],
            ))
            .unwrap();
        let w = Weights::uniform(1);
        let (ma, _) = {
            let sim = SimilarityMatrix::compute(&series, &w, UnknownPolicy::Pessimistic).unwrap();
            (
                ModeAnalysis::discover(
                    &sim,
                    &series.times(),
                    Linkage::Single,
                    AdaptiveThreshold::default(),
                )
                .unwrap(),
                sim,
            )
        };
        let v = series.get(0).clone();
        let (mode, phi) = ma
            .classify(&v, &series, &w, UnknownPolicy::Pessimistic)
            .unwrap();
        assert_eq!(mode, 0);
        assert_eq!(phi, 1.0);
    }
}
