//! The operator report: everything the paper expects an operator to watch,
//! in one pass.
//!
//! "We expect operators to watch Fenrir, notice changes…, and for changes
//! that are large enough, check on latency measurements" (§4.2.2). An
//! [`OperatorReport`] runs the full analysis over a series — similarity,
//! modes, change events, the is-this-mode-new question — and renders a
//! digest an operator (or a pager integration) can act on.

use crate::cluster::{AdaptiveThreshold, Linkage};
use crate::detect::{ChangeDetector, DetectedEvent};
use crate::error::Result;
use crate::modes::{roman, ModeAnalysis};
use crate::series::VectorSeries;
use crate::similarity::{SimilarityMatrix, UnknownPolicy};
use crate::transition::TransitionMatrix;
use crate::weight::Weights;
use serde::{Deserialize, Serialize};

/// Analysis configuration for a report.
#[derive(Debug, Clone, Copy)]
pub struct ReportConfig {
    /// Unknown handling for Φ.
    pub policy: UnknownPolicy,
    /// HAC linkage.
    pub linkage: Linkage,
    /// Adaptive threshold parameters.
    pub adaptive: AdaptiveThreshold,
    /// Change detector parameters.
    pub detector: ChangeDetector,
    /// Worker threads for the all-pairs similarity.
    pub threads: usize,
}

impl Default for ReportConfig {
    fn default() -> Self {
        ReportConfig {
            policy: UnknownPolicy::KnownOnly,
            linkage: Linkage::Average,
            adaptive: AdaptiveThreshold::default(),
            detector: ChangeDetector {
                policy: UnknownPolicy::KnownOnly,
                ..ChangeDetector::default()
            },
            threads: 4,
        }
    }
}

/// A change event annotated with its dominant catchment flow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnnotatedEvent {
    /// The detected change.
    pub event: DetectedEvent,
    /// Largest off-diagonal flow across the event, as
    /// `(from, to, weight)`.
    pub top_flow: Option<(String, String, f64)>,
}

/// The digest of one analysis run.
#[derive(Debug, Clone)]
pub struct OperatorReport {
    /// Mode decomposition.
    pub modes: ModeAnalysis,
    /// The all-pairs similarity backing the modes.
    pub similarity: SimilarityMatrix,
    /// Detected change events with their dominant flows.
    pub events: Vec<AnnotatedEvent>,
    /// For the latest observation: `(mode id, mean Φ)` of the most similar
    /// historical mode — the "is this new?" answer.
    pub latest_match: Option<(usize, f64)>,
}

impl OperatorReport {
    /// Run the full analysis.
    pub fn generate(series: &VectorSeries, w: &Weights, cfg: &ReportConfig) -> Result<Self> {
        let sim = SimilarityMatrix::compute_parallel(series, w, cfg.policy, cfg.threads)?;
        let modes = ModeAnalysis::discover(&sim, &series.times(), cfg.linkage, cfg.adaptive)?;
        let raw_events = cfg.detector.detect(series, w);
        let num_sites = series.sites().len();
        let events = raw_events
            .into_iter()
            .map(|event| {
                let i = event.index;
                let top_flow = if i > 0 {
                    TransitionMatrix::compute(series.get(i - 1), series.get(i), num_sites)
                        .ok()
                        .and_then(|t| {
                            t.top_flows(series.sites(), 1)
                                .into_iter()
                                .next()
                                .map(|f| (f.from, f.to, f.weight))
                        })
                } else {
                    None
                };
                AnnotatedEvent { event, top_flow }
            })
            .collect();
        // Compare the latest observation against all *earlier* modes.
        let latest_match = if series.len() >= 2 && modes.len() >= 2 {
            let last_idx = series.len() - 1;
            let last_mode = modes.labels[last_idx];
            modes.most_similar_mode(&sim, last_mode)
        } else {
            None
        };
        Ok(OperatorReport {
            modes,
            similarity: sim,
            events,
            latest_match,
        })
    }

    /// Render the digest.
    pub fn render(&self) -> String {
        let mut out = String::from("── Fenrir operator report ──\n");
        out.push_str(&format!(
            "{} observations, {} modes (threshold {:.2})\n\n",
            self.modes.labels.len(),
            self.modes.len(),
            self.modes.threshold
        ));
        out.push_str(&self.modes.summary());
        out.push_str(&format!("\n{} change events:\n", self.events.len()));
        for a in &self.events {
            out.push_str(&format!(
                "  {}: Φ fell {:.3} (baseline {:.3})",
                a.event.time, a.event.magnitude, a.event.baseline
            ));
            if let Some((from, to, w)) = &a.top_flow {
                out.push_str(&format!("  — top flow {from} → {to} ({w:.0})"));
            }
            out.push('\n');
        }
        match self.latest_match {
            Some((mode, phi)) => out.push_str(&format!(
                "\ncurrent routing is most like historical mode ({}) with mean Φ = {phi:.2}\n",
                roman(mode + 1)
            )),
            None => out.push_str("\nno earlier mode to compare the current routing against\n"),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{SiteId, SiteTable};
    use crate::time::Timestamp;
    use crate::vector::{Catchment, RoutingVector};

    /// A A A A B B A A — one drain that reverts.
    fn series() -> (VectorSeries, Weights) {
        let sites = SiteTable::from_names(["LAX", "AMS"]);
        let mut s = VectorSeries::new(sites, 6);
        for d in 0..12 {
            let site = if (4..6).contains(&d) {
                SiteId(1)
            } else {
                SiteId(0)
            };
            s.push(RoutingVector::from_catchments(
                Timestamp::from_days(d),
                vec![Catchment::Site(site); 6],
            ))
            .unwrap();
        }
        (s, Weights::uniform(6))
    }

    #[test]
    fn report_covers_all_sections() {
        let (s, w) = series();
        let r = OperatorReport::generate(&s, &w, &ReportConfig::default()).unwrap();
        assert_eq!(r.modes.len(), 2);
        // The 2-day drain's onset and recovery fall within the default
        // merge gap, so they surface as one operational event.
        assert_eq!(r.events.len(), 1, "drain burst merges to one event");
        // The onset's dominant flow leaves LAX.
        let (from, to, weight) = r.events[0].top_flow.clone().unwrap();
        assert_eq!(from, "LAX");
        assert_eq!(to, "AMS");
        assert_eq!(weight, 6.0);
        // The latest observation is back in mode (i); its most similar
        // *other* mode is the drain mode.
        let (mode, phi) = r.latest_match.unwrap();
        assert_eq!(mode, 1);
        assert!(phi < 0.5);
        let text = r.render();
        assert!(text.contains("operator report"));
        assert!(text.contains("change events"));
        assert!(text.contains("LAX → AMS"));
    }

    #[test]
    fn quiet_series_has_no_events() {
        let sites = SiteTable::from_names(["X"]);
        let mut s = VectorSeries::new(sites, 2);
        for d in 0..6 {
            s.push(RoutingVector::from_catchments(
                Timestamp::from_days(d),
                vec![Catchment::Site(SiteId(0)); 2],
            ))
            .unwrap();
        }
        let w = Weights::uniform(2);
        let r = OperatorReport::generate(&s, &w, &ReportConfig::default()).unwrap();
        assert!(r.events.is_empty());
        assert_eq!(r.modes.len(), 1);
        assert!(r.latest_match.is_none());
        assert!(r.render().contains("no earlier mode"));
    }

    #[test]
    fn empty_series_is_an_error() {
        let sites = SiteTable::from_names(["X"]);
        let s = VectorSeries::new(sites, 1);
        let w = Weights::uniform(1);
        assert!(OperatorReport::generate(&s, &w, &ReportConfig::default()).is_err());
    }
}
