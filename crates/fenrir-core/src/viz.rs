//! Stack-plot series and Sankey flow diagrams.
//!
//! The paper explains changes with three visuals besides heatmaps: stacked
//! catchment-size plots (Figures 1, 2a, 3a, 6a), transition matrices
//! (Table 3, in [`crate::transition`]), and Sankey diagrams of an
//! enterprise's routing cone across hops (Figures 7–8). This module builds
//! the data for the first and last as plain structures with text/CSV
//! renderers, so experiments can print them and tests can assert on them.

use crate::ids::SiteTable;
use crate::series::VectorSeries;
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-site catchment-size series `A(t)` over time — the data behind the
/// paper's stack plots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StackSeries {
    /// Site names in site-id order, then `err`, `other`, `unknown`.
    pub labels: Vec<String>,
    /// Observation timestamps.
    pub times: Vec<Timestamp>,
    /// `counts[t][k]`: networks in bucket `k` at time index `t`.
    pub counts: Vec<Vec<u64>>,
}

impl StackSeries {
    /// Build from a series: one row per observation, one column per site
    /// plus the three sentinel buckets.
    pub fn from_series(series: &VectorSeries) -> Self {
        let sites = series.sites();
        let mut labels: Vec<String> = sites.iter().map(|(_, n)| n.to_owned()).collect();
        labels.extend(["err".into(), "other".into(), "unknown".into()]);
        let times = series.times();
        let counts = series
            .aggregates()
            .into_iter()
            .map(|a| {
                let mut row = a.per_site;
                row.extend([a.err, a.other, a.unknown]);
                row
            })
            .collect();
        StackSeries {
            labels,
            times,
            counts,
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether there are no observations.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Column index for a label, if present. The sentinel buckets (`err`,
    /// `other`, `unknown`) live at the end of the label list and win over a
    /// site that happens to share their name.
    pub fn column(&self, label: &str) -> Option<usize> {
        self.labels.iter().rposition(|l| l == label)
    }

    /// The count series for one label.
    pub fn series_for(&self, label: &str) -> Option<Vec<u64>> {
        let c = self.column(label)?;
        Some(self.counts.iter().map(|row| row[c]).collect())
    }

    /// Fraction of (non-unknown) networks in `label` at time index `t`.
    pub fn share(&self, label: &str, t: usize) -> Option<f64> {
        let c = self.column(label)?;
        let row = self.counts.get(t)?;
        let unknown_col = self.labels.len() - 1;
        let denom: u64 = row
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != unknown_col)
            .map(|(_, &v)| v)
            .sum();
        if denom == 0 {
            return Some(0.0);
        }
        Some(row[c] as f64 / denom as f64)
    }

    /// CSV export: `time,<label>,...` header then one row per observation.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time");
        for l in &self.labels {
            out.push(',');
            out.push_str(l);
        }
        out.push('\n');
        for (t, row) in self.times.iter().zip(&self.counts) {
            out.push_str(&t.to_string());
            for v in row {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }

    /// Terminal rendering: for each observation, a proportional horizontal
    /// bar segmented per bucket (first letter of each label), `width` chars
    /// wide. Unknown networks are excluded, matching the paper's plots of
    /// observed catchments.
    pub fn render_ascii(&self, width: usize) -> String {
        let mut out = String::new();
        let unknown_col = self.labels.len() - 1;
        for (t, row) in self.times.iter().zip(&self.counts) {
            let total: u64 = row
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != unknown_col)
                .map(|(_, &v)| v)
                .sum();
            out.push_str(&format!("{t} |"));
            if total > 0 {
                for (i, &v) in row.iter().enumerate() {
                    if i == unknown_col || v == 0 {
                        continue;
                    }
                    let chars = ((v as f64 / total as f64) * width as f64).round() as usize;
                    let ch = self.labels[i]
                        .chars()
                        .next()
                        .unwrap_or('?')
                        .to_ascii_uppercase();
                    out.extend(std::iter::repeat_n(ch, chars));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// A node in a Sankey diagram: a routing entity (e.g. an upstream AS) at a
/// given hop depth.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SankeyNode {
    /// Hop depth (1 = first hop outside the enterprise).
    pub hop: usize,
    /// Entity label, e.g. `"AS2152"`.
    pub label: String,
}

/// A weighted edge between entities at consecutive hops.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SankeyLink {
    /// Source node index into [`SankeyDiagram::nodes`].
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// Number of destination networks routed along this edge.
    pub weight: u64,
}

/// Flow topology of a routing cone across hops (paper Figures 7–8): how many
/// destination networks are carried by each upstream at each hop, and how
/// they fan out at the next hop.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SankeyDiagram {
    /// All nodes, in insertion order.
    pub nodes: Vec<SankeyNode>,
    /// All links.
    pub links: Vec<SankeyLink>,
}

impl SankeyDiagram {
    /// Build from per-hop catchment vectors: `hops[k][n]` is the entity code
    /// of network `n` at hop `k+1` (use the vectors' site codes). Networks
    /// whose state is a sentinel at either end of an edge are skipped for
    /// that edge.
    pub fn from_hop_series(hops: &[&crate::vector::RoutingVector], sites: &SiteTable) -> Self {
        let mut diagram = SankeyDiagram::default();
        let mut node_ids: HashMap<SankeyNode, usize> = HashMap::new();
        let mut link_w: HashMap<(usize, usize), u64> = HashMap::new();
        for k in 0..hops.len().saturating_sub(1) {
            let (a, b) = (hops[k], hops[k + 1]);
            debug_assert_eq!(a.len(), b.len());
            for n in 0..a.len().min(b.len()) {
                let (Some(sa), Some(sb)) = (a.get(n).site(), b.get(n).site()) else {
                    continue;
                };
                let na = SankeyNode {
                    hop: k + 1,
                    label: sites.name(sa).to_owned(),
                };
                let nb = SankeyNode {
                    hop: k + 2,
                    label: sites.name(sb).to_owned(),
                };
                let ia = *node_ids.entry(na.clone()).or_insert_with(|| {
                    diagram.nodes.push(na);
                    diagram.nodes.len() - 1
                });
                let ib = *node_ids.entry(nb.clone()).or_insert_with(|| {
                    diagram.nodes.push(nb);
                    diagram.nodes.len() - 1
                });
                *link_w.entry((ia, ib)).or_insert(0) += 1;
            }
        }
        let mut links: Vec<SankeyLink> = link_w
            .into_iter()
            .map(|((from, to), weight)| SankeyLink { from, to, weight })
            .collect();
        // Total order: node ids are deterministic (insertion order above),
        // so tie-breaking on (from, to) keeps the output stable across
        // processes — a partial key would leak HashMap drain order.
        links.sort_by(|a, b| {
            b.weight
                .cmp(&a.weight)
                .then(a.from.cmp(&b.from))
                .then(a.to.cmp(&b.to))
        });
        diagram.links = links;
        diagram
    }

    /// Total weight entering a node (or its outgoing weight for hop-1
    /// nodes).
    pub fn node_weight(&self, node: usize) -> u64 {
        let incoming: u64 = self
            .links
            .iter()
            .filter(|l| l.to == node)
            .map(|l| l.weight)
            .sum();
        if incoming > 0 {
            incoming
        } else {
            self.links
                .iter()
                .filter(|l| l.from == node)
                .map(|l| l.weight)
                .sum()
        }
    }

    /// Share of total hop-`hop` traffic carried by `label` — the paper's
    /// "at hop 3 … 80% destination networks were routed by AS 2152".
    pub fn hop_share(&self, hop: usize, label: &str) -> f64 {
        let total: u64 = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.hop == hop)
            .map(|(i, _)| self.node_weight(i))
            .sum();
        if total == 0 {
            return 0.0;
        }
        let mine: u64 = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.hop == hop && n.label == label)
            .map(|(i, _)| self.node_weight(i))
            .sum();
        mine as f64 / total as f64
    }

    /// Text rendering: links grouped by hop, heaviest first.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let max_hop = self.nodes.iter().map(|n| n.hop).max().unwrap_or(0);
        for hop in 1..max_hop {
            out.push_str(&format!("hop {hop} -> hop {}\n", hop + 1));
            for l in &self.links {
                if self.nodes[l.from].hop == hop {
                    out.push_str(&format!(
                        "  {:<12} -> {:<12} {:>8}\n",
                        self.nodes[l.from].label, self.nodes[l.to].label, l.weight
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SiteId;
    use crate::vector::{Catchment, RoutingVector};

    fn ts(d: i64) -> Timestamp {
        Timestamp::from_days(d)
    }

    fn s(n: u16) -> Catchment {
        Catchment::Site(SiteId(n))
    }

    fn sample_series() -> VectorSeries {
        let sites = SiteTable::from_names(["STR", "NAP"]);
        let mut series = VectorSeries::new(sites, 4);
        series
            .push(RoutingVector::from_catchments(
                ts(0),
                vec![s(0), s(0), s(0), s(1)],
            ))
            .unwrap();
        series
            .push(RoutingVector::from_catchments(
                ts(1),
                vec![s(1), s(1), Catchment::Err, s(1)],
            ))
            .unwrap();
        series
    }

    #[test]
    fn stack_series_counts_per_bucket() {
        let st = StackSeries::from_series(&sample_series());
        assert_eq!(st.labels, vec!["STR", "NAP", "err", "other", "unknown"]);
        assert_eq!(st.series_for("STR").unwrap(), vec![3, 0]);
        assert_eq!(st.series_for("NAP").unwrap(), vec![1, 3]);
        assert_eq!(st.series_for("err").unwrap(), vec![0, 1]);
        assert_eq!(st.len(), 2);
    }

    #[test]
    fn stack_share_excludes_unknown() {
        let sites = SiteTable::from_names(["A"]);
        let mut series = VectorSeries::new(sites, 4);
        series
            .push(RoutingVector::from_catchments(
                ts(0),
                vec![s(0), s(0), Catchment::Unknown, Catchment::Unknown],
            ))
            .unwrap();
        let st = StackSeries::from_series(&series);
        assert_eq!(st.share("A", 0), Some(1.0));
        assert_eq!(st.share("missing", 0), None);
    }

    #[test]
    fn sentinel_buckets_win_over_samename_sites() {
        // A site literally named "err" must not shadow the error bucket.
        let sites = SiteTable::from_names(["err"]);
        let mut series = VectorSeries::new(sites, 2);
        series
            .push(RoutingVector::from_catchments(
                ts(0),
                vec![s(0), Catchment::Err],
            ))
            .unwrap();
        let st = StackSeries::from_series(&series);
        // column("err") addresses the sentinel (count 1), not the site.
        let col = st.column("err").unwrap();
        assert_eq!(col, 1, "sentinel column");
        assert_eq!(st.counts[0][col], 1);
    }

    #[test]
    fn stack_share_zero_denominator() {
        let sites = SiteTable::from_names(["A"]);
        let mut series = VectorSeries::new(sites, 1);
        series.push(RoutingVector::unknown(ts(0), 1)).unwrap();
        let st = StackSeries::from_series(&series);
        assert_eq!(st.share("A", 0), Some(0.0));
    }

    #[test]
    fn stack_csv_shape() {
        let st = StackSeries::from_series(&sample_series());
        let csv = st.to_csv();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "time,STR,NAP,err,other,unknown");
        assert!(lines[1].starts_with("1970-01-01,3,1,0,0,0"));
    }

    #[test]
    fn stack_ascii_draws_proportional_bars() {
        let st = StackSeries::from_series(&sample_series());
        let art = st.render_ascii(8);
        let first = art.lines().next().unwrap();
        // Day 0: 3 of 4 networks in STR -> six 'S', two 'N'.
        assert!(first.contains("SSSSSS"));
        assert!(first.contains("NN"));
    }

    fn hop_vectors() -> (Vec<RoutingVector>, SiteTable) {
        // Entities: AS1, AS2 at hop 1; AS3, AS4 at hop 2.
        let sites = SiteTable::from_names(["AS1", "AS2", "AS3", "AS4"]);
        let hop1 = RoutingVector::from_catchments(ts(0), vec![s(0), s(0), s(1), Catchment::Err]);
        let hop2 = RoutingVector::from_catchments(ts(0), vec![s(2), s(3), s(3), s(3)]);
        (vec![hop1, hop2], sites)
    }

    #[test]
    fn sankey_builds_links_and_weights() {
        let (hops, sites) = hop_vectors();
        let refs: Vec<&RoutingVector> = hops.iter().collect();
        let d = SankeyDiagram::from_hop_series(&refs, &sites);
        // Links: AS1->AS3 (1), AS1->AS4 (1), AS2->AS4 (1). Err skipped.
        assert_eq!(d.links.len(), 3);
        let total: u64 = d.links.iter().map(|l| l.weight).sum();
        assert_eq!(total, 3);
        // Node weights.
        let as4 = d
            .nodes
            .iter()
            .position(|n| n.label == "AS4" && n.hop == 2)
            .unwrap();
        assert_eq!(d.node_weight(as4), 2);
    }

    #[test]
    fn sankey_hop_share() {
        let (hops, sites) = hop_vectors();
        let refs: Vec<&RoutingVector> = hops.iter().collect();
        let d = SankeyDiagram::from_hop_series(&refs, &sites);
        // Hop 1: AS1 carries 2 of 3 counted networks.
        assert!((d.hop_share(1, "AS1") - 2.0 / 3.0).abs() < 1e-12);
        assert!((d.hop_share(2, "AS4") - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.hop_share(9, "AS1"), 0.0);
    }

    #[test]
    fn sankey_render_lists_links() {
        let (hops, sites) = hop_vectors();
        let refs: Vec<&RoutingVector> = hops.iter().collect();
        let d = SankeyDiagram::from_hop_series(&refs, &sites);
        let r = d.render();
        assert!(r.contains("hop 1 -> hop 2"));
        assert!(r.contains("AS1"));
    }

    #[test]
    fn sankey_empty_input() {
        let sites = SiteTable::new();
        let d = SankeyDiagram::from_hop_series(&[], &sites);
        assert!(d.nodes.is_empty());
        assert!(d.links.is_empty());
        assert_eq!(d.render(), "");
    }
}
