//! All-pairs similarity heatmaps (§2.7 of the paper).
//!
//! "We summarize routing over time by comparing all pairwise vectors as a
//! gray-scale heatmap … blocks of similar routing results \[appear\] as
//! high-similarity (dark-shaded) triangles, and changes as discontinuities
//! in shading." — Figures 2b, 3b, 5, and 6b of the paper.
//!
//! A [`Heatmap`] wraps a [`SimilarityMatrix`] with timestamps and renders to
//! terminal-friendly ASCII shading, portable graymap (PGM) for real image
//! tooling, and CSV for numeric post-processing.

use crate::similarity::SimilarityMatrix;
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};

/// A time-labelled all-pairs similarity heatmap.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Heatmap {
    sim: SimilarityMatrix,
    times: Vec<Timestamp>,
}

/// ASCII shading ramp from light (dissimilar) to dark (similar), mirroring
/// the paper's "dark = similar" convention.
const RAMP: &[u8] = b" .:-=+*#%@";

impl Heatmap {
    /// Wrap a similarity matrix with its row/column timestamps.
    ///
    /// Truncates `times` to the matrix dimension; missing labels are
    /// synthesized as day indices.
    pub fn new(sim: SimilarityMatrix, times: Vec<Timestamp>) -> Self {
        let n = sim.len();
        let mut times = times;
        times.truncate(n);
        while times.len() < n {
            times.push(Timestamp::from_days(times.len() as i64));
        }
        Heatmap { sim, times }
    }

    /// The underlying similarity matrix.
    pub fn similarity(&self) -> &SimilarityMatrix {
        &self.sim
    }

    /// Row/column timestamps.
    pub fn times(&self) -> &[Timestamp] {
        &self.times
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.sim.len()
    }

    /// Whether the heatmap is empty.
    pub fn is_empty(&self) -> bool {
        self.sim.is_empty()
    }

    /// Downsample to at most `max_cells` rows/columns by averaging square
    /// blocks — multi-year daily heatmaps do not fit a terminal otherwise.
    /// Returns `(cell_values, block_size)` where `cell_values` is row-major
    /// `m × m` with `m = ceil(n / block)`.
    fn downsample(&self, max_cells: usize) -> (Vec<f64>, usize, usize) {
        let n = self.sim.len();
        let block = n.div_ceil(max_cells.max(1)).max(1);
        let m = n.div_ceil(block);
        let mut out = vec![0.0; m * m];
        for bi in 0..m {
            for bj in 0..m {
                let (mut sum, mut cnt) = (0.0, 0usize);
                for i in (bi * block)..((bi + 1) * block).min(n) {
                    for j in (bj * block)..((bj + 1) * block).min(n) {
                        sum += self.sim.get(i, j);
                        cnt += 1;
                    }
                }
                out[bi * m + bj] = if cnt == 0 { 0.0 } else { sum / cnt as f64 };
            }
        }
        (out, m, block)
    }

    /// Render as ASCII art, at most `max_cells` characters wide, with a date
    /// label on the first row of each rendered block row.
    pub fn render_ascii(&self, max_cells: usize) -> String {
        if self.is_empty() {
            return String::from("(empty heatmap)\n");
        }
        let (cells, m, block) = self.downsample(max_cells);
        let mut out = String::with_capacity(m * (m + 14));
        for bi in 0..m {
            for bj in 0..m {
                let v = cells[bi * m + bj].clamp(0.0, 1.0);
                let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
                out.push(RAMP[idx] as char);
            }
            let t = self.times[(bi * block).min(self.times.len() - 1)];
            out.push_str(&format!("  {t}\n"));
        }
        out
    }

    /// Export as a binary-free ASCII PGM ("P2") image, one pixel per
    /// observation pair, 255 = Φ of 1.0 (dark in the paper's convention is
    /// left to the viewer's colormap).
    pub fn to_pgm(&self) -> String {
        let n = self.sim.len();
        let mut out = format!("P2\n{n} {n}\n255\n");
        for i in 0..n {
            let row: Vec<String> = (0..n)
                .map(|j| {
                    let v = (self.sim.get(i, j).clamp(0.0, 1.0) * 255.0).round() as u32;
                    v.to_string()
                })
                .collect();
            out.push_str(&row.join(" "));
            out.push('\n');
        }
        out
    }

    /// Export as CSV: header row of timestamps, then one row per time with
    /// its timestamp in the first column.
    pub fn to_csv(&self) -> String {
        let n = self.sim.len();
        let mut out = String::from("time");
        for t in &self.times {
            out.push_str(&format!(",{t}"));
        }
        out.push('\n');
        for i in 0..n {
            out.push_str(&format!("{}", self.times[i]));
            for j in 0..n {
                out.push_str(&format!(",{:.6}", self.sim.get(i, j)));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(n: usize, f: impl Fn(usize, usize) -> f64) -> SimilarityMatrix {
        let mut v = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                v[i * n + j] = if i == j { 1.0 } else { f(i, j) };
            }
        }
        SimilarityMatrix::from_raw(n, v).unwrap()
    }

    fn days(n: usize) -> Vec<Timestamp> {
        (0..n as i64).map(Timestamp::from_days).collect()
    }

    #[test]
    fn new_pads_and_truncates_times() {
        let h = Heatmap::new(sim(3, |_, _| 0.5), days(1));
        assert_eq!(h.times().len(), 3);
        let h2 = Heatmap::new(sim(2, |_, _| 0.5), days(9));
        assert_eq!(h2.times().len(), 2);
    }

    #[test]
    fn ascii_render_shows_blocks() {
        // Two similar halves: within-half Φ 0.9, across 0.1.
        let h = Heatmap::new(
            sim(6, |i, j| if (i < 3) == (j < 3) { 0.9 } else { 0.1 }),
            days(6),
        );
        let art = h.render_ascii(6);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 6);
        // Diagonal block chars must be darker (later in ramp) than
        // off-diagonal ones.
        let c_diag = lines[0].as_bytes()[0];
        let c_off = lines[0].as_bytes()[4];
        let pos = |c: u8| RAMP.iter().position(|&r| r == c).unwrap();
        assert!(pos(c_diag) > pos(c_off));
        // Time labels present.
        assert!(lines[0].contains("1970-01-01"));
    }

    #[test]
    fn ascii_render_downsamples() {
        let h = Heatmap::new(sim(10, |_, _| 0.5), days(10));
        let art = h.render_ascii(5);
        assert_eq!(art.lines().count(), 5);
    }

    #[test]
    fn empty_heatmap_renders_placeholder() {
        let h = Heatmap::new(SimilarityMatrix::from_raw(0, vec![]).unwrap(), vec![]);
        assert!(h.render_ascii(10).contains("empty"));
        assert!(h.is_empty());
    }

    #[test]
    fn pgm_has_correct_header_and_pixels() {
        let h = Heatmap::new(sim(2, |_, _| 0.0), days(2));
        let pgm = h.to_pgm();
        let mut lines = pgm.lines();
        assert_eq!(lines.next(), Some("P2"));
        assert_eq!(lines.next(), Some("2 2"));
        assert_eq!(lines.next(), Some("255"));
        assert_eq!(lines.next(), Some("255 0"));
        assert_eq!(lines.next(), Some("0 255"));
    }

    #[test]
    fn csv_shape() {
        let h = Heatmap::new(sim(2, |_, _| 0.25), days(2));
        let csv = h.to_csv();
        let lines: Vec<&str> = csv.trim_end().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("time,1970-01-01,1970-01-02"));
        assert!(lines[1].contains("1.000000"));
        assert!(lines[1].contains("0.250000"));
    }

    #[test]
    fn downsample_averages() {
        let h = Heatmap::new(sim(4, |_, _| 0.0), days(4));
        let (cells, m, block) = h.downsample(2);
        assert_eq!(m, 2);
        assert_eq!(block, 2);
        // Top-left block covers (0,0),(0,1),(1,0),(1,1) = 1,0,0,1 -> 0.5.
        assert!((cells[0] - 0.5).abs() < 1e-12);
    }
}
