//! Runtime divergence guard for incremental recomputation.
//!
//! The incremental paths (`IncrementalRoutes` in fenrir-netsim,
//! [`SimilarityMatrix::extend`](crate::similarity::SimilarityMatrix) and
//! [`Dendrogram::extend`](crate::cluster::Dendrogram) here) are required to
//! reproduce their batch counterparts bit-for-bit. Debug builds cross-check
//! every transition; release builds used to run with no net at all. A
//! [`DivergenceGuard`] closes that gap: it *samples* cross-checks at
//! runtime, and when a sampled check finds a mismatch it records a typed
//! [`Error::IncrementalDivergence`], lets the caller fall back to the batch
//! result, and **quarantines** the incremental state — every subsequent
//! computation takes the batch path until the guard is reset. A campaign
//! therefore survives an incremental bug with correct (batch) results and a
//! visible trail in `CampaignHealth::divergences` instead of aborting or
//! silently skewing the series.
//!
//! Sampling is deterministic (call counters, never RNG draws) so that a
//! resumed campaign checks exactly the same transitions a straight-through
//! run would — divergence guarding must not perturb resume determinism.

use crate::error::Error;

/// How often a guard cross-checks, as "1 in N" sampling rates.
///
/// Transitions that applied at least one event ("eventful") are the likely
/// place for an incremental bug to land, so they are sampled much more
/// densely than quiet transitions, which only catch state that was
/// corrupted out-of-band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingRate {
    /// Check 1 in this many eventful transitions (0 = never).
    pub eventful_every: usize,
    /// Check 1 in this many quiet transitions (0 = never).
    pub quiet_every: usize,
}

impl SamplingRate {
    /// The default runtime rate: every eventful transition in debug
    /// builds (preserving the historical debug cross-check density), every
    /// 4th eventful and every 64th quiet transition in release builds.
    pub fn default_for_build() -> Self {
        if cfg!(debug_assertions) {
            SamplingRate {
                eventful_every: 1,
                quiet_every: 64,
            }
        } else {
            SamplingRate {
                eventful_every: 4,
                quiet_every: 64,
            }
        }
    }

    /// Check every transition — used by tests and by quarantine recovery
    /// audits.
    pub fn always() -> Self {
        SamplingRate {
            eventful_every: 1,
            quiet_every: 1,
        }
    }
}

/// Sampled incremental-vs-batch cross-check state for one incremental
/// structure (or one family of them, e.g. all per-destination route
/// tables of a campaign).
#[derive(Debug, Clone)]
pub struct DivergenceGuard {
    rate: SamplingRate,
    eventful_seen: usize,
    quiet_seen: usize,
    /// Force the next `should_check` to return true regardless of the
    /// sampling counters (set by fault injection so chaos tests exercise
    /// the recovery path deterministically).
    armed: bool,
    quarantined: bool,
    events: Vec<Error>,
    /// Divergences recorded since the last `drain_new` call.
    pending: usize,
}

impl Default for DivergenceGuard {
    fn default() -> Self {
        DivergenceGuard::new(SamplingRate::default_for_build())
    }
}

impl DivergenceGuard {
    /// A guard with an explicit sampling rate.
    pub fn new(rate: SamplingRate) -> Self {
        DivergenceGuard {
            rate,
            eventful_seen: 0,
            quiet_seen: 0,
            armed: false,
            quarantined: false,
            events: Vec::new(),
            pending: 0,
        }
    }

    /// Decide whether this transition should be cross-checked against the
    /// batch computation. Counts the transition either way; the first
    /// transition of each kind is always checked (counters start at 0), so
    /// short campaigns are not left entirely unguarded.
    pub fn should_check(&mut self, eventful: bool) -> bool {
        if self.armed {
            self.armed = false;
            return true;
        }
        let (seen, every) = if eventful {
            let s = self.eventful_seen;
            self.eventful_seen += 1;
            (s, self.rate.eventful_every)
        } else {
            let s = self.quiet_seen;
            self.quiet_seen += 1;
            (s, self.rate.quiet_every)
        };
        every != 0 && seen % every == 0
    }

    /// Force the next `should_check` to fire. Fault injection calls this
    /// when it poisons incremental state, so the detection/fallback/
    /// quarantine path runs deterministically instead of waiting for the
    /// sampling counters to come around.
    pub fn arm(&mut self) {
        self.armed = true;
    }

    /// Record a detected divergence. The caller is expected to have
    /// already substituted the batch result; from here on the guard is
    /// quarantined and `quarantined()` steers every future computation to
    /// the batch path.
    pub fn record(&mut self, what: &'static str, detail: String) {
        self.events
            .push(Error::IncrementalDivergence { what, detail });
        self.pending += 1;
        self.quarantined = true;
    }

    /// True once any divergence has been recorded: incremental state is no
    /// longer trusted and callers must use the batch path.
    pub fn quarantined(&self) -> bool {
        self.quarantined
    }

    /// Every divergence recorded over the guard's lifetime.
    pub fn events(&self) -> &[Error] {
        &self.events
    }

    /// Number of divergences recorded since the previous call — for
    /// folding into the current sweep's `CampaignHealth::divergences`.
    pub fn drain_new(&mut self) -> usize {
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_transition_of_each_kind_is_checked() {
        let mut g = DivergenceGuard::new(SamplingRate {
            eventful_every: 4,
            quiet_every: 64,
        });
        assert!(g.should_check(true));
        assert!(g.should_check(false));
        assert!(!g.should_check(true));
        assert!(!g.should_check(false));
    }

    #[test]
    fn sampling_rate_is_one_in_n() {
        let mut g = DivergenceGuard::new(SamplingRate {
            eventful_every: 3,
            quiet_every: 0,
        });
        let checked: Vec<bool> = (0..9).map(|_| g.should_check(true)).collect();
        assert_eq!(
            checked,
            vec![true, false, false, true, false, false, true, false, false]
        );
        // quiet_every == 0 disables quiet checks entirely.
        assert!((0..10).all(|_| !g.should_check(false)));
    }

    #[test]
    fn arming_forces_exactly_one_check() {
        let mut g = DivergenceGuard::new(SamplingRate {
            eventful_every: 0,
            quiet_every: 0,
        });
        assert!(!g.should_check(false));
        g.arm();
        assert!(g.should_check(false));
        assert!(!g.should_check(false));
    }

    #[test]
    fn recording_quarantines_and_drains() {
        let mut g = DivergenceGuard::new(SamplingRate::always());
        assert!(!g.quarantined());
        g.record("routes", "AS 3 mismatch".into());
        assert!(g.quarantined());
        assert_eq!(g.drain_new(), 1);
        assert_eq!(g.drain_new(), 0);
        assert_eq!(g.events().len(), 1);
        assert!(matches!(
            g.events()[0],
            Error::IncrementalDivergence { what: "routes", .. }
        ));
    }
}
