//! Observation weighting (§2.5 of the paper).
//!
//! Raw observations say what each vantage point *sees*; operators care about
//! what each vantage point *represents* — how many addresses, users, or how
//! much traffic. The paper's `D_w(t)` weight vector parallels the routing
//! vector; this module provides the common schemes:
//!
//! * [`Weights::uniform`] — every observation counts 1 (the paper's default),
//! * [`Weights::from_prefix_lengths`] — a VP speaking for a /16 counts as
//!   256 /24 blocks (the paper's "count that as 256 /24 blocks"),
//! * [`Weights::from_values`] — arbitrary per-network weights such as
//!   historical traffic or user counts.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// Per-network weights `D_w` used by the weighted similarity Φ and weighted
/// aggregates.
///
/// Invariants: every weight is finite and non-negative, and at least one
/// weight is positive (otherwise Φ's denominator would be zero).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    values: Vec<f64>,
    total: f64,
}

impl Weights {
    /// Every network weighs 1 — "each observation is equivalent".
    pub fn uniform(networks: usize) -> Self {
        Weights {
            values: vec![1.0; networks],
            total: networks as f64,
        }
    }

    /// Arbitrary weights (traffic estimates, user counts, …).
    ///
    /// Errors if any weight is negative or non-finite, or if all weights are
    /// zero.
    pub fn from_values(values: Vec<f64>) -> Result<Self> {
        let mut total = 0.0;
        for (i, &w) in values.iter().enumerate() {
            if !w.is_finite() || w < 0.0 {
                return Err(Error::InvalidParameter {
                    name: "weights",
                    message: format!("weight {w} at index {i} is negative or non-finite"),
                });
            }
            total += w;
        }
        if total == 0.0 {
            return Err(Error::ZeroWeight);
        }
        Ok(Weights { values, total })
    }

    /// Weight by represented address space: a VP announcing a `/p` IPv4
    /// prefix represents `2^(24 - p)` /24 blocks (prefixes longer than /24
    /// weigh 1). This is the paper's Atlas/Verfploeter normalization.
    ///
    /// Errors if any prefix length exceeds 32.
    pub fn from_prefix_lengths(prefix_lens: &[u8]) -> Result<Self> {
        let mut values = Vec::with_capacity(prefix_lens.len());
        for (i, &p) in prefix_lens.iter().enumerate() {
            if p > 32 {
                return Err(Error::InvalidParameter {
                    name: "prefix_lens",
                    message: format!("prefix length {p} at index {i} exceeds 32"),
                });
            }
            let blocks = if p >= 24 {
                1.0
            } else {
                f64::from(1u32 << (24 - p))
            };
            values.push(blocks);
        }
        Self::from_values(values)
    }

    /// Per-network weight values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Weight of network `n`.
    #[inline]
    pub fn get(&self, n: usize) -> f64 {
        self.values[n]
    }

    /// Number of networks covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the weight vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Sum of all weights (Φ's denominator under the pessimistic policy).
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Scale every weight by a factor; relative comparisons (and Φ) are
    /// unaffected, but aggregate magnitudes change.
    ///
    /// Errors if the factor is non-finite or non-positive.
    pub fn scaled(&self, factor: f64) -> Result<Self> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(Error::InvalidParameter {
                name: "factor",
                message: format!("scale factor {factor} must be finite and positive"),
            });
        }
        Ok(Weights {
            values: self.values.iter().map(|w| w * factor).collect(),
            total: self.total * factor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_totals_n() {
        let w = Weights::uniform(5);
        assert_eq!(w.len(), 5);
        assert_eq!(w.total(), 5.0);
        assert!(w.values().iter().all(|&x| x == 1.0));
    }

    #[test]
    fn from_values_validates() {
        assert!(Weights::from_values(vec![1.0, -1.0]).is_err());
        assert!(Weights::from_values(vec![f64::NAN]).is_err());
        assert!(Weights::from_values(vec![f64::INFINITY]).is_err());
        assert!(matches!(
            Weights::from_values(vec![0.0, 0.0]),
            Err(Error::ZeroWeight)
        ));
        let w = Weights::from_values(vec![2.0, 3.0]).unwrap();
        assert_eq!(w.total(), 5.0);
    }

    #[test]
    fn prefix_weighting_matches_paper_example() {
        // "if we have only one Atlas VP … from a /16 prefix, we can count
        // that as 256 /24 blocks rather than just one."
        let w = Weights::from_prefix_lengths(&[16, 24, 28]).unwrap();
        assert_eq!(w.get(0), 256.0);
        assert_eq!(w.get(1), 1.0);
        assert_eq!(w.get(2), 1.0); // longer than /24 still counts once
    }

    #[test]
    fn prefix_weighting_rejects_bad_length() {
        assert!(Weights::from_prefix_lengths(&[33]).is_err());
    }

    #[test]
    fn prefix_zero_is_full_space() {
        let w = Weights::from_prefix_lengths(&[0]).unwrap();
        assert_eq!(w.get(0), f64::from(1u32 << 24));
    }

    #[test]
    fn scaled_preserves_ratios() {
        let w = Weights::from_values(vec![1.0, 3.0]).unwrap();
        let s = w.scaled(2.0).unwrap();
        assert_eq!(s.values(), &[2.0, 6.0]);
        assert_eq!(s.total(), 8.0);
        assert!(w.scaled(0.0).is_err());
        assert!(w.scaled(f64::NAN).is_err());
    }
}
