//! Timestamps for routing vectors.
//!
//! Fenrir datasets span cadences from 4-minute Atlas snapshots (used for the
//! Table 4 validation) to daily Verfploeter sweeps spanning five years, so a
//! second-resolution integer timestamp covers every case. A tiny proleptic
//! Gregorian date conversion is included so experiment output can print
//! `2025-01-16`-style labels exactly as the paper's figures do, without
//! pulling in a calendar dependency.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// Seconds since the Unix epoch (may be negative for pre-1970 synthetic data).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Timestamp(pub i64);

/// Seconds per day.
pub const SECS_PER_DAY: i64 = 86_400;

impl Timestamp {
    /// Construct from raw seconds since the epoch.
    #[inline]
    pub fn from_secs(secs: i64) -> Self {
        Timestamp(secs)
    }

    /// Construct from whole days since the epoch (midnight UTC).
    #[inline]
    pub fn from_days(days: i64) -> Self {
        Timestamp(days * SECS_PER_DAY)
    }

    /// Construct from a calendar date (midnight UTC).
    ///
    /// `month` is 1-based (1 = January), `day` is 1-based.
    ///
    /// ```
    /// use fenrir_core::time::Timestamp;
    /// assert_eq!(Timestamp::from_ymd(1970, 1, 1).as_secs(), 0);
    /// assert_eq!(Timestamp::from_ymd(2025, 1, 16).to_string(), "2025-01-16");
    /// ```
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Self {
        Timestamp::from_days(days_from_civil(year, month, day))
    }

    /// Raw seconds since the epoch.
    #[inline]
    pub fn as_secs(self) -> i64 {
        self.0
    }

    /// Whole days since the epoch (floor division, so times within a day map
    /// to that day).
    #[inline]
    pub fn as_days(self) -> i64 {
        self.0.div_euclid(SECS_PER_DAY)
    }

    /// Calendar `(year, month, day)` of this timestamp (UTC).
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.as_days())
    }

    /// Seconds of day in `[0, 86400)`.
    pub fn seconds_of_day(self) -> i64 {
        self.0.rem_euclid(SECS_PER_DAY)
    }

    /// Add a number of seconds.
    #[inline]
    pub fn plus_secs(self, secs: i64) -> Self {
        Timestamp(self.0 + secs)
    }

    /// Add a number of days.
    #[inline]
    pub fn plus_days(self, days: i64) -> Self {
        Timestamp(self.0 + days * SECS_PER_DAY)
    }
}

impl Add<i64> for Timestamp {
    type Output = Timestamp;
    /// `ts + secs`.
    fn add(self, secs: i64) -> Timestamp {
        Timestamp(self.0 + secs)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = i64;
    /// Difference in seconds.
    fn sub(self, other: Timestamp) -> i64 {
        self.0 - other.0
    }
}

impl fmt::Display for Timestamp {
    /// Renders as `YYYY-MM-DD` when the time is exactly midnight, otherwise
    /// `YYYY-MM-DD HH:MM:SS` — matching the labels in the paper's figures.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        let sod = self.seconds_of_day();
        if sod == 0 {
            write!(f, "{y:04}-{m:02}-{d:02}")
        } else {
            let (h, rem) = (sod / 3600, sod % 3600);
            let (mi, s) = (rem / 60, rem % 60);
            write!(f, "{y:04}-{m:02}-{d:02} {h:02}:{mi:02}:{s:02}")
        }
    }
}

/// Days since 1970-01-01 for a proleptic Gregorian date.
///
/// Algorithm from Howard Hinnant's public-domain `days_from_civil`.
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    debug_assert!((1..=12).contains(&m), "month out of range: {m}");
    debug_assert!((1..=31).contains(&d), "day out of range: {d}");
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = i64::from((m + 9) % 12); // [0, 11], March = 0
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
pub fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    let y = if m <= 2 { y + 1 } else { y };
    (y as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates_round_trip() {
        // Dates that appear in the paper.
        for &(y, m, d) in &[
            (2019, 9, 1),
            (2020, 3, 3),
            (2023, 3, 6),
            (2024, 8, 1),
            (2025, 1, 16),
            (2025, 3, 19),
            (2025, 3, 26),
        ] {
            let days = days_from_civil(y, m, d);
            assert_eq!(civil_from_days(days), (y, m, d), "{y}-{m}-{d}");
        }
    }

    #[test]
    fn leap_years() {
        // 2020 is a leap year; 2020-02-29 exists and is one day before 03-01.
        assert_eq!(
            days_from_civil(2020, 3, 1) - days_from_civil(2020, 2, 29),
            1
        );
        // 1900 is not a leap year (divisible by 100, not 400).
        assert_eq!(
            days_from_civil(1900, 3, 1) - days_from_civil(1900, 2, 28),
            1
        );
        // 2000 is a leap year (divisible by 400).
        assert_eq!(
            days_from_civil(2000, 3, 1) - days_from_civil(2000, 2, 29),
            1
        );
    }

    #[test]
    fn round_trip_a_wide_range() {
        // Every 13 days across ~80 years.
        let mut day = days_from_civil(1960, 1, 1);
        let end = days_from_civil(2040, 1, 1);
        while day < end {
            let (y, m, d) = civil_from_days(day);
            assert_eq!(days_from_civil(y, m, d), day);
            day += 13;
        }
    }

    #[test]
    fn display_midnight_is_date_only() {
        assert_eq!(Timestamp::from_ymd(2025, 1, 16).to_string(), "2025-01-16");
    }

    #[test]
    fn display_with_time() {
        let t = Timestamp::from_ymd(2024, 3, 4).plus_secs(21 * 3600 + 56 * 60);
        assert_eq!(t.to_string(), "2024-03-04 21:56:00");
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_days(10);
        assert_eq!(t.plus_days(5).as_days(), 15);
        assert_eq!((t + 60).as_secs(), 10 * SECS_PER_DAY + 60);
        assert_eq!(t.plus_days(5) - t, 5 * SECS_PER_DAY);
    }

    #[test]
    fn negative_times() {
        let t = Timestamp::from_secs(-1);
        assert_eq!(t.as_days(), -1);
        assert_eq!(t.seconds_of_day(), SECS_PER_DAY - 1);
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
    }

    #[test]
    fn ordering() {
        assert!(Timestamp::from_days(1) < Timestamp::from_days(2));
    }
}
