//! Change detection and ground-truth validation (§3 of the paper).
//!
//! Fenrir "identifies events … by examining transitions in vector matrices"
//! at the measurement cadence. [`ChangeDetector`] flags observation steps
//! whose consecutive similarity Φ(t−1, t) drops markedly below its recent
//! baseline — robust to the coverage-depressed Φ levels of Verfploeter-style
//! data, where even stable routing sits at Φ ≈ 0.5–0.6.
//!
//! [`validate`] reproduces the paper's Table 4 evaluation: detected events
//! are matched against an operator maintenance log in which only *external*
//! events (site drains, traffic engineering) should be visible; *internal*
//! events should not. Detections matching no logged event are counted as
//! suspected **third-party changes** — per the paper, these are not false
//! positives but Fenrir's design goal.

use crate::error::{Error, Result};
use crate::health::CampaignHealth;
use crate::series::VectorSeries;
use crate::similarity::{phi, UnknownPolicy};
use crate::time::Timestamp;
use crate::weight::Weights;
use serde::{Deserialize, Serialize};

/// A routing change flagged by the detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectedEvent {
    /// Index of the *later* observation of the changed pair.
    pub index: usize,
    /// Timestamp of that observation.
    pub time: Timestamp,
    /// Φ between the pair of observations bracketing the change.
    pub phi: f64,
    /// Baseline Φ the detector expected from recent history.
    pub baseline: f64,
    /// `baseline − phi`: how far similarity fell.
    pub magnitude: f64,
}

/// Why a detection was withheld by the data-quality gate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SuppressReason {
    /// Measurement coverage around the flagged step was below the floor:
    /// the apparent routing change is indistinguishable from a
    /// measurement outage.
    LowCoverage {
        /// The lower of the two coverages bracketing the step.
        coverage: f64,
        /// The configured floor it fell below.
        floor: f64,
    },
    /// Too little of the measurement population around the flagged step
    /// was trustworthy: enough vantage points were quarantined or
    /// excluded by the trust model that the apparent change could be an
    /// artifact of the adversarial population, not of routing.
    UntrustedPopulation {
        /// Fraction of total base weight still trusted at the step.
        trusted_fraction: f64,
        /// The configured floor it fell below.
        floor: f64,
    },
}

/// A detection the gate refused to report as a routing change.
///
/// Suppressed events are *recorded*, not dropped: a blackout must show up
/// as "something happened here, but the data cannot support an alarm",
/// never as silence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuppressedEvent {
    /// The detection as the ungated detector saw it.
    pub event: DetectedEvent,
    /// Why it was withheld.
    pub reason: SuppressReason,
}

/// Result of coverage-gated detection: trusted events plus the detections
/// withheld for data-quality reasons.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GatedDetection {
    /// Detections at adequately-covered observations.
    pub events: Vec<DetectedEvent>,
    /// Detections withheld because the data could not support them.
    pub suppressed: Vec<SuppressedEvent>,
}

/// Default coverage floor for [`ChangeDetector::detect_gated`]: below
/// one-fifth coverage a Φ drop says more about the measurement than about
/// routing.
pub const DEFAULT_COVERAGE_FLOOR: f64 = 0.2;

/// Sliding-baseline change detector over consecutive-pair similarities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChangeDetector {
    /// Flag a step when Φ falls at least this far below baseline.
    pub min_drop: f64,
    /// Number of recent steps whose median forms the baseline.
    pub window: usize,
    /// Merge detections within this many observations of each other into
    /// one event (the paper groups log entries within ten minutes; at a
    /// 4-minute cadence that is ~3 observations).
    pub merge_gap: usize,
    /// How unknowns enter Φ.
    pub policy: UnknownPolicy,
}

impl Default for ChangeDetector {
    fn default() -> Self {
        ChangeDetector {
            min_drop: 0.1,
            window: 12,
            merge_gap: 2,
            policy: UnknownPolicy::Pessimistic,
        }
    }
}

impl ChangeDetector {
    /// Consecutive-pair similarities `Φ(t_{i-1}, t_i)` for the whole series
    /// (length `series.len() − 1`).
    pub fn step_similarities(&self, series: &VectorSeries, w: &Weights) -> Vec<f64> {
        (1..series.len())
            .map(|i| phi(series.get(i - 1), series.get(i), w, self.policy))
            .collect()
    }

    /// Run detection over the series.
    ///
    /// The baseline for step `i` is the median of up to `window` *preceding*
    /// step similarities (so a change does not suppress its own detection);
    /// the first step compares against itself and never fires.
    pub fn detect(&self, series: &VectorSeries, w: &Weights) -> Vec<DetectedEvent> {
        let steps = self.step_similarities(series, w);
        self.detect_from_steps(&steps, &series.times())
    }

    /// Run detection over precomputed step similarities.
    ///
    /// `steps[i]` is Φ between observations `i` and `i + 1`; `times` are
    /// the observation timestamps (so `times.len() == steps.len() + 1`).
    /// This is [`detect`](Self::detect) with the Φ computation factored
    /// out, for callers that weight each step differently — the trust
    /// model recomputes per-step weights as vantage points fall in and
    /// out of quarantine.
    pub fn detect_from_steps(&self, steps: &[f64], times: &[Timestamp]) -> Vec<DetectedEvent> {
        debug_assert!(steps.is_empty() || times.len() == steps.len() + 1);
        let mut raw: Vec<DetectedEvent> = Vec::new();
        let mut history: Vec<f64> = Vec::new();
        for (i, &p) in steps.iter().enumerate() {
            let baseline = if history.is_empty() {
                p
            } else {
                median(&history)
            };
            let magnitude = baseline - p;
            if magnitude >= self.min_drop {
                raw.push(DetectedEvent {
                    index: i + 1,
                    time: times[i + 1],
                    phi: p,
                    baseline,
                    magnitude,
                });
                // A detected change does not poison the baseline: keep the
                // expected level, not the anomalous one.
            } else {
                history.push(p);
                if history.len() > self.window {
                    history.remove(0);
                }
            }
        }
        self.merge(raw)
    }

    /// Collapse bursts of detections separated by at most `merge_gap`
    /// observations, keeping the largest-magnitude representative.
    fn merge(&self, raw: Vec<DetectedEvent>) -> Vec<DetectedEvent> {
        let mut out: Vec<DetectedEvent> = Vec::new();
        for e in raw {
            match out.last_mut() {
                // Anchored on the burst's onset so distinct events spaced
                // wider than the gap never chain together.
                Some(last) if e.index - last.index <= self.merge_gap + 1 => {
                    // Keep the onset's index and time; adopt the strongest
                    // magnitude seen in the burst.
                    if e.magnitude > last.magnitude {
                        last.magnitude = e.magnitude;
                        last.phi = e.phi;
                        last.baseline = e.baseline;
                    }
                }
                _ => out.push(e),
            }
        }
        out
    }

    /// Run detection gated by per-observation campaign health.
    ///
    /// A detection at step `i → i+1` is only trustworthy when *both*
    /// bracketing observations were adequately measured: a sweep that
    /// went dark produces an apparent change both entering and leaving
    /// the outage. Any detection where the lower of the two coverages is
    /// below `floor` is moved to [`GatedDetection::suppressed`] instead
    /// of being reported as a routing change.
    ///
    /// `health` must align one-to-one with the series' observations.
    pub fn detect_gated(
        &self,
        series: &VectorSeries,
        w: &Weights,
        health: &[CampaignHealth],
        floor: f64,
    ) -> Result<GatedDetection> {
        if !(0.0..=1.0).contains(&floor) {
            return Err(Error::InvalidParameter {
                name: "coverage_floor",
                message: format!("must lie in [0, 1], got {floor}"),
            });
        }
        if health.len() != series.len() {
            return Err(Error::ShapeMismatch {
                what: "health series",
                expected: series.len(),
                actual: health.len(),
            });
        }
        let mut gated = GatedDetection::default();
        for event in self.detect(series, w) {
            // `detect` never fires at index 0, so `index - 1` is in range.
            let before = health[event.index - 1].coverage();
            let at = health[event.index].coverage();
            let coverage = before.min(at);
            if coverage < floor {
                gated.suppressed.push(SuppressedEvent {
                    event,
                    reason: SuppressReason::LowCoverage { coverage, floor },
                });
            } else {
                gated.events.push(event);
            }
        }
        Ok(gated)
    }
}

fn median(xs: &[f64]) -> f64 {
    debug_assert!(!xs.is_empty());
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Kind of a ground-truth maintenance event (Table 4 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// Intentional temporary removal of a site from anycast.
    SiteDrain,
    /// Routing adjustment that preserves reachability but shifts catchments.
    TrafficEngineering,
    /// Internal change with no expected external effect.
    Internal,
}

impl EventKind {
    /// Whether an event of this kind should be externally visible.
    pub fn is_external(self) -> bool {
        !matches!(self, EventKind::Internal)
    }
}

/// One entry of an operator maintenance log (before grouping).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// When the maintenance happened.
    pub time: Timestamp,
    /// Who performed it — the paper groups entries "performed by the same
    /// operator".
    pub operator: String,
    /// What kind of maintenance.
    pub kind: EventKind,
}

/// A group of log entries treated as one ground-truth event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventGroup {
    /// Time of the earliest entry in the group.
    pub time: Timestamp,
    /// Operator shared by all entries.
    pub operator: String,
    /// The group is external if *any* member is external (a drain grouped
    /// with internal steps is still externally visible).
    pub kind: EventKind,
    /// Number of raw entries grouped.
    pub entries: usize,
}

/// Group maintenance entries "occurring within ten minutes and performed by
/// the same operator" (§3). `gap_secs` is the grouping window (600 for the
/// paper's rule). Entries need not be pre-sorted.
pub fn group_log_entries(entries: &[LogEntry], gap_secs: i64) -> Vec<EventGroup> {
    let mut sorted: Vec<&LogEntry> = entries.iter().collect();
    sorted.sort_by_key(|e| (e.time, e.operator.clone()));
    let mut groups: Vec<EventGroup> = Vec::new();
    for e in sorted {
        let joined = groups
            .iter_mut()
            .rev()
            .find(|g| g.operator == e.operator && (e.time - g.time).abs() <= gap_secs);
        match joined {
            Some(g) => {
                g.entries += 1;
                // Externality dominates: prefer drain > TE > internal.
                g.kind = dominant_kind(g.kind, e.kind);
            }
            None => groups.push(EventGroup {
                time: e.time,
                operator: e.operator.clone(),
                kind: e.kind,
                entries: 1,
            }),
        }
    }
    groups
}

fn dominant_kind(a: EventKind, b: EventKind) -> EventKind {
    use EventKind::*;
    match (a, b) {
        (SiteDrain, _) | (_, SiteDrain) => SiteDrain,
        (TrafficEngineering, _) | (_, TrafficEngineering) => TrafficEngineering,
        _ => Internal,
    }
}

/// The Table 4 confusion-matrix report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// External events detected (true positives).
    pub tp: usize,
    /// External events missed (false negatives).
    pub fn_: usize,
    /// Internal events not detected (true negatives).
    pub tn: usize,
    /// Internal events that nevertheless matched a detection (the paper's
    /// "FP?" cell — possibly coincident third-party changes).
    pub fp: usize,
    /// Detections matching no logged event at all — suspected third-party
    /// routing changes (the paper's starred row of 10).
    pub third_party: usize,
    /// TP broken down by external kind: `(site_drain, traffic_engineering)`.
    pub tp_by_kind: (usize, usize),
}

impl ValidationReport {
    /// `(TP + TN) / all logged events` — the paper reports 0.84–0.86.
    pub fn accuracy(&self) -> f64 {
        let all = self.tp + self.fn_ + self.tn + self.fp;
        if all == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / all as f64
    }

    /// `TP / (TP + FP)` — the paper reports 0.70, noting the FPs are likely
    /// real third-party changes.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// `TP / (TP + FN)` — the paper reports perfect recall of 1.0.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// Render in the shape of the paper's Table 4.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("ground truth                 detected    not detected\n");
        out.push_str(&format!(
            "  external                   {:>4} (TP)   {:>4} (FN)\n",
            self.tp, self.fn_
        ));
        out.push_str(&format!(
            "    site drain               {:>4}\n",
            self.tp_by_kind.0
        ));
        out.push_str(&format!(
            "    traffic engineering      {:>4}\n",
            self.tp_by_kind.1
        ));
        out.push_str(&format!(
            "  internal only              {:>4} (FP?)  {:>4} (TN)\n",
            self.fp, self.tn
        ));
        out.push_str(&format!(
            "external changes? (*)        {:>4}\n",
            self.third_party
        ));
        out.push_str(&format!(
            "accuracy {:.2}  precision {:.2}  recall {:.2}\n",
            self.accuracy(),
            self.precision(),
            self.recall()
        ));
        out
    }
}

/// Match detections against grouped ground truth.
///
/// A ground-truth event and a detection match when they are within
/// `tolerance_secs` of each other; each detection matches at most one event
/// and vice versa (greedy nearest-first matching).
pub fn validate(
    detected: &[DetectedEvent],
    truth: &[EventGroup],
    tolerance_secs: i64,
) -> ValidationReport {
    // Candidate (|Δt|, truth index, detection index) pairs, nearest first.
    let mut cands: Vec<(i64, usize, usize)> = Vec::new();
    for (gi, g) in truth.iter().enumerate() {
        for (di, d) in detected.iter().enumerate() {
            let dt = (d.time - g.time).abs();
            if dt <= tolerance_secs {
                cands.push((dt, gi, di));
            }
        }
    }
    cands.sort();
    let mut truth_matched = vec![false; truth.len()];
    let mut det_matched = vec![false; detected.len()];
    for (_, gi, di) in cands {
        if !truth_matched[gi] && !det_matched[di] {
            truth_matched[gi] = true;
            det_matched[di] = true;
        }
    }

    let mut report = ValidationReport {
        tp: 0,
        fn_: 0,
        tn: 0,
        fp: 0,
        third_party: 0,
        tp_by_kind: (0, 0),
    };
    for (g, &matched) in truth.iter().zip(&truth_matched) {
        match (g.kind.is_external(), matched) {
            (true, true) => {
                report.tp += 1;
                match g.kind {
                    EventKind::SiteDrain => report.tp_by_kind.0 += 1,
                    EventKind::TrafficEngineering => report.tp_by_kind.1 += 1,
                    EventKind::Internal => unreachable!("internal is not external"),
                }
            }
            (true, false) => report.fn_ += 1,
            (false, true) => report.fp += 1,
            (false, false) => report.tn += 1,
        }
    }
    report.third_party = det_matched.iter().filter(|&&m| !m).count();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{SiteId, SiteTable};
    use crate::vector::{Catchment, RoutingVector};

    fn ts(d: i64) -> Timestamp {
        Timestamp::from_days(d)
    }

    fn s(n: u16) -> Catchment {
        Catchment::Site(SiteId(n))
    }

    /// Series of 20 days over 4 networks: stable on site 0, everyone moves
    /// to site 1 on day 10.
    fn shifting_series() -> (VectorSeries, Weights) {
        let sites = SiteTable::from_names(["A", "B"]);
        let mut series = VectorSeries::new(sites, 4);
        for d in 0..20 {
            let c = if d < 10 { s(0) } else { s(1) };
            series
                .push(RoutingVector::from_catchments(ts(d), vec![c; 4]))
                .unwrap();
        }
        (series, Weights::uniform(4))
    }

    #[test]
    fn detects_a_clean_shift_once() {
        let (series, w) = shifting_series();
        let det = ChangeDetector::default();
        let events = det.detect(&series, &w);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].index, 10);
        assert_eq!(events[0].time, ts(10));
        assert!(events[0].magnitude >= 0.9);
    }

    /// Health series for `n` observations over 4 targets, all fully covered.
    fn full_health(n: usize) -> Vec<CampaignHealth> {
        (0..n)
            .map(|d| {
                let mut h = CampaignHealth::new(ts(d as i64), 4);
                h.responses = 4;
                h
            })
            .collect()
    }

    #[test]
    fn gate_passes_well_covered_detections() {
        let (series, w) = shifting_series();
        let det = ChangeDetector::default();
        let gated = det
            .detect_gated(&series, &w, &full_health(20), DEFAULT_COVERAGE_FLOOR)
            .unwrap();
        assert_eq!(gated.events.len(), 1);
        assert!(gated.suppressed.is_empty());
        assert_eq!(gated.events[0].index, 10);
    }

    #[test]
    fn gate_suppresses_detections_bracketing_low_coverage() {
        let (series, w) = shifting_series();
        let mut health = full_health(20);
        // The sweep *before* the shift went dark: the change cannot be
        // distinguished from the outage's edge.
        health[9].responses = 0;
        let det = ChangeDetector::default();
        let gated = det.detect_gated(&series, &w, &health, 0.5).unwrap();
        assert!(gated.events.is_empty(), "{:?}", gated.events);
        assert_eq!(gated.suppressed.len(), 1);
        assert_eq!(gated.suppressed[0].event.index, 10);
        match gated.suppressed[0].reason {
            SuppressReason::LowCoverage { coverage, floor } => {
                assert_eq!(coverage, 0.0);
                assert_eq!(floor, 0.5);
            }
            other => panic!("expected LowCoverage, got {other:?}"),
        }
    }

    #[test]
    fn gate_rejects_misaligned_health() {
        let (series, w) = shifting_series();
        let err = ChangeDetector::default()
            .detect_gated(&series, &w, &full_health(19), 0.2)
            .unwrap_err();
        assert!(matches!(err, Error::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn gate_rejects_bad_floor() {
        let (series, w) = shifting_series();
        let err = ChangeDetector::default()
            .detect_gated(&series, &w, &full_health(20), 1.5)
            .unwrap_err();
        assert!(matches!(err, Error::InvalidParameter { .. }), "{err}");
    }

    #[test]
    fn stable_series_yields_no_events() {
        let sites = SiteTable::from_names(["A"]);
        let mut series = VectorSeries::new(sites, 2);
        for d in 0..10 {
            series
                .push(RoutingVector::from_catchments(ts(d), vec![s(0); 2]))
                .unwrap();
        }
        let events = ChangeDetector::default().detect(&series, &Weights::uniform(2));
        assert!(events.is_empty());
    }

    #[test]
    fn baseline_survives_depressed_coverage() {
        // Half the networks always unknown: stable Φ is 0.5, and a change
        // moving the known half drops Φ to 0. Detector must fire exactly at
        // the change despite the low baseline.
        let sites = SiteTable::from_names(["A", "B"]);
        let mut series = VectorSeries::new(sites, 4);
        for d in 0..12 {
            let site = if d < 6 { s(0) } else { s(1) };
            series
                .push(RoutingVector::from_catchments(
                    ts(d),
                    vec![site, site, Catchment::Unknown, Catchment::Unknown],
                ))
                .unwrap();
        }
        let events = ChangeDetector::default().detect(&series, &Weights::uniform(4));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].index, 6);
        assert!((events[0].baseline - 0.5).abs() < 1e-9);
    }

    #[test]
    fn merge_collapses_bursts() {
        // A two-step transition (A -> half-moved -> B) is one operational
        // event.
        let sites = SiteTable::from_names(["A", "B"]);
        let mut series = VectorSeries::new(sites, 4);
        for d in 0..6 {
            series
                .push(RoutingVector::from_catchments(ts(d), vec![s(0); 4]))
                .unwrap();
        }
        series
            .push(RoutingVector::from_catchments(
                ts(6),
                vec![s(0), s(0), s(1), s(1)],
            ))
            .unwrap();
        for d in 7..12 {
            series
                .push(RoutingVector::from_catchments(ts(d), vec![s(1); 4]))
                .unwrap();
        }
        let events = ChangeDetector::default().detect(&series, &Weights::uniform(4));
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].index, 6); // onset of the burst
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[5.0]), 5.0);
    }

    #[test]
    fn grouping_merges_same_operator_within_gap() {
        let entries = vec![
            LogEntry {
                time: Timestamp::from_secs(0),
                operator: "alice".into(),
                kind: EventKind::Internal,
            },
            LogEntry {
                time: Timestamp::from_secs(300),
                operator: "alice".into(),
                kind: EventKind::SiteDrain,
            },
            LogEntry {
                time: Timestamp::from_secs(400),
                operator: "bob".into(),
                kind: EventKind::Internal,
            },
            LogEntry {
                time: Timestamp::from_secs(5_000),
                operator: "alice".into(),
                kind: EventKind::TrafficEngineering,
            },
        ];
        let groups = group_log_entries(&entries, 600);
        assert_eq!(groups.len(), 3);
        // Alice's first group absorbed the drain and became external.
        let g0 = groups
            .iter()
            .find(|g| g.operator == "alice" && g.entries == 2)
            .unwrap();
        assert_eq!(g0.kind, EventKind::SiteDrain);
        assert!(g0.kind.is_external());
    }

    #[test]
    fn grouping_keeps_different_operators_apart() {
        let entries = vec![
            LogEntry {
                time: Timestamp::from_secs(0),
                operator: "a".into(),
                kind: EventKind::Internal,
            },
            LogEntry {
                time: Timestamp::from_secs(1),
                operator: "b".into(),
                kind: EventKind::Internal,
            },
        ];
        assert_eq!(group_log_entries(&entries, 600).len(), 2);
    }

    fn det_at(secs: i64) -> DetectedEvent {
        DetectedEvent {
            index: 0,
            time: Timestamp::from_secs(secs),
            phi: 0.2,
            baseline: 0.9,
            magnitude: 0.7,
        }
    }

    fn truth_at(secs: i64, kind: EventKind) -> EventGroup {
        EventGroup {
            time: Timestamp::from_secs(secs),
            operator: "op".into(),
            kind,
            entries: 1,
        }
    }

    #[test]
    fn validation_reproduces_table4_arithmetic() {
        // 19 external all detected, 29 internal undetected, 8 internal
        // detected, 10 extra detections: the paper's Table 4.
        let mut truth = Vec::new();
        let mut detected = Vec::new();
        let mut clock = 0i64;
        for i in 0..19 {
            let kind = if i < 17 {
                EventKind::SiteDrain
            } else {
                EventKind::TrafficEngineering
            };
            truth.push(truth_at(clock, kind));
            detected.push(det_at(clock));
            clock += 10_000;
        }
        for _ in 0..29 {
            truth.push(truth_at(clock, EventKind::Internal));
            clock += 10_000;
        }
        for _ in 0..8 {
            truth.push(truth_at(clock, EventKind::Internal));
            detected.push(det_at(clock));
            clock += 10_000;
        }
        for _ in 0..10 {
            detected.push(det_at(clock));
            clock += 10_000;
        }
        let report = validate(&detected, &truth, 600);
        assert_eq!(report.tp, 19);
        assert_eq!(report.fn_, 0);
        assert_eq!(report.tn, 29);
        assert_eq!(report.fp, 8);
        assert_eq!(report.third_party, 10);
        assert_eq!(report.tp_by_kind, (17, 2));
        assert!((report.recall() - 1.0).abs() < 1e-12);
        assert!((report.accuracy() - 48.0 / 56.0).abs() < 1e-12);
        assert!((report.precision() - 19.0 / 27.0).abs() < 1e-12);
        let rendered = report.render();
        assert!(rendered.contains("(TP)"));
        assert!(rendered.contains("recall 1.00"));
    }

    #[test]
    fn validation_matching_is_one_to_one() {
        // One truth event, two detections nearby: only one matches; the
        // other counts as third-party.
        let truth = vec![truth_at(0, EventKind::SiteDrain)];
        let detected = vec![det_at(10), det_at(20)];
        let report = validate(&detected, &truth, 600);
        assert_eq!(report.tp, 1);
        assert_eq!(report.third_party, 1);
    }

    #[test]
    fn validation_tolerance_bounds_matching() {
        let truth = vec![truth_at(0, EventKind::SiteDrain)];
        let detected = vec![det_at(1_000)];
        let report = validate(&detected, &truth, 600);
        assert_eq!(report.tp, 0);
        assert_eq!(report.fn_, 1);
        assert_eq!(report.third_party, 1);
        assert_eq!(report.recall(), 0.0);
    }

    #[test]
    fn empty_report_metrics_are_zero() {
        let report = validate(&[], &[], 600);
        assert_eq!(report.accuracy(), 0.0);
        assert_eq!(report.precision(), 0.0);
        assert_eq!(report.recall(), 0.0);
    }
}
