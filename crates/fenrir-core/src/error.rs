//! Error type shared across fenrir-core.
//!
//! The crate keeps a single, small error enum rather than per-module errors:
//! Fenrir is a batch pipeline, and callers almost always want to print the
//! failure and abort the analysis run, not branch on variants. Variants still
//! carry enough structure to make programmatic handling possible where it
//! matters (e.g. distinguishing shape mismatches from empty inputs).

use std::fmt;

/// Result alias for fenrir-core operations.
pub type Result<T> = std::result::Result<T, Error>;

/// All the ways an analysis step can fail.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard arm
/// so the pipeline can grow new failure modes (as it did for campaign
/// health) without a breaking release.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Two objects that must describe the same network population disagree
    /// on length (e.g. a vector of 100 networks against 99 weights).
    ShapeMismatch {
        /// What the caller passed (e.g. "weights").
        what: &'static str,
        /// Expected number of elements.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// An operation that needs at least one element got none
    /// (e.g. clustering an empty series).
    EmptyInput(&'static str),
    /// A timestamp lookup failed: the series has no vector at that time.
    NoSuchTime(i64),
    /// Two observations claim the same timestamp. Sorted-by-time storage
    /// relies on strict ordering for binary-search lookups, so duplicates
    /// are rejected at every entry point rather than silently kept.
    DuplicateTimestamp(i64),
    /// A parameter is outside its documented domain
    /// (e.g. a distance threshold not in `[0, 1]`).
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// Weights summed to zero, so the weighted similarity is undefined.
    ZeroWeight,
    /// An observation's measurement coverage fell below the configured
    /// floor, so any verdict derived from it would be untrustworthy.
    CoverageTooLow {
        /// Index of the offending observation within its series.
        observation: usize,
        /// Fraction of targets that produced a usable classification.
        coverage: f64,
        /// The configured minimum acceptable coverage.
        floor: f64,
    },
    /// A measurement campaign gave up before producing a usable series
    /// (e.g. every sweep blew its probe budget or deadline).
    CampaignAborted {
        /// Which campaign aborted (e.g. "verfploeter").
        campaign: &'static str,
        /// Human-readable description of why.
        reason: String,
    },
    /// A campaign or runner configuration is inconsistent and was rejected
    /// eagerly at construction time, before any probe was sent. Distinct
    /// from [`Error::InvalidParameter`] (a single value outside its
    /// domain): `Config` marks a whole configuration object a caller
    /// assembled, so call sites can report "fix your config" instead of
    /// "fix this argument".
    Config {
        /// The offending configuration field (e.g. "retries").
        name: &'static str,
        /// Human-readable description of the inconsistency.
        message: String,
    },
    /// An incremental recomputation (routes, similarity, dendrogram)
    /// disagreed with the batch computation it is required to reproduce
    /// bit-for-bit. Recorded by the runtime `DivergenceGuard` when a
    /// sampled cross-check fails; the guard falls back to the batch result
    /// and quarantines the incremental state, so this error is surfaced as
    /// telemetry rather than aborting the campaign.
    IncrementalDivergence {
        /// Which incremental structure diverged (e.g. "routes").
        what: &'static str,
        /// Human-readable description of the first observed mismatch.
        detail: String,
    },
    /// Persistent state (e.g. a checkpoint journal) failed validation in a
    /// way that cannot be recovered by dropping a torn tail — a bad magic
    /// number, an unsupported version, or an in-sequence frame that
    /// contradicts the frames before it.
    Corrupted {
        /// What was being loaded (e.g. "journal header").
        what: &'static str,
        /// Byte offset of the corruption within the file.
        offset: usize,
        /// Human-readable description of the corruption.
        message: String,
    },
    /// A wire-format payload failed to encode or decode.
    Wire(fenrir_wire::WireError),
    /// An internal execution failure (e.g. a worker thread panicked).
    /// Surfaced as an error instead of aborting the process so campaign
    /// runners can quarantine the failing analysis and continue.
    Internal {
        /// Which subsystem failed (e.g. "similarity worker").
        what: &'static str,
        /// Human-readable description of the failure.
        message: String,
    },
    /// A storage-tier operation (put/get/list/delete/rename over named
    /// segments) failed. `retryable` carries the backend's own verdict:
    /// `true` for transient conditions a caller should retry with
    /// backoff (an S3-style `SlowDown` throttle, a network blip, an
    /// object not yet visible after its put), `false` for permanent
    /// ones (a key that cannot exist, an invalid argument). Retry loops
    /// branch on the flag; everything else just prints it.
    Storage {
        /// The storage operation that failed ("put", "get", "list",
        /// "delete", "rename").
        op: &'static str,
        /// The object key (or key prefix) involved.
        key: String,
        /// Whether retrying the same operation can succeed.
        retryable: bool,
        /// Human-readable description of the failure.
        message: String,
    },
    /// A retrying caller (e.g. a resilient serving client) exhausted its
    /// attempt budget: every try against every candidate backend failed.
    /// Carries the last underlying failure so operators can see *why*
    /// the final attempt died, not just that retries ran out.
    Exhausted {
        /// Which operation ran out of attempts (e.g. "serve request").
        what: &'static str,
        /// Attempts made before giving up.
        attempts: u32,
        /// Human-readable description of the last failure.
        message: String,
    },
    /// A writer holding a stale fencing epoch tried to mutate shared
    /// state that a newer epoch now owns. This is the *refusal* arm of
    /// lease-based leadership: a deposed leader's seal, manifest commit
    /// or write-ahead ack is rejected outright — never interleaved with
    /// the new leader's writes — and the only recovery is to step down
    /// and re-acquire leadership. Deliberately not retryable.
    Fenced {
        /// What was refused (e.g. "manifest commit", "wal append").
        what: &'static str,
        /// The epoch the deposed writer presented.
        held: u64,
        /// The newer epoch that owns the state now.
        current: u64,
    },
}

impl From<fenrir_wire::WireError> for Error {
    fn from(e: fenrir_wire::WireError) -> Self {
        Error::Wire(e)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "shape mismatch for {what}: expected {expected} elements, got {actual}"
            ),
            Error::EmptyInput(what) => write!(f, "empty input: {what}"),
            Error::NoSuchTime(t) => write!(f, "no vector recorded at timestamp {t}"),
            Error::DuplicateTimestamp(t) => {
                write!(f, "duplicate observation at timestamp {t}")
            }
            Error::InvalidParameter { name, message } => {
                write!(f, "invalid parameter {name}: {message}")
            }
            Error::ZeroWeight => write!(f, "weights sum to zero; similarity undefined"),
            Error::CoverageTooLow {
                observation,
                coverage,
                floor,
            } => write!(
                f,
                "coverage {coverage:.3} at observation {observation} is below the floor {floor:.3}"
            ),
            Error::CampaignAborted { campaign, reason } => {
                write!(f, "campaign {campaign} aborted: {reason}")
            }
            Error::Config { name, message } => {
                write!(f, "invalid configuration: {name}: {message}")
            }
            Error::IncrementalDivergence { what, detail } => {
                write!(f, "incremental {what} diverged from batch: {detail}")
            }
            Error::Corrupted {
                what,
                offset,
                message,
            } => write!(f, "corrupted {what} at byte {offset}: {message}"),
            Error::Wire(e) => write!(f, "wire format error: {e}"),
            Error::Internal { what, message } => {
                write!(f, "internal failure in {what}: {message}")
            }
            Error::Storage {
                op,
                key,
                retryable,
                message,
            } => write!(
                f,
                "storage {op} of {key:?} failed ({}): {message}",
                if *retryable { "retryable" } else { "permanent" }
            ),
            Error::Exhausted {
                what,
                attempts,
                message,
            } => write!(
                f,
                "{what} failed after {attempts} attempts; last error: {message}"
            ),
            Error::Fenced {
                what,
                held,
                current,
            } => write!(
                f,
                "{what} fenced: epoch {held} was deposed by epoch {current}"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Wire(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = Error::ShapeMismatch {
            what: "weights",
            expected: 4,
            actual: 3,
        };
        assert_eq!(
            e.to_string(),
            "shape mismatch for weights: expected 4 elements, got 3"
        );
    }

    #[test]
    fn display_empty_input() {
        assert_eq!(
            Error::EmptyInput("series").to_string(),
            "empty input: series"
        );
    }

    #[test]
    fn display_no_such_time() {
        assert_eq!(
            Error::NoSuchTime(42).to_string(),
            "no vector recorded at timestamp 42"
        );
    }

    #[test]
    fn display_invalid_parameter() {
        let e = Error::InvalidParameter {
            name: "threshold",
            message: "must lie in [0, 1]".into(),
        };
        assert_eq!(
            e.to_string(),
            "invalid parameter threshold: must lie in [0, 1]"
        );
    }

    #[test]
    fn display_zero_weight() {
        assert_eq!(
            Error::ZeroWeight.to_string(),
            "weights sum to zero; similarity undefined"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::ZeroWeight);
    }

    #[test]
    fn display_coverage_too_low() {
        let e = Error::CoverageTooLow {
            observation: 7,
            coverage: 0.125,
            floor: 0.25,
        };
        assert_eq!(
            e.to_string(),
            "coverage 0.125 at observation 7 is below the floor 0.250"
        );
    }

    #[test]
    fn display_campaign_aborted() {
        let e = Error::CampaignAborted {
            campaign: "verfploeter",
            reason: "probe budget exhausted on every sweep".into(),
        };
        assert_eq!(
            e.to_string(),
            "campaign verfploeter aborted: probe budget exhausted on every sweep"
        );
    }

    #[test]
    fn display_duplicate_timestamp() {
        assert_eq!(
            Error::DuplicateTimestamp(86_400).to_string(),
            "duplicate observation at timestamp 86400"
        );
    }

    #[test]
    fn display_internal() {
        let e = Error::Internal {
            what: "similarity worker",
            message: "worker thread panicked".into(),
        };
        assert_eq!(
            e.to_string(),
            "internal failure in similarity worker: worker thread panicked"
        );
    }

    #[test]
    fn display_config() {
        let e = Error::Config {
            name: "retries",
            message: "must leave room for at least one attempt".into(),
        };
        assert_eq!(
            e.to_string(),
            "invalid configuration: retries: must leave room for at least one attempt"
        );
    }

    #[test]
    fn display_incremental_divergence() {
        let e = Error::IncrementalDivergence {
            what: "routes",
            detail: "AS 17 routed to site 2, batch says site 0".into(),
        };
        assert_eq!(
            e.to_string(),
            "incremental routes diverged from batch: AS 17 routed to site 2, batch says site 0"
        );
    }

    #[test]
    fn display_corrupted() {
        let e = Error::Corrupted {
            what: "journal header",
            offset: 4,
            message: "bad magic".into(),
        };
        assert_eq!(
            e.to_string(),
            "corrupted journal header at byte 4: bad magic"
        );
    }

    #[test]
    fn display_storage() {
        let e = Error::Storage {
            op: "put",
            key: "segments/seg-00000007".into(),
            retryable: true,
            message: "SlowDown: request rate exceeded".into(),
        };
        assert_eq!(
            e.to_string(),
            "storage put of \"segments/seg-00000007\" failed (retryable): \
             SlowDown: request rate exceeded"
        );
        let p = Error::Storage {
            op: "rename",
            key: "manifest".into(),
            retryable: false,
            message: "source object does not exist".into(),
        };
        assert!(p.to_string().contains("(permanent)"));
    }

    #[test]
    fn display_fenced() {
        let e = Error::Fenced {
            what: "manifest commit",
            held: 3,
            current: 5,
        };
        assert_eq!(
            e.to_string(),
            "manifest commit fenced: epoch 3 was deposed by epoch 5"
        );
    }

    #[test]
    fn wire_errors_convert_and_chain() {
        let wire = fenrir_wire::WireError::Truncated {
            what: "icmp header",
            needed: 8,
        };
        let e: Error = wire.clone().into();
        assert_eq!(e, Error::Wire(wire));
        // The source chain exposes the underlying wire error.
        assert!(std::error::Error::source(&e).is_some());
    }
}
