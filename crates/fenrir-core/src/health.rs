//! Per-observation campaign health records.
//!
//! Every measurement sweep — whether it ran cleanly or through injected
//! faults — produces one [`CampaignHealth`] record describing how much of
//! the target population actually answered and how hard the runner had to
//! work to get those answers (retries, quarantines, decode failures).
//!
//! The record lives in `fenrir-core` rather than `fenrir-measure` because
//! the *analysis* side consumes it: change detection uses the coverage
//! series to refuse to alarm on observations where the measurement itself
//! was broken (see `detect::ChangeDetector::detect_gated`). Keeping data
//! quality alongside the data is the paper's own lesson — recurring
//! "routing changes" in longitudinal studies are often recurring
//! measurement failures.

use crate::time::Timestamp;
use serde::{Deserialize, Serialize};

/// Health of a single observation (one sweep over all targets).
///
/// Counters are cumulative over the sweep, including retries: `attempts`
/// can exceed `targets`, and `responses <= targets` always holds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignHealth {
    /// Observation timestamp (post clock-skew normalisation, if any).
    pub time: Timestamp,
    /// Total probe targets in the sweep (blocks, VPs, destinations).
    pub targets: usize,
    /// Targets that yielded a usable classification this sweep.
    pub responses: usize,
    /// Probe attempts made, including retries.
    pub attempts: usize,
    /// Retry attempts (attempts beyond the first per target).
    pub retries: usize,
    /// Targets skipped because they were quarantined as persistently
    /// failing in earlier sweeps.
    pub quarantined: usize,
    /// Targets absent this sweep due to an injected churn window or
    /// blackout.
    pub churned_out: usize,
    /// Attempts lost in-network by the injected loss process.
    pub lost: usize,
    /// Responses that arrived too late to be used and were retried.
    pub late: usize,
    /// Duplicate responses observed (counted, then discarded).
    pub duplicates: usize,
    /// Replies that failed wire-format decoding (or decoded to a
    /// mismatched probe) and were classified Unknown.
    pub decode_failures: usize,
    /// Incremental-vs-batch divergences detected by the runtime
    /// `DivergenceGuard` during this sweep. Each one was already repaired
    /// (the batch result replaced the diverged incremental state, which is
    /// now quarantined), so a non-zero count marks a sweep whose result is
    /// correct but whose incremental machinery misbehaved.
    pub divergences: usize,
    /// Cells in the recorded row that carry adversary-injected values —
    /// byzantine lies, sybil mirrors, and spoofed replies for absent VPs.
    /// Counted by the runner when an adversary model is installed; spoofed
    /// cells never count toward `responses`, so coverage stays honest.
    pub spoofed: usize,
    /// Vantage points excluded from this observation by the analysis-side
    /// trust model (quarantined or step-disagreeing). Zero until a trust
    /// pass annotates the record.
    pub distrusted: usize,
    /// The sweep ran out of probe budget before covering every target.
    pub budget_exhausted: bool,
    /// The sweep hit its simulated-time deadline before covering every
    /// target.
    pub deadline_exceeded: bool,
}

impl CampaignHealth {
    /// A fresh all-zero record for a sweep over `targets` targets.
    pub fn new(time: Timestamp, targets: usize) -> Self {
        CampaignHealth {
            time,
            targets,
            responses: 0,
            attempts: 0,
            retries: 0,
            quarantined: 0,
            churned_out: 0,
            lost: 0,
            late: 0,
            duplicates: 0,
            decode_failures: 0,
            divergences: 0,
            spoofed: 0,
            distrusted: 0,
            budget_exhausted: false,
            deadline_exceeded: false,
        }
    }

    /// Fraction of targets that produced a usable classification.
    ///
    /// An empty sweep (zero targets) has coverage 0: no data is the same
    /// as all-dark data for gating purposes.
    pub fn coverage(&self) -> f64 {
        if self.targets == 0 {
            0.0
        } else {
            self.responses as f64 / self.targets as f64
        }
    }

    /// True when coverage is below `floor` — the sweep should not be
    /// trusted to witness a routing change.
    pub fn is_degraded(&self, floor: f64) -> bool {
        self.coverage() < floor
    }
}

/// Mean coverage over a health series (0 for an empty series).
pub fn mean_coverage(health: &[CampaignHealth]) -> f64 {
    if health.is_empty() {
        return 0.0;
    }
    health.iter().map(CampaignHealth::coverage).sum::<f64>() / health.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(responses: usize, targets: usize) -> CampaignHealth {
        let mut h = CampaignHealth::new(Timestamp::from_days(0), targets);
        h.responses = responses;
        h
    }

    #[test]
    fn coverage_is_response_fraction() {
        assert_eq!(record(3, 4).coverage(), 0.75);
        assert_eq!(record(0, 4).coverage(), 0.0);
        assert_eq!(record(4, 4).coverage(), 1.0);
    }

    #[test]
    fn empty_sweep_has_zero_coverage() {
        assert_eq!(record(0, 0).coverage(), 0.0);
    }

    #[test]
    fn degradation_uses_strict_floor() {
        let h = record(1, 4);
        assert!(h.is_degraded(0.5));
        assert!(!h.is_degraded(0.25)); // exactly at the floor is acceptable
    }

    #[test]
    fn mean_coverage_averages() {
        let series = [record(4, 4), record(0, 4), record(2, 4)];
        assert!((mean_coverage(&series) - 0.5).abs() < 1e-12);
        assert_eq!(mean_coverage(&[]), 0.0);
    }
}
