//! Property tests for the wire formats: encode→decode is the identity for
//! arbitrary well-formed messages, and the decoders never panic on
//! arbitrary bytes (they are fed simulated-network data, but they must be
//! robust enough for the real Internet).

// The offline `proptest` stand-in expands `proptest! { .. }` to nothing,
// which makes the strategies and their imports look dead to the compiler
// even though the real proptest harness uses them all.
#![allow(unused_imports, dead_code)]

use fenrir_wire::checksum::internet_checksum;
use fenrir_wire::dns::{
    ClientSubnet, EdnsOption, Header, Message, Name, Opcode, QClass, QType, RData, Rcode, Record,
};
use fenrir_wire::icmp::IcmpPacket;
use proptest::prelude::*;

/// Strategy: a legal DNS label (1..=20 lowercase chars to keep names
/// within limits).
fn label() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9][a-z0-9-]{0,19}").expect("valid regex")
}

/// Strategy: a legal domain name of 1..=4 labels.
fn name() -> impl Strategy<Value = Name> {
    prop::collection::vec(label(), 1..=4)
        .prop_map(|ls| Name::parse(&ls.join(".")).expect("legal name"))
}

fn qtype() -> impl Strategy<Value = QType> {
    prop_oneof![
        Just(QType::A),
        Just(QType::Ns),
        Just(QType::Cname),
        Just(QType::Txt),
        Just(QType::Aaaa),
        (256u16..9999).prop_map(QType::Unknown),
    ]
}

/// Strategy: rdata consistent with a record type.
fn record() -> impl Strategy<Value = Record> {
    (name(), qtype(), 0u32..86_400).prop_flat_map(|(n, t, ttl)| {
        let rdata: BoxedStrategy<RData> = match t {
            QType::A => any::<[u8; 4]>().prop_map(RData::A).boxed(),
            QType::Aaaa => any::<[u8; 16]>().prop_map(RData::Aaaa).boxed(),
            QType::Txt => prop::collection::vec(prop::collection::vec(any::<u8>(), 0..50), 1..3)
                .prop_map(RData::Txt)
                .boxed(),
            QType::Ns => name().prop_map(RData::Ns).boxed(),
            QType::Cname => name().prop_map(RData::Cname).boxed(),
            _ => prop::collection::vec(any::<u8>(), 0..40)
                .prop_map(RData::Raw)
                .boxed(),
        };
        rdata.prop_map(move |rd| Record {
            name: n.clone(),
            rtype: t,
            class: 1,
            ttl,
            rdata: rd,
        })
    })
}

fn edns_option() -> impl Strategy<Value = EdnsOption> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..16).prop_map(EdnsOption::Nsid),
        (any::<[u8; 4]>(), 0u8..=32)
            .prop_map(|(a, p)| { EdnsOption::ClientSubnet(ClientSubnet::ipv4(a, p)) }),
        (20u16..100, prop::collection::vec(any::<u8>(), 0..16))
            .prop_map(|(code, data)| EdnsOption::Unknown { code, data }),
    ]
}

fn message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        name(),
        qtype(),
        prop::collection::vec(record(), 0..4),
        prop::collection::vec(record(), 0..2),
        prop::collection::vec(edns_option(), 0..3),
        any::<bool>(),
    )
        .prop_map(|(id, qname, qt, answers, authorities, opts, qr)| {
            let mut m = Message {
                header: Header {
                    id,
                    qr,
                    opcode: Opcode::Query,
                    aa: qr,
                    tc: false,
                    rd: true,
                    ra: qr,
                    rcode: Rcode::NoError,
                },
                questions: vec![fenrir_wire::dns::Question {
                    name: qname,
                    qtype: qt,
                    qclass: QClass::In,
                }],
                answers,
                authorities,
                additionals: vec![],
            };
            if !opts.is_empty() {
                m.additionals.push(Record::opt(4096, opts));
            }
            m
        })
}

proptest! {
    #[test]
    fn dns_message_round_trips(m in message()) {
        let bytes = m.encode().expect("well-formed message encodes");
        let back = Message::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back, m);
    }

    #[test]
    fn dns_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::decode(&bytes); // Err is fine; panic is not.
    }

    #[test]
    fn dns_decoder_never_panics_on_mutated_valid_messages(
        m in message(),
        flips in prop::collection::vec((0usize..512, any::<u8>()), 1..8)
    ) {
        let mut bytes = m.encode().expect("encodes");
        for (pos, val) in flips {
            if !bytes.is_empty() {
                let p = pos % bytes.len();
                bytes[p] = val;
            }
        }
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn name_round_trips_through_compression(
        names in prop::collection::vec(name(), 1..6)
    ) {
        let mut buf = Vec::new();
        let mut table = std::collections::HashMap::new();
        for n in &names {
            n.encode_compressed(&mut buf, &mut table);
        }
        let mut pos = 0;
        for n in &names {
            let back = Name::decode(&buf, &mut pos).expect("decodes");
            prop_assert_eq!(&back, n);
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn client_subnet_round_trips(addr in any::<[u8; 4]>(), plen in 0u8..=32) {
        let cs = ClientSubnet::ipv4(addr, plen);
        let back = ClientSubnet::decode_payload(&cs.encode_payload()).expect("decodes");
        prop_assert_eq!(back, cs);
    }

    #[test]
    fn icmp_round_trips(
        ident in any::<u16>(),
        seq in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..128)
    ) {
        let p = IcmpPacket::echo_request(ident, seq, payload);
        let back = IcmpPacket::decode(&p.encode()).expect("decodes");
        prop_assert_eq!(back, p);
    }

    #[test]
    fn icmp_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = IcmpPacket::decode(&bytes);
    }

    #[test]
    fn icmp_detects_any_single_bit_flip(
        ident in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 1..32),
        flip_byte in 0usize..16,
        flip_bit in 0u8..8
    ) {
        let p = IcmpPacket::echo_request(ident, 1, payload);
        let mut bytes = p.encode();
        let pos = flip_byte % bytes.len();
        bytes[pos] ^= 1 << flip_bit;
        // A single bit flip must be caught by the checksum (or decode to a
        // different-but-valid packet only if the flip hit ident/seq/payload
        // AND checksum simultaneously — impossible for one bit).
        prop_assert!(IcmpPacket::decode(&bytes).is_err(), "undetected corruption");
    }

    #[test]
    fn checksum_verifies_its_own_output(data in prop::collection::vec(any::<u8>(), 0..64)) {
        // Append the checksum and the whole thing verifies.
        let ck = internet_checksum(&data);
        let mut with = data.clone();
        with.extend_from_slice(&ck.to_be_bytes());
        // Checksum placed at the end of an even-length buffer verifies.
        if data.len() % 2 == 0 {
            prop_assert!(fenrir_wire::checksum::verify(&with));
        }
    }
}
