//! # fenrir-wire
//!
//! Wire formats for the active measurements Fenrir ingests:
//!
//! * **DNS** ([`dns`]) — message encoding/decoding with name compression,
//!   the `CHAOS`-class `hostname.bind` / `id.server` queries RIPE Atlas uses
//!   to identify anycast sites, the EDNS0 **NSID** option (RFC 5001), and
//!   the EDNS0 **Client Subnet** option (RFC 7871) behind the paper's
//!   Google/Wikipedia front-end mapping.
//! * **ICMPv4** ([`icmp`]) — echo request/reply for Verfploeter-style
//!   catchment sweeps and Trinocular-style latency probing, plus
//!   time-exceeded and destination-unreachable for traceroute.
//! * **IPv4** ([`ipv4`]) and **UDP** ([`udp`]) — the framing under both:
//!   options-free IPv4 headers with checksums and TTL forwarding, UDP with
//!   the pseudo-header checksum, so DNS probes travel as real datagrams.
//!
//! The crate is deliberately self-contained (no resolver, no sockets): the
//! measurement simulators in `fenrir-measure` encode real packets, shuttle
//! the bytes through the simulated network, and decode them on the other
//! side — exercising the same parsing paths a live deployment would.
//!
//! ## Example: an EDNS Client-Subnet query
//!
//! ```
//! use fenrir_wire::dns::{ClientSubnet, Message, QClass, QType};
//!
//! let mut q = Message::query(0x1234, "www.google.com", QType::A, QClass::In);
//! q.set_client_subnet(ClientSubnet::ipv4([192, 0, 2, 0], 24));
//! let bytes = q.encode().unwrap();
//! let parsed = Message::decode(&bytes).unwrap();
//! let ecs = parsed.client_subnet().unwrap();
//! assert_eq!(ecs.source_prefix_len, 24);
//! ```

pub mod checksum;
pub mod dns;
pub mod error;
pub mod icmp;
pub mod ipv4;
pub mod udp;

pub use error::{Result, WireError};
