//! IPv4 headers (RFC 791), options-free, with header checksum.
//!
//! The measurement simulators ship their probes inside real IPv4 packets:
//! traceroute decrements the TTL at every simulated hop exactly as routers
//! do, and the Verfploeter/Atlas paths carry source addresses the anycast
//! site uses to attribute replies.

use crate::checksum::internet_checksum;
use crate::error::{Result, WireError};
use serde::{Deserialize, Serialize};

/// Header length in bytes (no options).
pub const IPV4_HEADER_LEN: usize = 20;

/// IP protocol numbers Fenrir uses.
pub mod protocol {
    /// ICMP.
    pub const ICMP: u8 = 1;
    /// UDP.
    pub const UDP: u8 = 17;
}

/// An options-free IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Packet {
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol ([`protocol::ICMP`] or [`protocol::UDP`]).
    pub protocol: u8,
    /// Source address.
    pub src: [u8; 4],
    /// Destination address.
    pub dst: [u8; 4],
    /// Identification field (for diagnostics; fragmentation unsupported).
    pub ident: u16,
    /// Transport payload.
    pub payload: Vec<u8>,
}

impl Ipv4Packet {
    /// Build a packet with a default TTL of 64.
    pub fn new(protocol: u8, src: [u8; 4], dst: [u8; 4], payload: Vec<u8>) -> Self {
        Ipv4Packet {
            ttl: 64,
            protocol,
            src,
            dst,
            ident: 0,
            payload,
        }
    }

    /// Set the TTL (for traceroute probes).
    pub fn with_ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Encode with a valid header checksum.
    ///
    /// Errors if the packet would exceed the 65 535-byte total length.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let total = IPV4_HEADER_LEN + self.payload.len();
        if total > usize::from(u16::MAX) {
            return Err(WireError::FieldOverflow {
                what: "ipv4 total length",
                value: total,
                max: usize::from(u16::MAX),
            });
        }
        let mut out = Vec::with_capacity(total);
        out.push(0x45); // version 4, IHL 5
        out.push(0); // DSCP/ECN
        out.extend_from_slice(&(total as u16).to_be_bytes());
        out.extend_from_slice(&self.ident.to_be_bytes());
        out.extend_from_slice(&[0x40, 0x00]); // DF, fragment offset 0
        out.push(self.ttl);
        out.push(self.protocol);
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src);
        out.extend_from_slice(&self.dst);
        let ck = internet_checksum(&out[..IPV4_HEADER_LEN]);
        out[10..12].copy_from_slice(&ck.to_be_bytes());
        out.extend_from_slice(&self.payload);
        Ok(out)
    }

    /// Decode and verify the header checksum. Options (IHL > 5) are
    /// rejected — the simulators never emit them.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < IPV4_HEADER_LEN {
            return Err(WireError::Truncated {
                what: "ipv4 header",
                needed: IPV4_HEADER_LEN - buf.len(),
            });
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(WireError::UnknownValue {
                what: "ip version",
                value: u32::from(version),
            });
        }
        let ihl = usize::from(buf[0] & 0x0F) * 4;
        if ihl != IPV4_HEADER_LEN {
            return Err(WireError::FieldOverflow {
                what: "ipv4 ihl",
                value: ihl,
                max: IPV4_HEADER_LEN,
            });
        }
        if internet_checksum(&buf[..IPV4_HEADER_LEN]) != 0 {
            let found = u16::from_be_bytes([buf[10], buf[11]]);
            let mut zeroed = buf[..IPV4_HEADER_LEN].to_vec();
            zeroed[10] = 0;
            zeroed[11] = 0;
            return Err(WireError::BadChecksum {
                found,
                computed: internet_checksum(&zeroed),
            });
        }
        let total = usize::from(u16::from_be_bytes([buf[2], buf[3]]));
        if total < IPV4_HEADER_LEN || total > buf.len() {
            return Err(WireError::Truncated {
                what: "ipv4 payload",
                needed: total.saturating_sub(buf.len()),
            });
        }
        Ok(Ipv4Packet {
            ttl: buf[8],
            protocol: buf[9],
            src: [buf[12], buf[13], buf[14], buf[15]],
            dst: [buf[16], buf[17], buf[18], buf[19]],
            ident: u16::from_be_bytes([buf[4], buf[5]]),
            payload: buf[IPV4_HEADER_LEN..total].to_vec(),
        })
    }

    /// Forwarding step at a router: decrement TTL, recompute nothing (the
    /// caller re-encodes). Returns `false` when the TTL hits zero — time to
    /// emit an ICMP time-exceeded.
    pub fn forward(&mut self) -> bool {
        if self.ttl <= 1 {
            self.ttl = 0;
            return false;
        }
        self.ttl -= 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Packet {
        Ipv4Packet::new(protocol::UDP, [10, 0, 0, 1], [192, 0, 2, 9], vec![1, 2, 3])
    }

    #[test]
    fn round_trip() {
        let p = sample().with_ttl(9);
        let bytes = p.encode().unwrap();
        assert_eq!(bytes.len(), 23);
        let back = Ipv4Packet::decode(&bytes).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn header_checksum_detects_corruption() {
        let mut bytes = sample().encode().unwrap();
        bytes[16] ^= 0xFF; // corrupt dst
        assert!(matches!(
            Ipv4Packet::decode(&bytes),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn payload_corruption_is_not_header_checksummed() {
        // IPv4 header checksum covers only the header; transport must
        // protect the payload (UDP/ICMP checksums do).
        let mut bytes = sample().encode().unwrap();
        bytes[22] ^= 0xFF;
        assert!(Ipv4Packet::decode(&bytes).is_ok());
    }

    #[test]
    fn rejects_truncation_and_bad_version() {
        let bytes = sample().encode().unwrap();
        for cut in 0..IPV4_HEADER_LEN {
            assert!(Ipv4Packet::decode(&bytes[..cut]).is_err());
        }
        let mut v6 = bytes.clone();
        v6[0] = 0x65;
        assert!(matches!(
            Ipv4Packet::decode(&v6),
            Err(WireError::UnknownValue { .. })
        ));
    }

    #[test]
    fn rejects_options() {
        let mut bytes = sample().encode().unwrap();
        bytes[0] = 0x46; // IHL 6
                         // Fix checksum for the mutated header so IHL is the failing check.
        bytes[10] = 0;
        bytes[11] = 0;
        let ck = internet_checksum(&bytes[..IPV4_HEADER_LEN]);
        bytes[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(
            Ipv4Packet::decode(&bytes),
            Err(WireError::FieldOverflow { .. })
        ));
    }

    #[test]
    fn total_length_bounds_payload() {
        let p = sample();
        let mut bytes = p.encode().unwrap();
        // Claim 4 more bytes than present.
        let total = (bytes.len() + 4) as u16;
        bytes[2..4].copy_from_slice(&total.to_be_bytes());
        bytes[10] = 0;
        bytes[11] = 0;
        let ck = internet_checksum(&bytes[..IPV4_HEADER_LEN]);
        bytes[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(
            Ipv4Packet::decode(&bytes),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_beyond_total_length_are_ignored() {
        // Link padding after the IP datagram is legal.
        let p = sample();
        let mut bytes = p.encode().unwrap();
        bytes.extend_from_slice(&[0xAA; 6]);
        let back = Ipv4Packet::decode(&bytes).unwrap();
        assert_eq!(back.payload, vec![1, 2, 3]);
    }

    #[test]
    fn forward_decrements_to_zero() {
        let mut p = sample().with_ttl(2);
        assert!(p.forward());
        assert_eq!(p.ttl, 1);
        assert!(!p.forward());
        assert_eq!(p.ttl, 0);
        // Forwarding a dead packet stays dead.
        assert!(!p.forward());
    }

    #[test]
    fn oversize_payload_rejected() {
        let p = Ipv4Packet::new(protocol::UDP, [0; 4], [0; 4], vec![0; 70_000]);
        assert!(p.encode().is_err());
    }
}
