//! EDNS0 options (RFC 6891): NSID (RFC 5001) and Client Subnet (RFC 7871).
//!
//! Client Subnet is the workhorse of the paper's website measurements: by
//! attaching a client prefix to a query sent from a single vantage point,
//! Fenrir learns which front-end a DNS-based load balancer would hand to
//! *that* network — mapping global catchments without global observers.

use crate::error::{Result, WireError};
use serde::{Deserialize, Serialize};

/// EDNS option code for NSID (RFC 5001).
pub const OPT_NSID: u16 = 3;
/// EDNS option code for Client Subnet (RFC 7871).
pub const OPT_CLIENT_SUBNET: u16 = 8;

/// Address family codes from the IANA Address Family Numbers registry.
pub const AF_INET: u16 = 1;
/// IPv6 address family number.
pub const AF_INET6: u16 = 2;

/// An EDNS Client Subnet option (RFC 7871 §6).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClientSubnet {
    /// Address family (`AF_INET` or `AF_INET6`).
    pub family: u16,
    /// Leftmost bits of the address the client discloses.
    pub source_prefix_len: u8,
    /// In responses: how many bits the answer actually depends on
    /// (0 in queries).
    pub scope_prefix_len: u8,
    /// Address bytes, truncated to `ceil(source_prefix_len / 8)` with
    /// unused trailing bits zero (RFC 7871 requires this).
    pub address: Vec<u8>,
}

impl ClientSubnet {
    /// Build an IPv4 client-subnet option for `addr`/`prefix_len`, zeroing
    /// host bits and truncating to the minimal byte count as the RFC
    /// requires.
    pub fn ipv4(addr: [u8; 4], prefix_len: u8) -> Self {
        let prefix_len = prefix_len.min(32);
        let nbytes = usize::from(prefix_len.div_ceil(8));
        let mut address = addr[..nbytes].to_vec();
        let partial = prefix_len % 8;
        if partial != 0 {
            if let Some(last) = address.last_mut() {
                *last &= 0xFFu8 << (8 - partial);
            }
        }
        ClientSubnet {
            family: AF_INET,
            source_prefix_len: prefix_len,
            scope_prefix_len: 0,
            address,
        }
    }

    /// The /24 block id (first three octets as a u32) for an IPv4 option
    /// with at least 24 disclosed bits; `None` otherwise. Fenrir's website
    /// catchments key on /24 blocks.
    pub fn slash24(&self) -> Option<u32> {
        if self.family != AF_INET || self.source_prefix_len < 24 || self.address.len() < 3 {
            return None;
        }
        Some(
            (u32::from(self.address[0]) << 16)
                | (u32::from(self.address[1]) << 8)
                | u32::from(self.address[2]),
        )
    }

    /// Encode the option *payload* (without the option code/length header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.address.len());
        out.extend_from_slice(&self.family.to_be_bytes());
        out.push(self.source_prefix_len);
        out.push(self.scope_prefix_len);
        out.extend_from_slice(&self.address);
        out
    }

    /// Decode the option payload.
    pub fn decode_payload(buf: &[u8]) -> Result<Self> {
        if buf.len() < 4 {
            return Err(WireError::Truncated {
                what: "client subnet option",
                needed: 4 - buf.len(),
            });
        }
        let family = u16::from_be_bytes([buf[0], buf[1]]);
        let source_prefix_len = buf[2];
        let scope_prefix_len = buf[3];
        let address = buf[4..].to_vec();
        let max_bits: usize = match family {
            AF_INET => 32,
            AF_INET6 => 128,
            other => {
                return Err(WireError::UnknownValue {
                    what: "client subnet family",
                    value: u32::from(other),
                })
            }
        };
        if usize::from(source_prefix_len) > max_bits {
            return Err(WireError::FieldOverflow {
                what: "source prefix length",
                value: usize::from(source_prefix_len),
                max: max_bits,
            });
        }
        let expected = usize::from(source_prefix_len.div_ceil(8));
        if address.len() != expected {
            return Err(WireError::FieldOverflow {
                what: "client subnet address length",
                value: address.len(),
                max: expected,
            });
        }
        Ok(ClientSubnet {
            family,
            source_prefix_len,
            scope_prefix_len,
            address,
        })
    }
}

/// A decoded EDNS option.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdnsOption {
    /// NSID: empty in queries (a request), the server identifier in
    /// responses.
    Nsid(Vec<u8>),
    /// Client Subnet.
    ClientSubnet(ClientSubnet),
    /// Any other option, preserved verbatim.
    Unknown {
        /// Option code.
        code: u16,
        /// Raw option payload.
        data: Vec<u8>,
    },
}

impl EdnsOption {
    /// The option's wire code.
    pub fn code(&self) -> u16 {
        match self {
            EdnsOption::Nsid(_) => OPT_NSID,
            EdnsOption::ClientSubnet(_) => OPT_CLIENT_SUBNET,
            EdnsOption::Unknown { code, .. } => *code,
        }
    }

    /// Append `code | length | payload` to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let payload = match self {
            EdnsOption::Nsid(d) => d.clone(),
            EdnsOption::ClientSubnet(cs) => cs.encode_payload(),
            EdnsOption::Unknown { data, .. } => data.clone(),
        };
        out.extend_from_slice(&self.code().to_be_bytes());
        out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
        out.extend_from_slice(&payload);
    }

    /// Decode a sequence of options from an OPT RDATA buffer.
    pub fn decode_all(mut buf: &[u8]) -> Result<Vec<EdnsOption>> {
        let mut out = Vec::new();
        while !buf.is_empty() {
            if buf.len() < 4 {
                return Err(WireError::Truncated {
                    what: "edns option header",
                    needed: 4 - buf.len(),
                });
            }
            let code = u16::from_be_bytes([buf[0], buf[1]]);
            let len = usize::from(u16::from_be_bytes([buf[2], buf[3]]));
            if buf.len() < 4 + len {
                return Err(WireError::Truncated {
                    what: "edns option payload",
                    needed: 4 + len - buf.len(),
                });
            }
            let payload = &buf[4..4 + len];
            out.push(match code {
                OPT_NSID => EdnsOption::Nsid(payload.to_vec()),
                OPT_CLIENT_SUBNET => {
                    EdnsOption::ClientSubnet(ClientSubnet::decode_payload(payload)?)
                }
                other => EdnsOption::Unknown {
                    code: other,
                    data: payload.to_vec(),
                },
            });
            buf = &buf[4 + len..];
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_truncates_and_masks() {
        let cs = ClientSubnet::ipv4([192, 0, 2, 77], 24);
        assert_eq!(cs.address, vec![192, 0, 2]);
        assert_eq!(cs.source_prefix_len, 24);
        let cs20 = ClientSubnet::ipv4([10, 20, 0xFF, 1], 20);
        // 20 bits = 3 bytes with low 4 bits of third byte masked.
        assert_eq!(cs20.address, vec![10, 20, 0xF0]);
        let cs0 = ClientSubnet::ipv4([1, 2, 3, 4], 0);
        assert!(cs0.address.is_empty());
    }

    #[test]
    fn ipv4_clamps_prefix() {
        let cs = ClientSubnet::ipv4([1, 2, 3, 4], 40);
        assert_eq!(cs.source_prefix_len, 32);
        assert_eq!(cs.address, vec![1, 2, 3, 4]);
    }

    #[test]
    fn slash24_extraction() {
        let cs = ClientSubnet::ipv4([192, 0, 2, 0], 24);
        assert_eq!(cs.slash24(), Some((192 << 16) | 2));
        assert_eq!(ClientSubnet::ipv4([1, 2, 3, 0], 16).slash24(), None);
    }

    #[test]
    fn payload_round_trip() {
        let cs = ClientSubnet::ipv4([198, 51, 100, 0], 24);
        let enc = cs.encode_payload();
        assert_eq!(enc.len(), 4 + 3);
        let back = ClientSubnet::decode_payload(&enc).unwrap();
        assert_eq!(back, cs);
    }

    #[test]
    fn decode_rejects_bad_family() {
        let buf = [0x00, 0x07, 24, 0, 1, 2, 3];
        assert!(matches!(
            ClientSubnet::decode_payload(&buf),
            Err(WireError::UnknownValue { .. })
        ));
    }

    #[test]
    fn decode_rejects_bad_prefix_len() {
        let buf = [0x00, 0x01, 40, 0, 1, 2, 3, 4, 5];
        assert!(ClientSubnet::decode_payload(&buf).is_err());
    }

    #[test]
    fn decode_rejects_wrong_address_len() {
        // /24 claims 3 bytes but carries 4.
        let buf = [0x00, 0x01, 24, 0, 1, 2, 3, 4];
        assert!(ClientSubnet::decode_payload(&buf).is_err());
        // And too few.
        let buf2 = [0x00, 0x01, 24, 0, 1, 2];
        assert!(ClientSubnet::decode_payload(&buf2).is_err());
    }

    #[test]
    fn decode_rejects_truncated_header() {
        assert!(ClientSubnet::decode_payload(&[0x00]).is_err());
    }

    #[test]
    fn options_encode_decode_round_trip() {
        let opts = vec![
            EdnsOption::Nsid(b"b4-lax".to_vec()),
            EdnsOption::ClientSubnet(ClientSubnet::ipv4([203, 0, 113, 0], 24)),
            EdnsOption::Unknown {
                code: 42,
                data: vec![1, 2, 3],
            },
        ];
        let mut buf = Vec::new();
        for o in &opts {
            o.encode(&mut buf);
        }
        let back = EdnsOption::decode_all(&buf).unwrap();
        assert_eq!(back, opts);
    }

    #[test]
    fn decode_all_rejects_truncation() {
        let mut buf = Vec::new();
        EdnsOption::Nsid(b"abc".to_vec()).encode(&mut buf);
        assert!(EdnsOption::decode_all(&buf[..buf.len() - 1]).is_err());
        assert!(EdnsOption::decode_all(&buf[..3]).is_err());
        assert!(EdnsOption::decode_all(&[]).unwrap().is_empty());
    }

    #[test]
    fn option_codes() {
        assert_eq!(EdnsOption::Nsid(vec![]).code(), 3);
        assert_eq!(
            EdnsOption::ClientSubnet(ClientSubnet::ipv4([0, 0, 0, 0], 0)).code(),
            8
        );
        assert_eq!(
            EdnsOption::Unknown {
                code: 99,
                data: vec![]
            }
            .code(),
            99
        );
    }
}
