//! DNS domain names: dotted-string parsing, wire encoding with RFC 1035
//! message compression, and decompressing decoding hardened against
//! malicious pointers.

use crate::error::{Result, WireError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Maximum octets of a single label.
pub const MAX_LABEL: usize = 63;
/// Maximum octets of an encoded name (RFC 1035 §2.3.4).
pub const MAX_NAME: usize = 255;

/// A domain name as a sequence of labels (without the root's empty label).
///
/// Comparison and hashing are case-insensitive per RFC 1035 §2.3.3 (ASCII
/// only), but the original spelling is preserved for display.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Name {
    labels: Vec<Vec<u8>>,
}

impl Name {
    /// The root name (zero labels).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Parse a dotted name like `"hostname.bind"`. A trailing dot is
    /// accepted and ignored; the empty string or `"."` is the root.
    ///
    /// Errors on empty labels (`"a..b"`), labels over 63 octets, or names
    /// that would exceed 255 octets encoded.
    pub fn parse(s: &str) -> Result<Self> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        let mut labels = Vec::new();
        for part in s.split('.') {
            if part.is_empty() {
                return Err(WireError::InvalidInput("empty label"));
            }
            if part.len() > MAX_LABEL {
                return Err(WireError::FieldOverflow {
                    what: "label",
                    value: part.len(),
                    max: MAX_LABEL,
                });
            }
            labels.push(part.as_bytes().to_vec());
        }
        let name = Name { labels };
        if name.encoded_len() > MAX_NAME {
            return Err(WireError::FieldOverflow {
                what: "name",
                value: name.encoded_len(),
                max: MAX_NAME,
            });
        }
        Ok(name)
    }

    /// The labels of this name.
    pub fn labels(&self) -> &[Vec<u8>] {
        &self.labels
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Length of the uncompressed wire encoding (labels + length octets +
    /// terminating zero).
    pub fn encoded_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// Append the uncompressed encoding to `out`.
    pub fn encode_uncompressed(&self, out: &mut Vec<u8>) {
        for l in &self.labels {
            out.push(l.len() as u8);
            out.extend_from_slice(l);
        }
        out.push(0);
    }

    /// Append the encoding to `out`, compressing against `table` — a map
    /// from (lowercased) name suffixes to the offset where they were first
    /// written. New suffixes at pointer-representable offsets are added to
    /// the table.
    pub fn encode_compressed(&self, out: &mut Vec<u8>, table: &mut HashMap<Vec<u8>, u16>) {
        for i in 0..self.labels.len() {
            let suffix = self.suffix_key(i);
            if let Some(&off) = table.get(&suffix) {
                out.extend_from_slice(&(0xC000u16 | off).to_be_bytes());
                return;
            }
            let here = out.len();
            if here <= 0x3FFF {
                table.insert(suffix, here as u16);
            }
            out.push(self.labels[i].len() as u8);
            out.extend_from_slice(&self.labels[i]);
        }
        out.push(0);
    }

    /// Lowercased wire form of the suffix starting at label `i` (the
    /// compression-table key).
    fn suffix_key(&self, i: usize) -> Vec<u8> {
        let mut key = Vec::new();
        for l in &self.labels[i..] {
            key.push(l.len() as u8);
            key.extend(l.iter().map(|b| b.to_ascii_lowercase()));
        }
        key
    }

    /// Decode a (possibly compressed) name from `buf` starting at `*pos`;
    /// advances `*pos` past the name's storage (not past pointer targets).
    ///
    /// Hardened: pointers must point strictly backwards, at most
    /// `MAX_NAME` total octets of labels are accepted, and at most 126
    /// pointer hops are followed — so hostile inputs cannot loop.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Self> {
        let mut labels = Vec::new();
        let mut cursor = *pos;
        let mut jumped = false;
        let mut hops = 0usize;
        let mut total = 0usize;
        loop {
            let len = *buf.get(cursor).ok_or(WireError::Truncated {
                what: "name",
                needed: 1,
            })?;
            match len {
                0 => {
                    if !jumped {
                        *pos = cursor + 1;
                    }
                    return Ok(Name { labels });
                }
                l if l & 0xC0 == 0xC0 => {
                    let second = *buf.get(cursor + 1).ok_or(WireError::Truncated {
                        what: "name pointer",
                        needed: 1,
                    })?;
                    let target = (usize::from(l & 0x3F) << 8) | usize::from(second);
                    if target >= cursor {
                        return Err(WireError::BadPointer { at: cursor });
                    }
                    hops += 1;
                    if hops > 126 {
                        return Err(WireError::BadPointer { at: cursor });
                    }
                    if !jumped {
                        *pos = cursor + 2;
                        jumped = true;
                    }
                    cursor = target;
                }
                l if l & 0xC0 != 0 => {
                    // 0x40/0x80 prefixes are reserved (EDNS0 extended labels
                    // never shipped).
                    return Err(WireError::UnknownValue {
                        what: "label type",
                        value: u32::from(l),
                    });
                }
                l => {
                    let l = usize::from(l);
                    let start = cursor + 1;
                    let end = start + l;
                    if end > buf.len() {
                        return Err(WireError::Truncated {
                            what: "label",
                            needed: end - buf.len(),
                        });
                    }
                    total += l + 1;
                    if total > MAX_NAME {
                        return Err(WireError::FieldOverflow {
                            what: "name",
                            value: total,
                            max: MAX_NAME,
                        });
                    }
                    labels.push(buf[start..end].to_vec());
                    cursor = end;
                }
            }
        }
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        self.labels.len() == other.labels.len()
            && self
                .labels
                .iter()
                .zip(&other.labels)
                .all(|(a, b)| a.eq_ignore_ascii_case(b))
    }
}

impl Eq for Name {}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for l in &self.labels {
            for b in l {
                state.write_u8(b.to_ascii_lowercase());
            }
            state.write_u8(0xFF); // label separator
        }
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return f.write_str(".");
        }
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            f.write_str(&String::from_utf8_lossy(l))?;
        }
        Ok(())
    }
}

impl std::str::FromStr for Name {
    type Err = WireError;
    fn from_str(s: &str) -> Result<Self> {
        Name::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let n = Name::parse("hostname.bind").unwrap();
        assert_eq!(n.label_count(), 2);
        assert_eq!(n.to_string(), "hostname.bind");
        assert_eq!(
            Name::parse("example.org.").unwrap().to_string(),
            "example.org"
        );
        assert_eq!(Name::root().to_string(), ".");
        assert_eq!(Name::parse("").unwrap(), Name::root());
        assert_eq!(Name::parse(".").unwrap(), Name::root());
    }

    #[test]
    fn parse_rejects_bad_labels() {
        assert!(Name::parse("a..b").is_err());
        let long = "x".repeat(64);
        assert!(Name::parse(&long).is_err());
        assert!(Name::parse(&"x".repeat(63)).is_ok());
    }

    #[test]
    fn parse_rejects_overlong_names() {
        // 64 labels of 3 octets = 64*4+1 = 257 > 255.
        let name = vec!["abc"; 64].join(".");
        assert!(Name::parse(&name).is_err());
    }

    #[test]
    fn equality_is_case_insensitive() {
        let a = Name::parse("Example.ORG").unwrap();
        let b = Name::parse("example.org").unwrap();
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |n: &Name| {
            let mut s = DefaultHasher::new();
            n.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn uncompressed_round_trip() {
        let n = Name::parse("www.example.org").unwrap();
        let mut buf = Vec::new();
        n.encode_uncompressed(&mut buf);
        assert_eq!(buf.len(), n.encoded_len());
        let mut pos = 0;
        let back = Name::decode(&buf, &mut pos).unwrap();
        assert_eq!(back, n);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn compression_emits_pointer_for_shared_suffix() {
        let mut buf = Vec::new();
        let mut table = HashMap::new();
        Name::parse("www.example.org")
            .unwrap()
            .encode_compressed(&mut buf, &mut table);
        let first_len = buf.len();
        Name::parse("mail.example.org")
            .unwrap()
            .encode_compressed(&mut buf, &mut table);
        // Second name: "mail" label (5 bytes) + 2-byte pointer.
        assert_eq!(buf.len(), first_len + 5 + 2);
        // Decode both back.
        let mut pos = 0;
        assert_eq!(
            Name::decode(&buf, &mut pos).unwrap().to_string(),
            "www.example.org"
        );
        assert_eq!(
            Name::decode(&buf, &mut pos).unwrap().to_string(),
            "mail.example.org"
        );
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn compression_of_identical_name_is_single_pointer() {
        let mut buf = Vec::new();
        let mut table = HashMap::new();
        let n = Name::parse("b.root-servers.net").unwrap();
        n.encode_compressed(&mut buf, &mut table);
        let first_len = buf.len();
        n.encode_compressed(&mut buf, &mut table);
        assert_eq!(buf.len(), first_len + 2);
        let mut pos = first_len;
        assert_eq!(Name::decode(&buf, &mut pos).unwrap(), n);
    }

    #[test]
    fn compression_is_case_insensitive() {
        let mut buf = Vec::new();
        let mut table = HashMap::new();
        Name::parse("example.ORG")
            .unwrap()
            .encode_compressed(&mut buf, &mut table);
        let first_len = buf.len();
        Name::parse("EXAMPLE.org")
            .unwrap()
            .encode_compressed(&mut buf, &mut table);
        assert_eq!(buf.len(), first_len + 2);
    }

    #[test]
    fn decode_rejects_forward_pointer() {
        // Pointer at offset 0 pointing to offset 4 (>= 0's cursor is fine to
        // test with a self-pointer: target must be < cursor).
        let buf = [0xC0, 0x00];
        let mut pos = 0;
        assert!(matches!(
            Name::decode(&buf, &mut pos),
            Err(WireError::BadPointer { .. })
        ));
    }

    #[test]
    fn decode_rejects_pointer_loops() {
        // Name at 2 points to 0; name at 0 is a label then pointer to 2:
        // loop 0 -> 2 -> 0 ... Actually build mutual pointers.
        // offset 0: pointer to 2 is forward -> invalid already. Build:
        // offset 0: label "a", then pointer to 0 (backwards!) = loop.
        let buf = [0x01, b'a', 0xC0, 0x00];
        let mut pos = 0;
        let err = Name::decode(&buf, &mut pos).unwrap_err();
        // Either detected as overlong (labels accumulate) or too many hops.
        assert!(matches!(
            err,
            WireError::FieldOverflow { .. } | WireError::BadPointer { .. }
        ));
    }

    #[test]
    fn decode_rejects_truncation() {
        let buf = [0x05, b'a', b'b'];
        let mut pos = 0;
        assert!(matches!(
            Name::decode(&buf, &mut pos),
            Err(WireError::Truncated { .. })
        ));
        let empty: [u8; 0] = [];
        let mut pos = 0;
        assert!(Name::decode(&empty, &mut pos).is_err());
    }

    #[test]
    fn decode_rejects_reserved_label_types() {
        let buf = [0x40, 0x00];
        let mut pos = 0;
        assert!(matches!(
            Name::decode(&buf, &mut pos),
            Err(WireError::UnknownValue { .. })
        ));
    }

    #[test]
    fn from_str_works() {
        let n: Name = "a.b.c".parse().unwrap();
        assert_eq!(n.label_count(), 3);
    }
}
