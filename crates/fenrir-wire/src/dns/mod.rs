//! DNS message wire format (RFC 1035) with the extensions Fenrir's
//! measurements rely on:
//!
//! * `CHAOS`-class TXT queries (`hostname.bind`, `id.server`) — how RIPE
//!   Atlas identifies which anycast site answered (§2.3.1 of the paper),
//! * EDNS0 (RFC 6891) with the **NSID** option (RFC 5001) — the other
//!   standard server-identifier mechanism,
//! * EDNS0 **Client Subnet** (RFC 7871) — how the paper maps Google and
//!   Wikipedia front-end catchments from a single vantage point (§2.3.3).

mod edns;
mod message;
mod name;

pub use edns::{ClientSubnet, EdnsOption, AF_INET, AF_INET6, OPT_CLIENT_SUBNET, OPT_NSID};
pub use message::{Header, Message, Opcode, Question, RData, Rcode, Record};
pub use name::Name;

use serde::{Deserialize, Serialize};

/// Query/record type. Only the types Fenrir's measurements use get named
/// variants; everything else round-trips through `Unknown`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QType {
    /// IPv4 address record.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name (alias).
    Cname,
    /// Pointer (reverse lookup).
    Ptr,
    /// Text record — carries CHAOS server identifiers.
    Txt,
    /// IPv6 address record.
    Aaaa,
    /// EDNS0 pseudo-record (RFC 6891).
    Opt,
    /// Any other type, by code.
    Unknown(u16),
}

impl QType {
    /// Wire code.
    pub fn code(self) -> u16 {
        match self {
            QType::A => 1,
            QType::Ns => 2,
            QType::Cname => 5,
            QType::Ptr => 12,
            QType::Txt => 16,
            QType::Aaaa => 28,
            QType::Opt => 41,
            QType::Unknown(c) => c,
        }
    }

    /// Decode from a wire code (total: unknown codes are preserved).
    pub fn from_code(c: u16) -> Self {
        match c {
            1 => QType::A,
            2 => QType::Ns,
            5 => QType::Cname,
            12 => QType::Ptr,
            16 => QType::Txt,
            28 => QType::Aaaa,
            41 => QType::Opt,
            other => QType::Unknown(other),
        }
    }
}

/// Query/record class. `CHAOS` matters to Fenrir: `hostname.bind TXT CH`
/// identifies the answering anycast instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QClass {
    /// The Internet.
    In,
    /// CHAOSnet — repurposed for server identification.
    Chaos,
    /// Any class (queries only).
    Any,
    /// Any other class, by code.
    Unknown(u16),
}

impl QClass {
    /// Wire code.
    pub fn code(self) -> u16 {
        match self {
            QClass::In => 1,
            QClass::Chaos => 3,
            QClass::Any => 255,
            QClass::Unknown(c) => c,
        }
    }

    /// Decode from a wire code (total).
    pub fn from_code(c: u16) -> Self {
        match c {
            1 => QClass::In,
            3 => QClass::Chaos,
            255 => QClass::Any,
            other => QClass::Unknown(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qtype_codes_round_trip() {
        for t in [
            QType::A,
            QType::Ns,
            QType::Cname,
            QType::Ptr,
            QType::Txt,
            QType::Aaaa,
            QType::Opt,
            QType::Unknown(999),
        ] {
            assert_eq!(QType::from_code(t.code()), t);
        }
    }

    #[test]
    fn qclass_codes_round_trip() {
        for c in [QClass::In, QClass::Chaos, QClass::Any, QClass::Unknown(7)] {
            assert_eq!(QClass::from_code(c.code()), c);
        }
    }

    #[test]
    fn chaos_is_class_3() {
        assert_eq!(QClass::Chaos.code(), 3);
    }
}
