//! DNS message structure: header, questions, resource records, and the
//! message-level encoder/decoder with name compression.

use super::edns::{ClientSubnet, EdnsOption};
use super::name::Name;
use super::{QClass, QType};
use crate::error::{Result, WireError};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Message opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Opcode {
    /// Standard query.
    #[default]
    Query,
    /// Inverse query (obsolete).
    IQuery,
    /// Server status request.
    Status,
    /// Anything else, by code.
    Other(u8),
}

impl Opcode {
    fn code(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::IQuery => 1,
            Opcode::Status => 2,
            Opcode::Other(c) => c & 0x0F,
        }
    }

    fn from_code(c: u8) -> Self {
        match c & 0x0F {
            0 => Opcode::Query,
            1 => Opcode::IQuery,
            2 => Opcode::Status,
            other => Opcode::Other(other),
        }
    }
}

/// Response code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Rcode {
    /// No error.
    #[default]
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Refused by policy.
    Refused,
    /// Anything else, by code.
    Other(u8),
}

impl Rcode {
    fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(c) => c & 0x0F,
        }
    }

    fn from_code(c: u8) -> Self {
        match c & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// The 12-octet DNS header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Header {
    /// Query identifier, echoed in responses.
    pub id: u16,
    /// Query (false) or response (true).
    pub qr: bool,
    /// Operation.
    pub opcode: Opcode,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncated.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Header {
    fn encode(self, counts: [u16; 4], out: &mut Vec<u8>) {
        out.extend_from_slice(&self.id.to_be_bytes());
        let mut b2: u8 = 0;
        if self.qr {
            b2 |= 0x80;
        }
        b2 |= self.opcode.code() << 3;
        if self.aa {
            b2 |= 0x04;
        }
        if self.tc {
            b2 |= 0x02;
        }
        if self.rd {
            b2 |= 0x01;
        }
        let mut b3: u8 = 0;
        if self.ra {
            b3 |= 0x80;
        }
        b3 |= self.rcode.code();
        out.push(b2);
        out.push(b3);
        for c in counts {
            out.extend_from_slice(&c.to_be_bytes());
        }
    }

    fn decode(buf: &[u8]) -> Result<(Header, [u16; 4])> {
        if buf.len() < 12 {
            return Err(WireError::Truncated {
                what: "dns header",
                needed: 12 - buf.len(),
            });
        }
        let id = u16::from_be_bytes([buf[0], buf[1]]);
        let (b2, b3) = (buf[2], buf[3]);
        let header = Header {
            id,
            qr: b2 & 0x80 != 0,
            opcode: Opcode::from_code((b2 >> 3) & 0x0F),
            aa: b2 & 0x04 != 0,
            tc: b2 & 0x02 != 0,
            rd: b2 & 0x01 != 0,
            ra: b3 & 0x80 != 0,
            rcode: Rcode::from_code(b3),
        };
        let mut counts = [0u16; 4];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = u16::from_be_bytes([buf[4 + 2 * i], buf[5 + 2 * i]]);
        }
        Ok((header, counts))
    }
}

/// A question entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Question {
    /// Queried name.
    pub name: Name,
    /// Queried type.
    pub qtype: QType,
    /// Queried class.
    pub qclass: QClass,
}

/// Typed record data. Types Fenrir uses decode structurally; everything else
/// round-trips as raw bytes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RData {
    /// IPv4 address.
    A([u8; 4]),
    /// IPv6 address.
    Aaaa([u8; 16]),
    /// Text strings (each at most 255 octets) — CHAOS identifiers live here.
    Txt(Vec<Vec<u8>>),
    /// Canonical name.
    Cname(Name),
    /// Name server.
    Ns(Name),
    /// Pointer.
    Ptr(Name),
    /// EDNS0 options (the OPT pseudo-record's RDATA).
    Opt(Vec<EdnsOption>),
    /// Uninterpreted RDATA for other types.
    Raw(Vec<u8>),
}

/// A resource record. For OPT pseudo-records the `class` field carries the
/// advertised UDP payload size and `ttl` the extended flags, per RFC 6891.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Record owner name.
    pub name: Name,
    /// Record type.
    pub rtype: QType,
    /// Class (or UDP size for OPT).
    pub class: u16,
    /// Time to live (or extended rcode/flags for OPT).
    pub ttl: u32,
    /// Typed data.
    pub rdata: RData,
}

impl Record {
    /// Build a TXT record, e.g. the CHAOS `hostname.bind` answer carrying a
    /// site identifier.
    pub fn txt(name: Name, class: QClass, ttl: u32, text: &[u8]) -> Record {
        Record {
            name,
            rtype: QType::Txt,
            class: class.code(),
            ttl,
            rdata: RData::Txt(vec![text.to_vec()]),
        }
    }

    /// Build an A record.
    pub fn a(name: Name, ttl: u32, addr: [u8; 4]) -> Record {
        Record {
            name,
            rtype: QType::A,
            class: QClass::In.code(),
            ttl,
            rdata: RData::A(addr),
        }
    }

    /// Build an OPT pseudo-record advertising `udp_size` with the given
    /// options.
    pub fn opt(udp_size: u16, options: Vec<EdnsOption>) -> Record {
        Record {
            name: Name::root(),
            rtype: QType::Opt,
            class: udp_size,
            ttl: 0,
            rdata: RData::Opt(options),
        }
    }

    fn encode(&self, out: &mut Vec<u8>, table: &mut HashMap<Vec<u8>, u16>) -> Result<()> {
        self.name.encode_compressed(out, table);
        out.extend_from_slice(&self.rtype.code().to_be_bytes());
        out.extend_from_slice(&self.class.to_be_bytes());
        out.extend_from_slice(&self.ttl.to_be_bytes());
        let len_pos = out.len();
        out.extend_from_slice(&[0, 0]);
        let data_start = out.len();
        match &self.rdata {
            RData::A(a) => out.extend_from_slice(a),
            RData::Aaaa(a) => out.extend_from_slice(a),
            RData::Txt(strings) => {
                for s in strings {
                    if s.len() > 255 {
                        return Err(WireError::FieldOverflow {
                            what: "txt string",
                            value: s.len(),
                            max: 255,
                        });
                    }
                    out.push(s.len() as u8);
                    out.extend_from_slice(s);
                }
            }
            // RFC 1035 forbids compressing names in newer RR types' RDATA;
            // NS/CNAME/PTR may be compressed but we emit them uncompressed
            // for simplicity and interoperability.
            RData::Cname(n) | RData::Ns(n) | RData::Ptr(n) => n.encode_uncompressed(out),
            RData::Opt(options) => {
                for o in options {
                    o.encode(out);
                }
            }
            RData::Raw(d) => out.extend_from_slice(d),
        }
        let rdlen = out.len() - data_start;
        if rdlen > usize::from(u16::MAX) {
            return Err(WireError::FieldOverflow {
                what: "rdata",
                value: rdlen,
                max: usize::from(u16::MAX),
            });
        }
        out[len_pos..len_pos + 2].copy_from_slice(&(rdlen as u16).to_be_bytes());
        Ok(())
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<Record> {
        let name = Name::decode(buf, pos)?;
        if buf.len() < *pos + 10 {
            return Err(WireError::Truncated {
                what: "record fixed fields",
                needed: *pos + 10 - buf.len(),
            });
        }
        let rtype = QType::from_code(u16::from_be_bytes([buf[*pos], buf[*pos + 1]]));
        let class = u16::from_be_bytes([buf[*pos + 2], buf[*pos + 3]]);
        let ttl = u32::from_be_bytes([buf[*pos + 4], buf[*pos + 5], buf[*pos + 6], buf[*pos + 7]]);
        let rdlen = usize::from(u16::from_be_bytes([buf[*pos + 8], buf[*pos + 9]]));
        *pos += 10;
        if buf.len() < *pos + rdlen {
            return Err(WireError::Truncated {
                what: "rdata",
                needed: *pos + rdlen - buf.len(),
            });
        }
        let rdata_buf = &buf[*pos..*pos + rdlen];
        let rdata = match rtype {
            QType::A => {
                if rdlen != 4 {
                    return Err(WireError::FieldOverflow {
                        what: "A rdata",
                        value: rdlen,
                        max: 4,
                    });
                }
                RData::A([rdata_buf[0], rdata_buf[1], rdata_buf[2], rdata_buf[3]])
            }
            QType::Aaaa => {
                if rdlen != 16 {
                    return Err(WireError::FieldOverflow {
                        what: "AAAA rdata",
                        value: rdlen,
                        max: 16,
                    });
                }
                let mut a = [0u8; 16];
                a.copy_from_slice(rdata_buf);
                RData::Aaaa(a)
            }
            QType::Txt => {
                let mut strings = Vec::new();
                let mut i = 0usize;
                while i < rdata_buf.len() {
                    let l = usize::from(rdata_buf[i]);
                    i += 1;
                    if i + l > rdata_buf.len() {
                        return Err(WireError::Truncated {
                            what: "txt string",
                            needed: i + l - rdata_buf.len(),
                        });
                    }
                    strings.push(rdata_buf[i..i + l].to_vec());
                    i += l;
                }
                RData::Txt(strings)
            }
            QType::Cname | QType::Ns | QType::Ptr => {
                // Names in RDATA may be compressed against the whole
                // message, so decode with absolute positions.
                let mut p = *pos;
                let n = Name::decode(buf, &mut p)?;
                if p != *pos + rdlen {
                    return Err(WireError::TrailingBytes {
                        count: (*pos + rdlen).abs_diff(p),
                    });
                }
                match rtype {
                    QType::Cname => RData::Cname(n),
                    QType::Ns => RData::Ns(n),
                    _ => RData::Ptr(n),
                }
            }
            QType::Opt => RData::Opt(EdnsOption::decode_all(rdata_buf)?),
            _ => RData::Raw(rdata_buf.to_vec()),
        };
        *pos += rdlen;
        Ok(Record {
            name,
            rtype,
            class,
            ttl,
            rdata,
        })
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Header flags and id.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section.
    pub authorities: Vec<Record>,
    /// Additional section (the OPT pseudo-record lives here).
    pub additionals: Vec<Record>,
}

impl Message {
    /// Build a recursive query for `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid domain name; use [`Name::parse`] +
    /// manual construction for untrusted input.
    pub fn query(id: u16, name: &str, qtype: QType, qclass: QClass) -> Message {
        Message {
            header: Header {
                id,
                rd: true,
                ..Header::default()
            },
            questions: vec![Question {
                name: Name::parse(name).expect("valid query name"),
                qtype,
                qclass,
            }],
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// Build the CHAOS `TXT hostname.bind` query RIPE Atlas probes send to
    /// identify an anycast site.
    pub fn chaos_hostname_bind(id: u16) -> Message {
        Message::query(id, "hostname.bind", QType::Txt, QClass::Chaos)
    }

    /// Build a response skeleton echoing this query's id and question.
    pub fn response_to(&self, rcode: Rcode) -> Message {
        Message {
            header: Header {
                id: self.header.id,
                qr: true,
                aa: true,
                rd: self.header.rd,
                ra: true,
                rcode,
                ..Header::default()
            },
            questions: self.questions.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
        }
    }

    /// The message's OPT pseudo-record, if any.
    pub fn opt_record(&self) -> Option<&Record> {
        self.additionals.iter().find(|r| r.rtype == QType::Opt)
    }

    fn opt_record_mut(&mut self) -> &mut Record {
        if let Some(i) = self.additionals.iter().position(|r| r.rtype == QType::Opt) {
            &mut self.additionals[i]
        } else {
            self.additionals.push(Record::opt(4096, Vec::new()));
            self.additionals.last_mut().expect("just pushed")
        }
    }

    /// Attach (or replace) an EDNS Client Subnet option, creating the OPT
    /// record if needed.
    pub fn set_client_subnet(&mut self, cs: ClientSubnet) {
        let rec = self.opt_record_mut();
        if let RData::Opt(opts) = &mut rec.rdata {
            opts.retain(|o| !matches!(o, EdnsOption::ClientSubnet(_)));
            opts.push(EdnsOption::ClientSubnet(cs));
        }
    }

    /// The Client Subnet option, if present.
    pub fn client_subnet(&self) -> Option<&ClientSubnet> {
        self.opt_record().and_then(|r| match &r.rdata {
            RData::Opt(opts) => opts.iter().find_map(|o| match o {
                EdnsOption::ClientSubnet(cs) => Some(cs),
                _ => None,
            }),
            _ => None,
        })
    }

    /// Request NSID (empty option in a query) or set the NSID payload
    /// (in a response).
    pub fn set_nsid(&mut self, payload: Vec<u8>) {
        let rec = self.opt_record_mut();
        if let RData::Opt(opts) = &mut rec.rdata {
            opts.retain(|o| !matches!(o, EdnsOption::Nsid(_)));
            opts.push(EdnsOption::Nsid(payload));
        }
    }

    /// The NSID payload, if present.
    pub fn nsid(&self) -> Option<&[u8]> {
        self.opt_record().and_then(|r| match &r.rdata {
            RData::Opt(opts) => opts.iter().find_map(|o| match o {
                EdnsOption::Nsid(d) => Some(d.as_slice()),
                _ => None,
            }),
            _ => None,
        })
    }

    /// First TXT answer string, decoded lossily — how a measurement client
    /// reads a CHAOS site identifier.
    pub fn first_txt(&self) -> Option<String> {
        self.answers.iter().find_map(|r| match &r.rdata {
            RData::Txt(strings) => strings
                .first()
                .map(|s| String::from_utf8_lossy(s).into_owned()),
            _ => None,
        })
    }

    /// All A-record addresses in the answer section.
    pub fn a_addrs(&self) -> Vec<[u8; 4]> {
        self.answers
            .iter()
            .filter_map(|r| match r.rdata {
                RData::A(a) => Some(a),
                _ => None,
            })
            .collect()
    }

    /// Encode to wire bytes with name compression.
    pub fn encode(&self) -> Result<Vec<u8>> {
        for counts in [
            self.questions.len(),
            self.answers.len(),
            self.authorities.len(),
            self.additionals.len(),
        ] {
            if counts > usize::from(u16::MAX) {
                return Err(WireError::FieldOverflow {
                    what: "section count",
                    value: counts,
                    max: usize::from(u16::MAX),
                });
            }
        }
        let mut out = Vec::with_capacity(64);
        self.header.encode(
            [
                self.questions.len() as u16,
                self.answers.len() as u16,
                self.authorities.len() as u16,
                self.additionals.len() as u16,
            ],
            &mut out,
        );
        let mut table = HashMap::new();
        for q in &self.questions {
            q.name.encode_compressed(&mut out, &mut table);
            out.extend_from_slice(&q.qtype.code().to_be_bytes());
            out.extend_from_slice(&q.qclass.code().to_be_bytes());
        }
        for r in self
            .answers
            .iter()
            .chain(&self.authorities)
            .chain(&self.additionals)
        {
            r.encode(&mut out, &mut table)?;
        }
        Ok(out)
    }

    /// Decode from wire bytes. Rejects trailing garbage.
    pub fn decode(buf: &[u8]) -> Result<Message> {
        let (header, counts) = Header::decode(buf)?;
        let mut pos = 12usize;
        let mut questions = Vec::with_capacity(usize::from(counts[0]).min(16));
        for _ in 0..counts[0] {
            let name = Name::decode(buf, &mut pos)?;
            if buf.len() < pos + 4 {
                return Err(WireError::Truncated {
                    what: "question fixed fields",
                    needed: pos + 4 - buf.len(),
                });
            }
            let qtype = QType::from_code(u16::from_be_bytes([buf[pos], buf[pos + 1]]));
            let qclass = QClass::from_code(u16::from_be_bytes([buf[pos + 2], buf[pos + 3]]));
            pos += 4;
            questions.push(Question {
                name,
                qtype,
                qclass,
            });
        }
        let mut sections: [Vec<Record>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (si, section) in sections.iter_mut().enumerate() {
            for _ in 0..counts[si + 1] {
                section.push(Record::decode(buf, &mut pos)?);
            }
        }
        if pos != buf.len() {
            return Err(WireError::TrailingBytes {
                count: buf.len() - pos,
            });
        }
        let [answers, authorities, additionals] = sections;
        Ok(Message {
            header,
            questions,
            answers,
            authorities,
            additionals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_round_trip() {
        let q = Message::query(0xBEEF, "www.example.org", QType::A, QClass::In);
        let bytes = q.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back, q);
        assert_eq!(back.header.id, 0xBEEF);
        assert!(back.header.rd);
        assert!(!back.header.qr);
        assert_eq!(back.questions[0].qtype, QType::A);
    }

    #[test]
    fn chaos_query_shape() {
        let q = Message::chaos_hostname_bind(7);
        assert_eq!(q.questions[0].qclass, QClass::Chaos);
        assert_eq!(q.questions[0].qtype, QType::Txt);
        assert_eq!(q.questions[0].name.to_string(), "hostname.bind");
        let bytes = q.encode().unwrap();
        assert_eq!(Message::decode(&bytes).unwrap(), q);
    }

    #[test]
    fn chaos_response_with_txt_identifier() {
        let q = Message::chaos_hostname_bind(42);
        let mut r = q.response_to(Rcode::NoError);
        r.answers.push(Record::txt(
            q.questions[0].name.clone(),
            QClass::Chaos,
            0,
            b"b4-iad2",
        ));
        let bytes = r.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        assert!(back.header.qr);
        assert_eq!(back.header.id, 42);
        assert_eq!(back.first_txt().unwrap(), "b4-iad2");
    }

    #[test]
    fn answer_name_is_compressed_against_question() {
        let q = Message::query(1, "a.very.long.domain.example.org", QType::A, QClass::In);
        let mut r = q.response_to(Rcode::NoError);
        r.answers
            .push(Record::a(q.questions[0].name.clone(), 300, [192, 0, 2, 1]));
        let bytes = r.encode().unwrap();
        // Answer owner name should be a 2-byte pointer, so total length is
        // header(12) + question(name + 4) + answer(2 + 10 + 4).
        let name_len = q.questions[0].name.encoded_len();
        assert_eq!(bytes.len(), 12 + name_len + 4 + 2 + 10 + 4);
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back.a_addrs(), vec![[192, 0, 2, 1]]);
    }

    #[test]
    fn edns_client_subnet_round_trip() {
        let mut q = Message::query(9, "www.google.com", QType::A, QClass::In);
        q.set_client_subnet(ClientSubnet::ipv4([100, 64, 12, 0], 24));
        let bytes = q.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        let cs = back.client_subnet().unwrap();
        assert_eq!(cs.source_prefix_len, 24);
        assert_eq!(cs.address, vec![100, 64, 12]);
        assert_eq!(back.opt_record().unwrap().class, 4096);
    }

    #[test]
    fn set_client_subnet_replaces_existing() {
        let mut q = Message::query(9, "example.org", QType::A, QClass::In);
        q.set_client_subnet(ClientSubnet::ipv4([10, 0, 0, 0], 24));
        q.set_client_subnet(ClientSubnet::ipv4([10, 1, 0, 0], 24));
        let opts = match &q.opt_record().unwrap().rdata {
            RData::Opt(o) => o.clone(),
            _ => panic!("opt record"),
        };
        assert_eq!(opts.len(), 1);
        assert_eq!(q.client_subnet().unwrap().address, vec![10, 1, 0]);
    }

    #[test]
    fn nsid_request_and_response() {
        let mut q = Message::chaos_hostname_bind(5);
        q.set_nsid(Vec::new()); // request
        let bytes = q.encode().unwrap();
        let back = Message::decode(&bytes).unwrap();
        assert_eq!(back.nsid(), Some(&[][..]));
        let mut r = back.response_to(Rcode::NoError);
        r.set_nsid(b"lax.b.root".to_vec());
        let rb = Message::decode(&r.encode().unwrap()).unwrap();
        assert_eq!(rb.nsid(), Some(&b"lax.b.root"[..]));
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let q = Message::query(1, "x.y", QType::A, QClass::In);
        let mut bytes = q.encode().unwrap();
        bytes.push(0);
        assert!(matches!(
            Message::decode(&bytes),
            Err(WireError::TrailingBytes { count: 1 })
        ));
    }

    #[test]
    fn decode_rejects_truncated_everything() {
        let q = Message::query(1, "host.example.com", QType::Txt, QClass::In);
        let bytes = q.encode().unwrap();
        // Every proper prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(Message::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn decode_rejects_bad_a_rdlen() {
        let q = Message::query(1, "a.b", QType::A, QClass::In);
        let mut r = q.response_to(Rcode::NoError);
        r.answers.push(Record {
            name: Name::parse("a.b").unwrap(),
            rtype: QType::A,
            class: 1,
            ttl: 0,
            rdata: RData::Raw(vec![1, 2, 3]), // 3-byte A record
        });
        // Encode writes Raw bytes with rtype A; decoding must reject.
        let bytes = r.encode().unwrap();
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn txt_multiple_strings_round_trip() {
        let q = Message::query(1, "t.t", QType::Txt, QClass::In);
        let mut r = q.response_to(Rcode::NoError);
        r.answers.push(Record {
            name: Name::parse("t.t").unwrap(),
            rtype: QType::Txt,
            class: 1,
            ttl: 60,
            rdata: RData::Txt(vec![b"one".to_vec(), b"two".to_vec()]),
        });
        let back = Message::decode(&r.encode().unwrap()).unwrap();
        match &back.answers[0].rdata {
            RData::Txt(s) => assert_eq!(s.len(), 2),
            other => panic!("expected TXT, got {other:?}"),
        }
    }

    #[test]
    fn txt_overlong_string_rejected_at_encode() {
        let q = Message::query(1, "t.t", QType::Txt, QClass::In);
        let mut r = q.response_to(Rcode::NoError);
        r.answers.push(Record {
            name: Name::parse("t.t").unwrap(),
            rtype: QType::Txt,
            class: 1,
            ttl: 60,
            rdata: RData::Txt(vec![vec![0u8; 256]]),
        });
        assert!(r.encode().is_err());
    }

    #[test]
    fn cname_and_ns_round_trip() {
        let q = Message::query(1, "alias.example.org", QType::Cname, QClass::In);
        let mut r = q.response_to(Rcode::NxDomain);
        r.answers.push(Record {
            name: Name::parse("alias.example.org").unwrap(),
            rtype: QType::Cname,
            class: 1,
            ttl: 60,
            rdata: RData::Cname(Name::parse("real.example.org").unwrap()),
        });
        r.authorities.push(Record {
            name: Name::parse("example.org").unwrap(),
            rtype: QType::Ns,
            class: 1,
            ttl: 60,
            rdata: RData::Ns(Name::parse("ns1.example.org").unwrap()),
        });
        let back = Message::decode(&r.encode().unwrap()).unwrap();
        assert_eq!(back.header.rcode, Rcode::NxDomain);
        assert_eq!(back.answers.len(), 1);
        assert_eq!(back.authorities.len(), 1);
    }

    #[test]
    fn unknown_rtype_round_trips_as_raw() {
        let q = Message::query(1, "x.x", QType::Unknown(999), QClass::In);
        let mut r = q.response_to(Rcode::NoError);
        r.answers.push(Record {
            name: Name::parse("x.x").unwrap(),
            rtype: QType::Unknown(999),
            class: 1,
            ttl: 1,
            rdata: RData::Raw(vec![0xDE, 0xAD]),
        });
        let back = Message::decode(&r.encode().unwrap()).unwrap();
        assert_eq!(back.answers[0].rdata, RData::Raw(vec![0xDE, 0xAD]));
    }

    #[test]
    fn header_flag_bits_round_trip() {
        for qr in [false, true] {
            for aa in [false, true] {
                for tc in [false, true] {
                    for rd in [false, true] {
                        for ra in [false, true] {
                            let h = Header {
                                id: 0x0102,
                                qr,
                                opcode: Opcode::Status,
                                aa,
                                tc,
                                rd,
                                ra,
                                rcode: Rcode::Refused,
                            };
                            let mut buf = Vec::new();
                            h.encode([0, 0, 0, 0], &mut buf);
                            let (back, counts) = Header::decode(&buf).unwrap();
                            assert_eq!(back, h);
                            assert_eq!(counts, [0, 0, 0, 0]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn opcode_rcode_unknown_round_trip() {
        assert_eq!(Opcode::from_code(9), Opcode::Other(9));
        assert_eq!(Opcode::Other(9).code(), 9);
        assert_eq!(Rcode::from_code(9), Rcode::Other(9));
        assert_eq!(Rcode::Other(9).code(), 9);
    }
}
