//! Error type for wire-format encoding and decoding.

use std::fmt;

/// Result alias for wire operations.
pub type Result<T> = std::result::Result<T, WireError>;

/// Decoding/encoding failures. Parsers must never panic on untrusted bytes;
/// every malformed input maps to one of these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the structure was complete.
    Truncated {
        /// What was being parsed.
        what: &'static str,
        /// Bytes needed beyond what was available.
        needed: usize,
    },
    /// A length or count field exceeds protocol limits
    /// (e.g. a DNS label longer than 63 octets).
    FieldOverflow {
        /// Field name.
        what: &'static str,
        /// Offending value.
        value: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// A DNS compression pointer loops or points forward.
    BadPointer {
        /// Byte offset of the bad pointer.
        at: usize,
    },
    /// A value does not decode to any known variant
    /// (e.g. an unknown ICMP type where one is required).
    UnknownValue {
        /// Field name.
        what: &'static str,
        /// The undecodable value.
        value: u32,
    },
    /// Trailing garbage after a complete structure where none is allowed.
    TrailingBytes {
        /// Number of leftover bytes.
        count: usize,
    },
    /// Checksum verification failed.
    BadChecksum {
        /// Checksum found in the packet.
        found: u16,
        /// Checksum computed over the packet.
        computed: u16,
    },
    /// Invalid input to an encoder (e.g. an empty DNS label).
    InvalidInput(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what, needed } => {
                write!(f, "truncated {what}: {needed} more bytes needed")
            }
            WireError::FieldOverflow { what, value, max } => {
                write!(f, "{what} value {value} exceeds maximum {max}")
            }
            WireError::BadPointer { at } => {
                write!(f, "bad DNS compression pointer at offset {at}")
            }
            WireError::UnknownValue { what, value } => {
                write!(f, "unknown {what} value {value}")
            }
            WireError::TrailingBytes { count } => {
                write!(f, "{count} trailing bytes after message")
            }
            WireError::BadChecksum { found, computed } => {
                write!(
                    f,
                    "checksum mismatch: packet has {found:#06x}, computed {computed:#06x}"
                )
            }
            WireError::InvalidInput(what) => write!(f, "invalid input: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            WireError::Truncated {
                what: "header",
                needed: 4
            }
            .to_string(),
            "truncated header: 4 more bytes needed"
        );
        assert_eq!(
            WireError::BadPointer { at: 12 }.to_string(),
            "bad DNS compression pointer at offset 12"
        );
        assert_eq!(
            WireError::BadChecksum {
                found: 0xdead,
                computed: 0xbeef
            }
            .to_string(),
            "checksum mismatch: packet has 0xdead, computed 0xbeef"
        );
        assert!(WireError::FieldOverflow {
            what: "label",
            value: 64,
            max: 63
        }
        .to_string()
        .contains("label"));
        assert!(WireError::UnknownValue {
            what: "icmp type",
            value: 250
        }
        .to_string()
        .contains("250"));
        assert!(WireError::TrailingBytes { count: 3 }
            .to_string()
            .contains('3'));
        assert!(WireError::InvalidInput("empty name")
            .to_string()
            .contains("empty"));
    }

    #[test]
    fn is_std_error() {
        fn takes(_: &dyn std::error::Error) {}
        takes(&WireError::InvalidInput("x"));
    }
}
