//! UDP (RFC 768) with the IPv4 pseudo-header checksum.
//!
//! DNS probes (CHAOS identification, EDNS Client-Subnet lookups) ride UDP;
//! the simulators encode full IPv4+UDP+DNS datagrams and parse them on the
//! receiving side.

use crate::checksum::internet_checksum;
use crate::error::{Result, WireError};
use crate::ipv4::{protocol, Ipv4Packet};
use serde::{Deserialize, Serialize};

/// UDP header length in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// The DNS port.
pub const DNS_PORT: u16 = 53;

/// A UDP datagram (header + payload, addresses supplied externally for the
/// pseudo-header).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl UdpDatagram {
    /// Build a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Vec<u8>) -> Self {
        UdpDatagram {
            src_port,
            dst_port,
            payload,
        }
    }

    /// Encode with a checksum over the RFC 768 pseudo-header
    /// (`src`/`dst`/protocol/length) plus header and payload.
    pub fn encode(&self, src: [u8; 4], dst: [u8; 4]) -> Result<Vec<u8>> {
        let len = UDP_HEADER_LEN + self.payload.len();
        if len > usize::from(u16::MAX) {
            return Err(WireError::FieldOverflow {
                what: "udp length",
                value: len,
                max: usize::from(u16::MAX),
            });
        }
        let mut out = Vec::with_capacity(len);
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&(len as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.payload);
        let mut ck = internet_checksum(&pseudo(src, dst, &out));
        if ck == 0 {
            ck = 0xFFFF; // RFC 768: zero checksum means "none"; transmit 1s
        }
        out[6..8].copy_from_slice(&ck.to_be_bytes());
        Ok(out)
    }

    /// Decode, verifying length and checksum against the pseudo-header.
    pub fn decode(buf: &[u8], src: [u8; 4], dst: [u8; 4]) -> Result<Self> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(WireError::Truncated {
                what: "udp header",
                needed: UDP_HEADER_LEN - buf.len(),
            });
        }
        let len = usize::from(u16::from_be_bytes([buf[4], buf[5]]));
        if len < UDP_HEADER_LEN || len > buf.len() {
            return Err(WireError::Truncated {
                what: "udp payload",
                needed: len.saturating_sub(buf.len()),
            });
        }
        let claimed = u16::from_be_bytes([buf[6], buf[7]]);
        if claimed != 0 {
            // Verify: checksum over pseudo-header + datagram must be 0.
            if internet_checksum(&pseudo(src, dst, &buf[..len])) != 0 {
                let mut zeroed = buf[..len].to_vec();
                zeroed[6] = 0;
                zeroed[7] = 0;
                return Err(WireError::BadChecksum {
                    found: claimed,
                    computed: internet_checksum(&pseudo(src, dst, &zeroed)),
                });
            }
        }
        Ok(UdpDatagram {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            payload: buf[UDP_HEADER_LEN..len].to_vec(),
        })
    }

    /// Wrap into a full IPv4 packet.
    pub fn into_ipv4(self, src: [u8; 4], dst: [u8; 4]) -> Result<Ipv4Packet> {
        let bytes = self.encode(src, dst)?;
        Ok(Ipv4Packet::new(protocol::UDP, src, dst, bytes))
    }

    /// Extract from an IPv4 packet, checking the protocol field and
    /// verifying the checksum against the packet's addresses.
    pub fn from_ipv4(packet: &Ipv4Packet) -> Result<Self> {
        if packet.protocol != protocol::UDP {
            return Err(WireError::UnknownValue {
                what: "ip protocol (expected udp)",
                value: u32::from(packet.protocol),
            });
        }
        Self::decode(&packet.payload, packet.src, packet.dst)
    }
}

/// Pseudo-header + datagram buffer for checksumming.
fn pseudo(src: [u8; 4], dst: [u8; 4], datagram: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(12 + datagram.len());
    v.extend_from_slice(&src);
    v.extend_from_slice(&dst);
    v.push(0);
    v.push(protocol::UDP);
    v.extend_from_slice(&(datagram.len() as u16).to_be_bytes());
    v.extend_from_slice(datagram);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: [u8; 4] = [10, 1, 2, 3];
    const DST: [u8; 4] = [192, 0, 2, 53];

    #[test]
    fn round_trip() {
        let d = UdpDatagram::new(33_000, DNS_PORT, b"query".to_vec());
        let bytes = d.encode(SRC, DST).unwrap();
        assert_eq!(bytes.len(), 13);
        let back = UdpDatagram::decode(&bytes, SRC, DST).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn checksum_binds_addresses() {
        // The pseudo-header makes the checksum address-dependent: decoding
        // with the wrong addresses fails (anti-spoofing sanity).
        let d = UdpDatagram::new(1, 2, vec![9; 11]);
        let bytes = d.encode(SRC, DST).unwrap();
        assert!(UdpDatagram::decode(&bytes, SRC, [1, 1, 1, 1]).is_err());
    }

    #[test]
    fn corruption_detected() {
        let d = UdpDatagram::new(1, 2, vec![0xAB; 9]);
        let mut bytes = d.encode(SRC, DST).unwrap();
        bytes[9] ^= 1;
        assert!(matches!(
            UdpDatagram::decode(&bytes, SRC, DST),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn zero_checksum_means_unverified() {
        let d = UdpDatagram::new(7, 8, vec![1, 2]);
        let mut bytes = d.encode(SRC, DST).unwrap();
        bytes[6] = 0;
        bytes[7] = 0;
        // Checksum disabled: accepted as-is.
        let back = UdpDatagram::decode(&bytes, SRC, DST).unwrap();
        assert_eq!(back.payload, vec![1, 2]);
    }

    #[test]
    fn truncation_rejected() {
        let d = UdpDatagram::new(1, 2, vec![1, 2, 3, 4]);
        let bytes = d.encode(SRC, DST).unwrap();
        for cut in 0..bytes.len() {
            assert!(UdpDatagram::decode(&bytes[..cut], SRC, DST).is_err());
        }
    }

    #[test]
    fn ipv4_wrapping_round_trip() {
        let d = UdpDatagram::new(5_353, DNS_PORT, b"dns-bytes".to_vec());
        let pkt = d.clone().into_ipv4(SRC, DST).unwrap();
        let wire = pkt.encode().unwrap();
        let back_pkt = Ipv4Packet::decode(&wire).unwrap();
        let back = UdpDatagram::from_ipv4(&back_pkt).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn from_ipv4_rejects_wrong_protocol() {
        let pkt = Ipv4Packet::new(protocol::ICMP, SRC, DST, vec![0; 8]);
        assert!(matches!(
            UdpDatagram::from_ipv4(&pkt),
            Err(WireError::UnknownValue { .. })
        ));
    }

    #[test]
    fn oversize_payload_rejected() {
        let d = UdpDatagram::new(1, 2, vec![0; 70_000]);
        assert!(d.encode(SRC, DST).is_err());
    }
}
