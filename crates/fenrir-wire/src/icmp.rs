//! ICMPv4 messages (RFC 792) for Verfploeter-style sweeps, Trinocular-style
//! latency probing, and traceroute.
//!
//! Verfploeter "pings targets in millions of networks and watch\[es\] which
//! catchment the reply goes to"; traceroute elicits *time exceeded* from
//! intermediate hops. The measurement simulators encode these packets,
//! carry them through the simulated topology, and decode the replies.

use crate::checksum::{internet_checksum, verify};
use crate::error::{Result, WireError};
use serde::{Deserialize, Serialize};

/// ICMP type/code pairs Fenrir uses; everything else is rejected (the
/// simulators never emit other types, so seeing one indicates corruption).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IcmpKind {
    /// Echo reply (type 0).
    EchoReply,
    /// Destination unreachable (type 3) with code.
    DestUnreachable(u8),
    /// Echo request (type 8).
    EchoRequest,
    /// Time exceeded (type 11) with code (0 = TTL exceeded in transit).
    TimeExceeded(u8),
}

impl IcmpKind {
    /// `(type, code)` on the wire.
    pub fn type_code(self) -> (u8, u8) {
        match self {
            IcmpKind::EchoReply => (0, 0),
            IcmpKind::DestUnreachable(c) => (3, c),
            IcmpKind::EchoRequest => (8, 0),
            IcmpKind::TimeExceeded(c) => (11, c),
        }
    }

    /// Decode from `(type, code)`.
    pub fn from_type_code(t: u8, c: u8) -> Result<Self> {
        match t {
            0 => Ok(IcmpKind::EchoReply),
            3 => Ok(IcmpKind::DestUnreachable(c)),
            8 => Ok(IcmpKind::EchoRequest),
            11 => Ok(IcmpKind::TimeExceeded(c)),
            other => Err(WireError::UnknownValue {
                what: "icmp type",
                value: u32::from(other),
            }),
        }
    }
}

/// A parsed ICMPv4 packet.
///
/// For echo messages, `ident`/`seq` carry the identifier and sequence
/// number; for error messages (unreachable, time exceeded) they are unused
/// on the wire (sent as zero) and `payload` carries the quoted original
/// datagram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IcmpPacket {
    /// Message kind.
    pub kind: IcmpKind,
    /// Echo identifier (0 for error messages).
    pub ident: u16,
    /// Echo sequence number (0 for error messages).
    pub seq: u16,
    /// Echo payload or quoted datagram.
    pub payload: Vec<u8>,
}

impl IcmpPacket {
    /// Build an echo request. Verfploeter encodes the probed /24 block id in
    /// `ident`/`seq` so a reply arriving at *any* anycast site can be
    /// attributed.
    pub fn echo_request(ident: u16, seq: u16, payload: Vec<u8>) -> Self {
        IcmpPacket {
            kind: IcmpKind::EchoRequest,
            ident,
            seq,
            payload,
        }
    }

    /// Build the echo reply mirroring a request.
    pub fn echo_reply_to(req: &IcmpPacket) -> Self {
        IcmpPacket {
            kind: IcmpKind::EchoReply,
            ident: req.ident,
            seq: req.seq,
            payload: req.payload.clone(),
        }
    }

    /// Build a time-exceeded error quoting `original` (a router's answer to
    /// a traceroute probe whose TTL hit zero).
    pub fn time_exceeded(original: &[u8]) -> Self {
        IcmpPacket {
            kind: IcmpKind::TimeExceeded(0),
            ident: 0,
            seq: 0,
            // RFC 792: IP header + 8 octets; we quote up to 28 octets of
            // the original.
            payload: original[..original.len().min(28)].to_vec(),
        }
    }

    /// Encode with a valid checksum.
    pub fn encode(&self) -> Vec<u8> {
        let (t, c) = self.kind.type_code();
        let mut out = Vec::with_capacity(8 + self.payload.len());
        out.push(t);
        out.push(c);
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.ident.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.payload);
        let ck = internet_checksum(&out);
        out[2..4].copy_from_slice(&ck.to_be_bytes());
        out
    }

    /// Decode and verify the checksum.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() < 8 {
            return Err(WireError::Truncated {
                what: "icmp packet",
                needed: 8 - buf.len(),
            });
        }
        if !verify(buf) {
            let found = u16::from_be_bytes([buf[2], buf[3]]);
            let mut zeroed = buf.to_vec();
            zeroed[2] = 0;
            zeroed[3] = 0;
            return Err(WireError::BadChecksum {
                found,
                computed: internet_checksum(&zeroed),
            });
        }
        let kind = IcmpKind::from_type_code(buf[0], buf[1])?;
        Ok(IcmpPacket {
            kind,
            ident: u16::from_be_bytes([buf[4], buf[5]]),
            seq: u16::from_be_bytes([buf[6], buf[7]]),
            payload: buf[8..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_trip() {
        let req = IcmpPacket::echo_request(0x1234, 7, b"fenrir".to_vec());
        let bytes = req.encode();
        let back = IcmpPacket::decode(&bytes).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.kind, IcmpKind::EchoRequest);
    }

    #[test]
    fn reply_mirrors_request() {
        let req = IcmpPacket::echo_request(42, 1, vec![1, 2, 3]);
        let rep = IcmpPacket::echo_reply_to(&req);
        assert_eq!(rep.kind, IcmpKind::EchoReply);
        assert_eq!(rep.ident, 42);
        assert_eq!(rep.seq, 1);
        assert_eq!(rep.payload, vec![1, 2, 3]);
        let back = IcmpPacket::decode(&rep.encode()).unwrap();
        assert_eq!(back, rep);
    }

    #[test]
    fn time_exceeded_quotes_original() {
        let original = vec![0xAB; 100];
        let te = IcmpPacket::time_exceeded(&original);
        assert_eq!(te.payload.len(), 28);
        let back = IcmpPacket::decode(&te.encode()).unwrap();
        assert_eq!(back.kind, IcmpKind::TimeExceeded(0));
    }

    #[test]
    fn corrupted_packet_fails_checksum() {
        let mut bytes = IcmpPacket::echo_request(1, 1, vec![9; 16]).encode();
        bytes[10] ^= 0x01;
        assert!(matches!(
            IcmpPacket::decode(&bytes),
            Err(WireError::BadChecksum { .. })
        ));
    }

    #[test]
    fn truncated_packet_rejected() {
        let bytes = IcmpPacket::echo_request(1, 1, vec![]).encode();
        for cut in 0..8 {
            assert!(IcmpPacket::decode(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn unknown_type_rejected() {
        // Type 42 with a correct checksum still rejects on kind.
        let mut raw = vec![42u8, 0, 0, 0, 0, 0, 0, 0];
        let ck = internet_checksum(&raw);
        raw[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(
            IcmpPacket::decode(&raw),
            Err(WireError::UnknownValue { .. })
        ));
    }

    #[test]
    fn kind_codes_round_trip() {
        for k in [
            IcmpKind::EchoReply,
            IcmpKind::EchoRequest,
            IcmpKind::DestUnreachable(1),
            IcmpKind::TimeExceeded(0),
        ] {
            let (t, c) = k.type_code();
            assert_eq!(IcmpKind::from_type_code(t, c).unwrap(), k);
        }
        assert!(IcmpKind::from_type_code(99, 0).is_err());
    }

    #[test]
    fn dest_unreachable_round_trip() {
        let pkt = IcmpPacket {
            kind: IcmpKind::DestUnreachable(3),
            ident: 0,
            seq: 0,
            payload: vec![1, 2, 3, 4],
        };
        let back = IcmpPacket::decode(&pkt.encode()).unwrap();
        assert_eq!(back.kind, IcmpKind::DestUnreachable(3));
    }

    #[test]
    fn odd_payload_length_checksums_correctly() {
        let pkt = IcmpPacket::echo_request(5, 5, vec![0xFF; 7]);
        assert!(IcmpPacket::decode(&pkt.encode()).is_ok());
    }
}
