//! The Internet checksum (RFC 1071) used by ICMPv4.
//!
//! One's-complement sum of 16-bit words, with odd trailing bytes padded by a
//! zero octet, then complemented.

/// Compute the RFC 1071 Internet checksum over `data`.
///
/// The checksum field itself must be zeroed (or excluded) by the caller
/// before computing; verification of a received packet computes the sum over
/// the packet as-is and checks for zero (see [`verify`]).
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Verify a packet whose checksum field is in place: the one's-complement
/// sum over the whole packet must be zero (i.e. `internet_checksum` yields
/// 0).
pub fn verify(data: &[u8]) -> bool {
    internet_checksum(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The classic worked example from RFC 1071 §3:
        // words 0x0001 0xf203 0xf4f5 0xf6f7 -> sum 0x2ddf0 -> fold 0xddf2
        // -> checksum !0xddf2 = 0x220d.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum(&data), 0x220d);
    }

    #[test]
    fn empty_checksum_is_all_ones() {
        assert_eq!(internet_checksum(&[]), 0xFFFF);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(internet_checksum(&[0xFF]), internet_checksum(&[0xFF, 0x00]));
    }

    #[test]
    fn verify_round_trip() {
        let mut pkt = vec![0x08, 0x00, 0x00, 0x00, 0x12, 0x34, 0x00, 0x01, 0xAA];
        let ck = internet_checksum(&pkt);
        pkt[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(verify(&pkt));
        pkt[8] ^= 0xFF;
        assert!(!verify(&pkt));
    }

    #[test]
    fn all_zero_packet_verifies_with_ffff() {
        // A packet of zeros with checksum 0xFFFF sums to 0xFFFF -> !0xFFFF == 0.
        let pkt = [0x00, 0x00, 0xFF, 0xFF];
        assert!(verify(&pkt));
    }
}
