//! Property coverage for fault-plan composition (deterministic
//! expansions — the proptest façade in this workspace compiles its
//! macros away, so the properties are pinned as explicit cases).
//!
//! * Composition of *independent* fault kinds is order-insensitive:
//!   the builder produces the same plan, and the same campaign, no
//!   matter which order the kinds are layered in.
//! * A full fault stack with adversaries layered on top is
//!   bit-deterministic under a fixed seed.
//! * The adversary draws from its own RNG: enabling one never perturbs
//!   any benign fault stream, and an inert adversary (every fraction
//!   zero) leaves the campaign untouched.

use fenrir_core::time::Timestamp;
use fenrir_core::vector::CODE_UNKNOWN;
use fenrir_measure::fault::{
    BurstyLoss, ClockSkew, FaultPlan, ResponseTiming, VpChurn, WireCorruption,
};
use fenrir_measure::runner::RunnerConfig;
use fenrir_measure::verfploeter::{SweepResult, Verfploeter};
use fenrir_netsim::adversary::{
    AdversaryPlan, ByzantineStrategy, ByzantineVp, SpoofedReplies, SybilPopulation,
};
use fenrir_netsim::anycast::AnycastService;
use fenrir_netsim::events::Scenario;
use fenrir_netsim::geo::cities;
use fenrir_netsim::topology::{Tier, Topology, TopologyBuilder};

fn setup() -> (Topology, AnycastService) {
    let topo = TopologyBuilder {
        transit: 3,
        regional: 6,
        stubs: 30,
        blocks_per_stub: 2,
        seed: 11,
        ..Default::default()
    }
    .build();
    let regionals = topo.tier_members(Tier::Regional);
    let mut svc = AnycastService::new("B-Root");
    svc.add_site("LAX", regionals[0], cities::LAX);
    svc.add_site("MIA", regionals[1], cities::MIA);
    (topo, svc)
}

fn run(faults: Option<&FaultPlan>) -> SweepResult {
    let (topo, svc) = setup();
    let times: Vec<Timestamp> = (0..8).map(Timestamp::from_days).collect();
    Verfploeter {
        mean_response_rate: 0.8,
        seed: 0x5EED_0001,
    }
    .run_with(
        &topo,
        &svc,
        &Scenario::new(),
        &times,
        &RunnerConfig::default(),
        faults,
    )
    .unwrap()
}

fn adversary(seed: u64) -> AdversaryPlan {
    AdversaryPlan::new(seed)
        .with_byzantine(ByzantineVp {
            fraction: 0.2,
            strategy: ByzantineStrategy::ReplayStale { lag: 2 },
        })
        .with_sybil(SybilPopulation { fraction: 0.1 })
        .with_spoofed_replies(SpoofedReplies {
            fraction: 0.15,
            site: 1,
        })
}

fn assert_identical(a: &SweepResult, b: &SweepResult) {
    assert_eq!(a.series.vectors(), b.series.vectors());
    assert_eq!(a.health, b.health);
}

#[test]
fn composition_is_order_insensitive_for_independent_kinds() {
    // Six independent fault kinds plus an adversary, layered in three
    // different orders: the plans compare equal and the campaigns are
    // bit-identical.
    let seed = 0xC0FE;
    let loss = BurstyLoss::default();
    let churn = VpChurn::default();
    let timing = ResponseTiming {
        dup_prob: 0.05,
        delay_prob: 0.05,
    };
    let skew = ClockSkew { max_skew_secs: 600 };
    let corruption = WireCorruption::default();
    let adv = adversary(7);

    let forward = FaultPlan::new(seed)
        .with_bursty_loss(loss)
        .with_vp_churn(churn)
        .with_response_timing(timing)
        .with_clock_skew(skew)
        .with_wire_corruption(corruption)
        .with_adversary(adv);
    let reversed = FaultPlan::new(seed)
        .with_adversary(adv)
        .with_wire_corruption(corruption)
        .with_clock_skew(skew)
        .with_response_timing(timing)
        .with_vp_churn(churn)
        .with_bursty_loss(loss);
    let shuffled = FaultPlan::new(seed)
        .with_clock_skew(skew)
        .with_adversary(adv)
        .with_bursty_loss(loss)
        .with_wire_corruption(corruption)
        .with_vp_churn(churn)
        .with_response_timing(timing);

    assert_eq!(forward, reversed);
    assert_eq!(forward, shuffled);
    let a = run(Some(&forward));
    let b = run(Some(&reversed));
    let c = run(Some(&shuffled));
    assert_identical(&a, &b);
    assert_identical(&a, &c);
}

#[test]
fn full_stack_with_adversaries_is_bit_deterministic() {
    let plan = FaultPlan::new(0xFA17)
        .with_bursty_loss(BurstyLoss::default())
        .with_vp_churn(VpChurn::default())
        .with_clock_skew(ClockSkew { max_skew_secs: 900 })
        .with_adversary(adversary(0xBAD));
    let a = run(Some(&plan));
    let b = run(Some(&plan));
    assert_identical(&a, &b);
    assert!(
        a.health.iter().any(|h| h.spoofed > 0),
        "the adversary must actually fire"
    );
}

#[test]
fn inert_adversary_leaves_the_campaign_untouched() {
    // Every adversary fraction at zero: the adversary session exists but
    // mangles nothing, and the campaign equals a run without it.
    let benign = FaultPlan::new(0xFA17).with_bursty_loss(BurstyLoss::default());
    let inert = benign.with_adversary(
        AdversaryPlan::new(3)
            .with_byzantine(ByzantineVp {
                fraction: 0.0,
                strategy: ByzantineStrategy::Invert,
            })
            .with_sybil(SybilPopulation { fraction: 0.0 })
            .with_spoofed_replies(SpoofedReplies {
                fraction: 0.0,
                site: 0,
            }),
    );
    let a = run(Some(&benign));
    let b = run(Some(&inert));
    assert_identical(&a, &b);
}

#[test]
fn adversary_never_perturbs_the_benign_fault_streams() {
    // Same benign plan, with and without a spoofing adversary: wherever
    // the two runs differ, the benign run must have been unknown — the
    // adversary only filled gaps, it never changed which probes were
    // lost, churned, or corrupted.
    let benign = FaultPlan::new(0xFA17)
        .with_bursty_loss(BurstyLoss::default())
        .with_vp_churn(VpChurn::default());
    let spoofing =
        benign.with_adversary(AdversaryPlan::new(9).with_spoofed_replies(SpoofedReplies {
            fraction: 0.3,
            site: 1,
        }));
    let a = run(Some(&benign));
    let b = run(Some(&spoofing));
    let mut filled = 0;
    for (va, vb) in a.series.vectors().iter().zip(b.series.vectors()) {
        for (&ca, &cb) in va.codes().iter().zip(vb.codes()) {
            if ca != cb {
                assert_eq!(ca, CODE_UNKNOWN, "adversary changed a benign cell");
                filled += 1;
            }
        }
    }
    assert!(filled > 0, "the spoofer must have filled some gaps");
    // Honest response accounting is identical: spoofed fills are never
    // counted as responses.
    for (ha, hb) in a.health.iter().zip(&b.health) {
        assert_eq!(ha.responses, hb.responses);
        assert_eq!(ha.lost, hb.lost);
    }
}
