//! Poisoning acceptance suite: the byzantine-resilience bar from the
//! threat model, pinned under `FENRIR_ADVERSARY_SEED` (CI runs this
//! exact storm).
//!
//! * At ≤25% compromise, across every adversary strategy, the
//!   trust-weighted detected events are **identical** to the clean
//!   run's — the adversary neither fabricates a mode transition nor
//!   suppresses a real one.
//! * At 40% compromise the pipeline degrades **explicitly** — the
//!   population is quarantined, the verdict flagged, events suppressed
//!   with a typed reason — and never silently reports wrong modes: any
//!   event it does report is one the clean run reported too.

use fenrir_core::detect::ChangeDetector;
use fenrir_core::time::Timestamp;
use fenrir_core::trust::{TrustConfig, TrustedDetection};
use fenrir_core::vector::CODE_UNKNOWN;
use fenrir_core::weight::Weights;
use fenrir_measure::fault::FaultPlan;
use fenrir_measure::runner::RunnerConfig;
use fenrir_measure::verfploeter::{SweepResult, Verfploeter};
use fenrir_netsim::adversary::{
    AdversaryPlan, ByzantineStrategy, ByzantineVp, SpoofedReplies, SybilPopulation,
};
use fenrir_netsim::anycast::AnycastService;
use fenrir_netsim::events::Scenario;
use fenrir_netsim::geo::cities;
use fenrir_netsim::topology::{Tier, Topology, TopologyBuilder};

fn adversary_seed() -> u64 {
    std::env::var("FENRIR_ADVERSARY_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xBAD_5EED)
}

fn setup() -> (Topology, AnycastService) {
    let topo = TopologyBuilder {
        transit: 3,
        regional: 6,
        stubs: 40,
        blocks_per_stub: 2,
        seed: 11,
        ..Default::default()
    }
    .build();
    let regionals = topo.tier_members(Tier::Regional);
    let mut svc = AnycastService::new("B-Root");
    svc.add_site("LAX", regionals[0], cities::LAX);
    svc.add_site("MIA", regionals[1], cities::MIA);
    svc.add_site("AMS", regionals[2], cities::AMS);
    (topo, svc)
}

/// A 14-day campaign with one genuine catchment flip: site 0 drains
/// across days 5–9 (mode transition at obs 5, recovery at obs 9).
fn run(adversary: Option<AdversaryPlan>, response_rate: f64) -> (SweepResult, TrustedDetection) {
    let (topo, svc) = setup();
    let mut sc = Scenario::new();
    sc.drain(
        0,
        Timestamp::from_days(5).as_secs(),
        Timestamp::from_days(9).as_secs(),
        "op",
    );
    let times: Vec<Timestamp> = (0..14).map(Timestamp::from_days).collect();
    let campaign = Verfploeter {
        mean_response_rate: response_rate,
        seed: 0x5EED_0001,
    };
    let faults = adversary.map(|a| FaultPlan::new(0xFA17).with_adversary(a));
    let result = campaign
        .run_with(
            &topo,
            &svc,
            &sc,
            &times,
            &RunnerConfig::default(),
            faults.as_ref(),
        )
        .unwrap();
    let weights = Weights::uniform(result.series.networks());
    let detector = ChangeDetector {
        window: 4,
        ..ChangeDetector::default()
    };
    let detection = result
        .detect_trusted(&detector, &weights, 0.2, TrustConfig::default())
        .unwrap();
    (result, detection)
}

fn events(d: &TrustedDetection) -> Vec<usize> {
    d.gated.events.iter().map(|e| e.index).collect()
}

fn byzantine(fraction: f64, strategy: ByzantineStrategy) -> AdversaryPlan {
    AdversaryPlan::new(adversary_seed()).with_byzantine(ByzantineVp { fraction, strategy })
}

#[test]
fn clean_run_detects_the_drain_and_recovery() {
    let (_, clean) = run(None, 1.0);
    let idx = events(&clean);
    assert!(idx.contains(&5), "drain onset at obs 5, got {idx:?}");
    assert!(idx.contains(&9), "recovery at obs 9, got {idx:?}");
    assert!(!clean.degraded);
    assert_eq!(clean.trust.quarantined.iter().filter(|&&q| q).count(), 0);
    assert!(
        clean.contested.is_empty(),
        "clean data must not raise the contested-step signal"
    );
}

#[test]
fn minority_byzantine_verdicts_match_clean_across_all_strategies() {
    let (_, clean) = run(None, 1.0);
    let clean_events = events(&clean);
    for fraction in [0.10, 0.25] {
        for strategy in [
            ByzantineStrategy::Invert,
            ByzantineStrategy::Constant { site: 1 },
            ByzantineStrategy::ReplayStale { lag: 2 },
            // Fires at obs 7, away from both genuine transitions: a
            // coordinated fake event the verdict must not contain.
            ByzantineStrategy::TargetedFlip { at: 7, to: 2 },
        ] {
            let (_, dirty) = run(Some(byzantine(fraction, strategy)), 1.0);
            assert_eq!(
                clean_events,
                events(&dirty),
                "{strategy:?} at {fraction} changed the verdict"
            );
            assert!(!dirty.degraded, "{strategy:?} at {fraction} degraded");
        }
    }
}

#[test]
fn sybil_flock_cannot_flip_the_verdict() {
    let (_, clean) = run(None, 1.0);
    let plan = AdversaryPlan::new(adversary_seed())
        .with_byzantine(ByzantineVp {
            fraction: 0.05,
            strategy: ByzantineStrategy::Constant { site: 1 },
        })
        .with_sybil(SybilPopulation { fraction: 0.20 });
    let (_, dirty) = run(Some(plan), 1.0);
    assert_eq!(events(&clean), events(&dirty));
    assert!(!dirty.degraded);
}

#[test]
fn spoofed_replies_cannot_mask_the_flip() {
    // At 70% response rate the spoofer has real gaps to fill; it claims
    // the draining site still serves them.
    let (_, clean) = run(None, 0.7);
    let plan = AdversaryPlan::new(adversary_seed()).with_spoofed_replies(SpoofedReplies {
        fraction: 0.25,
        site: 0,
    });
    let (dirty_result, dirty) = run(Some(plan), 0.7);
    assert_eq!(events(&clean), events(&dirty));
    // The spoofed fills are visible in health, and never counted as
    // honest responses: coverage accounting matches the clean run.
    assert!(dirty.health.iter().any(|h| h.spoofed > 0));
    let (clean_result, _) = run(None, 0.7);
    for (hc, hd) in clean_result.health.iter().zip(&dirty_result.health) {
        assert_eq!(hc.responses, hd.responses);
    }
}

#[test]
fn supermajority_byzantine_degrades_explicitly_never_silently() {
    let (_, clean) = run(None, 1.0);
    let clean_events = events(&clean);
    for strategy in [
        ByzantineStrategy::Invert,
        ByzantineStrategy::Constant { site: 1 },
        ByzantineStrategy::ReplayStale { lag: 2 },
        ByzantineStrategy::TargetedFlip { at: 7, to: 2 },
    ] {
        let (_, dirty) = run(Some(byzantine(0.40, strategy)), 1.0);
        // Never a silent wrong mode: every event still reported is one
        // the clean run reported.
        for e in events(&dirty) {
            assert!(
                clean_events.contains(&e),
                "{strategy:?} at 40% fabricated event at obs {e}"
            );
        }
        // And if the verdict changed at all, the degradation is typed:
        // quarantines, suppressed events, contested steps, or the
        // degraded flag.
        if events(&dirty) != clean_events {
            let quarantined = dirty.trust.quarantined.iter().filter(|&&q| q).count();
            assert!(
                dirty.degraded
                    || !dirty.gated.suppressed.is_empty()
                    || !dirty.contested.is_empty()
                    || quarantined > 0,
                "{strategy:?} at 40% changed the verdict with no explicit signal \
                 (clean {clean_events:?}, dirty {:?})",
                events(&dirty)
            );
            // A suppressed genuine transition must be flagged at (or
            // adjacent to) the step where it was out-voted.
            for &missing in clean_events.iter().filter(|e| !events(&dirty).contains(e)) {
                assert!(
                    dirty.degraded
                        || quarantined > 0
                        || dirty
                            .contested
                            .iter()
                            .any(|c| c.index.abs_diff(missing) <= 1)
                        || dirty
                            .gated
                            .suppressed
                            .iter()
                            .any(|s| s.event.index.abs_diff(missing) <= 1),
                    "{strategy:?} at 40% silently dropped the event at obs {missing}"
                );
            }
        }
    }
}

#[test]
fn poisoned_campaign_is_bit_deterministic_under_the_pinned_seed() {
    let plan = AdversaryPlan::new(adversary_seed())
        .with_byzantine(ByzantineVp {
            fraction: 0.25,
            strategy: ByzantineStrategy::Invert,
        })
        .with_sybil(SybilPopulation { fraction: 0.10 })
        .with_spoofed_replies(SpoofedReplies {
            fraction: 0.10,
            site: 2,
        });
    let (a, da) = run(Some(plan), 0.9);
    let (b, db) = run(Some(plan), 0.9);
    assert_eq!(a.series.vectors(), b.series.vectors());
    assert_eq!(a.health, b.health);
    assert_eq!(da, db);
}

#[test]
fn tampered_cells_are_attributed_in_health() {
    let plan = AdversaryPlan::new(adversary_seed()).with_byzantine(ByzantineVp {
        fraction: 0.25,
        strategy: ByzantineStrategy::Constant { site: 1 },
    });
    let (result, _) = run(Some(plan), 1.0);
    assert!(
        result.health.iter().all(|h| h.spoofed > 0),
        "constant liars must show up in every sweep's spoofed count"
    );
    // detect_trusted fills in how many VPs each step's verdict excluded:
    // a targeted mass flip at obs 7 is uncorroborated and thrown out.
    let flip = AdversaryPlan::new(adversary_seed()).with_byzantine(ByzantineVp {
        fraction: 0.25,
        strategy: ByzantineStrategy::TargetedFlip { at: 7, to: 2 },
    });
    let (_, detection) = run(Some(flip), 1.0);
    assert!(detection.health.iter().skip(2).any(|h| h.distrusted > 0));
    // Lies replace or fabricate values, they never erase them: the
    // poisoned series has no more unknown cells than the clean one.
    let (clean_result, _) = run(None, 1.0);
    for (vc, vd) in clean_result
        .series
        .vectors()
        .iter()
        .zip(result.series.vectors())
    {
        let unknowns = |v: &fenrir_core::vector::RoutingVector| {
            v.codes().iter().filter(|&&c| c == CODE_UNKNOWN).count()
        };
        assert!(unknowns(vd) <= unknowns(vc));
    }
}
