//! Kill/resume equivalence for all five measurement simulators.
//!
//! Each test runs a seeded campaign straight through, then re-runs it
//! against a [`MemorySink`] that simulates a crash after *every* durable
//! sweep — rearming and resuming until the campaign completes — and
//! asserts the final series and health records are bit-identical to the
//! uninterrupted run. A campaign that is killed and resumed at every
//! frame boundary must be indistinguishable from one that never died.

use fenrir_core::error::Error;
use fenrir_core::health::CampaignHealth;
use fenrir_core::series::VectorSeries;
use fenrir_core::time::Timestamp;
use fenrir_measure::atlas::AtlasCampaign;
use fenrir_measure::checkpoint::MemorySink;
use fenrir_measure::ednscs::{EdnsCsCampaign, FrontendPolicy};
use fenrir_measure::fault::FaultPlan;
use fenrir_measure::latency::LatencyProber;
use fenrir_measure::runner::RunnerConfig;
use fenrir_measure::traceroute::TracerouteCampaign;
use fenrir_measure::verfploeter::Verfploeter;
use fenrir_netsim::anycast::AnycastService;
use fenrir_netsim::events::Scenario;
use fenrir_netsim::geo::cities;
use fenrir_netsim::prefix::BlockId;
use fenrir_netsim::topology::{Tier, Topology, TopologyBuilder};

fn setup() -> (Topology, AnycastService) {
    let topo = TopologyBuilder {
        transit: 3,
        regional: 6,
        stubs: 30,
        blocks_per_stub: 2,
        seed: 11,
        ..Default::default()
    }
    .build();
    let regionals = topo.tier_members(Tier::Regional);
    let mut svc = AnycastService::new("B-Root");
    svc.add_site("LAX", regionals[0], cities::LAX);
    svc.add_site("MIA", regionals[1], cities::MIA);
    (topo, svc)
}

/// A scenario with a routing event inside the timeline, so resumed runs
/// cross real state changes, not just a static fixed point.
fn eventful_scenario() -> Scenario {
    let mut sc = Scenario::new();
    sc.drain(
        0,
        Timestamp::from_days(2).as_secs(),
        Timestamp::from_days(4).as_secs(),
        "op",
    );
    sc
}

fn days(n: i64) -> Vec<Timestamp> {
    (0..n).map(Timestamp::from_days).collect()
}

/// Drive a recoverable campaign to completion through a sink that kills
/// the process after every single durable sweep. Every run makes exactly
/// one sweep of progress, so a timeline of `T` sweeps resumes `T` times —
/// exercising every possible crash boundary in one chain.
fn run_killed_after_every_sweep<Row: Clone, R>(
    targets: usize,
    mut attempt: impl FnMut(&mut MemorySink<Row>) -> fenrir_core::error::Result<R>,
) -> (R, usize) {
    let mut sink = MemorySink::new(targets).kill_after(1);
    let mut crashes = 0;
    loop {
        match attempt(&mut sink) {
            Ok(r) => return (r, crashes),
            Err(Error::CampaignAborted { .. }) => {
                crashes += 1;
                assert!(crashes <= 1000, "campaign never completed");
                sink.rearm(Some(1));
            }
            Err(e) => panic!("unexpected campaign error: {e:?}"),
        }
    }
}

fn assert_series_identical(a: &VectorSeries, b: &VectorSeries) {
    assert_eq!(a.len(), b.len(), "series length");
    let names = |s: &VectorSeries| -> Vec<String> {
        s.sites().iter().map(|(_, n)| n.to_string()).collect()
    };
    assert_eq!(names(a), names(b), "site tables");
    for (i, (va, vb)) in a.vectors().iter().zip(b.vectors()).enumerate() {
        assert_eq!(va, vb, "vector {i} differs");
    }
}

fn assert_health_identical(a: &[CampaignHealth], b: &[CampaignHealth]) {
    assert_eq!(a, b, "health records");
}

#[test]
fn verfploeter_resumes_bit_identically_at_every_boundary() {
    let (topo, svc) = setup();
    let sc = eventful_scenario();
    let times = days(6);
    let vp = Verfploeter::default();
    let cfg = RunnerConfig::default();
    let targets = topo.all_blocks().len();

    let straight = vp.run_with(&topo, &svc, &sc, &times, &cfg, None).unwrap();
    let (resumed, crashes) = run_killed_after_every_sweep(targets, |sink| {
        vp.run_recoverable(&topo, &svc, &sc, &times, &cfg, None, sink)
    });
    assert_eq!(crashes, times.len(), "one crash per durable sweep");
    assert_series_identical(&straight.series, &resumed.series);
    assert_health_identical(&straight.health, &resumed.health);
    assert_eq!(straight.blocks, resumed.blocks);
}

#[test]
fn verfploeter_resumes_bit_identically_from_each_single_kill() {
    // Complement to the chained test: for each sweep k, kill exactly once
    // after sweep k, resume once, and compare — so a single long-lived
    // resume is checked at every boundary, not just single-sweep hops.
    let (topo, svc) = setup();
    let sc = eventful_scenario();
    let times = days(5);
    let vp = Verfploeter::default();
    let cfg = RunnerConfig::default();
    let targets = topo.all_blocks().len();

    let straight = vp.run_with(&topo, &svc, &sc, &times, &cfg, None).unwrap();
    for kill_after in 1..=times.len() {
        let mut sink = MemorySink::new(targets).kill_after(kill_after);
        let err = vp
            .run_recoverable(&topo, &svc, &sc, &times, &cfg, None, &mut sink)
            .unwrap_err();
        assert!(matches!(err, Error::CampaignAborted { .. }), "{err:?}");
        sink.rearm(None);
        let resumed = vp
            .run_recoverable(&topo, &svc, &sc, &times, &cfg, None, &mut sink)
            .unwrap();
        assert_series_identical(&straight.series, &resumed.series);
        assert_health_identical(&straight.health, &resumed.health);
    }
}

#[test]
fn atlas_resumes_bit_identically_at_every_boundary() {
    let (topo, svc) = setup();
    let sc = eventful_scenario();
    let times = days(6);
    let campaign = AtlasCampaign {
        vantage_points: 25,
        ..Default::default()
    };
    let cfg = RunnerConfig::default();

    let straight = campaign
        .run_with(&topo, &svc, &sc, &times, &cfg, None)
        .unwrap();
    let (resumed, crashes) = run_killed_after_every_sweep(25, |sink| {
        campaign.run_recoverable(&topo, &svc, &sc, &times, &cfg, None, sink)
    });
    assert_eq!(crashes, times.len());
    assert_series_identical(&straight.series, &resumed.series);
    assert_health_identical(&straight.health, &resumed.health);
    assert_eq!(straight.vp_ases, resumed.vp_ases);
}

#[test]
fn traceroute_resumes_bit_identically_at_every_boundary() {
    let (topo, _svc) = setup();
    let src = topo.tier_members(Tier::Stub)[0];
    let sc = Scenario::new();
    let times = days(5);
    let campaign = TracerouteCampaign {
        source: src,
        max_hops: 4,
        ..Default::default()
    };
    let cfg = RunnerConfig::default();
    let targets = topo.all_blocks().len();

    let straight = campaign.run_with(&topo, &sc, &times, &cfg, None).unwrap();
    let (resumed, crashes) = run_killed_after_every_sweep(targets, |sink| {
        campaign.run_recoverable(&topo, &sc, &times, &cfg, None, sink)
    });
    assert_eq!(crashes, times.len());
    assert_eq!(straight.hop_series.len(), resumed.hop_series.len());
    for (a, b) in straight.hop_series.iter().zip(&resumed.hop_series) {
        assert_series_identical(a, b);
    }
    assert_health_identical(&straight.health, &resumed.health);
    assert_eq!(straight.blocks, resumed.blocks);
}

#[test]
fn ednscs_resumes_bit_identically_at_every_boundary() {
    let (topo, svc) = setup();
    let sc = eventful_scenario();
    let times = days(6);
    let campaign = EdnsCsCampaign {
        hostname: "www.wikipedia.org".into(),
        policy: FrontendPolicy::Geo {
            sticky_return_frac: 0.3,
        },
        loss_prob: 0.05,
        seed: 77,
    };
    let cfg = RunnerConfig::default();
    let targets = topo.all_blocks().len();

    let straight = campaign
        .run_with(&topo, &svc, &sc, &times, &cfg, None)
        .unwrap();
    let (resumed, crashes) = run_killed_after_every_sweep(targets, |sink| {
        campaign.run_recoverable(&topo, &svc, &sc, &times, &cfg, None, sink)
    });
    assert_eq!(crashes, times.len());
    assert_series_identical(&straight.series, &resumed.series);
    assert_health_identical(&straight.health, &resumed.health);
    assert_eq!(straight.blocks, resumed.blocks);
}

#[test]
fn latency_resumes_bit_identically_at_every_boundary() {
    let (topo, svc) = setup();
    let sc = eventful_scenario();
    let times = days(6);
    let blocks: Vec<BlockId> = topo.all_blocks().iter().map(|&(b, _)| b).collect();
    let prober = LatencyProber::default();
    let cfg = RunnerConfig::default();

    let straight = prober
        .probe_with(&topo, &svc, &sc, &blocks, &times, &cfg, None)
        .unwrap();
    let (resumed, crashes) = run_killed_after_every_sweep(blocks.len(), |sink| {
        prober.probe_recoverable(&topo, &svc, &sc, &blocks, &times, &cfg, None, sink)
    });
    assert_eq!(crashes, times.len());
    assert_eq!(straight.panels.len(), resumed.panels.len());
    for (i, (a, b)) in straight.panels.iter().zip(&resumed.panels).enumerate() {
        // Compare RTTs by bit pattern: resume must be exact, not merely
        // approximately equal.
        let bits = |p: &fenrir_core::latency::LatencyPanel| -> Vec<Option<u64>> {
            p.samples().iter().map(|s| s.map(f64::to_bits)).collect()
        };
        assert_eq!(bits(a), bits(b), "panel {i} differs");
    }
    assert_health_identical(&straight.health, &resumed.health);
}

#[test]
fn resume_survives_an_active_fault_plan() {
    // The fault RNG stream must seek on resume exactly like the campaign
    // RNG: a killed/resumed run under bursty loss and corruption still
    // replays bit-identically.
    let (topo, svc) = setup();
    let sc = eventful_scenario();
    let times = days(6);
    let vp = Verfploeter::default();
    let cfg = RunnerConfig {
        max_retries: 1,
        ..Default::default()
    };
    let faults = FaultPlan::new(0xFA_17).with_bursty_loss(Default::default());
    let targets = topo.all_blocks().len();

    let straight = vp
        .run_with(&topo, &svc, &sc, &times, &cfg, Some(&faults))
        .unwrap();
    let (resumed, crashes) = run_killed_after_every_sweep(targets, |sink| {
        vp.run_recoverable(&topo, &svc, &sc, &times, &cfg, Some(&faults), sink)
    });
    assert_eq!(crashes, times.len());
    assert_series_identical(&straight.series, &resumed.series);
    assert_health_identical(&straight.health, &resumed.health);
}

#[test]
fn injected_divergence_falls_back_and_surfaces_in_health() {
    // A release-build divergence guard: poisoning the incremental routing
    // state at a quiet sweep must be detected, repaired via batch fallback
    // (results unchanged), and surfaced in that sweep's health record —
    // without aborting the campaign. Sweep 5 is quiet (the drain window
    // ended at day 4): a poison injected on a sweep whose scenario event
    // withdraws the same origin would legitimately reconverge to the
    // correct fixed point and be undetectable.
    let (topo, svc) = setup();
    let sc = eventful_scenario();
    let times = days(6);
    let vp = Verfploeter::default();
    let cfg = RunnerConfig::default();

    let clean_plan = FaultPlan::new(0xD1_7E);
    let poisoned_plan = FaultPlan::new(0xD1_7E).with_divergence_at(5);

    let clean = vp
        .run_with(&topo, &svc, &sc, &times, &cfg, Some(&clean_plan))
        .unwrap();
    let poisoned = vp
        .run_with(&topo, &svc, &sc, &times, &cfg, Some(&poisoned_plan))
        .unwrap();

    // The guard repaired the poisoned state: results are unaffected.
    assert_series_identical(&clean.series, &poisoned.series);
    assert_eq!(poisoned.health.len(), times.len());
    assert!(
        poisoned.health[5].divergences > 0,
        "divergence not surfaced: {:?}",
        poisoned.health[5]
    );
    let clean_total: usize = clean.health.iter().map(|h| h.divergences).sum();
    assert_eq!(clean_total, 0, "clean run must not report divergences");
}
