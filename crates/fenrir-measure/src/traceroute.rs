//! Enterprise traceroute campaigns (§2.3.2).
//!
//! The paper maps a multi-homed enterprise's routing cone by tracerouting
//! from one server "to all routable network prefixes", keeping the first 10
//! hops, and asking: *which upstream carries each destination at hop k?*
//! Catchments at hop `k` are the transit networks `k` hops out — the
//! "focus" an operator can widen or narrow.
//!
//! The simulator computes the policy-routing path from the source AS to
//! every destination block and emits **one routing-vector series per hop
//! depth**, with each hop's AS label as the catchment. Imperfections are
//! modelled as the paper describes: some ASes never answer traceroute
//! (private addressing / filtering — a persistent set) and individual hop
//! responses are lost at random; both show as `Unknown`, which the paper's
//! spatial gap-fill ([`TracerouteResult::fill_gaps`], using the
//! nearest-viable-hop rule) repairs.

use crate::checkpoint::{CampaignSink, NullSink};
use crate::fault::FaultPlan;
use crate::runner::{CampaignRunner, ProbeOutcome, ProbeReply, RunnerConfig};
use fenrir_core::clean::nearest_viable;
use fenrir_core::error::{Error, Result};
use fenrir_core::health::CampaignHealth;
use fenrir_core::ids::SiteTable;
use fenrir_core::series::VectorSeries;
use fenrir_core::time::Timestamp;
use fenrir_core::vector::{Catchment, RoutingVector, CODE_UNKNOWN};
use fenrir_netsim::events::Scenario;
use fenrir_netsim::prefix::BlockId;
use fenrir_netsim::topology::{AsId, Topology};
use fenrir_wire::icmp::{IcmpKind, IcmpPacket};
use fenrir_wire::ipv4::{protocol, Ipv4Packet};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration of a traceroute campaign.
#[derive(Debug, Clone)]
pub struct TracerouteCampaign {
    /// The enterprise AS probing outward.
    pub source: AsId,
    /// Keep at most this many hops (paper: 10).
    pub max_hops: usize,
    /// Probability any single hop response is lost.
    pub hop_loss_prob: f64,
    /// Fraction of ASes that never answer traceroute (private addresses or
    /// ICMP filtering); the set is persistent across the campaign.
    pub filtered_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TracerouteCampaign {
    fn default() -> Self {
        TracerouteCampaign {
            source: AsId(0),
            max_hops: 10,
            hop_loss_prob: 0.02,
            filtered_frac: 0.1,
            seed: 0x72ACE,
        }
    }
}

/// Campaign output: per-hop series over the same destination blocks.
#[derive(Debug, Clone)]
pub struct TracerouteResult {
    /// `hop_series[k]` is the series for hop `k+1`; networks are
    /// destination blocks, catchment states are AS labels (`"AS17"`).
    pub hop_series: Vec<VectorSeries>,
    /// Destination blocks, aligned with vector positions.
    pub blocks: Vec<BlockId>,
    /// Per-observation campaign health (a destination counts as covered
    /// when its traceroute ran, regardless of per-hop gaps).
    pub health: Vec<CampaignHealth>,
}

impl TracerouteCampaign {
    /// Run the campaign over `times`. The routing config at each instant
    /// comes from `scenario` (link failures, preference changes).
    pub fn run(
        &self,
        topo: &Topology,
        scenario: &Scenario,
        times: &[Timestamp],
    ) -> TracerouteResult {
        self.run_with(topo, scenario, times, &RunnerConfig::default(), None)
            .expect("default traceroute campaign cannot fail")
    }

    /// Run the campaign under an explicit execution policy and an
    /// optional fault plan. `run` is `run_with` with defaults.
    pub fn run_with(
        &self,
        topo: &Topology,
        scenario: &Scenario,
        times: &[Timestamp],
        cfg: &RunnerConfig,
        faults: Option<&FaultPlan>,
    ) -> Result<TracerouteResult> {
        self.run_recoverable(topo, scenario, times, cfg, faults, &mut NullSink)
    }

    /// [`TracerouteCampaign::run_with`] streaming per-sweep progress into
    /// a durable [`CampaignSink`] (one checkpoint row = one sweep's
    /// hop-major code rows); resumes bit-identically from a killed run.
    pub fn run_recoverable(
        &self,
        topo: &Topology,
        scenario: &Scenario,
        times: &[Timestamp],
        cfg: &RunnerConfig,
        faults: Option<&FaultPlan>,
        sink: &mut dyn CampaignSink<Vec<Vec<u16>>>,
    ) -> Result<TracerouteResult> {
        for (name, p) in [
            ("hop_loss_prob", self.hop_loss_prob),
            ("filtered_frac", self.filtered_frac),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(Error::InvalidParameter {
                    name,
                    message: format!("must lie in [0, 1], got {p}"),
                });
            }
        }
        if self.max_hops == 0 {
            return Err(Error::InvalidParameter {
                name: "max_hops",
                message: "a traceroute must keep at least one hop".into(),
            });
        }
        let blocks: Vec<BlockId> = topo.all_blocks().iter().map(|&(b, _)| b).collect();
        let owners: Vec<AsId> = blocks
            .iter()
            .map(|&b| topo.owner_of(b).expect("owned"))
            .collect();
        // Shared site table: every AS gets a label; SiteId == AS index.
        let sites = SiteTable::from_names(topo.nodes().iter().map(|n| format!("AS{}", n.id.0)));

        // Persistent filtered set.
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let filtered: Vec<bool> = topo
            .nodes()
            .iter()
            .map(|_| rng.gen_bool(self.filtered_frac))
            .collect();

        let resume = sink.resume()?;
        let (mut runner, mut rows, start) = match &resume {
            Some(rs) => {
                let runner = CampaignRunner::restore(cfg, faults, blocks.len(), times.len(), rs)?;
                rng.set_word_pos(rs.campaign_rng_pos as u128);
                (runner, rs.rows.clone(), rs.next_sweep)
            }
            None => (
                CampaignRunner::new(cfg, faults, blocks.len(), times.len())?,
                Vec::with_capacity(times.len()),
                0,
            ),
        };
        // One live route table per distinct destination AS, created lazily
        // on first use and advanced incrementally across sweeps.
        let mut tables = crate::routes::DestRoutes::new();
        for (sweep, &t) in times.iter().enumerate().skip(start) {
            let cfg_t = scenario.config_at(t.as_secs());
            runner.begin_sweep(t);
            if runner.divergence_scheduled() {
                tables.poison(topo);
            }
            let mut vectors: Vec<RoutingVector> = (0..self.max_hops)
                .map(|_| RoutingVector::unknown(t, blocks.len()))
                .collect();
            for (n, &dest) in owners.iter().enumerate() {
                let table = tables.at(topo, dest, &cfg_t);
                let path = table.full_path(self.source);
                // One probe per destination: the whole traceroute either
                // runs (with per-hop gaps) or is lost/retried as a unit.
                let outcome = runner.probe(n, |wire| {
                    let Some(path) = &path else {
                        // Unreachable destination: every hop reports err.
                        return ProbeReply::Response(
                            (0..self.max_hops).map(|k| (k, Catchment::Err)).collect(),
                        );
                    };
                    let mut hops: Vec<(usize, Catchment)> = Vec::with_capacity(self.max_hops);
                    // path[0] is the source; hop k is path[k].
                    for k in 1..=self.max_hops {
                        match path.get(k) {
                            Some(&hop_as) => {
                                // Each hop answer is a real packet
                                // exchange: an IPv4 ICMP echo with TTL = k
                                // leaves the source, every router on the
                                // path decrements the TTL, and the hop
                                // where it dies answers with
                                // time-exceeded. Lost or filtered hops
                                // stay Unknown.
                                if filtered[hop_as.index()] || rng.gen_bool(self.hop_loss_prob) {
                                    continue;
                                }
                                let echo =
                                    IcmpPacket::echo_request(n as u16, k as u16, vec![0u8; 32]);
                                let mut pkt = Ipv4Packet::new(
                                    protocol::ICMP,
                                    [10, 0, 0, 1],
                                    blocks[n].addr(1),
                                    echo.encode(),
                                )
                                .with_ttl(k as u8);
                                // Forward through the first k-1 routers.
                                let mut died_at = None;
                                for step in 1..=k {
                                    if !pkt.forward() {
                                        died_at = Some(step);
                                        break;
                                    }
                                }
                                debug_assert_eq!(died_at, Some(k), "TTL k dies at hop k");
                                let te = IcmpPacket::time_exceeded(&pkt.encode().expect("fits"));
                                let mut te_bytes = te.encode();
                                wire.corrupt(&mut te_bytes);
                                match IcmpPacket::decode(&te_bytes) {
                                    Ok(back) if back.kind == IcmpKind::TimeExceeded(0) => {
                                        hops.push((
                                            k - 1,
                                            Catchment::Site(fenrir_core::ids::SiteId(
                                                hop_as.0 as u16,
                                            )),
                                        ));
                                    }
                                    // A mangled time-exceeded leaves this
                                    // hop Unknown but not the whole trace.
                                    _ => wire.note_decode_failure(),
                                }
                            }
                            // Path ended before hop k: the probe reached
                            // the destination; deeper hops have no
                            // transit entity.
                            None => hops.push((k - 1, Catchment::Other)),
                        }
                    }
                    ProbeReply::Response(hops)
                });
                if let ProbeOutcome::Response(hops) = outcome {
                    for (ki, c) in hops {
                        vectors[ki].set(n, c);
                    }
                }
            }
            runner.note_divergences(tables.drain_divergences());
            let mut row: Vec<Vec<u16>> = vectors.iter().map(|v| v.codes().to_vec()).collect();
            // A compromised destination lies at every hop depth; replayed
            // lies draw from the same hop's recorded history.
            for (k, hop_row) in row.iter_mut().enumerate() {
                runner.tamper_codes(hop_row, &|lag, n| {
                    sweep
                        .checked_sub(lag)
                        .and_then(|s| rows.get(s))
                        .map(|r| r[k][n])
                });
            }
            sink.record(runner.checkpoint(row.clone(), rng.get_word_pos() as u64))?;
            debug_assert_eq!(rows.len(), sweep);
            rows.push(row);
        }
        let (order, health) = runner.finish();
        let mut hop_series: Vec<VectorSeries> = (0..self.max_hops)
            .map(|_| VectorSeries::new(sites.clone(), blocks.len()))
            .collect();
        for &(orig, t) in &order {
            for (k, codes) in rows[orig].iter().enumerate() {
                let v = RoutingVector::from_codes(t, codes.clone());
                hop_series[k]
                    .push(v)
                    .expect("normalised times strictly increase");
            }
        }
        Ok(TracerouteResult {
            hop_series,
            blocks,
            health,
        })
    }
}

impl TracerouteResult {
    /// The paper's spatial gap-fill: a missing hop borrows the nearest
    /// viable hop's entity (within `limit` hops) for each destination and
    /// time. Returns the number of cells filled.
    pub fn fill_gaps(&mut self, limit: usize) -> usize {
        if self.hop_series.is_empty() {
            return 0;
        }
        let t_len = self.hop_series[0].len();
        let n_len = self.blocks.len();
        let hops = self.hop_series.len();
        let mut filled = 0;
        for ti in 0..t_len {
            for n in 0..n_len {
                let column: Vec<Option<u16>> = (0..hops)
                    .map(|k| {
                        let code = self.hop_series[k].get(ti).codes()[n];
                        (code != CODE_UNKNOWN).then_some(code)
                    })
                    .collect();
                for (k, cell) in column.iter().enumerate() {
                    if cell.is_none() {
                        if let Some(v) = nearest_viable(&column, k, limit) {
                            self.hop_series[k].get_mut(ti).codes_mut()[n] = v;
                            filled += 1;
                        }
                    }
                }
            }
        }
        filled
    }

    /// The series at hop `k` (1-based), as the paper's Figure 2 uses hop 3.
    pub fn hop(&self, k: usize) -> &VectorSeries {
        &self.hop_series[k - 1]
    }

    /// Byzantine-resilient change detection at hop `k` (1-based), sharing
    /// the campaign's per-sweep health across all hop depths.
    pub fn detect_trusted_at_hop(
        &self,
        k: usize,
        detector: &fenrir_core::detect::ChangeDetector,
        weights: &fenrir_core::weight::Weights,
        coverage_floor: f64,
        cfg: fenrir_core::trust::TrustConfig,
    ) -> Result<fenrir_core::trust::TrustedDetection> {
        fenrir_core::trust::detect_trusted(
            detector,
            self.hop(k),
            weights,
            &self.health,
            coverage_floor,
            cfg,
            None,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenrir_netsim::topology::{Tier, TopologyBuilder};

    fn setup() -> (Topology, AsId) {
        let topo = TopologyBuilder {
            transit: 3,
            regional: 8,
            stubs: 40,
            blocks_per_stub: 2,
            seed: 31,
            multihome_prob: 0.5,
            ..Default::default()
        }
        .build();
        let src = topo.tier_members(Tier::Stub)[0];
        (topo, src)
    }

    fn days(n: i64) -> Vec<Timestamp> {
        (0..n).map(Timestamp::from_days).collect()
    }

    #[test]
    fn produces_one_series_per_hop() {
        let (topo, src) = setup();
        let c = TracerouteCampaign {
            source: src,
            max_hops: 5,
            hop_loss_prob: 0.0,
            filtered_frac: 0.0,
            ..Default::default()
        };
        let r = c.run(&topo, &Scenario::new(), &days(2));
        assert_eq!(r.hop_series.len(), 5);
        assert_eq!(r.blocks.len(), 80);
        for s in &r.hop_series {
            assert_eq!(s.len(), 2);
            assert_eq!(s.networks(), 80);
        }
    }

    #[test]
    fn hop1_is_an_upstream_of_the_source() {
        let (topo, src) = setup();
        let c = TracerouteCampaign {
            source: src,
            max_hops: 3,
            hop_loss_prob: 0.0,
            filtered_frac: 0.0,
            ..Default::default()
        };
        let r = c.run(&topo, &Scenario::new(), &days(1));
        let upstreams: Vec<u16> = topo
            .neighbors(src)
            .iter()
            .map(|&(n, _)| n.0 as u16)
            .collect();
        let hop1 = r.hop(1).get(0);
        let mut seen_any = false;
        for n in 0..hop1.len() {
            if let Catchment::Site(s) = hop1.get(n) {
                assert!(
                    upstreams.contains(&s.0),
                    "hop-1 entity {s:?} is not a neighbor of the source"
                );
                seen_any = true;
            }
        }
        assert!(seen_any);
    }

    #[test]
    fn own_blocks_terminate_immediately() {
        // Destinations inside the source AS have an empty path: every hop
        // reads Other ("delivered"), the paper's filterable local prefixes.
        let (topo, src) = setup();
        let c = TracerouteCampaign {
            source: src,
            max_hops: 3,
            hop_loss_prob: 0.0,
            filtered_frac: 0.0,
            ..Default::default()
        };
        let r = c.run(&topo, &Scenario::new(), &days(1));
        let own_block_positions: Vec<usize> = r
            .blocks
            .iter()
            .enumerate()
            .filter(|&(_, b)| topo.owner_of(*b) == Some(src))
            .map(|(i, _)| i)
            .collect();
        assert!(!own_block_positions.is_empty());
        for &n in &own_block_positions {
            assert_eq!(r.hop(1).get(0).get(n), Catchment::Other);
        }
    }

    #[test]
    fn filtering_produces_unknowns_and_fill_gaps_repairs() {
        let (topo, src) = setup();
        let c = TracerouteCampaign {
            source: src,
            max_hops: 6,
            hop_loss_prob: 0.15,
            filtered_frac: 0.0,
            ..Default::default()
        };
        let mut r = c.run(&topo, &Scenario::new(), &days(2));
        let unknown_before: usize = r
            .hop_series
            .iter()
            .flat_map(|s| s.vectors())
            .map(|v| v.len() - v.known_count())
            .sum();
        assert!(unknown_before > 0, "loss must produce gaps");
        let filled = r.fill_gaps(2);
        assert!(filled > 0);
        let unknown_after: usize = r
            .hop_series
            .iter()
            .flat_map(|s| s.vectors())
            .map(|v| v.len() - v.known_count())
            .sum();
        assert!(unknown_after < unknown_before);
    }

    #[test]
    fn deterministic_under_seed() {
        let (topo, src) = setup();
        let c = TracerouteCampaign {
            source: src,
            max_hops: 4,
            ..Default::default()
        };
        let a = c.run(&topo, &Scenario::new(), &days(2));
        let b = c.run(&topo, &Scenario::new(), &days(2));
        for (sa, sb) in a.hop_series.iter().zip(&b.hop_series) {
            for (va, vb) in sa.vectors().iter().zip(sb.vectors()) {
                assert_eq!(va, vb);
            }
        }
    }

    #[test]
    fn preference_change_shifts_hop_catchments() {
        // A third-party preference pin at the source's provider level must
        // visibly change which transit carries destinations at hop 2+.
        let (topo, src) = setup();
        let providers: Vec<AsId> = topo
            .neighbors(src)
            .iter()
            .filter(|&&(_, rel)| rel == fenrir_netsim::topology::Relationship::Provider)
            .map(|&(n, _)| n)
            .collect();
        if providers.len() < 2 {
            // Single-homed stub under this seed: nothing to steer; the
            // scenario builders always pick multihomed sources.
            return;
        }
        let mut sc = Scenario::new();
        // From day 2, the source pins everything to its second provider.
        sc.third_party_prefer(
            src,
            providers[1],
            Timestamp::from_days(2).as_secs(),
            i64::MAX,
        );
        let c = TracerouteCampaign {
            source: src,
            max_hops: 4,
            hop_loss_prob: 0.0,
            filtered_frac: 0.0,
            ..Default::default()
        };
        let r = c.run(&topo, &sc, &days(4));
        let hop1 = r.hop(1);
        // Count destinations via provider[1] at hop 1 before/after.
        let count_via = |v: &fenrir_core::vector::RoutingVector, asid: AsId| {
            (0..v.len())
                .filter(|&n| v.get(n) == Catchment::Site(fenrir_core::ids::SiteId(asid.0 as u16)))
                .count()
        };
        let before = count_via(hop1.get(1), providers[1]);
        let after = count_via(hop1.get(2), providers[1]);
        assert!(
            after > before,
            "pin must move destinations to provider {} (before {before}, after {after})",
            providers[1]
        );
    }
}
