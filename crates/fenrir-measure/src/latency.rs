//! Latency probing (§2.8): RTT panels aligned with catchment vectors.
//!
//! The paper reuses two existing latency sources rather than running new
//! measurements: RIPE Atlas built-in RTTs to the root servers, and the
//! Trinocular outage-detection system's ICMP probing of ~5M /24 blocks
//! "between 1 and 16 targets per block every 11 minutes". This module
//! simulates that panel: for each observation instant it derives each
//! block's RTT to its *current* anycast site from great-circle distance,
//! adds last-mile jitter, and samples coverage (not every block yields an
//! RTT every round).

use crate::checkpoint::{CampaignSink, NullSink};
use crate::fault::FaultPlan;
use crate::runner::{CampaignRunner, ProbeOutcome, ProbeReply, RunnerConfig};
use fenrir_core::error::{Error, Result};
use fenrir_core::health::CampaignHealth;
use fenrir_core::ids::SiteTable;
use fenrir_core::latency::LatencyPanel;
use fenrir_core::series::VectorSeries;
use fenrir_core::time::Timestamp;
use fenrir_core::vector::{RoutingVector, CODE_OTHER, CODE_UNKNOWN};
use fenrir_netsim::anycast::AnycastService;
use fenrir_netsim::events::Scenario;
use fenrir_netsim::prefix::BlockId;
use fenrir_netsim::topology::Topology;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A Trinocular-style latency prober.
#[derive(Debug, Clone)]
pub struct LatencyProber {
    /// Probability a block yields an RTT sample in a given round.
    pub coverage: f64,
    /// Uniform jitter added to the idealized RTT, in ms (models queueing
    /// and last-mile variation).
    pub jitter_ms: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LatencyProber {
    fn default() -> Self {
        LatencyProber {
            coverage: 0.9,
            jitter_ms: 8.0,
            seed: 0x1A7E_0001,
        }
    }
}

/// Output of a latency campaign run through the campaign runner.
#[derive(Debug, Clone)]
pub struct LatencyResult {
    /// One panel per observation, aligned with `blocks`.
    pub panels: Vec<LatencyPanel>,
    /// Per-observation campaign health, aligned with the panels.
    pub health: Vec<CampaignHealth>,
}

/// Quantize RTT samples into fixed-width latency bands so the catchment
/// trust machinery applies to RTT panels: band `k` covers
/// `[k*band_ms, (k+1)*band_ms)` ms, missing samples stay unknown. A
/// byzantine prober shifting RTTs by more than one band width becomes a
/// band "catchment" change and is scored like any other disagreement.
pub fn latency_band_codes(samples: &[Option<f64>], band_ms: f64) -> Vec<u16> {
    samples
        .iter()
        .map(|s| match s {
            Some(rtt) => ((rtt.max(0.0) / band_ms).floor() as u16).min(CODE_OTHER - 1),
            None => CODE_UNKNOWN,
        })
        .collect()
}

impl LatencyResult {
    /// The panels re-expressed as a latency-band [`VectorSeries`] (see
    /// [`latency_band_codes`]).
    pub fn band_series(&self, band_ms: f64) -> Result<VectorSeries> {
        if band_ms <= 0.0 || !band_ms.is_finite() {
            return Err(Error::InvalidParameter {
                name: "band_ms",
                message: format!("must be positive and finite, got {band_ms}"),
            });
        }
        let networks = self.panels.first().map(|p| p.len()).unwrap_or(0);
        let rows: Vec<Vec<u16>> = self
            .panels
            .iter()
            .map(|p| latency_band_codes(p.samples(), band_ms))
            .collect();
        let bands = rows
            .iter()
            .flatten()
            .filter(|&&c| c != CODE_UNKNOWN)
            .map(|&c| c as usize + 1)
            .max()
            .unwrap_or(0);
        let sites = SiteTable::from_names((0..bands).map(|k| format!("band-{k}")));
        let mut series = VectorSeries::new(sites, networks);
        for (p, codes) in self.panels.iter().zip(rows) {
            series.push(RoutingVector::from_codes(p.time(), codes))?;
        }
        Ok(series)
    }

    /// Byzantine-resilient change detection over the RTT panels, after
    /// quantizing them into `band_ms`-wide latency bands.
    pub fn detect_trusted(
        &self,
        band_ms: f64,
        detector: &fenrir_core::detect::ChangeDetector,
        weights: &fenrir_core::weight::Weights,
        coverage_floor: f64,
        cfg: fenrir_core::trust::TrustConfig,
    ) -> Result<fenrir_core::trust::TrustedDetection> {
        let series = self.band_series(band_ms)?;
        fenrir_core::trust::detect_trusted(
            detector,
            &series,
            weights,
            &self.health,
            coverage_floor,
            cfg,
            None,
        )
    }
}

impl LatencyProber {
    /// Produce one panel per observation time for the given blocks, with
    /// RTT measured toward the anycast site each block's AS currently
    /// lands on. Blocks whose AS has no route yield no sample.
    pub fn probe(
        &self,
        topo: &Topology,
        base: &AnycastService,
        scenario: &Scenario,
        blocks: &[BlockId],
        times: &[Timestamp],
    ) -> Vec<LatencyPanel> {
        self.probe_with(
            topo,
            base,
            scenario,
            blocks,
            times,
            &RunnerConfig::default(),
            None,
        )
        .expect("default latency campaign cannot fail")
        .panels
    }

    /// Like [`probe`](Self::probe), but executed through a configurable
    /// [`CampaignRunner`] with an optional fault plan, and returning the
    /// per-observation health record alongside the panels.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_with(
        &self,
        topo: &Topology,
        base: &AnycastService,
        scenario: &Scenario,
        blocks: &[BlockId],
        times: &[Timestamp],
        cfg: &RunnerConfig,
        faults: Option<&FaultPlan>,
    ) -> Result<LatencyResult> {
        self.probe_recoverable(
            topo,
            base,
            scenario,
            blocks,
            times,
            cfg,
            faults,
            &mut NullSink,
        )
    }

    /// Like [`probe_with`](Self::probe_with), but checkpointing every
    /// completed sweep to `sink` and resuming from the sink's durable
    /// state if one exists. Resumed campaigns replay bit-identically.
    #[allow(clippy::too_many_arguments)]
    pub fn probe_recoverable(
        &self,
        topo: &Topology,
        base: &AnycastService,
        scenario: &Scenario,
        blocks: &[BlockId],
        times: &[Timestamp],
        cfg: &RunnerConfig,
        faults: Option<&FaultPlan>,
        sink: &mut dyn CampaignSink<Vec<Option<f64>>>,
    ) -> Result<LatencyResult> {
        if !(0.0..=1.0).contains(&self.coverage) {
            return Err(Error::InvalidParameter {
                name: "coverage",
                message: format!("must lie in [0, 1], got {}", self.coverage),
            });
        }
        if self.jitter_ms <= 0.0 || !self.jitter_ms.is_finite() {
            return Err(Error::InvalidParameter {
                name: "jitter_ms",
                message: format!("must be positive and finite, got {}", self.jitter_ms),
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let owners: Vec<_> = blocks
            .iter()
            .map(|&b| topo.owner_of(b).expect("owned block"))
            .collect();
        let resume = sink.resume()?;
        let (mut runner, mut rows, start): (_, Vec<Vec<Option<f64>>>, usize) = match &resume {
            Some(rs) => {
                let runner = CampaignRunner::restore(cfg, faults, blocks.len(), times.len(), rs)?;
                rng.set_word_pos(rs.campaign_rng_pos as u128);
                (runner, rs.rows.clone(), rs.next_sweep)
            }
            None => (
                CampaignRunner::new(cfg, faults, blocks.len(), times.len())?,
                Vec::with_capacity(times.len()),
                0,
            ),
        };
        let mut live = crate::routes::ScenarioRoutes::new();
        for (sweep, &t) in times.iter().enumerate().skip(start) {
            runner.begin_sweep(t);
            if runner.divergence_scheduled() {
                live.poison(topo);
            }
            let (svc, routes) = live.at(topo, base, scenario, t.as_secs());
            let mut samples: Vec<Option<f64>> = vec![None; blocks.len()];
            for (n, &owner) in owners.iter().enumerate() {
                let outcome = runner.probe(n, |_wire| {
                    if !rng.gen_bool(self.coverage) {
                        return ProbeReply::NoResponse;
                    }
                    match svc.client_rtt_ms(topo, routes, owner) {
                        // A probe that completes against an unreachable
                        // block is an answer ("no route"), not a timeout.
                        None => ProbeReply::Response(None),
                        Some(base_rtt) => ProbeReply::Response(Some(
                            base_rtt + rng.gen_range(0.0..self.jitter_ms),
                        )),
                    }
                });
                if let ProbeOutcome::Response(s) = outcome {
                    samples[n] = s;
                }
            }
            runner.note_divergences(live.drain_divergences());
            runner.tamper_latency(&mut samples, &|lag, n| {
                sweep
                    .checked_sub(lag)
                    .and_then(|s| rows.get(s))
                    .map(|r| r[n])
            });
            sink.record(runner.checkpoint(samples.clone(), rng.get_word_pos() as u64))?;
            debug_assert_eq!(rows.len(), sweep);
            rows.push(samples);
        }
        let (order, health) = runner.finish();
        let panels = order
            .into_iter()
            .map(|(orig, t)| LatencyPanel::new(t, rows[orig].clone()))
            .collect();
        Ok(LatencyResult { panels, health })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenrir_core::ids::SiteId;
    use fenrir_core::latency::LatencySummary;
    use fenrir_core::vector::{Catchment, RoutingVector};
    use fenrir_core::weight::Weights;
    use fenrir_netsim::geo::cities;
    use fenrir_netsim::topology::{Tier, TopologyBuilder};

    fn setup() -> (Topology, AnycastService, Vec<BlockId>) {
        let topo = TopologyBuilder {
            transit: 3,
            regional: 6,
            stubs: 40,
            blocks_per_stub: 1,
            seed: 51,
            ..Default::default()
        }
        .build();
        let regionals = topo.tier_members(Tier::Regional);
        let mut svc = AnycastService::new("B-Root");
        svc.add_site("LAX", regionals[0], cities::LAX);
        svc.add_site("ARI", regionals[1], cities::ARI);
        let blocks: Vec<BlockId> = topo.all_blocks().iter().map(|&(b, _)| b).collect();
        (topo, svc, blocks)
    }

    fn days(n: i64) -> Vec<Timestamp> {
        (0..n).map(Timestamp::from_days).collect()
    }

    #[test]
    fn panels_align_with_blocks_and_times() {
        let (topo, svc, blocks) = setup();
        let p = LatencyProber::default();
        let panels = p.probe(&topo, &svc, &Scenario::new(), &blocks, &days(3));
        assert_eq!(panels.len(), 3);
        for panel in &panels {
            assert_eq!(panel.len(), blocks.len());
        }
    }

    #[test]
    fn coverage_controls_sample_density() {
        let (topo, svc, blocks) = setup();
        let p = LatencyProber {
            coverage: 0.5,
            ..Default::default()
        };
        let panels = p.probe(&topo, &svc, &Scenario::new(), &blocks, &days(5));
        let total: usize = panels
            .iter()
            .map(|p| p.samples().iter().filter(|s| s.is_some()).count())
            .sum();
        let frac = total as f64 / (blocks.len() * 5) as f64;
        assert!((0.35..0.65).contains(&frac), "sample fraction {frac}");
    }

    #[test]
    fn rtts_are_positive_and_plausible() {
        let (topo, svc, blocks) = setup();
        let p = LatencyProber::default();
        let panels = p.probe(&topo, &svc, &Scenario::new(), &blocks, &days(1));
        for s in panels[0].samples().iter().flatten() {
            assert!((2.0..400.0).contains(s), "rtt {s}");
        }
    }

    #[test]
    fn drain_changes_the_latency_distribution() {
        // Drain LAX: clients previously near LAX now cross to ARI (Chile),
        // so the overall mean rises — the paper's Figure 4 coupling.
        let (topo, svc, blocks) = setup();
        let mut sc = Scenario::new();
        sc.drain(
            0,
            Timestamp::from_days(2).as_secs(),
            Timestamp::from_days(4).as_secs(),
            "op",
        );
        let p = LatencyProber {
            coverage: 1.0,
            jitter_ms: 0.5,
            seed: 9,
        };
        let panels = p.probe(&topo, &svc, &sc, &blocks, &days(5));
        // Build matching vectors to summarise per catchment.
        let mean_of = |panel: &LatencyPanel| {
            let v = RoutingVector::from_catchments(
                panel.time(),
                vec![Catchment::Site(SiteId(0)); panel.len()],
            );
            LatencySummary::compute(&v, panel, &Weights::uniform(panel.len()), 1)
                .unwrap()
                .overall_mean_ms
                .unwrap()
        };
        let before = mean_of(&panels[1]);
        let during = mean_of(&panels[2]);
        assert!(
            during > before,
            "overall mean must rise during the drain ({before} -> {during})"
        );
    }

    #[test]
    fn unreachable_blocks_have_no_sample() {
        let (topo, svc, blocks) = setup();
        let mut sc = Scenario::new();
        sc.drain(
            0,
            Timestamp::from_days(0).as_secs(),
            Timestamp::from_days(1).as_secs(),
            "op",
        );
        sc.drain(
            1,
            Timestamp::from_days(0).as_secs(),
            Timestamp::from_days(1).as_secs(),
            "op",
        );
        let p = LatencyProber {
            coverage: 1.0,
            ..Default::default()
        };
        let panels = p.probe(&topo, &svc, &sc, &blocks, &days(1));
        assert!(panels[0].samples().iter().all(|s| s.is_none()));
    }

    #[test]
    fn probing_is_deterministic() {
        let (topo, svc, blocks) = setup();
        let p = LatencyProber::default();
        let a = p.probe(&topo, &svc, &Scenario::new(), &blocks, &days(2));
        let b = p.probe(&topo, &svc, &Scenario::new(), &blocks, &days(2));
        assert_eq!(a, b);
    }
}
