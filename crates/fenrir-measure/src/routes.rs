//! Incremental route maintenance for campaign loops.
//!
//! Every campaign walks a scenario timeline and needs the routing state at
//! each observation instant. Day-to-day that state is almost always
//! identical — a scenario event lands on a handful of days out of
//! thousands — so recomputing the global Gao–Rexford fixed point per
//! instant wastes nearly all of its work. The helpers here keep a live
//! [`IncrementalRoutes`] per route computation, diff each instant against
//! the previous one, and reconverge only the perturbed neighborhood. Debug
//! builds cross-check every transition against a from-scratch computation
//! (see [`IncrementalRoutes::advance_to`]), so campaign results are
//! bit-for-bit identical to the batch path.

use fenrir_netsim::anycast::AnycastService;
use fenrir_netsim::events::Scenario;
use fenrir_netsim::routing::{RouteTable, RoutingConfig};
use fenrir_netsim::topology::{AsId, Topology};
use fenrir_netsim::IncrementalRoutes;
use std::collections::HashMap;

/// A live anycast route table advanced along a scenario timeline.
#[derive(Debug, Default)]
pub(crate) struct ScenarioRoutes {
    inc: Option<IncrementalRoutes>,
}

impl ScenarioRoutes {
    pub(crate) fn new() -> Self {
        ScenarioRoutes::default()
    }

    /// The service and routes at `secs`: materializes the scenario state
    /// and reconverges the table from the previous instant's fixed point.
    pub(crate) fn at(
        &mut self,
        topo: &Topology,
        base: &AnycastService,
        scenario: &Scenario,
        secs: i64,
    ) -> (AnycastService, &RouteTable) {
        let svc = scenario.service_at(base, secs);
        let cfg = scenario.config_at(secs);
        let inc = match &mut self.inc {
            Some(inc) => {
                inc.advance_to(topo, &svc.origins(), &cfg);
                inc
            }
            none => none.insert(IncrementalRoutes::new(topo, svc.origins(), cfg)),
        };
        (svc, inc.table())
    }
}

/// Per-destination unicast route tables advanced along a scenario
/// timeline — for collectors (traceroute, RouteViews) that compute routes
/// *toward* each probed block's AS rather than toward an anycast prefix.
#[derive(Debug, Default)]
pub(crate) struct DestRoutes {
    tables: HashMap<AsId, IncrementalRoutes>,
}

impl DestRoutes {
    pub(crate) fn new() -> Self {
        DestRoutes::default()
    }

    /// Routes toward `dest` under `cfg`, reconverged from this
    /// destination's previous fixed point (computed fresh on first use).
    pub(crate) fn at(&mut self, topo: &Topology, dest: AsId, cfg: &RoutingConfig) -> &RouteTable {
        let inc = self
            .tables
            .entry(dest)
            .and_modify(|inc| {
                inc.advance_to(topo, &[(dest, 0)], cfg);
            })
            .or_insert_with(|| IncrementalRoutes::new(topo, vec![(dest, 0)], cfg.clone()));
        inc.table()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenrir_core::time::Timestamp;
    use fenrir_netsim::geo::cities;
    use fenrir_netsim::steering::find_disturbances;
    use fenrir_netsim::topology::{Tier, TopologyBuilder};

    fn setup() -> (Topology, AnycastService) {
        let topo = TopologyBuilder {
            transit: 3,
            regional: 6,
            stubs: 30,
            blocks_per_stub: 2,
            seed: 77,
            ..Default::default()
        }
        .build();
        let regionals = topo.tier_members(Tier::Regional);
        let mut svc = AnycastService::new("T-Root");
        svc.add_site("LAX", regionals[0], cities::LAX);
        svc.add_site("AMS", regionals[1], cities::AMS);
        (topo, svc)
    }

    /// A scenario with a drain window and a third-party disturbance, so the
    /// timeline actually exercises event application.
    fn eventful_scenario(topo: &Topology, svc: &AnycastService) -> Scenario {
        let mut sc = Scenario::new();
        sc.drain(
            1,
            Timestamp::from_days(3).as_secs(),
            Timestamp::from_days(6).as_secs(),
            "op",
        );
        let probes: Vec<AsId> = topo.all_blocks().iter().map(|&(_, a)| a).collect();
        if let Some(d) = find_disturbances(topo, svc, &probes, 0.01).first() {
            sc.push(fenrir_netsim::events::ScenarioEvent {
                start: Timestamp::from_days(4).as_secs(),
                end: Some(Timestamp::from_days(8).as_secs()),
                kind: d.kind.clone(),
                party: fenrir_netsim::events::Party::ThirdParty,
                operator: "third-party".to_owned(),
            });
        }
        sc
    }

    #[test]
    fn scenario_routes_match_per_instant_batch() {
        let (topo, svc) = setup();
        let sc = eventful_scenario(&topo, &svc);
        let mut live = ScenarioRoutes::new();
        for day in 0..10 {
            let secs = Timestamp::from_days(day).as_secs();
            let (svc_t, routes) = live.at(&topo, &svc, &sc, secs);
            let batch = svc_t.routes(&topo, &sc.config_at(secs));
            for node in topo.nodes() {
                assert_eq!(routes.route(node.id), batch.route(node.id), "day {day}");
            }
        }
    }

    #[test]
    fn dest_routes_match_per_instant_batch() {
        let (topo, svc) = setup();
        let sc = eventful_scenario(&topo, &svc);
        let dests: Vec<AsId> = topo.tier_members(Tier::Stub).into_iter().take(4).collect();
        let mut live = DestRoutes::new();
        for day in 0..10 {
            let secs = Timestamp::from_days(day).as_secs();
            let cfg = sc.config_at(secs);
            for &dest in &dests {
                let routes = live.at(&topo, dest, &cfg);
                let batch = RouteTable::compute(&topo, &[(dest, 0)], &cfg);
                for node in topo.nodes() {
                    assert_eq!(
                        routes.route(node.id),
                        batch.route(node.id),
                        "day {day} dest {dest:?}"
                    );
                }
            }
        }
    }
}
