//! Incremental route maintenance for campaign loops.
//!
//! Every campaign walks a scenario timeline and needs the routing state at
//! each observation instant. Day-to-day that state is almost always
//! identical — a scenario event lands on a handful of days out of
//! thousands — so recomputing the global Gao–Rexford fixed point per
//! instant wastes nearly all of its work. The helpers here keep a live
//! [`IncrementalRoutes`] per route computation, diff each instant against
//! the previous one, and reconverge only the perturbed neighborhood.
//!
//! Both helpers carry a [`DivergenceGuard`]: transitions are cross-checked
//! against a from-scratch computation at the guard's sampled rate (every
//! transition in debug builds, a deterministic sample in release builds).
//! A mismatch never panics and never aborts the campaign — the batch
//! result repairs the table in place, the event is recorded as
//! [`fenrir_core::error::Error::IncrementalDivergence`], and the
//! incremental path is quarantined: every later instant recomputes the
//! fixed point from scratch. Campaign runners surface the repair count
//! through `CampaignHealth::divergences`.

use fenrir_core::guard::DivergenceGuard;
use fenrir_netsim::anycast::AnycastService;
use fenrir_netsim::events::Scenario;
use fenrir_netsim::routing::{RouteEvent, RouteTable, RoutingConfig};
use fenrir_netsim::topology::{AsId, Topology};
use fenrir_netsim::{diff_states, IncrementalRoutes};
use std::collections::HashMap;

/// A live anycast route table advanced along a scenario timeline.
#[derive(Debug, Default)]
pub(crate) struct ScenarioRoutes {
    inc: Option<IncrementalRoutes>,
    guard: DivergenceGuard,
}

impl ScenarioRoutes {
    pub(crate) fn new() -> Self {
        ScenarioRoutes::default()
    }

    /// The service and routes at `secs`: materializes the scenario state
    /// and reconverges the table from the previous instant's fixed point
    /// (or from scratch, once the guard has quarantined the incremental
    /// path).
    pub(crate) fn at(
        &mut self,
        topo: &Topology,
        base: &AnycastService,
        scenario: &Scenario,
        secs: i64,
    ) -> (AnycastService, &RouteTable) {
        let svc = scenario.service_at(base, secs);
        let cfg = scenario.config_at(secs);
        if self.guard.quarantined() {
            let inc = self
                .inc
                .insert(IncrementalRoutes::new(topo, svc.origins(), cfg));
            return (svc, inc.table());
        }
        let guard = &mut self.guard;
        let inc = match &mut self.inc {
            Some(inc) => {
                let origins = svc.origins();
                let eventful = !diff_states(inc.origins(), inc.config(), &origins, &cfg).is_empty();
                let out =
                    inc.advance_to_guarded(topo, &origins, &cfg, guard.should_check(eventful));
                if let Some(detail) = out.divergence {
                    guard.record("scenario routes", detail);
                }
                inc
            }
            none => none.insert(IncrementalRoutes::new(topo, svc.origins(), cfg)),
        };
        (svc, inc.table())
    }

    /// Chaos hook: genuinely desynchronise the live table (withdraw one
    /// origin from the table without recording it in the tracked state)
    /// and arm the guard so the very next transition is cross-checked.
    /// Returns `false` when there is no incremental state to poison yet.
    pub(crate) fn poison(&mut self, topo: &Topology) -> bool {
        let Some(inc) = &mut self.inc else {
            return false;
        };
        let Some(&(origin, site)) = inc.origins().first() else {
            return false;
        };
        inc.poison(topo, &RouteEvent::OriginRemove { origin, site });
        self.guard.arm();
        true
    }

    /// Divergences recorded since the last drain (feeds the open sweep's
    /// `CampaignHealth::divergences`).
    pub(crate) fn drain_divergences(&mut self) -> usize {
        self.guard.drain_new()
    }
}

/// Per-destination unicast route tables advanced along a scenario
/// timeline — for collectors (traceroute, RouteViews) that compute routes
/// *toward* each probed block's AS rather than toward an anycast prefix.
#[derive(Debug, Default)]
pub(crate) struct DestRoutes {
    tables: HashMap<AsId, IncrementalRoutes>,
    guard: DivergenceGuard,
    /// Destination whose next transition must be cross-checked because
    /// its table was just poisoned (a shared `arm` would be consumed by
    /// whichever destination happens to advance first).
    poisoned: Option<AsId>,
}

impl DestRoutes {
    pub(crate) fn new() -> Self {
        DestRoutes::default()
    }

    /// Routes toward `dest` under `cfg`, reconverged from this
    /// destination's previous fixed point (computed fresh on first use,
    /// and on every use once the guard has quarantined the incremental
    /// path).
    pub(crate) fn at(&mut self, topo: &Topology, dest: AsId, cfg: &RoutingConfig) -> &RouteTable {
        let DestRoutes {
            tables,
            guard,
            poisoned,
        } = self;
        if guard.quarantined() {
            let inc = IncrementalRoutes::new(topo, vec![(dest, 0)], cfg.clone());
            tables.insert(dest, inc);
            return tables[&dest].table();
        }
        let inc = tables
            .entry(dest)
            .and_modify(|inc| {
                let origins = [(dest, 0)];
                let eventful = !diff_states(inc.origins(), inc.config(), &origins, cfg).is_empty();
                let check = if *poisoned == Some(dest) {
                    *poisoned = None;
                    true
                } else {
                    guard.should_check(eventful)
                };
                let out = inc.advance_to_guarded(topo, &origins, cfg, check);
                if let Some(detail) = out.divergence {
                    guard.record("destination routes", detail);
                }
            })
            .or_insert_with(|| IncrementalRoutes::new(topo, vec![(dest, 0)], cfg.clone()));
        inc.table()
    }

    /// Chaos hook: desynchronise the table of the smallest tracked
    /// destination and mark it for a forced cross-check on its next
    /// advance. Returns `false` when no table exists yet.
    pub(crate) fn poison(&mut self, topo: &Topology) -> bool {
        let Some((&dest, inc)) = self.tables.iter_mut().min_by_key(|(k, _)| **k) else {
            return false;
        };
        inc.poison(
            topo,
            &RouteEvent::OriginRemove {
                origin: dest,
                site: 0,
            },
        );
        self.poisoned = Some(dest);
        true
    }

    /// Divergences recorded since the last drain.
    pub(crate) fn drain_divergences(&mut self) -> usize {
        self.guard.drain_new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenrir_core::time::Timestamp;
    use fenrir_netsim::geo::cities;
    use fenrir_netsim::steering::find_disturbances;
    use fenrir_netsim::topology::{Tier, TopologyBuilder};

    fn setup() -> (Topology, AnycastService) {
        let topo = TopologyBuilder {
            transit: 3,
            regional: 6,
            stubs: 30,
            blocks_per_stub: 2,
            seed: 77,
            ..Default::default()
        }
        .build();
        let regionals = topo.tier_members(Tier::Regional);
        let mut svc = AnycastService::new("T-Root");
        svc.add_site("LAX", regionals[0], cities::LAX);
        svc.add_site("AMS", regionals[1], cities::AMS);
        (topo, svc)
    }

    /// A scenario with a drain window and a third-party disturbance, so the
    /// timeline actually exercises event application.
    fn eventful_scenario(topo: &Topology, svc: &AnycastService) -> Scenario {
        let mut sc = Scenario::new();
        sc.drain(
            1,
            Timestamp::from_days(3).as_secs(),
            Timestamp::from_days(6).as_secs(),
            "op",
        );
        let probes: Vec<AsId> = topo.all_blocks().iter().map(|&(_, a)| a).collect();
        if let Some(d) = find_disturbances(topo, svc, &probes, 0.01).first() {
            sc.push(fenrir_netsim::events::ScenarioEvent {
                start: Timestamp::from_days(4).as_secs(),
                end: Some(Timestamp::from_days(8).as_secs()),
                kind: d.kind.clone(),
                party: fenrir_netsim::events::Party::ThirdParty,
                operator: "third-party".to_owned(),
            });
        }
        sc
    }

    #[test]
    fn scenario_routes_match_per_instant_batch() {
        let (topo, svc) = setup();
        let sc = eventful_scenario(&topo, &svc);
        let mut live = ScenarioRoutes::new();
        for day in 0..10 {
            let secs = Timestamp::from_days(day).as_secs();
            let (svc_t, routes) = live.at(&topo, &svc, &sc, secs);
            let batch = svc_t.routes(&topo, &sc.config_at(secs));
            for node in topo.nodes() {
                assert_eq!(routes.route(node.id), batch.route(node.id), "day {day}");
            }
        }
        assert_eq!(
            live.drain_divergences(),
            0,
            "clean timeline must not diverge"
        );
    }

    #[test]
    fn dest_routes_match_per_instant_batch() {
        let (topo, svc) = setup();
        let sc = eventful_scenario(&topo, &svc);
        let dests: Vec<AsId> = topo.tier_members(Tier::Stub).into_iter().take(4).collect();
        let mut live = DestRoutes::new();
        for day in 0..10 {
            let secs = Timestamp::from_days(day).as_secs();
            let cfg = sc.config_at(secs);
            for &dest in &dests {
                let routes = live.at(&topo, dest, &cfg);
                let batch = RouteTable::compute(&topo, &[(dest, 0)], &cfg);
                for node in topo.nodes() {
                    assert_eq!(
                        routes.route(node.id),
                        batch.route(node.id),
                        "day {day} dest {dest:?}"
                    );
                }
            }
        }
        assert_eq!(live.drain_divergences(), 0);
    }

    #[test]
    fn poisoned_scenario_routes_are_detected_repaired_and_quarantined() {
        let (topo, svc) = setup();
        let sc = Scenario::new();
        let mut live = ScenarioRoutes::new();
        let day = |d| Timestamp::from_days(d).as_secs();
        let _ = live.at(&topo, &svc, &sc, day(0));
        assert!(live.poison(&topo));
        // The armed guard cross-checks the next (quiet) transition,
        // repairs the table from batch, and records the divergence.
        let (svc_t, routes) = live.at(&topo, &svc, &sc, day(1));
        let batch = svc_t.routes(&topo, &sc.config_at(day(1)));
        for node in topo.nodes() {
            assert_eq!(routes.route(node.id), batch.route(node.id));
        }
        assert_eq!(live.drain_divergences(), 1);
        assert!(live.guard.quarantined());
        // Quarantined: later instants take the from-scratch path and stay
        // correct, without re-reporting.
        let (_, routes) = live.at(&topo, &svc, &sc, day(2));
        for node in topo.nodes() {
            assert_eq!(routes.route(node.id), batch.route(node.id));
        }
        assert_eq!(live.drain_divergences(), 0);
    }

    #[test]
    fn poisoned_dest_routes_are_detected_for_the_poisoned_dest() {
        let (topo, _svc) = setup();
        let cfg = RoutingConfig::default();
        let dests: Vec<AsId> = topo.tier_members(Tier::Stub).into_iter().take(3).collect();
        let mut live = DestRoutes::new();
        for &dest in &dests {
            let _ = live.at(&topo, dest, &cfg);
        }
        assert!(live.poison(&topo));
        for &dest in &dests {
            let routes = live.at(&topo, dest, &cfg);
            let batch = RouteTable::compute(&topo, &[(dest, 0)], &cfg);
            for node in topo.nodes() {
                assert_eq!(routes.route(node.id), batch.route(node.id), "dest {dest:?}");
            }
        }
        assert_eq!(live.drain_divergences(), 1);
        assert!(live.guard.quarantined());
    }
}
