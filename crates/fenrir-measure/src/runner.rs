//! Retrying campaign executor shared by every measurement simulator.
//!
//! A campaign is a sequence of *sweeps* (one per observation time), each
//! probing every target once. [`CampaignRunner`] wraps that loop with the
//! operational machinery real measurement platforms need:
//!
//! * per-probe **retries** with capped exponential backoff in simulated
//!   time;
//! * per-sweep **probe budgets** and **deadlines** (simulated
//!   milliseconds) after which remaining targets go unmeasured;
//! * **quarantine** of persistently failing targets for a few sweeps, so
//!   dead targets stop eating budget;
//! * one [`CampaignHealth`] record per sweep — coverage, retries,
//!   quarantines, losses, decode failures — which downstream change
//!   detection consumes to gate alarms on data quality;
//! * application of an optional [`FaultPlan`], including re-normalising
//!   clock-skewed observation times back to the strict ordering
//!   `VectorSeries` requires.
//!
//! With the default [`RunnerConfig`] and no fault plan, the runner calls
//! each probe closure exactly once and adds no random draws, so legacy
//! `run()` entry points produce byte-identical series to the pre-runner
//! code.

use crate::checkpoint::{ResumeState, SweepCheckpoint};
use crate::fault::{FaultPlan, FaultSession};
use fenrir_core::error::{Error, Result};
use fenrir_core::health::CampaignHealth;
use fenrir_core::time::Timestamp;

/// Execution policy for a campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunnerConfig {
    /// Retries per target after a failed attempt (0 = single attempt).
    pub max_retries: usize,
    /// Backoff before retry `n` is `base * 2^(n-1)`, capped below.
    pub backoff_base_ms: u64,
    /// Upper bound on a single backoff interval.
    pub backoff_cap_ms: u64,
    /// Cost of one probe attempt on the sweep's simulated clock.
    pub attempt_cost_ms: u64,
    /// Maximum attempts per sweep (`None` = unlimited).
    pub probe_budget: Option<usize>,
    /// Sweep deadline on the simulated clock (`None` = unlimited).
    pub sweep_deadline_ms: Option<u64>,
    /// Quarantine a target after this many consecutive failed sweeps
    /// (`None` = never quarantine).
    pub quarantine_after: Option<usize>,
    /// How many sweeps a quarantined target sits out.
    pub quarantine_sweeps: usize,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            max_retries: 0,
            backoff_base_ms: 500,
            backoff_cap_ms: 8_000,
            attempt_cost_ms: 1,
            probe_budget: None,
            sweep_deadline_ms: None,
            quarantine_after: None,
            quarantine_sweeps: 2,
        }
    }
}

impl RunnerConfig {
    /// Validate the configuration. Violations are configuration errors
    /// ([`fenrir_core::error::Error::Config`]), raised eagerly by
    /// [`CampaignRunner::new`] before any sweep runs.
    pub fn validate(&self) -> Result<()> {
        if self.backoff_cap_ms < self.backoff_base_ms {
            return Err(Error::Config {
                name: "backoff_cap_ms",
                message: format!(
                    "cap {} below base {}",
                    self.backoff_cap_ms, self.backoff_base_ms
                ),
            });
        }
        if self.probe_budget == Some(0) {
            return Err(Error::Config {
                name: "probe_budget",
                message: "a zero budget can never probe anything".into(),
            });
        }
        if self.quarantine_after == Some(0) {
            return Err(Error::Config {
                name: "quarantine_after",
                message: "must be at least 1 failed sweep".into(),
            });
        }
        Ok(())
    }

    /// Backoff before retry `n` (1-based), capped.
    fn backoff_ms(&self, retry: usize) -> u64 {
        let shift = (retry - 1).min(63) as u32;
        self.backoff_base_ms
            .checked_shl(shift)
            .unwrap_or(u64::MAX)
            .min(self.backoff_cap_ms)
    }
}

/// What a probe closure observed for one attempt.
pub enum ProbeReply<T> {
    /// A usable classification (retries stop).
    Response(T),
    /// Nothing came back (retriable).
    NoResponse,
    /// A reply arrived but failed wire decoding or did not match the
    /// probe (retriable; counted in health).
    DecodeFailure,
}

/// Final verdict for one target in one sweep.
pub enum ProbeOutcome<T> {
    /// The target was classified.
    Response(T),
    /// The target stays Unknown this sweep.
    Unknown,
}

impl<T> ProbeOutcome<T> {
    /// The classification, if any.
    pub fn into_option(self) -> Option<T> {
        match self {
            ProbeOutcome::Response(v) => Some(v),
            ProbeOutcome::Unknown => None,
        }
    }
}

/// Handle passed to probe closures for wire-level fault injection.
///
/// With no active fault session, [`WireFault::corrupt`] is a no-op, so
/// closures can apply it unconditionally.
pub struct WireFault<'a> {
    session: Option<&'a mut FaultSession>,
    decode_failures: &'a mut usize,
}

impl WireFault<'_> {
    /// Possibly corrupt an encoded payload in place.
    pub fn corrupt(&mut self, bytes: &mut Vec<u8>) -> bool {
        match &mut self.session {
            Some(s) => s.corrupt(bytes),
            None => false,
        }
    }

    /// Record a decode failure observed *inside* a response that still
    /// classified (e.g. one hop of an otherwise-usable traceroute).
    pub fn note_decode_failure(&mut self) {
        *self.decode_failures += 1;
    }
}

/// Drives a campaign's sweeps: retries, budgets, quarantine, fault
/// application, and health accounting.
#[derive(Debug)]
pub struct CampaignRunner {
    cfg: RunnerConfig,
    session: Option<FaultSession>,
    consecutive_failures: Vec<usize>,
    /// Sweep index before which each target is quarantined (exclusive).
    quarantined_until: Vec<usize>,
    /// Current sweep index; `usize::MAX` before the first `begin_sweep`.
    obs: usize,
    sweep_clock_ms: u64,
    sweep_attempts: usize,
    health: Vec<CampaignHealth>,
}

impl CampaignRunner {
    /// Build a runner for `targets` targets over `observations` sweeps.
    pub fn new(
        cfg: &RunnerConfig,
        plan: Option<&FaultPlan>,
        targets: usize,
        observations: usize,
    ) -> Result<Self> {
        cfg.validate()?;
        let session = match plan {
            Some(p) => Some(p.session(targets, observations)?),
            None => None,
        };
        Ok(CampaignRunner {
            cfg: *cfg,
            session,
            consecutive_failures: vec![0; targets],
            quarantined_until: vec![0; targets],
            obs: usize::MAX,
            sweep_clock_ms: 0,
            sweep_attempts: 0,
            health: Vec::with_capacity(observations),
        })
    }

    /// Rebuild a runner mid-campaign from durable checkpoint state, so
    /// the next `begin_sweep` opens sweep `resume.next_sweep` and every
    /// cross-sweep mechanism (quarantine horizons, consecutive-failure
    /// streaks, the fault RNG stream) continues exactly where the killed
    /// run left it.
    pub fn restore<Row>(
        cfg: &RunnerConfig,
        plan: Option<&FaultPlan>,
        targets: usize,
        observations: usize,
        resume: &ResumeState<Row>,
    ) -> Result<Self> {
        let mut runner = CampaignRunner::new(cfg, plan, targets, observations)?;
        if resume.consecutive_failures.len() != targets || resume.quarantined_until.len() != targets
        {
            return Err(Error::Config {
                name: "resume",
                message: format!(
                    "checkpoint covers {} targets, campaign has {}",
                    resume.consecutive_failures.len(),
                    targets
                ),
            });
        }
        if resume.next_sweep > observations || resume.health.len() != resume.next_sweep {
            return Err(Error::Config {
                name: "resume",
                message: format!(
                    "checkpoint claims {} completed sweeps ({} health records) of {}",
                    resume.next_sweep,
                    resume.health.len(),
                    observations
                ),
            });
        }
        runner.consecutive_failures = resume.consecutive_failures.clone();
        runner.quarantined_until = resume.quarantined_until.clone();
        runner.health = resume.health.clone();
        runner.health.reserve(observations - resume.next_sweep);
        runner.obs = resume.next_sweep.wrapping_sub(1);
        if let Some(s) = &mut runner.session {
            s.set_rng_word_pos(resume.fault_rng_pos);
        }
        Ok(runner)
    }

    /// Package the just-finished sweep as a durable checkpoint.
    /// `campaign_rng_pos` is the simulator RNG's word position after the
    /// sweep ([`rand_chacha::ChaCha8Rng::get_word_pos`]).
    pub fn checkpoint<Row>(&self, row: Row, campaign_rng_pos: u64) -> SweepCheckpoint<Row> {
        SweepCheckpoint {
            sweep: self.obs,
            row,
            health: self
                .health
                .last()
                .cloned()
                .expect("begin_sweep before checkpoint"),
            consecutive_failures: self.consecutive_failures.clone(),
            quarantined_until: self.quarantined_until.clone(),
            campaign_rng_pos,
            fault_rng_pos: self.fault_rng_pos(),
        }
    }

    /// Word position of the fault-session RNG (0 without a fault plan).
    pub fn fault_rng_pos(&self) -> u64 {
        self.session.as_ref().map_or(0, |s| s.rng_word_pos())
    }

    /// Fold `n` detected-and-repaired incremental divergences into the
    /// open sweep's health record.
    pub fn note_divergences(&mut self, n: usize) {
        if n > 0 {
            self.health.last_mut().expect("sweep open").divergences += n;
        }
    }

    /// Whether the fault plan schedules an injected routing divergence
    /// for the sweep currently in progress.
    pub fn divergence_scheduled(&self) -> bool {
        self.session
            .as_ref()
            .is_some_and(|s| s.plan().divergence_at == Some(self.obs))
    }

    /// Start the next sweep at nominal time `time`.
    pub fn begin_sweep(&mut self, time: Timestamp) {
        self.obs = self.obs.wrapping_add(1);
        self.sweep_clock_ms = 0;
        self.sweep_attempts = 0;
        self.health
            .push(CampaignHealth::new(time, self.consecutive_failures.len()));
    }

    /// Health record of the sweep in progress.
    pub fn current_health(&self) -> &CampaignHealth {
        self.health
            .last()
            .expect("begin_sweep before current_health")
    }

    /// Probe one target, retrying per config. The closure performs one
    /// attempt — drawing from the *campaign's* RNG exactly as the
    /// fault-free code would — and reports what came back.
    pub fn probe<T>(
        &mut self,
        target: usize,
        mut attempt: impl FnMut(&mut WireFault<'_>) -> ProbeReply<T>,
    ) -> ProbeOutcome<T> {
        let obs = self.obs;
        debug_assert!(obs != usize::MAX, "begin_sweep before probe");
        if self.quarantined_until[target] > obs {
            self.health.last_mut().expect("sweep open").quarantined += 1;
            return ProbeOutcome::Unknown;
        }
        if let Some(s) = &self.session {
            if s.vp_absent(target, obs) {
                self.health.last_mut().expect("sweep open").churned_out += 1;
                return ProbeOutcome::Unknown;
            }
        }

        let max_attempts = self.cfg.max_retries + 1;
        let mut made = 0usize;
        let mut classified = None;
        while made < max_attempts {
            if let Some(budget) = self.cfg.probe_budget {
                if self.sweep_attempts >= budget {
                    self.health.last_mut().expect("sweep open").budget_exhausted = true;
                    // Runner-inflicted: does not count against the target.
                    return ProbeOutcome::Unknown;
                }
            }
            if let Some(deadline) = self.cfg.sweep_deadline_ms {
                if self.sweep_clock_ms >= deadline {
                    self.health
                        .last_mut()
                        .expect("sweep open")
                        .deadline_exceeded = true;
                    return ProbeOutcome::Unknown;
                }
            }
            if made > 0 {
                self.sweep_clock_ms += self.cfg.backoff_ms(made);
                self.health.last_mut().expect("sweep open").retries += 1;
            }
            made += 1;
            self.sweep_attempts += 1;
            self.sweep_clock_ms += self.cfg.attempt_cost_ms;
            self.health.last_mut().expect("sweep open").attempts += 1;

            let lost = match &mut self.session {
                Some(s) => s.attempt_lost(target, obs),
                None => false,
            };
            let reply = if lost {
                self.health.last_mut().expect("sweep open").lost += 1;
                ProbeReply::NoResponse
            } else {
                let health = self.health.last_mut().expect("sweep open");
                let mut wire = WireFault {
                    session: self.session.as_mut(),
                    decode_failures: &mut health.decode_failures,
                };
                attempt(&mut wire)
            };
            match reply {
                ProbeReply::Response(value) => {
                    let (dup, late) = match &mut self.session {
                        Some(s) => (s.duplicated(), s.delayed()),
                        None => (false, false),
                    };
                    let health = self.health.last_mut().expect("sweep open");
                    if dup {
                        health.duplicates += 1;
                    }
                    if late {
                        // Arrived after its usefulness window: counted,
                        // then treated as a lost attempt.
                        health.late += 1;
                        continue;
                    }
                    health.responses += 1;
                    self.consecutive_failures[target] = 0;
                    classified = Some(value);
                    break;
                }
                ProbeReply::NoResponse => {}
                ProbeReply::DecodeFailure => {
                    self.health.last_mut().expect("sweep open").decode_failures += 1;
                }
            }
        }

        match classified {
            Some(value) => ProbeOutcome::Response(value),
            None => {
                self.consecutive_failures[target] += 1;
                if let Some(after) = self.cfg.quarantine_after {
                    if self.consecutive_failures[target] >= after {
                        self.quarantined_until[target] = obs + 1 + self.cfg.quarantine_sweeps;
                        self.consecutive_failures[target] = 0;
                    }
                }
                ProbeOutcome::Unknown
            }
        }
    }

    /// Apply the fault plan's adversary (if any) to the sweep's
    /// assembled catchment-code row, in place. Must be called *after*
    /// the probe loop (so honest health accounting is already done) and
    /// *before* the row is recorded. `history(lag, target)` must return
    /// the code the campaign *recorded* `lag` sweeps ago (`None` before
    /// the campaign start) so replay-stale lies survive checkpoint
    /// resume bit-identically. Tampered cells are counted in the
    /// sweep's [`CampaignHealth::spoofed`]; they never count as
    /// responses, so coverage stays honest.
    pub fn tamper_codes(&mut self, row: &mut [u16], history: &dyn Fn(usize, usize) -> Option<u16>) {
        let obs = self.obs;
        let Some(adv) = self.session.as_ref().and_then(|s| s.adversary()) else {
            return;
        };
        let t = adv.apply_code_row(obs, row, history);
        self.health.last_mut().expect("sweep open").spoofed += t.lied + t.mirrored + t.spoofed;
    }

    /// Latency analogue of [`tamper_codes`](Self::tamper_codes): apply
    /// the adversary to a row of RTT samples.
    pub fn tamper_latency(
        &mut self,
        samples: &mut [Option<f64>],
        history: &dyn Fn(usize, usize) -> Option<Option<f64>>,
    ) {
        let obs = self.obs;
        let Some(adv) = self.session.as_ref().and_then(|s| s.adversary()) else {
            return;
        };
        let t = adv.apply_latency_row(obs, samples, history);
        self.health.last_mut().expect("sweep open").spoofed += t.lied + t.mirrored + t.spoofed;
    }

    /// Finish the campaign: apply clock skew to the sweeps' nominal
    /// times, restore strict time order, and return
    /// `(order, health)` where `order[k] = (original_sweep_index,
    /// normalised_time)` gives the emission order for series vectors.
    ///
    /// Without clock skew this is the identity order with unchanged
    /// times.
    pub fn finish(self) -> (Vec<(usize, Timestamp)>, Vec<CampaignHealth>) {
        let mut stamped: Vec<(usize, i64)> = self
            .health
            .iter()
            .enumerate()
            .map(|(i, h)| {
                let skew = self.session.as_ref().map_or(0, |s| s.skew_for(i));
                (i, h.time.as_secs() + skew)
            })
            .collect();
        stamped.sort_by_key(|&(i, secs)| (secs, i));
        let mut order = Vec::with_capacity(stamped.len());
        let mut prev = i64::MIN;
        for (i, secs) in stamped {
            // `VectorSeries::push` requires strictly increasing times:
            // collapse ties and inversions left by the skew to +1s steps.
            let t = if prev != i64::MIN && secs <= prev {
                prev + 1
            } else {
                secs
            };
            prev = t;
            order.push((i, Timestamp::from_secs(t)));
        }
        let mut health = Vec::with_capacity(order.len());
        for &(i, t) in &order {
            let mut h = self.health[i].clone();
            h.time = t;
            health.push(h);
        }
        (order, health)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{BurstyLoss, ClockSkew};

    fn times(n: usize) -> Vec<Timestamp> {
        (0..n as i64).map(Timestamp::from_days).collect()
    }

    /// Run a trivial campaign where targets `>= fail_from` never answer.
    fn run_campaign(
        cfg: &RunnerConfig,
        plan: Option<&FaultPlan>,
        targets: usize,
        sweeps: usize,
        fail_from: usize,
    ) -> (Vec<Vec<Option<u16>>>, Vec<CampaignHealth>) {
        let mut runner = CampaignRunner::new(cfg, plan, targets, sweeps).unwrap();
        let mut rows = Vec::new();
        for t in times(sweeps) {
            runner.begin_sweep(t);
            let mut row = Vec::with_capacity(targets);
            for n in 0..targets {
                let outcome = runner.probe(n, |_wire| {
                    if n >= fail_from {
                        ProbeReply::NoResponse
                    } else {
                        ProbeReply::Response(n as u16)
                    }
                });
                row.push(outcome.into_option());
            }
            rows.push(row);
        }
        let (_, health) = runner.finish();
        (rows, health)
    }

    #[test]
    fn default_config_probes_each_target_once() {
        let (rows, health) = run_campaign(&RunnerConfig::default(), None, 5, 3, 5);
        assert_eq!(rows.len(), 3);
        for h in &health {
            assert_eq!(h.targets, 5);
            assert_eq!(h.responses, 5);
            assert_eq!(h.attempts, 5);
            assert_eq!(h.retries, 0);
            assert_eq!(h.coverage(), 1.0);
        }
    }

    #[test]
    fn retries_are_counted_and_capped() {
        let cfg = RunnerConfig {
            max_retries: 3,
            ..RunnerConfig::default()
        };
        let (rows, health) = run_campaign(&cfg, None, 4, 2, 2);
        // Targets 2 and 3 never answer: 1 attempt for responders, 4 for
        // failures.
        assert_eq!(health[0].attempts, 2 + 2 * 4);
        assert_eq!(health[0].retries, 2 * 3);
        assert_eq!(health[0].responses, 2);
        assert_eq!(rows[0], vec![Some(0), Some(1), None, None]);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = RunnerConfig {
            backoff_base_ms: 100,
            backoff_cap_ms: 350,
            ..RunnerConfig::default()
        };
        assert_eq!(cfg.backoff_ms(1), 100);
        assert_eq!(cfg.backoff_ms(2), 200);
        assert_eq!(cfg.backoff_ms(3), 350); // capped below 400
        assert_eq!(cfg.backoff_ms(10), 350);
    }

    #[test]
    fn budget_exhaustion_is_flagged_and_limits_attempts() {
        let cfg = RunnerConfig {
            probe_budget: Some(3),
            ..RunnerConfig::default()
        };
        let (rows, health) = run_campaign(&cfg, None, 6, 1, 6);
        assert!(health[0].budget_exhausted);
        assert_eq!(health[0].attempts, 3);
        // Unprobed targets stay Unknown.
        assert_eq!(rows[0].iter().filter(|c| c.is_some()).count(), 3);
    }

    #[test]
    fn deadline_stops_a_sweep() {
        let cfg = RunnerConfig {
            max_retries: 4,
            backoff_base_ms: 1_000,
            backoff_cap_ms: 1_000,
            sweep_deadline_ms: Some(2_500),
            ..RunnerConfig::default()
        };
        // Single never-answering target: backoffs blow the deadline
        // mid-retry; later targets are skipped.
        let (_, health) = run_campaign(&cfg, None, 3, 1, 0);
        assert!(health[0].deadline_exceeded);
        assert!(health[0].attempts < 15, "{}", health[0].attempts);
    }

    #[test]
    fn persistent_failures_get_quarantined() {
        let cfg = RunnerConfig {
            quarantine_after: Some(2),
            quarantine_sweeps: 3,
            ..RunnerConfig::default()
        };
        let (_, health) = run_campaign(&cfg, None, 4, 8, 2);
        // Targets 2,3 fail sweeps 0-1, sit out sweeps 2-4, fail 5-6,
        // sit out 7.
        assert_eq!(health[0].quarantined, 0);
        assert_eq!(health[1].quarantined, 0);
        for h in &health[2..5] {
            assert_eq!(h.quarantined, 2, "at {:?}", h.time);
            assert_eq!(h.attempts, 2); // only the healthy targets probed
        }
        assert_eq!(health[5].quarantined, 0);
        assert_eq!(health[7].quarantined, 2);
    }

    #[test]
    fn quarantined_target_that_recovers_is_readmitted() {
        let cfg = RunnerConfig {
            quarantine_after: Some(2),
            quarantine_sweeps: 2,
            ..RunnerConfig::default()
        };
        // Target 0 is dark for sweeps 0-3 (quarantined for 2-3), then
        // comes back for good; target 1 is always healthy.
        let mut runner = CampaignRunner::new(&cfg, None, 2, 10).unwrap();
        let mut rows = Vec::new();
        for (sweep, t) in times(10).into_iter().enumerate() {
            runner.begin_sweep(t);
            let mut row = Vec::new();
            for n in 0..2 {
                let outcome = runner.probe(n, |_| {
                    if n == 0 && sweep < 4 {
                        ProbeReply::NoResponse
                    } else {
                        ProbeReply::Response(7u16)
                    }
                });
                row.push(outcome.into_option());
            }
            rows.push(row);
        }
        let (_, health) = runner.finish();
        // Probation window: fails 0-1, sits out 2-3.
        assert_eq!(health[2].quarantined, 1);
        assert_eq!(health[3].quarantined, 1);
        // Re-admitted at sweep 4: probed again, answers, and stays in.
        for (sweep, h) in health.iter().enumerate().skip(4) {
            assert_eq!(
                h.quarantined, 0,
                "sweep {sweep} must probe the recovered VP"
            );
            assert_eq!(h.responses, 2, "sweep {sweep}");
            assert_eq!(rows[sweep][0], Some(7));
        }
    }

    #[test]
    fn persistently_failing_target_stays_out() {
        let cfg = RunnerConfig {
            quarantine_after: Some(2),
            quarantine_sweeps: 3,
            ..RunnerConfig::default()
        };
        // Target 1 of 3 never answers: it must cycle fail -> quarantine
        // -> brief re-probe -> quarantine again, indefinitely, and never
        // look healthy.
        let (rows, health) = run_campaign(&cfg, None, 3, 12, 1);
        // Fails 0-1, out 2-4, fails 5-6, out 7-9, fails 10-11.
        for sweep in [2, 3, 4, 7, 8, 9] {
            assert_eq!(health[sweep].quarantined, 2, "sweep {sweep}");
        }
        for sweep in [0, 1, 5, 6, 10, 11] {
            assert_eq!(health[sweep].quarantined, 0, "sweep {sweep}");
        }
        for (sweep, row) in rows.iter().enumerate() {
            assert_eq!(row[1], None, "sweep {sweep} must never classify it");
            assert_eq!(row[2], None);
            assert_eq!(row[0], Some(0));
        }
    }

    #[test]
    fn retries_recover_bursty_loss() {
        let loss = BurstyLoss {
            p_enter_bad: 0.1,
            p_exit_bad: 0.3,
            loss_good: 0.4,
            loss_bad: 0.9,
        };
        let plan = FaultPlan::new(77).with_bursty_loss(loss);
        let none = RunnerConfig::default();
        let three = RunnerConfig {
            max_retries: 3,
            ..RunnerConfig::default()
        };
        let (_, h0) = run_campaign(&none, Some(&plan), 40, 20, 40);
        let (_, h3) = run_campaign(&three, Some(&plan), 40, 20, 40);
        let cov0 = fenrir_core::health::mean_coverage(&h0);
        let cov3 = fenrir_core::health::mean_coverage(&h3);
        assert!(
            cov3 > cov0 + 0.15,
            "retries should lift coverage: {cov0} -> {cov3}"
        );
        assert!(h3.iter().map(|h| h.retries).sum::<usize>() > 0);
    }

    #[test]
    fn skewed_times_are_renormalised_strictly_increasing() {
        // Skew far larger than the 1-day cadence forces reordering.
        let plan = FaultPlan::new(5).with_clock_skew(ClockSkew {
            max_skew_secs: 3 * 86_400,
        });
        let mut runner = CampaignRunner::new(&RunnerConfig::default(), Some(&plan), 2, 10).unwrap();
        for t in times(10) {
            runner.begin_sweep(t);
            for n in 0..2 {
                let _ = runner.probe(n, |_| ProbeReply::Response(0u16));
            }
        }
        let (order, health) = runner.finish();
        assert_eq!(order.len(), 10);
        let mut seen: Vec<usize> = order.iter().map(|&(i, _)| i).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        for pair in order.windows(2) {
            assert!(pair[1].1 > pair[0].1, "times must strictly increase");
        }
        for (k, &(_, t)) in order.iter().enumerate() {
            assert_eq!(health[k].time, t);
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = RunnerConfig {
            backoff_base_ms: 100,
            backoff_cap_ms: 50,
            ..RunnerConfig::default()
        };
        assert!(bad.validate().is_err());
        assert!(RunnerConfig {
            probe_budget: Some(0),
            ..RunnerConfig::default()
        }
        .validate()
        .is_err());
        assert!(RunnerConfig {
            quarantine_after: Some(0),
            ..RunnerConfig::default()
        }
        .validate()
        .is_err());
    }
}
