//! EDNS Client-Subnet website catchment mapping (§2.3.3).
//!
//! For websites behind DNS load balancers, the front-end serving a client
//! depends on the client's network. The paper maps these catchments for
//! *all* networks from one vantage point by attaching an EDNS Client
//! Subnet option to each query (Calder et al.'s technique). Two selection
//! policies cover the paper's two subjects:
//!
//! * [`FrontendPolicy::Geo`] — Wikipedia-like: a handful of named sites,
//!   clients mapped to the nearest active site, with *sticky* DNS state:
//!   when a drained site returns, only a configured fraction of its former
//!   clients return (the paper measures ~30%).
//! * [`FrontendPolicy::Churn`] — Google-like: hundreds of front-end
//!   clusters, weekly reshuffles of most clients, a persistent sticky
//!   minority, and an `era` tag that changes when the infrastructure is
//!   rebuilt outright (2013 vs 2024 share nothing).
//!
//! Every lookup is a real DNS message round trip: query with ECS out,
//! A-record answer back, with the front-end identity encoded in the
//! address.

use crate::checkpoint::{CampaignSink, NullSink};
use crate::fault::FaultPlan;
use crate::runner::{CampaignRunner, ProbeOutcome, ProbeReply, RunnerConfig, WireFault};
use fenrir_core::error::{Error, Result};
use fenrir_core::health::CampaignHealth;
use fenrir_core::ids::{SiteId, SiteTable};
use fenrir_core::series::VectorSeries;
use fenrir_core::time::Timestamp;
use fenrir_core::vector::{Catchment, RoutingVector};
use fenrir_netsim::anycast::AnycastService;
use fenrir_netsim::events::Scenario;
use fenrir_netsim::prefix::BlockId;
use fenrir_netsim::topology::Topology;
use fenrir_wire::dns::{ClientSubnet, Message, QClass, QType, Rcode, Record};
use fenrir_wire::ipv4::Ipv4Packet;
use fenrir_wire::udp::{UdpDatagram, DNS_PORT};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Front-end selection policy.
#[derive(Debug, Clone)]
pub enum FrontendPolicy {
    /// Geographic nearest-active-site selection with sticky return.
    Geo {
        /// Fraction of a returning site's former clients that go back to it
        /// (the paper observes ~0.3 for Wikipedia's codfw).
        sticky_return_frac: f64,
    },
    /// Hashed cluster selection with weekly epochs.
    Churn {
        /// Number of front-end clusters.
        clusters: usize,
        /// Epoch length in seconds (a week for the paper's Google data).
        epoch_secs: i64,
        /// Infrastructure era: changing it reshuffles everything (the
        /// 2013-vs-2024 discontinuity).
        era: u64,
        /// Fraction of blocks that never move across epochs.
        sticky_frac: f64,
        /// Per-observation probability a non-sticky block is temporarily
        /// rehashed (intra-week churn).
        daily_churn: f64,
    },
}

/// An EDNS-CS measurement campaign against one website.
#[derive(Debug, Clone)]
pub struct EdnsCsCampaign {
    /// Hostname queried (informational; appears in the DNS messages).
    pub hostname: String,
    /// Selection policy.
    pub policy: FrontendPolicy,
    /// Per-query loss probability (timeout → Unknown).
    pub loss_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Campaign output.
#[derive(Debug, Clone)]
pub struct EdnsCsResult {
    /// One vector per observation; networks are client /24 blocks.
    pub series: VectorSeries,
    /// The client blocks, aligned with vector positions.
    pub blocks: Vec<BlockId>,
    /// Per-observation campaign health, aligned with the series.
    pub health: Vec<CampaignHealth>,
}

impl EdnsCsResult {
    /// Byzantine-resilient change detection over the campaign.
    pub fn detect_trusted(
        &self,
        detector: &fenrir_core::detect::ChangeDetector,
        weights: &fenrir_core::weight::Weights,
        coverage_floor: f64,
        cfg: fenrir_core::trust::TrustConfig,
    ) -> Result<fenrir_core::trust::TrustedDetection> {
        fenrir_core::trust::detect_trusted(
            detector,
            &self.series,
            weights,
            &self.health,
            coverage_floor,
            cfg,
            None,
        )
    }
}

/// Stable per-block hash (splitmix-style) for deterministic policies.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn hash2(a: u64, b: u64) -> u64 {
    mix(a.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(b))
}

impl EdnsCsCampaign {
    /// Run the campaign over `times`, with client blocks and their
    /// geography taken from `topo`, and (for the Geo policy) site
    /// definitions and drain events from `base` + `scenario`.
    pub fn run(
        &self,
        topo: &Topology,
        base: &AnycastService,
        scenario: &Scenario,
        times: &[Timestamp],
    ) -> EdnsCsResult {
        self.run_with(topo, base, scenario, times, &RunnerConfig::default(), None)
            .expect("default edns-cs campaign cannot fail")
    }

    /// Like [`run`](Self::run), but executed through a configurable
    /// [`CampaignRunner`] with an optional fault plan.
    pub fn run_with(
        &self,
        topo: &Topology,
        base: &AnycastService,
        scenario: &Scenario,
        times: &[Timestamp],
        cfg: &RunnerConfig,
        faults: Option<&FaultPlan>,
    ) -> Result<EdnsCsResult> {
        self.run_recoverable(topo, base, scenario, times, cfg, faults, &mut NullSink)
    }

    /// [`EdnsCsCampaign::run_with`] streaming per-sweep progress into a
    /// durable [`CampaignSink`] (one checkpoint row = one sweep's
    /// catchment codes); resumes bit-identically from a killed run. The
    /// Geo policy's sticky DNS state needs no extra checkpoint fields: a
    /// block's current front-end is its most recent site-coded
    /// observation, so resume rebuilds it from the journaled rows.
    #[allow(clippy::too_many_arguments)]
    pub fn run_recoverable(
        &self,
        topo: &Topology,
        base: &AnycastService,
        scenario: &Scenario,
        times: &[Timestamp],
        cfg: &RunnerConfig,
        faults: Option<&FaultPlan>,
        sink: &mut dyn CampaignSink<Vec<u16>>,
    ) -> Result<EdnsCsResult> {
        if !(0.0..=1.0).contains(&self.loss_prob) {
            return Err(Error::InvalidParameter {
                name: "loss_prob",
                message: format!("must lie in [0, 1], got {}", self.loss_prob),
            });
        }
        let blocks: Vec<BlockId> = topo.all_blocks().iter().map(|&(b, _)| b).collect();
        match &self.policy {
            FrontendPolicy::Geo { sticky_return_frac } => {
                if !(0.0..=1.0).contains(sticky_return_frac) {
                    return Err(Error::InvalidParameter {
                        name: "sticky_return_frac",
                        message: format!("must lie in [0, 1], got {sticky_return_frac}"),
                    });
                }
                self.run_geo(
                    topo,
                    base,
                    scenario,
                    times,
                    &blocks,
                    *sticky_return_frac,
                    cfg,
                    faults,
                    sink,
                )
            }
            FrontendPolicy::Churn {
                clusters,
                epoch_secs,
                era,
                sticky_frac,
                daily_churn,
            } => {
                for (name, p) in [("sticky_frac", *sticky_frac), ("daily_churn", *daily_churn)] {
                    if !(0.0..=1.0).contains(&p) {
                        return Err(Error::InvalidParameter {
                            name,
                            message: format!("must lie in [0, 1], got {p}"),
                        });
                    }
                }
                if *clusters == 0 {
                    return Err(Error::InvalidParameter {
                        name: "clusters",
                        message: "need at least one front-end cluster".into(),
                    });
                }
                if *epoch_secs < 1 {
                    return Err(Error::InvalidParameter {
                        name: "epoch_secs",
                        message: format!("must be at least 1 second, got {epoch_secs}"),
                    });
                }
                self.run_churn(
                    times,
                    &blocks,
                    *clusters,
                    *epoch_secs,
                    *era,
                    *sticky_frac,
                    *daily_churn,
                    cfg,
                    faults,
                    sink,
                )
            }
        }
    }

    /// One wire round trip: the ECS query travels inside UDP/IPv4 from the
    /// vantage point to the authoritative server; the A answer carries the
    /// assigned front-end, echoed back the same way. Both directions pass
    /// through `wire` so a fault plan can corrupt them; any decode failure
    /// or mismatch against the query yields `None`.
    fn wire_round_trip(
        &self,
        qid: u16,
        block: BlockId,
        site_idx: u16,
        wire: &mut WireFault<'_>,
    ) -> Option<u16> {
        let vantage = [198, 51, 100, 7];
        let auth = [192, 0, 2, 33];
        let mut q = Message::query(qid, &self.hostname, QType::A, QClass::In);
        q.set_client_subnet(ClientSubnet::ipv4(block.addr(0), 24));
        let qbytes = q.encode().expect("query encodes");
        let mut out = UdpDatagram::new(40_000 ^ qid, DNS_PORT, qbytes)
            .into_ipv4(vantage, auth)
            .expect("datagram fits")
            .encode()
            .expect("packet encodes");
        wire.corrupt(&mut out);
        let at_ip = Ipv4Packet::decode(&out).ok()?;
        let at_udp = UdpDatagram::from_ipv4(&at_ip).ok()?;
        let at_server = Message::decode(&at_udp.payload).ok()?;
        if at_udp.dst_port != DNS_PORT || at_server.questions.is_empty() {
            return None;
        }
        let ecs = at_server.client_subnet()?;
        if ecs.slash24() != Some(block.0) {
            return None;
        }
        let mut resp = at_server.response_to(Rcode::NoError);
        resp.answers.push(Record::a(
            at_server.questions[0].name.clone(),
            60,
            [198, 18, (site_idx >> 8) as u8, site_idx as u8],
        ));
        let rbytes = resp.encode().expect("response encodes");
        let mut back = UdpDatagram::new(DNS_PORT, at_udp.src_port, rbytes)
            .into_ipv4(auth, vantage)
            .expect("datagram fits")
            .encode()
            .expect("packet encodes");
        wire.corrupt(&mut back);
        let back_ip = Ipv4Packet::decode(&back).ok()?;
        let back_udp = UdpDatagram::from_ipv4(&back_ip).ok()?;
        let at_client = Message::decode(&back_udp.payload).ok()?;
        if at_client.header.id != qid {
            return None;
        }
        let addr = *at_client.a_addrs().first()?;
        Some((u16::from(addr[2]) << 8) | u16::from(addr[3]))
    }

    #[allow(clippy::too_many_arguments)]
    fn run_geo(
        &self,
        topo: &Topology,
        base: &AnycastService,
        scenario: &Scenario,
        times: &[Timestamp],
        blocks: &[BlockId],
        sticky_return_frac: f64,
        cfg: &RunnerConfig,
        faults: Option<&FaultPlan>,
        sink: &mut dyn CampaignSink<Vec<u16>>,
    ) -> Result<EdnsCsResult> {
        let sites = SiteTable::from_names(base.sites().iter().map(|s| s.name.as_str()));
        let block_geo: Vec<_> = blocks
            .iter()
            .map(|&b| topo.node(topo.owner_of(b).expect("owned")).geo)
            .collect();
        // Whether each block is "sticky-returning" (goes back when its
        // preferred site returns) — a persistent per-block coin.
        let returns: Vec<bool> = blocks
            .iter()
            .map(|&b| {
                (hash2(u64::from(b.0), self.seed) as f64 / u64::MAX as f64) < sticky_return_frac
            })
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut current: Vec<Option<u16>> = vec![None; blocks.len()];
        let resume = sink.resume()?;
        let (mut runner, mut rows, start) = match &resume {
            Some(rs) => {
                let runner = CampaignRunner::restore(cfg, faults, blocks.len(), times.len(), rs)?;
                rng.set_word_pos(rs.campaign_rng_pos as u128);
                // Sticky state: a block's current front-end is its most
                // recent site-coded observation.
                for row in &rs.rows {
                    for (n, &code) in row.iter().enumerate() {
                        if code < fenrir_core::vector::CODE_OTHER {
                            current[n] = Some(code);
                        }
                    }
                }
                (runner, rs.rows.clone(), rs.next_sweep)
            }
            None => (
                CampaignRunner::new(cfg, faults, blocks.len(), times.len())?,
                Vec::with_capacity(times.len()),
                0,
            ),
        };
        for (sweep, &t) in times.iter().enumerate().skip(start) {
            let svc = scenario.service_at(base, t.as_secs());
            let active: Vec<usize> = (0..svc.len()).filter(|&i| svc.is_active(i)).collect();
            runner.begin_sweep(t);
            let mut v = RoutingVector::unknown(t, blocks.len());
            for (n, &block) in blocks.iter().enumerate() {
                let cur = current[n];
                let outcome = runner.probe(n, |wire| {
                    if rng.gen_bool(self.loss_prob) {
                        return ProbeReply::NoResponse;
                    }
                    if active.is_empty() {
                        // No active front-end anywhere: a hard error, not a
                        // timeout.
                        return ProbeReply::Response(None);
                    }
                    let nearest = *active
                        .iter()
                        .min_by(|&&a, &&b| {
                            let da = block_geo[n].distance_km(svc.sites()[a].geo);
                            let db = block_geo[n].distance_km(svc.sites()[b].geo);
                            da.partial_cmp(&db).expect("finite")
                        })
                        .expect("active nonempty");
                    let assigned = match cur {
                        // Current site still active: sticky blocks move back
                        // to their nearest site when it differs; others stay.
                        Some(cur) if active.contains(&(cur as usize)) => {
                            if returns[n] {
                                nearest as u16
                            } else {
                                cur
                            }
                        }
                        // Current site gone (or first observation): nearest
                        // active site.
                        _ => nearest as u16,
                    };
                    match self.wire_round_trip(n as u16, block, assigned, wire) {
                        Some(echoed) => ProbeReply::Response(Some(echoed)),
                        None => ProbeReply::DecodeFailure,
                    }
                });
                match outcome {
                    ProbeOutcome::Response(Some(echoed)) => {
                        current[n] = Some(echoed);
                        v.set(n, Catchment::Site(SiteId(echoed)));
                    }
                    ProbeOutcome::Response(None) => v.set(n, Catchment::Err),
                    ProbeOutcome::Unknown => {}
                }
            }
            let mut codes = v.codes().to_vec();
            runner.tamper_codes(&mut codes, &|lag, n| {
                sweep
                    .checked_sub(lag)
                    .and_then(|s| rows.get(s))
                    .map(|r| r[n])
            });
            sink.record(runner.checkpoint(codes.clone(), rng.get_word_pos() as u64))?;
            debug_assert_eq!(rows.len(), sweep);
            rows.push(codes);
        }
        let (order, health) = runner.finish();
        let mut series = VectorSeries::new(sites, blocks.len());
        for (orig, t) in order {
            series
                .push(RoutingVector::from_codes(t, rows[orig].clone()))
                .expect("times strictly increasing");
        }
        Ok(EdnsCsResult {
            series,
            blocks: blocks.to_vec(),
            health,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn run_churn(
        &self,
        times: &[Timestamp],
        blocks: &[BlockId],
        clusters: usize,
        epoch_secs: i64,
        era: u64,
        sticky_frac: f64,
        daily_churn: f64,
        cfg: &RunnerConfig,
        faults: Option<&FaultPlan>,
        sink: &mut dyn CampaignSink<Vec<u16>>,
    ) -> Result<EdnsCsResult> {
        let sites = SiteTable::from_names((0..clusters).map(|i| format!("fe-{i:03}")));
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let resume = sink.resume()?;
        let (mut runner, mut rows, start) = match &resume {
            Some(rs) => {
                let runner = CampaignRunner::restore(cfg, faults, blocks.len(), times.len(), rs)?;
                rng.set_word_pos(rs.campaign_rng_pos as u128);
                (runner, rs.rows.clone(), rs.next_sweep)
            }
            None => (
                CampaignRunner::new(cfg, faults, blocks.len(), times.len())?,
                Vec::with_capacity(times.len()),
                0,
            ),
        };
        for (sweep, &t) in times.iter().enumerate().skip(start) {
            let epoch = t.as_secs().div_euclid(epoch_secs) as u64;
            runner.begin_sweep(t);
            let mut v = RoutingVector::unknown(t, blocks.len());
            for (n, &block) in blocks.iter().enumerate() {
                let outcome = runner.probe(n, |wire| {
                    if rng.gen_bool(self.loss_prob) {
                        return ProbeReply::NoResponse;
                    }
                    let b = u64::from(block.0);
                    let sticky = (hash2(b, era ^ 0x571C) as f64 / u64::MAX as f64) < sticky_frac;
                    let cluster = if sticky {
                        // Sticky blocks keep one era-stable cluster.
                        hash2(b, era) as usize % clusters
                    } else if rng.gen_bool(daily_churn) {
                        // Transient intra-week churn.
                        hash2(b, era ^ hash2(epoch, t.as_secs() as u64)) as usize % clusters
                    } else {
                        // Week-stable assignment.
                        hash2(b, era ^ mix(epoch)) as usize % clusters
                    };
                    match self.wire_round_trip(n as u16, block, cluster as u16, wire) {
                        Some(echoed) => ProbeReply::Response(echoed),
                        None => ProbeReply::DecodeFailure,
                    }
                });
                if let ProbeOutcome::Response(echoed) = outcome {
                    v.set(n, Catchment::Site(SiteId(echoed)));
                }
            }
            let mut codes = v.codes().to_vec();
            runner.tamper_codes(&mut codes, &|lag, n| {
                sweep
                    .checked_sub(lag)
                    .and_then(|s| rows.get(s))
                    .map(|r| r[n])
            });
            sink.record(runner.checkpoint(codes.clone(), rng.get_word_pos() as u64))?;
            debug_assert_eq!(rows.len(), sweep);
            rows.push(codes);
        }
        let (order, health) = runner.finish();
        let mut series = VectorSeries::new(sites, blocks.len());
        for (orig, t) in order {
            series
                .push(RoutingVector::from_codes(t, rows[orig].clone()))
                .expect("times strictly increasing");
        }
        Ok(EdnsCsResult {
            series,
            blocks: blocks.to_vec(),
            health,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenrir_core::similarity::{phi, UnknownPolicy};
    use fenrir_core::weight::Weights;
    use fenrir_netsim::geo::{cities, GeoPoint};
    use fenrir_netsim::topology::TopologyBuilder;

    fn topo() -> Topology {
        TopologyBuilder {
            transit: 3,
            regional: 6,
            stubs: 60,
            blocks_per_stub: 2,
            seed: 41,
            ..Default::default()
        }
        .build()
    }

    /// Wikipedia-like 3-site service.
    fn wiki_service(topo: &Topology) -> AnycastService {
        let regionals = topo.tier_members(fenrir_netsim::topology::Tier::Regional);
        let mut svc = AnycastService::new("wiki");
        svc.add_site("eqiad", regionals[0], GeoPoint::new(39.0, -77.5));
        svc.add_site("codfw", regionals[1], GeoPoint::new(32.8, -96.8));
        svc.add_site("esams", regionals[2], cities::AMS);
        svc
    }

    fn geo_campaign() -> EdnsCsCampaign {
        EdnsCsCampaign {
            hostname: "www.wikipedia.org".into(),
            policy: FrontendPolicy::Geo {
                sticky_return_frac: 0.3,
            },
            loss_prob: 0.0,
            seed: 77,
        }
    }

    fn days(n: i64) -> Vec<Timestamp> {
        (0..n).map(Timestamp::from_days).collect()
    }

    #[test]
    fn geo_policy_is_stable_without_events() {
        let topo = topo();
        let svc = wiki_service(&topo);
        let r = geo_campaign().run(&topo, &svc, &Scenario::new(), &days(5));
        let w = Weights::uniform(r.series.networks());
        for i in 1..r.series.len() {
            let p = phi(
                r.series.get(0),
                r.series.get(i),
                &w,
                UnknownPolicy::Pessimistic,
            );
            assert!((p - 1.0).abs() < 1e-12, "day {i}: {p}");
        }
    }

    #[test]
    fn geo_drain_shifts_clients_and_partial_return() {
        let topo = topo();
        let svc = wiki_service(&topo);
        let mut sc = Scenario::new();
        // codfw (site 1) drained days 3..6, like the paper's 2025-03-19
        // week.
        sc.drain(
            1,
            Timestamp::from_days(3).as_secs(),
            Timestamp::from_days(6).as_secs(),
            "sre",
        );
        let r = geo_campaign().run(&topo, &svc, &sc, &days(10));
        let aggs = r.series.aggregates();
        let codfw_before = aggs[2].per_site[1];
        assert!(codfw_before > 0, "codfw serves clients before the drain");
        assert_eq!(aggs[3].per_site[1], 0, "codfw drained");
        assert_eq!(aggs[5].per_site[1], 0);
        let codfw_after = aggs[7].per_site[1];
        assert!(codfw_after > 0, "some clients return");
        assert!(
            codfw_after < codfw_before,
            "only a fraction return ({codfw_after} of {codfw_before})"
        );
        // Roughly the sticky fraction returns.
        let ratio = codfw_after as f64 / codfw_before as f64;
        assert!((0.1..0.6).contains(&ratio), "return ratio {ratio}");
    }

    #[test]
    fn geo_post_event_mode_differs_from_pre_event() {
        // The paper: Φ(M_i, M_iii) ≈ 0.8 — the new mode is similar but not
        // identical to the old one.
        let topo = topo();
        let svc = wiki_service(&topo);
        let mut sc = Scenario::new();
        sc.drain(
            1,
            Timestamp::from_days(3).as_secs(),
            Timestamp::from_days(6).as_secs(),
            "sre",
        );
        let r = geo_campaign().run(&topo, &svc, &sc, &days(10));
        let w = Weights::uniform(r.series.networks());
        let pre_vs_post = phi(
            r.series.get(1),
            r.series.get(8),
            &w,
            UnknownPolicy::Pessimistic,
        );
        assert!(pre_vs_post < 1.0 - 1e-9, "mode did not fully revert");
        assert!(pre_vs_post > 0.5, "most clients unchanged ({pre_vs_post})");
    }

    fn churn_campaign(era: u64) -> EdnsCsCampaign {
        EdnsCsCampaign {
            hostname: "www.google.com".into(),
            policy: FrontendPolicy::Churn {
                clusters: 50,
                epoch_secs: 7 * 86_400,
                era,
                sticky_frac: 0.25,
                daily_churn: 0.15,
            },
            loss_prob: 0.0,
            seed: 99,
        }
    }

    #[test]
    fn churn_intra_week_phi_is_high_but_imperfect() {
        let topo = topo();
        let svc = wiki_service(&topo); // unused by churn policy
        let r = churn_campaign(2024).run(&topo, &svc, &Scenario::new(), &days(6));
        let w = Weights::uniform(r.series.networks());
        let p = phi(
            r.series.get(1),
            r.series.get(2),
            &w,
            UnknownPolicy::Pessimistic,
        );
        assert!((0.6..0.95).contains(&p), "intra-week Φ {p}");
    }

    #[test]
    fn churn_cross_week_phi_is_low_but_nonzero() {
        let topo = topo();
        let svc = wiki_service(&topo);
        // Days 1 and 10 are in different weekly epochs.
        let times: Vec<Timestamp> = vec![Timestamp::from_days(1), Timestamp::from_days(10)];
        let r = churn_campaign(2024).run(&topo, &svc, &Scenario::new(), &times);
        let w = Weights::uniform(r.series.networks());
        let p = phi(
            r.series.get(0),
            r.series.get(1),
            &w,
            UnknownPolicy::Pessimistic,
        );
        assert!((0.1..0.5).contains(&p), "cross-week Φ {p}");
    }

    #[test]
    fn different_eras_share_almost_nothing() {
        let topo = topo();
        let svc = wiki_service(&topo);
        let t = vec![Timestamp::from_days(3)];
        let a = churn_campaign(2013).run(&topo, &svc, &Scenario::new(), &t);
        let b = churn_campaign(2024).run(&topo, &svc, &Scenario::new(), &t);
        let w = Weights::uniform(a.series.networks());
        let p = phi(
            a.series.get(0),
            b.series.get(0),
            &w,
            UnknownPolicy::Pessimistic,
        );
        assert!(p < 0.1, "cross-era Φ {p}");
    }

    #[test]
    fn loss_leaves_unknowns() {
        let topo = topo();
        let svc = wiki_service(&topo);
        let mut c = geo_campaign();
        c.loss_prob = 0.3;
        let r = c.run(&topo, &svc, &Scenario::new(), &days(3));
        let cov = r.series.mean_coverage();
        assert!((0.55..0.85).contains(&cov), "coverage {cov}");
    }

    #[test]
    fn campaigns_are_deterministic() {
        let topo = topo();
        let svc = wiki_service(&topo);
        for c in [geo_campaign(), churn_campaign(2024)] {
            let a = c.run(&topo, &svc, &Scenario::new(), &days(3));
            let b = c.run(&topo, &svc, &Scenario::new(), &days(3));
            for (va, vb) in a.series.vectors().iter().zip(b.series.vectors()) {
                assert_eq!(va, vb);
            }
        }
    }

    #[test]
    fn all_sites_drained_is_err() {
        let topo = topo();
        let svc = wiki_service(&topo);
        let mut sc = Scenario::new();
        for site in 0..3 {
            sc.drain(
                site,
                Timestamp::from_days(1).as_secs(),
                Timestamp::from_days(2).as_secs(),
                "sre",
            );
        }
        let r = geo_campaign().run(&topo, &svc, &sc, &days(3));
        let agg = r.series.get(1).aggregate(3);
        assert_eq!(agg.err as usize, r.series.networks());
    }
}
