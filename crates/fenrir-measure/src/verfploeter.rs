//! Verfploeter-style anycast catchment sweeps (de Vries et al., §2.3.1).
//!
//! Verfploeter is run *by* the anycast operator: one site pings targets in
//! millions of /24 blocks and the operator watches **which site the reply
//! arrives at** — that site is the block's catchment. Coverage is broad but
//! imperfect: "predicting a responsive IP address in a target network
//! employing dynamic address assignment is probabilistic", and about half
//! of the 5M target blocks stay unknown, which pins stable-routing Φ to
//! 0.5–0.6 under the pessimistic policy.
//!
//! The simulator reproduces all of that: each block gets a persistent
//! responsiveness probability (some blocks are reliably pingable, some
//! never answer), replies route to the block's AS's best anycast site, and
//! every probe round-trips a real ICMP echo packet.

use crate::checkpoint::{CampaignSink, NullSink};
use crate::fault::FaultPlan;
use crate::runner::{CampaignRunner, ProbeOutcome, ProbeReply, RunnerConfig};
use fenrir_core::error::{Error, Result};
use fenrir_core::health::CampaignHealth;
use fenrir_core::ids::SiteTable;
use fenrir_core::series::VectorSeries;
use fenrir_core::time::Timestamp;
use fenrir_core::vector::{Catchment, RoutingVector};
use fenrir_netsim::anycast::AnycastService;
use fenrir_netsim::events::Scenario;
use fenrir_netsim::prefix::BlockId;
use fenrir_netsim::topology::{AsId, Topology};
use fenrir_wire::icmp::{IcmpKind, IcmpPacket};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration of a Verfploeter campaign.
#[derive(Debug, Clone)]
pub struct Verfploeter {
    /// Mean fraction of blocks that answer a given sweep (paper: ~0.5).
    pub mean_response_rate: f64,
    /// Seed for block responsiveness and per-probe noise.
    pub seed: u64,
}

impl Default for Verfploeter {
    fn default() -> Self {
        Verfploeter {
            mean_response_rate: 0.5,
            seed: 0x5EED_0001,
        }
    }
}

/// Result of a campaign: the series plus the block list defining the
/// network population (vector position `n` is `blocks[n]`).
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// One vector per observation time.
    pub series: VectorSeries,
    /// The probed blocks, aligned with vector positions.
    pub blocks: Vec<BlockId>,
    /// Per-observation campaign health, aligned with the series.
    pub health: Vec<CampaignHealth>,
}

impl SweepResult {
    /// Byzantine-resilient change detection over the campaign, feeding
    /// the sweep health into the coverage gate and cross-block trust
    /// scores into the similarity weights.
    pub fn detect_trusted(
        &self,
        detector: &fenrir_core::detect::ChangeDetector,
        weights: &fenrir_core::weight::Weights,
        coverage_floor: f64,
        cfg: fenrir_core::trust::TrustConfig,
    ) -> Result<fenrir_core::trust::TrustedDetection> {
        fenrir_core::trust::detect_trusted(
            detector,
            &self.series,
            weights,
            &self.health,
            coverage_floor,
            cfg,
            None,
        )
    }
}

impl Verfploeter {
    /// Run the campaign: one sweep per entry of `times`, against the
    /// service/routing state the scenario defines at that instant.
    ///
    /// The returned site table contains every site of `base` (active or
    /// not) in site-index order, so `SiteId(i)` is site `i` throughout the
    /// series even as sites drain and return.
    pub fn run(
        &self,
        topo: &Topology,
        base: &AnycastService,
        scenario: &Scenario,
        times: &[Timestamp],
    ) -> SweepResult {
        self.run_with(topo, base, scenario, times, &RunnerConfig::default(), None)
            .expect("default verfploeter campaign cannot fail")
    }

    /// Run the campaign under an explicit execution policy and an
    /// optional fault plan. `run` is `run_with` with defaults.
    pub fn run_with(
        &self,
        topo: &Topology,
        base: &AnycastService,
        scenario: &Scenario,
        times: &[Timestamp],
        cfg: &RunnerConfig,
        faults: Option<&FaultPlan>,
    ) -> Result<SweepResult> {
        self.run_recoverable(topo, base, scenario, times, cfg, faults, &mut NullSink)
    }

    /// [`Verfploeter::run_with`] streaming per-sweep progress into a
    /// durable [`CampaignSink`] (one checkpoint row = one sweep's
    /// catchment codes). If the sink holds state from a killed run of the
    /// same campaign, completed sweeps are **not** re-probed: the RNG
    /// streams are seeked to their recorded positions and the campaign
    /// continues from the next sweep, producing results bit-identical to
    /// an uninterrupted run.
    #[allow(clippy::too_many_arguments)]
    pub fn run_recoverable(
        &self,
        topo: &Topology,
        base: &AnycastService,
        scenario: &Scenario,
        times: &[Timestamp],
        cfg: &RunnerConfig,
        faults: Option<&FaultPlan>,
        sink: &mut dyn CampaignSink<Vec<u16>>,
    ) -> Result<SweepResult> {
        if !(0.0..=1.0).contains(&self.mean_response_rate) {
            return Err(Error::InvalidParameter {
                name: "mean_response_rate",
                message: format!("must lie in [0, 1], got {}", self.mean_response_rate),
            });
        }
        let blocks: Vec<BlockId> = topo.all_blocks().iter().map(|&(b, _)| b).collect();
        let owners: Vec<AsId> = blocks
            .iter()
            .map(|&b| topo.owner_of(b).expect("block has an owner"))
            .collect();
        let sites = SiteTable::from_names(base.sites().iter().map(|s| s.name.as_str()));

        // Persistent per-block responsiveness, bimodal as on the real
        // Internet: a block either has stably pingable addresses (answers
        // almost every sweep) or uses dynamic addressing and almost never
        // answers. This is what pins the paper's stable pessimistic Φ to
        // 0.5–0.6 rather than coverage²: the *same* half answers each day.
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let responsive_frac = (self.mean_response_rate / 0.95).min(1.0);
        // Dark blocks still answer occasionally (a transient DHCP lease);
        // scaled so a zero response rate really is silence.
        let dark_prob = 0.04 * self.mean_response_rate;
        let response_prob: Vec<f64> = blocks
            .iter()
            .map(|_| {
                if rng.gen_bool(responsive_frac) {
                    0.95
                } else {
                    dark_prob
                }
            })
            .collect();

        let resume = sink.resume()?;
        let (mut runner, mut rows, start) = match &resume {
            Some(rs) => {
                let runner = CampaignRunner::restore(cfg, faults, blocks.len(), times.len(), rs)?;
                rng.set_word_pos(rs.campaign_rng_pos as u128);
                (runner, rs.rows.clone(), rs.next_sweep)
            }
            None => (
                CampaignRunner::new(cfg, faults, blocks.len(), times.len())?,
                Vec::with_capacity(times.len()),
                0,
            ),
        };
        let mut live = crate::routes::ScenarioRoutes::new();
        for (sweep, &t) in times.iter().enumerate().skip(start) {
            runner.begin_sweep(t);
            if runner.divergence_scheduled() {
                live.poison(topo);
            }
            let (_svc, routes) = live.at(topo, base, scenario, t.as_secs());
            let mut v = RoutingVector::unknown(t, blocks.len());
            for (n, (&block, &owner)) in blocks.iter().zip(&owners).enumerate() {
                let outcome = runner.probe(n, |wire| {
                    // Encode the probe exactly as Verfploeter does: block
                    // id in the ICMP ident/seq so any site can attribute
                    // the reply.
                    let ident = (block.0 >> 16) as u16;
                    let seq = block.0 as u16;
                    let probe = IcmpPacket::echo_request(ident, seq, b"fenrir-vp".to_vec());
                    if !rng.gen_bool(response_prob[n]) {
                        return ProbeReply::NoResponse; // target silent
                    }
                    // The target answers; the reply follows the target
                    // AS's best route to the anycast prefix, possibly
                    // mangled on the way.
                    let mut reply_bytes = IcmpPacket::echo_reply_to(&probe).encode();
                    wire.corrupt(&mut reply_bytes);
                    let reply = match IcmpPacket::decode(&reply_bytes) {
                        Ok(r) => r,
                        Err(_) => return ProbeReply::DecodeFailure,
                    };
                    // A corrupted-but-parseable reply that no longer
                    // matches the probe is discarded, never misattributed.
                    if reply.kind != IcmpKind::EchoReply
                        || (u32::from(reply.ident) << 16) | u32::from(reply.seq) != block.0
                    {
                        return ProbeReply::DecodeFailure;
                    }
                    match routes.catchment(owner) {
                        Some(site) => ProbeReply::Response(Catchment::Site(
                            fenrir_core::ids::SiteId(site as u16),
                        )),
                        // Responsive block, but no site reachable (all
                        // drained): the reply goes nowhere — the paper's
                        // err state.
                        None => ProbeReply::Response(Catchment::Err),
                    }
                });
                if let ProbeOutcome::Response(c) = outcome {
                    v.set(n, c);
                }
            }
            runner.note_divergences(live.drain_divergences());
            let mut codes = v.codes().to_vec();
            // Adversaries mangle the row after honest accounting and
            // before it is recorded: resumed runs replay the mangled
            // row from the sink, bit-identical.
            runner.tamper_codes(&mut codes, &|lag, n| {
                sweep
                    .checked_sub(lag)
                    .and_then(|s| rows.get(s))
                    .map(|r| r[n])
            });
            sink.record(runner.checkpoint(codes.clone(), rng.get_word_pos() as u64))?;
            debug_assert_eq!(rows.len(), sweep);
            rows.push(codes);
        }
        let (order, health) = runner.finish();
        let mut series = VectorSeries::new(sites, blocks.len());
        for &(orig, t) in &order {
            let v = RoutingVector::from_codes(t, rows[orig].clone());
            series.push(v).expect("normalised times strictly increase");
        }
        Ok(SweepResult {
            series,
            blocks,
            health,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenrir_core::similarity::{phi, UnknownPolicy};
    use fenrir_core::weight::Weights;
    use fenrir_netsim::geo::cities;
    use fenrir_netsim::topology::{Tier, TopologyBuilder};

    fn setup() -> (Topology, AnycastService) {
        let topo = TopologyBuilder {
            transit: 3,
            regional: 6,
            stubs: 40,
            blocks_per_stub: 2,
            seed: 11,
            ..Default::default()
        }
        .build();
        let regionals = topo.tier_members(Tier::Regional);
        let mut svc = AnycastService::new("B-Root");
        svc.add_site("LAX", regionals[0], cities::LAX);
        svc.add_site("MIA", regionals[1], cities::MIA);
        (topo, svc)
    }

    fn days(n: i64) -> Vec<Timestamp> {
        (0..n).map(Timestamp::from_days).collect()
    }

    #[test]
    fn sweep_covers_all_blocks() {
        let (topo, svc) = setup();
        let vp = Verfploeter::default();
        let r = vp.run(&topo, &svc, &Scenario::new(), &days(3));
        assert_eq!(r.blocks.len(), 80);
        assert_eq!(r.series.len(), 3);
        assert_eq!(r.series.networks(), 80);
        assert_eq!(r.series.sites().len(), 2);
    }

    #[test]
    fn coverage_is_roughly_the_configured_rate() {
        let (topo, svc) = setup();
        let vp = Verfploeter {
            mean_response_rate: 0.5,
            ..Default::default()
        };
        let r = vp.run(&topo, &svc, &Scenario::new(), &days(10));
        let cov = r.series.mean_coverage();
        assert!((0.35..0.65).contains(&cov), "coverage {cov}");
    }

    #[test]
    fn full_response_rate_gives_full_coverage() {
        let (topo, svc) = setup();
        let vp = Verfploeter {
            mean_response_rate: 1.0,
            seed: 3,
        };
        let r = vp.run(&topo, &svc, &Scenario::new(), &days(2));
        // mean_response_rate 1.0 -> per-block probability uniform in [0,2]
        // clamped to 1 ... blocks with u >= 0.5 are always-on; others
        // probabilistic. Coverage must be well above the 0.5 default.
        assert!(r.series.mean_coverage() > 0.7);
    }

    #[test]
    fn stable_routing_phi_sits_at_the_coverage_ceiling() {
        // The paper's §2.6.1 observation: ~50% unknown pins Φ to ~0.5-0.6
        // pessimistically, while known-only similarity is ~1.
        let (topo, svc) = setup();
        let vp = Verfploeter::default();
        let r = vp.run(&topo, &svc, &Scenario::new(), &days(5));
        let w = Weights::uniform(r.series.networks());
        let p_pess = phi(
            r.series.get(0),
            r.series.get(1),
            &w,
            UnknownPolicy::Pessimistic,
        );
        let p_known = phi(
            r.series.get(0),
            r.series.get(1),
            &w,
            UnknownPolicy::KnownOnly,
        );
        assert!((0.15..0.75).contains(&p_pess), "pessimistic {p_pess}");
        assert!((p_known - 1.0).abs() < 1e-9, "known-only {p_known}");
    }

    #[test]
    fn drain_is_visible_in_the_series() {
        let (topo, svc) = setup();
        let mut sc = Scenario::new();
        // Drain site 0 on days 2..4.
        sc.drain(
            0,
            Timestamp::from_days(2).as_secs(),
            Timestamp::from_days(4).as_secs(),
            "op",
        );
        let vp = Verfploeter {
            mean_response_rate: 1.0,
            seed: 5,
        };
        let r = vp.run(&topo, &svc, &sc, &days(6));
        let aggs = r.series.aggregates();
        assert!(aggs[1].per_site[0] > 0, "site 0 serves before the drain");
        assert_eq!(aggs[2].per_site[0], 0, "site 0 empty during the drain");
        assert_eq!(aggs[3].per_site[0], 0);
        assert!(aggs[4].per_site[0] > 0, "site 0 returns after the drain");
        // The drained blocks went to the other site, not to err.
        assert!(aggs[2].per_site[1] > aggs[1].per_site[1]);
    }

    #[test]
    fn all_sites_drained_yields_err_not_unknown() {
        let (topo, svc) = setup();
        let mut sc = Scenario::new();
        let d0 = Timestamp::from_days(1).as_secs();
        let d2 = Timestamp::from_days(2).as_secs();
        sc.drain(0, d0, d2, "op");
        sc.drain(1, d0, d2, "op");
        let vp = Verfploeter {
            mean_response_rate: 1.0,
            seed: 5,
        };
        let r = vp.run(&topo, &svc, &sc, &days(3));
        let aggs = r.series.aggregates();
        assert!(aggs[1].err > 0, "responsive blocks with no service are err");
        assert_eq!(aggs[1].per_site.iter().sum::<u64>(), 0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let (topo, svc) = setup();
        let vp = Verfploeter::default();
        let a = vp.run(&topo, &svc, &Scenario::new(), &days(3));
        let b = vp.run(&topo, &svc, &Scenario::new(), &days(3));
        for (va, vb) in a.series.vectors().iter().zip(b.series.vectors()) {
            assert_eq!(va, vb);
        }
    }

    #[test]
    fn different_seed_changes_coverage_pattern() {
        let (topo, svc) = setup();
        let a = Verfploeter {
            seed: 1,
            ..Default::default()
        }
        .run(&topo, &svc, &Scenario::new(), &days(1));
        let b = Verfploeter {
            seed: 2,
            ..Default::default()
        }
        .run(&topo, &svc, &Scenario::new(), &days(1));
        assert_ne!(a.series.get(0), b.series.get(0));
    }
}
