//! Campaign checkpointing: the sink trait simulators stream durable
//! per-sweep progress into, and the resume state they restart from.
//!
//! A killed campaign loses irreplaceable history unless every completed
//! sweep is durable before the next one starts. Each simulator therefore
//! drives its sweep loop through a [`CampaignSink`]: after a sweep's row
//! is final, the simulator hands the sink a [`SweepCheckpoint`] carrying
//! the row, the sweep's health record, the runner's cross-sweep counters,
//! and the word positions of both RNG streams. On restart, the sink's
//! [`CampaignSink::resume`] returns the folded [`ResumeState`]; the
//! simulator replays its deterministic prelude, seeks the RNGs to the
//! recorded positions, and continues from the next sweep — producing a
//! series bit-identical to an uninterrupted run (asserted by the
//! kill/resume equivalence tests).
//!
//! The durable implementations live in `fenrir-data::journal`
//! (layering: fenrir-data depends on fenrir-measure, not vice versa):
//! a flat file-backed sink, and a tiered one whose hot append tail
//! stays on local disk while compacted snapshots are sealed into an
//! object-storage tier (`fenrir-data::storage`) — the checkpoint
//! protocol is identical either way. This module provides the protocol
//! plus in-memory sinks for tests and for callers that do not need
//! durability.

use fenrir_core::error::{Error, Result};
use fenrir_core::health::CampaignHealth;

/// Everything a campaign must persist after one completed sweep.
///
/// `Row` is the simulator's per-sweep observation payload: catchment
/// codes for verfploeter/atlas/EDNS, per-hop code rows for traceroute,
/// optional RTT samples for the latency prober.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCheckpoint<Row> {
    /// Index of the completed sweep (0-based, dense).
    pub sweep: usize,
    /// The sweep's observation payload.
    pub row: Row,
    /// The sweep's health record, at its *nominal* time (clock-skew
    /// normalisation happens once, in `CampaignRunner::finish`).
    pub health: CampaignHealth,
    /// Runner cross-sweep state: consecutive failures per target.
    pub consecutive_failures: Vec<usize>,
    /// Runner cross-sweep state: quarantine horizon per target.
    pub quarantined_until: Vec<usize>,
    /// Word position of the campaign RNG after this sweep.
    pub campaign_rng_pos: u64,
    /// Word position of the fault-session RNG after this sweep (0 when
    /// the campaign runs without a fault plan).
    pub fault_rng_pos: u64,
}

/// Folded checkpoint state a resumed campaign restarts from.
#[derive(Debug, Clone, PartialEq)]
pub struct ResumeState<Row> {
    /// First sweep the resumed run must execute (= completed sweeps).
    pub next_sweep: usize,
    /// Rows of every completed sweep, in sweep order.
    pub rows: Vec<Row>,
    /// Health records of every completed sweep (nominal times).
    pub health: Vec<CampaignHealth>,
    /// Runner counters as of the last completed sweep.
    pub consecutive_failures: Vec<usize>,
    /// Runner quarantine horizons as of the last completed sweep.
    pub quarantined_until: Vec<usize>,
    /// Campaign RNG word position as of the last completed sweep.
    pub campaign_rng_pos: u64,
    /// Fault RNG word position as of the last completed sweep.
    pub fault_rng_pos: u64,
}

impl<Row> ResumeState<Row> {
    /// The state of a campaign that has completed nothing yet.
    pub fn fresh(targets: usize) -> Self {
        ResumeState {
            next_sweep: 0,
            rows: Vec::new(),
            health: Vec::new(),
            consecutive_failures: vec![0; targets],
            quarantined_until: vec![0; targets],
            campaign_rng_pos: 0,
            fault_rng_pos: 0,
        }
    }

    /// Fold one durable checkpoint into the state. Checkpoints must
    /// arrive in dense sweep order; a gap or repeat means the journal
    /// that produced them is internally inconsistent.
    pub fn apply(&mut self, ck: SweepCheckpoint<Row>) -> Result<()> {
        if ck.sweep != self.next_sweep {
            return Err(Error::Corrupted {
                what: "sweep checkpoint sequence",
                offset: 0,
                message: format!(
                    "checkpoint for sweep {}, expected {}",
                    ck.sweep, self.next_sweep
                ),
            });
        }
        self.next_sweep += 1;
        self.rows.push(ck.row);
        self.health.push(ck.health);
        self.consecutive_failures = ck.consecutive_failures;
        self.quarantined_until = ck.quarantined_until;
        self.campaign_rng_pos = ck.campaign_rng_pos;
        self.fault_rng_pos = ck.fault_rng_pos;
        Ok(())
    }
}

/// Where a campaign streams durable progress and recovers it from.
///
/// `record` is called exactly once per completed sweep, in order. An
/// error from either method aborts the campaign (the simulator surfaces
/// it unchanged), so a sink that cannot persist stops the run instead of
/// silently dropping durability.
pub trait CampaignSink<Row> {
    /// State recovered from a previous run of this campaign, if any.
    /// Called once, before the first sweep.
    fn resume(&mut self) -> Result<Option<ResumeState<Row>>>;
    /// Persist one completed sweep.
    fn record(&mut self, ck: SweepCheckpoint<Row>) -> Result<()>;
}

/// A sink that persists nothing — the plain, non-recoverable entry
/// points run through this.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl<Row> CampaignSink<Row> for NullSink {
    fn resume(&mut self) -> Result<Option<ResumeState<Row>>> {
        Ok(None)
    }
    fn record(&mut self, _ck: SweepCheckpoint<Row>) -> Result<()> {
        Ok(())
    }
}

/// In-memory sink for tests: folds checkpoints into a [`ResumeState`]
/// (its "durable storage") and can simulate a crash a fixed number of
/// sweeps after it starts accepting.
///
/// The crash fires *after* the checkpoint is folded — matching a real
/// journal, where the frame is on disk before the process dies — so the
/// killed sweep is durable and a resumed run continues after it.
#[derive(Debug, Clone)]
pub struct MemorySink<Row> {
    state: ResumeState<Row>,
    /// `Some(k)`: return an error from the k-th `record` call of this
    /// run (1-based), after folding it.
    kill_after: Option<usize>,
    recorded_this_run: usize,
}

impl<Row> MemorySink<Row> {
    /// An empty sink for a campaign over `targets` targets.
    pub fn new(targets: usize) -> Self {
        MemorySink {
            state: ResumeState::fresh(targets),
            kill_after: None,
            recorded_this_run: 0,
        }
    }

    /// Simulate a crash after `sweeps` more recorded sweeps.
    pub fn kill_after(mut self, sweeps: usize) -> Self {
        self.kill_after = Some(sweeps);
        self
    }

    /// Re-arm the crash countdown for another run over the same storage.
    pub fn rearm(&mut self, sweeps: Option<usize>) {
        self.kill_after = sweeps;
        self.recorded_this_run = 0;
    }

    /// The folded durable state.
    pub fn state(&self) -> &ResumeState<Row> {
        &self.state
    }
}

impl<Row: Clone> CampaignSink<Row> for MemorySink<Row> {
    fn resume(&mut self) -> Result<Option<ResumeState<Row>>> {
        if self.state.next_sweep == 0 {
            Ok(None)
        } else {
            Ok(Some(self.state.clone()))
        }
    }

    fn record(&mut self, ck: SweepCheckpoint<Row>) -> Result<()> {
        let sweep = ck.sweep;
        self.state.apply(ck)?;
        self.recorded_this_run += 1;
        if self.kill_after == Some(self.recorded_this_run) {
            return Err(Error::CampaignAborted {
                campaign: "memory sink",
                reason: format!("simulated crash after durable sweep {sweep}"),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenrir_core::time::Timestamp;

    fn ck(sweep: usize) -> SweepCheckpoint<Vec<u16>> {
        SweepCheckpoint {
            sweep,
            row: vec![sweep as u16; 3],
            health: CampaignHealth::new(Timestamp::from_days(sweep as i64), 3),
            consecutive_failures: vec![sweep; 3],
            quarantined_until: vec![0; 3],
            campaign_rng_pos: 10 * sweep as u64,
            fault_rng_pos: 0,
        }
    }

    #[test]
    fn resume_state_folds_in_order() {
        let mut rs = ResumeState::fresh(3);
        rs.apply(ck(0)).unwrap();
        rs.apply(ck(1)).unwrap();
        assert_eq!(rs.next_sweep, 2);
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.consecutive_failures, vec![1; 3]);
        assert_eq!(rs.campaign_rng_pos, 10);
    }

    #[test]
    fn resume_state_rejects_gaps_and_repeats() {
        let mut rs = ResumeState::fresh(3);
        rs.apply(ck(0)).unwrap();
        assert!(matches!(rs.apply(ck(0)), Err(Error::Corrupted { .. })));
        assert!(matches!(rs.apply(ck(2)), Err(Error::Corrupted { .. })));
    }

    #[test]
    fn memory_sink_kills_after_durable_record() {
        let mut sink = MemorySink::new(3).kill_after(2);
        assert!(CampaignSink::<Vec<u16>>::resume(&mut sink)
            .unwrap()
            .is_none());
        sink.record(ck(0)).unwrap();
        let err = sink.record(ck(1)).unwrap_err();
        assert!(matches!(err, Error::CampaignAborted { .. }));
        // The killed sweep is still durable.
        assert_eq!(sink.state().next_sweep, 2);
        sink.rearm(None);
        let resumed = CampaignSink::<Vec<u16>>::resume(&mut sink)
            .unwrap()
            .unwrap();
        assert_eq!(resumed.next_sweep, 2);
        sink.record(ck(2)).unwrap();
        assert_eq!(sink.state().rows.len(), 3);
    }
}
