//! RIPE-Atlas-style catchment observation (§2.3.1).
//!
//! Atlas runs *independently of* the anycast operator: ~10k vantage points
//! each send a `CHAOS TXT hostname.bind` query toward the service and read
//! the per-server identifier out of the TXT answer; an identifier → site
//! mapping (following Fan et al.) turns that into a catchment. Compared to
//! Verfploeter, coverage is sparse (thousands of VPs, not millions of
//! blocks) but the cadence is high — the paper's Table 4 validation reads
//! Atlas "every four minutes".
//!
//! Here every VP query is a real wire round trip — `hostname.bind TXT CH`
//! inside UDP inside IPv4 — the simulated site parses the datagram, answers
//! with its identifier string, and the campaign decodes and maps it. Sites
//! answer with identifiers like `"b4-lax"`; an unknown identifier (a site
//! the mapping has not learned) decodes to [`Catchment::Other`].

use crate::checkpoint::{CampaignSink, NullSink};
use crate::fault::FaultPlan;
use crate::runner::{CampaignRunner, ProbeOutcome, ProbeReply, RunnerConfig};
use fenrir_core::error::{Error, Result};
use fenrir_core::health::CampaignHealth;
use fenrir_core::ids::{SiteId, SiteTable};
use fenrir_core::series::VectorSeries;
use fenrir_core::time::Timestamp;
use fenrir_core::vector::{Catchment, RoutingVector};
use fenrir_netsim::anycast::AnycastService;
use fenrir_netsim::events::Scenario;
use fenrir_netsim::topology::{AsId, Tier, Topology};
use fenrir_wire::dns::{Message, QClass, Rcode, Record};
use fenrir_wire::ipv4::Ipv4Packet;
use fenrir_wire::udp::{UdpDatagram, DNS_PORT};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Configuration of an Atlas-style campaign.
#[derive(Debug, Clone)]
pub struct AtlasCampaign {
    /// Number of vantage points to place (on distinct stub ASes when
    /// possible).
    pub vantage_points: usize,
    /// Per-query loss probability (the VP sees a timeout → Unknown).
    pub loss_prob: f64,
    /// Fraction of site identifiers the mapping does not know → Other.
    /// Models the paper's "other responses" category.
    pub unmapped_identifier_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AtlasCampaign {
    fn default() -> Self {
        AtlasCampaign {
            vantage_points: 100,
            loss_prob: 0.01,
            unmapped_identifier_prob: 0.0,
            seed: 0xA71A_0001,
        }
    }
}

/// Campaign output: the series plus the VP placement (vector position `n`
/// is a VP hosted in `vp_ases[n]`).
#[derive(Debug, Clone)]
pub struct AtlasResult {
    /// One vector per observation time; networks are vantage points.
    pub series: VectorSeries,
    /// Host AS of each VP.
    pub vp_ases: Vec<AsId>,
    /// Per-observation campaign health, aligned with the series.
    pub health: Vec<CampaignHealth>,
}

impl AtlasResult {
    /// Byzantine-resilient change detection over the campaign: VP host
    /// ASes act as identities, so sybil flocks sharing an AS split one
    /// vote between them instead of multiplying it.
    pub fn detect_trusted(
        &self,
        detector: &fenrir_core::detect::ChangeDetector,
        weights: &fenrir_core::weight::Weights,
        coverage_floor: f64,
        cfg: fenrir_core::trust::TrustConfig,
    ) -> Result<fenrir_core::trust::TrustedDetection> {
        let identities: Vec<u64> = self.vp_ases.iter().map(|a| a.0 as u64).collect();
        fenrir_core::trust::detect_trusted(
            detector,
            &self.series,
            weights,
            &self.health,
            coverage_floor,
            cfg,
            Some(&identities),
        )
    }
}

impl AtlasCampaign {
    /// Place VPs deterministically on stub ASes (round-robin if more VPs
    /// than stubs).
    pub fn place_vps(&self, topo: &Topology) -> Vec<AsId> {
        let mut stubs = topo.tier_members(Tier::Stub);
        if stubs.is_empty() {
            stubs = topo.nodes().iter().map(|n| n.id).collect();
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        stubs.shuffle(&mut rng);
        (0..self.vantage_points)
            .map(|i| stubs[i % stubs.len()])
            .collect()
    }

    /// Run the campaign over `times`.
    pub fn run(
        &self,
        topo: &Topology,
        base: &AnycastService,
        scenario: &Scenario,
        times: &[Timestamp],
    ) -> AtlasResult {
        self.run_with(topo, base, scenario, times, &RunnerConfig::default(), None)
            .expect("default atlas campaign cannot fail")
    }

    /// Run the campaign under an explicit execution policy and an
    /// optional fault plan. `run` is `run_with` with defaults.
    pub fn run_with(
        &self,
        topo: &Topology,
        base: &AnycastService,
        scenario: &Scenario,
        times: &[Timestamp],
        cfg: &RunnerConfig,
        faults: Option<&FaultPlan>,
    ) -> Result<AtlasResult> {
        self.run_recoverable(topo, base, scenario, times, cfg, faults, &mut NullSink)
    }

    /// [`AtlasCampaign::run_with`] streaming per-sweep progress into a
    /// durable [`CampaignSink`] (one checkpoint row = one sweep's
    /// catchment codes); resumes bit-identically from a killed run.
    #[allow(clippy::too_many_arguments)]
    pub fn run_recoverable(
        &self,
        topo: &Topology,
        base: &AnycastService,
        scenario: &Scenario,
        times: &[Timestamp],
        cfg: &RunnerConfig,
        faults: Option<&FaultPlan>,
        sink: &mut dyn CampaignSink<Vec<u16>>,
    ) -> Result<AtlasResult> {
        for (name, p) in [
            ("loss_prob", self.loss_prob),
            ("unmapped_identifier_prob", self.unmapped_identifier_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(Error::InvalidParameter {
                    name,
                    message: format!("must lie in [0, 1], got {p}"),
                });
            }
        }
        let vp_ases = self.place_vps(topo);
        let sites = SiteTable::from_names(base.sites().iter().map(|s| s.name.as_str()));
        // Identifier mapping: "b4-<lowercase site>" -> site, as built from
        // prior work's identifier surveys.
        let mapping: HashMap<String, SiteId> = base
            .sites()
            .iter()
            .enumerate()
            .map(|(i, s)| (format!("b4-{}", s.name.to_lowercase()), SiteId(i as u16)))
            .collect();

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed.wrapping_add(1));
        let resume = sink.resume()?;
        let (mut runner, mut rows, start) = match &resume {
            Some(rs) => {
                let runner = CampaignRunner::restore(cfg, faults, vp_ases.len(), times.len(), rs)?;
                rng.set_word_pos(rs.campaign_rng_pos as u128);
                (runner, rs.rows.clone(), rs.next_sweep)
            }
            None => (
                CampaignRunner::new(cfg, faults, vp_ases.len(), times.len())?,
                Vec::with_capacity(times.len()),
                0,
            ),
        };
        let mut live = crate::routes::ScenarioRoutes::new();
        for (sweep, &t) in times.iter().enumerate().skip(start) {
            runner.begin_sweep(t);
            if runner.divergence_scheduled() {
                live.poison(topo);
            }
            let (svc, routes) = live.at(topo, base, scenario, t.as_secs());
            let mut v = RoutingVector::unknown(t, vp_ases.len());
            for (n, &vp) in vp_ases.iter().enumerate() {
                let outcome = runner.probe(n, |wire| {
                    if rng.gen_bool(self.loss_prob) {
                        return ProbeReply::NoResponse; // timeout
                    }
                    // Real wire round trip: the CHAOS query travels inside
                    // a UDP/IPv4 datagram from the VP to the anycast
                    // prefix, and may be mangled in either direction.
                    let vp_addr = [100, 64, (n >> 8) as u8, n as u8];
                    let service_addr = [192, 0, 2, 1];
                    let query = Message::chaos_hostname_bind(n as u16);
                    let qbytes = query.encode().expect("query encodes");
                    let dgram = UdpDatagram::new(33_000 + n as u16, DNS_PORT, qbytes)
                        .into_ipv4(vp_addr, service_addr)
                        .expect("datagram fits");
                    let mut on_wire = dgram.encode().expect("packet encodes");
                    wire.corrupt(&mut on_wire);
                    let (udp_in, at_server) = match Ipv4Packet::decode(&on_wire)
                        .and_then(|ip| UdpDatagram::from_ipv4(&ip))
                        .and_then(|udp| Message::decode(&udp.payload).map(|m| (udp, m)))
                    {
                        Ok(parsed) => parsed,
                        // The site could not parse the query: it never
                        // answers, and the VP records a failure.
                        Err(_) => return ProbeReply::DecodeFailure,
                    };
                    if udp_in.dst_port != DNS_PORT {
                        return ProbeReply::DecodeFailure;
                    }
                    let Some(site) = routes.catchment(vp) else {
                        // Query reached no site at all.
                        return ProbeReply::Response(Catchment::Err);
                    };
                    // ... identifier back. Occasionally a site announces
                    // an identifier the mapping has not learned.
                    let unmapped = rng.gen_bool(self.unmapped_identifier_prob);
                    let ident = if unmapped {
                        format!("anon-{site}")
                    } else {
                        format!("b4-{}", svc.sites()[site as usize].name.to_lowercase())
                    };
                    let mut resp = at_server.response_to(Rcode::NoError);
                    resp.answers.push(Record::txt(
                        at_server.questions[0].name.clone(),
                        QClass::Chaos,
                        0,
                        ident.as_bytes(),
                    ));
                    let rbytes = resp.encode().expect("response encodes");
                    let rdgram = UdpDatagram::new(DNS_PORT, udp_in.src_port, rbytes)
                        .into_ipv4(service_addr, vp_addr)
                        .expect("datagram fits");
                    let mut back_wire = rdgram.encode().expect("packet encodes");
                    wire.corrupt(&mut back_wire);
                    let at_vp = match Ipv4Packet::decode(&back_wire)
                        .and_then(|ip| UdpDatagram::from_ipv4(&ip))
                        .and_then(|udp| Message::decode(&udp.payload))
                    {
                        Ok(m) => m,
                        Err(_) => return ProbeReply::DecodeFailure,
                    };
                    // A mangled-but-parseable answer that lost its TXT or
                    // its transaction id is discarded, never mapped.
                    if at_vp.header.id != n as u16 {
                        return ProbeReply::DecodeFailure;
                    }
                    let Some(got) = at_vp.first_txt() else {
                        return ProbeReply::DecodeFailure;
                    };
                    match mapping.get(&got) {
                        Some(&sid) => ProbeReply::Response(Catchment::Site(sid)),
                        None => ProbeReply::Response(Catchment::Other),
                    }
                });
                if let ProbeOutcome::Response(c) = outcome {
                    v.set(n, c);
                }
            }
            runner.note_divergences(live.drain_divergences());
            let mut codes = v.codes().to_vec();
            // Adversaries mangle the recorded row, not the wire: resumed
            // runs replay the mangled codes bit-identically from the sink.
            runner.tamper_codes(&mut codes, &|lag, n| {
                sweep
                    .checked_sub(lag)
                    .and_then(|s| rows.get(s))
                    .map(|r| r[n])
            });
            sink.record(runner.checkpoint(codes.clone(), rng.get_word_pos() as u64))?;
            debug_assert_eq!(rows.len(), sweep);
            rows.push(codes);
        }
        let (order, health) = runner.finish();
        let mut series = VectorSeries::new(sites, vp_ases.len());
        for &(orig, t) in &order {
            let v = RoutingVector::from_codes(t, rows[orig].clone());
            series.push(v).expect("normalised times strictly increase");
        }
        Ok(AtlasResult {
            series,
            vp_ases,
            health,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenrir_netsim::geo::cities;
    use fenrir_netsim::topology::TopologyBuilder;

    fn setup() -> (Topology, AnycastService) {
        let topo = TopologyBuilder {
            transit: 3,
            regional: 6,
            stubs: 50,
            blocks_per_stub: 1,
            seed: 21,
            ..Default::default()
        }
        .build();
        let regionals = topo.tier_members(Tier::Regional);
        let mut svc = AnycastService::new("G-Root");
        svc.add_site("STR", regionals[0], cities::STR);
        svc.add_site("NAP", regionals[1], cities::NAP);
        svc.add_site("CMH", regionals[2], cities::CMH);
        (topo, svc)
    }

    fn times(n: i64) -> Vec<Timestamp> {
        (0..n)
            .map(|i| Timestamp::from_secs(i * 240)) // 4-minute cadence
            .collect()
    }

    #[test]
    fn vps_are_placed_deterministically() {
        let (topo, _) = setup();
        let c = AtlasCampaign::default();
        assert_eq!(c.place_vps(&topo), c.place_vps(&topo));
        assert_eq!(c.place_vps(&topo).len(), 100);
    }

    #[test]
    fn run_produces_aligned_series() {
        let (topo, svc) = setup();
        let c = AtlasCampaign {
            vantage_points: 40,
            ..Default::default()
        };
        let r = c.run(&topo, &svc, &Scenario::new(), &times(5));
        assert_eq!(r.series.len(), 5);
        assert_eq!(r.series.networks(), 40);
        assert_eq!(r.vp_ases.len(), 40);
        assert_eq!(r.series.sites().len(), 3);
    }

    #[test]
    fn lossless_campaign_has_full_coverage() {
        let (topo, svc) = setup();
        let c = AtlasCampaign {
            vantage_points: 30,
            loss_prob: 0.0,
            ..Default::default()
        };
        let r = c.run(&topo, &svc, &Scenario::new(), &times(3));
        assert_eq!(r.series.mean_coverage(), 1.0);
    }

    #[test]
    fn loss_shows_as_unknown() {
        let (topo, svc) = setup();
        let c = AtlasCampaign {
            vantage_points: 50,
            loss_prob: 0.5,
            ..Default::default()
        };
        let r = c.run(&topo, &svc, &Scenario::new(), &times(4));
        let cov = r.series.mean_coverage();
        assert!((0.3..0.7).contains(&cov), "coverage {cov}");
    }

    #[test]
    fn unmapped_identifiers_become_other() {
        let (topo, svc) = setup();
        let c = AtlasCampaign {
            vantage_points: 50,
            loss_prob: 0.0,
            unmapped_identifier_prob: 1.0,
            ..Default::default()
        };
        let r = c.run(&topo, &svc, &Scenario::new(), &times(1));
        let agg = r.series.get(0).aggregate(3);
        assert_eq!(agg.other, 50);
        assert_eq!(agg.per_site.iter().sum::<u64>(), 0);
    }

    #[test]
    fn drain_moves_vps_between_sites() {
        let (topo, svc) = setup();
        let mut sc = Scenario::new();
        sc.drain(0, 240 * 2, 240 * 4, "op"); // drained at obs 2 and 3
        let c = AtlasCampaign {
            vantage_points: 60,
            loss_prob: 0.0,
            ..Default::default()
        };
        let r = c.run(&topo, &svc, &sc, &times(6));
        let aggs = r.series.aggregates();
        assert!(aggs[1].per_site[0] > 0);
        assert_eq!(aggs[2].per_site[0], 0, "STR drained");
        assert!(aggs[4].per_site[0] > 0, "STR restored");
        // Total observed stays constant (no loss).
        for a in &aggs {
            assert_eq!(a.total(), 60);
            assert_eq!(a.unknown, 0);
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let (topo, svc) = setup();
        let c = AtlasCampaign::default();
        let a = c.run(&topo, &svc, &Scenario::new(), &times(3));
        let b = c.run(&topo, &svc, &Scenario::new(), &times(3));
        for (va, vb) in a.series.vectors().iter().zip(b.series.vectors()) {
            assert_eq!(va, vb);
        }
    }

    #[test]
    fn more_vps_than_stubs_wraps_round_robin() {
        let (topo, svc) = setup();
        let c = AtlasCampaign {
            vantage_points: 120, // only 50 stubs
            ..Default::default()
        };
        let r = c.run(&topo, &svc, &Scenario::new(), &times(1));
        assert_eq!(r.vp_ases.len(), 120);
    }
}
