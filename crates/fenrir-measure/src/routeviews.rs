//! Control-plane observation: RouteViews/RIS-style route collectors.
//!
//! The paper's related-work section notes that "in principle, our approach
//! could use control-plane information as a data source, demonstrating
//! that is future work" — this module demonstrates it. A
//! [`RouteCollector`] peers (in simulation) with a set of ASes and dumps
//! their BGP paths toward every destination block, from which Fenrir
//! vectors are built exactly as from traceroute — but with no packet loss
//! and no filtered hops, the control plane's advantage.
//!
//! It also implements the **AS-hegemony** metric (Fontugne et al., PAM'18)
//! the paper cites for RIPE's country-level reports: for a destination
//! set, an AS's hegemony is the trimmed-mean fraction of observed paths
//! that traverse it — "the (thin) bridges of AS connectivity".

use fenrir_core::ids::SiteTable;
use fenrir_core::series::VectorSeries;
use fenrir_core::time::Timestamp;
use fenrir_core::vector::{Catchment, RoutingVector};
use fenrir_netsim::events::Scenario;
use fenrir_netsim::prefix::BlockId;
use fenrir_netsim::topology::{AsId, Topology};
use std::collections::HashMap;

/// A control-plane collector peering with `peers` (its "RIB feeds").
#[derive(Debug, Clone)]
pub struct RouteCollector {
    /// ASes providing full-table feeds to the collector.
    pub peers: Vec<AsId>,
    /// Which AS-path hop defines the catchment for vector building
    /// (1 = the peer's next hop, like the paper's "immediate upstreams";
    /// larger = further out, the adjustable "focus").
    pub focus_hop: usize,
}

/// One RIB snapshot: the AS path from every peer to every destination
/// block.
#[derive(Debug, Clone)]
pub struct RibSnapshot {
    /// Snapshot time.
    pub time: Timestamp,
    /// `paths[p][n]`: AS path (starting at the peer, ending at the origin)
    /// from peer `p` toward block `n`; `None` if unreachable.
    pub paths: Vec<Vec<Option<Vec<AsId>>>>,
}

/// Result of a control-plane campaign.
#[derive(Debug, Clone)]
pub struct RouteViewsResult {
    /// One routing-vector series per peer: networks are destination
    /// blocks, catchment = AS at `focus_hop` on that peer's path.
    pub per_peer_series: Vec<VectorSeries>,
    /// Raw snapshots, for hegemony analysis.
    pub snapshots: Vec<RibSnapshot>,
    /// Destination blocks, aligned with vector positions.
    pub blocks: Vec<BlockId>,
}

impl RouteCollector {
    /// Dump RIBs at each time under the scenario's routing config and
    /// derive per-peer catchment series.
    pub fn run(
        &self,
        topo: &Topology,
        scenario: &Scenario,
        times: &[Timestamp],
    ) -> RouteViewsResult {
        let blocks: Vec<BlockId> = topo.all_blocks().iter().map(|&(b, _)| b).collect();
        let owners: Vec<AsId> = blocks
            .iter()
            .map(|&b| topo.owner_of(b).expect("owned"))
            .collect();
        let sites = SiteTable::from_names(topo.nodes().iter().map(|n| format!("AS{}", n.id.0)));
        let mut per_peer_series: Vec<VectorSeries> = self
            .peers
            .iter()
            .map(|_| VectorSeries::new(sites.clone(), blocks.len()))
            .collect();
        let mut snapshots = Vec::with_capacity(times.len());

        // One live route table per distinct destination AS, advanced
        // incrementally across RIB dumps.
        let mut tables = crate::routes::DestRoutes::new();
        for &t in times {
            let cfg = scenario.config_at(t.as_secs());
            let mut snap = RibSnapshot {
                time: t,
                paths: vec![vec![None; blocks.len()]; self.peers.len()],
            };
            let mut vectors: Vec<RoutingVector> = self
                .peers
                .iter()
                .map(|_| RoutingVector::unknown(t, blocks.len()))
                .collect();
            for (n, &dest) in owners.iter().enumerate() {
                let table = tables.at(topo, dest, &cfg);
                for (p, &peer) in self.peers.iter().enumerate() {
                    match table.full_path(peer) {
                        Some(path) => {
                            let state = match path.get(self.focus_hop) {
                                Some(&hop_as) => {
                                    Catchment::Site(fenrir_core::ids::SiteId(hop_as.0 as u16))
                                }
                                // Destination closer than the focus hop.
                                None => Catchment::Other,
                            };
                            vectors[p].set(n, state);
                            snap.paths[p][n] = Some(path);
                        }
                        None => vectors[p].set(n, Catchment::Err),
                    }
                }
            }
            for (p, v) in vectors.into_iter().enumerate() {
                per_peer_series[p]
                    .push(v)
                    .expect("times strictly increasing");
            }
            snapshots.push(snap);
        }
        RouteViewsResult {
            per_peer_series,
            snapshots,
            blocks,
        }
    }
}

/// AS-hegemony scores for one snapshot: for each transit AS, the
/// trimmed-mean (over peers) fraction of destination paths traversing it.
///
/// Following Fontugne et al., per-peer fractions are computed first, then
/// the top and bottom `trim` fraction of peer values are discarded before
/// averaging — damping collectors that are too close to or too far from
/// the AS under study. Origin and peer ASes themselves are excluded from
/// each path's transit set.
pub fn hegemony(snapshot: &RibSnapshot, trim: f64) -> HashMap<AsId, f64> {
    let num_peers = snapshot.paths.len();
    if num_peers == 0 {
        return HashMap::new();
    }
    // Per-peer traversal fractions per AS.
    let mut per_peer: Vec<HashMap<AsId, f64>> = Vec::with_capacity(num_peers);
    for peer_paths in &snapshot.paths {
        let mut counts: HashMap<AsId, usize> = HashMap::new();
        let mut total = 0usize;
        for path in peer_paths.iter().flatten() {
            total += 1;
            // Transit ASes: strictly between the peer (first) and the
            // origin (last).
            if path.len() > 2 {
                for &asn in &path[1..path.len() - 1] {
                    *counts.entry(asn).or_insert(0) += 1;
                }
            }
        }
        let fracs = counts
            .into_iter()
            .map(|(a, c)| (a, c as f64 / total.max(1) as f64))
            .collect();
        per_peer.push(fracs);
    }
    // Union of scored ASes.
    let mut all: Vec<AsId> = per_peer.iter().flat_map(|m| m.keys().copied()).collect();
    all.sort();
    all.dedup();
    // Trimmed mean across peers.
    let k = ((num_peers as f64) * trim).floor() as usize;
    let mut out = HashMap::new();
    for a in all {
        let mut vals: Vec<f64> = per_peer
            .iter()
            .map(|m| m.get(&a).copied().unwrap_or(0.0))
            .collect();
        vals.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        let kept = &vals[k..vals.len() - k.min(vals.len().saturating_sub(k))];
        if kept.is_empty() {
            continue;
        }
        let mean = kept.iter().sum::<f64>() / kept.len() as f64;
        if mean > 0.0 {
            out.insert(a, mean);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenrir_netsim::topology::{Tier, TopologyBuilder};

    fn setup() -> (Topology, Vec<AsId>) {
        let topo = TopologyBuilder {
            transit: 3,
            regional: 8,
            stubs: 40,
            blocks_per_stub: 2,
            seed: 0xBC,
            multihome_prob: 0.5,
            ..Default::default()
        }
        .build();
        let peers: Vec<AsId> = topo.tier_members(Tier::Stub).into_iter().take(4).collect();
        (topo, peers)
    }

    fn days(n: i64) -> Vec<Timestamp> {
        (0..n).map(Timestamp::from_days).collect()
    }

    #[test]
    fn control_plane_has_full_coverage() {
        let (topo, peers) = setup();
        let rc = RouteCollector {
            peers,
            focus_hop: 1,
        };
        let r = rc.run(&topo, &Scenario::new(), &days(2));
        for s in &r.per_peer_series {
            assert_eq!(s.mean_coverage(), 1.0, "no loss on the control plane");
        }
        assert_eq!(r.snapshots.len(), 2);
    }

    #[test]
    fn focus_hop_one_matches_peer_neighbors() {
        let (topo, peers) = setup();
        let rc = RouteCollector {
            peers: peers.clone(),
            focus_hop: 1,
        };
        let r = rc.run(&topo, &Scenario::new(), &days(1));
        for (p, &peer) in peers.iter().enumerate() {
            let neighbors: Vec<u16> = topo
                .neighbors(peer)
                .iter()
                .map(|&(n, _)| n.0 as u16)
                .collect();
            let v = r.per_peer_series[p].get(0);
            for n in 0..v.len() {
                if let Catchment::Site(s) = v.get(n) {
                    assert!(
                        neighbors.contains(&s.0),
                        "hop-1 entity not adjacent to peer"
                    );
                }
            }
        }
    }

    #[test]
    fn deeper_focus_reaches_transits() {
        let (topo, peers) = setup();
        // In a three-tier topology, transit ASes sit two hops from a stub
        // peer (stub -> regional -> transit).
        let rc = RouteCollector {
            peers,
            focus_hop: 2,
        };
        let r = rc.run(&topo, &Scenario::new(), &days(1));
        // At hop 2, at least some destinations are carried by transit ASes.
        let transit: Vec<u16> = topo
            .tier_members(Tier::Transit)
            .iter()
            .map(|a| a.0 as u16)
            .collect();
        let v = r.per_peer_series[0].get(0);
        let hits = (0..v.len())
            .filter(|&n| matches!(v.get(n), Catchment::Site(s) if transit.contains(&s.0)))
            .count();
        assert!(hits > 0, "no transit at focus hop 2");
    }

    #[test]
    fn hegemony_scores_are_sane() {
        let (topo, peers) = setup();
        let rc = RouteCollector {
            peers,
            focus_hop: 1,
        };
        let r = rc.run(&topo, &Scenario::new(), &days(1));
        let h = hegemony(&r.snapshots[0], 0.1);
        assert!(!h.is_empty());
        for (&asn, &score) in &h {
            assert!((0.0..=1.0).contains(&score), "{asn}: {score}");
        }
        // Transit ASes should dominate the ranking.
        let mut ranked: Vec<(AsId, f64)> = h.into_iter().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let top = ranked[0].0;
        let tier = topo.node(top).tier;
        assert!(
            tier == Tier::Transit || tier == Tier::Regional,
            "top hegemon {top} is a {tier:?}"
        );
    }

    #[test]
    fn hegemony_excludes_origin_and_peer() {
        // A 2-hop path peer->origin has no transit: empty hegemony.
        let snap = RibSnapshot {
            time: Timestamp::from_days(0),
            paths: vec![vec![Some(vec![AsId(1), AsId(2)])]],
        };
        assert!(hegemony(&snap, 0.0).is_empty());
        // A 3-hop path scores only the middle AS.
        let snap3 = RibSnapshot {
            time: Timestamp::from_days(0),
            paths: vec![vec![Some(vec![AsId(1), AsId(5), AsId(2)])]],
        };
        let h = hegemony(&snap3, 0.0);
        assert_eq!(h.len(), 1);
        assert_eq!(h.get(&AsId(5)), Some(&1.0));
    }

    #[test]
    fn hegemony_trim_drops_outlier_peers() {
        // 10 peers; AS9 is on all paths of one peer only.
        let mut paths = vec![vec![Some(vec![AsId(1), AsId(7), AsId(2)])]; 10];
        paths[0] = vec![Some(vec![AsId(1), AsId(9), AsId(2)])];
        let snap = RibSnapshot {
            time: Timestamp::from_days(0),
            paths,
        };
        let h_untrimmed = hegemony(&snap, 0.0);
        assert!(h_untrimmed.contains_key(&AsId(9)));
        let h_trimmed = hegemony(&snap, 0.1);
        // With 10% trimming the single-peer outlier view is discarded.
        assert!(!h_trimmed.contains_key(&AsId(9)));
        assert!(h_trimmed.contains_key(&AsId(7)));
    }

    #[test]
    fn empty_collector_is_empty() {
        let snap = RibSnapshot {
            time: Timestamp::from_days(0),
            paths: vec![],
        };
        assert!(hegemony(&snap, 0.1).is_empty());
    }

    #[test]
    fn third_party_changes_visible_on_control_plane() {
        let (topo, peers) = setup();
        let probes = topo.tier_members(Tier::Stub);
        // Build an anycast-free disturbance: link-down on a regional's
        // provider link, scheduled mid-window.
        let regional = topo.tier_members(Tier::Regional)[0];
        let provider = topo
            .neighbors(regional)
            .iter()
            .find(|&&(_, rel)| rel == fenrir_netsim::topology::Relationship::Provider)
            .map(|&(n, _)| n)
            .expect("regional has a provider");
        let mut sc = Scenario::new();
        sc.push(fenrir_netsim::events::ScenarioEvent {
            start: Timestamp::from_days(2).as_secs(),
            end: None,
            kind: fenrir_netsim::events::EventKind::LinkDown {
                a: regional,
                b: provider,
            },
            party: fenrir_netsim::events::Party::ThirdParty,
            operator: "third-party".to_owned(),
        });
        let rc = RouteCollector {
            peers,
            focus_hop: 2,
        };
        let r = rc.run(&topo, &sc, &days(4));
        let _ = probes;
        // At least one peer's series changes at the event.
        let changed = r.per_peer_series.iter().any(|s| {
            use fenrir_core::similarity::{phi, UnknownPolicy};
            let w = fenrir_core::weight::Weights::uniform(s.networks());
            phi(s.get(1), s.get(2), &w, UnknownPolicy::KnownOnly) < 1.0
        });
        assert!(changed, "link failure invisible on the control plane");
    }
}
