//! Canned adversarial measurement scenarios.
//!
//! Two end-to-end stories exercising the byzantine-resilience stack
//! ([`fenrir_netsim::adversary`] → [`crate::fault`] → the campaign
//! runner → [`fenrir_core::trust`]):
//!
//! * [`hypergiant_sybil`] — a Google-like hypergiant whose front-end
//!   clusters reshuffle weekly ([`FrontendPolicy::Churn`]), measured
//!   while an attacker floods the vantage population with sybil clones
//!   of a compromised prober. The weekly reshuffles are the genuine
//!   routing events; the sybil flock tries to drown them out.
//! * [`ddos_catchment_flip`] — a three-site anycast service losing one
//!   site to a DDoS mid-campaign (a catchment flip every honest block
//!   observes), while the attacker spoofs replies for silent blocks
//!   claiming the dying site still serves them, trying to mask the flip.
//!
//! Both run the same campaign with and without the adversary (fraction
//! `0.0` disables it), so callers can assert the trust-weighted verdict
//! matches the clean one — the acceptance bar for ≤25% compromise — or
//! measure precision/recall as the compromised fraction grows.

use crate::ednscs::{EdnsCsCampaign, FrontendPolicy};
use crate::fault::FaultPlan;
use crate::runner::RunnerConfig;
use crate::verfploeter::Verfploeter;
use fenrir_core::detect::ChangeDetector;
use fenrir_core::error::{Error, Result};
use fenrir_core::series::VectorSeries;
use fenrir_core::time::Timestamp;
use fenrir_core::trust::{TrustConfig, TrustedDetection};
use fenrir_core::weight::Weights;
use fenrir_netsim::adversary::{AdversaryPlan, ByzantineStrategy, ByzantineVp};
use fenrir_netsim::anycast::AnycastService;
use fenrir_netsim::events::Scenario;
use fenrir_netsim::geo::cities;
use fenrir_netsim::topology::{Tier, Topology, TopologyBuilder};

/// Outcome of an adversarial scenario: the measured series, and the
/// trust-weighted verdict over it.
#[derive(Debug, Clone)]
pub struct AdversarialRun {
    /// The (possibly poisoned) catchment series the campaign recorded.
    pub series: VectorSeries,
    /// Trust-weighted, coverage- and trust-gated detection over it.
    pub detection: TrustedDetection,
}

impl AdversarialRun {
    /// Observation indices of the events that survived every gate.
    pub fn event_indices(&self) -> Vec<usize> {
        self.detection
            .gated
            .events
            .iter()
            .map(|e| e.index)
            .collect()
    }
}

fn hypergiant_topology() -> Topology {
    TopologyBuilder {
        transit: 3,
        regional: 6,
        stubs: 50,
        blocks_per_stub: 1,
        seed: 0xAD00,
        ..Default::default()
    }
    .build()
}

/// A hypergiant with churning front-ends, probed under sybil pressure.
///
/// `fraction` of the vantage population is compromised: a small
/// byzantine core lies constantly about its front-end, and the rest of
/// the compromised set are sybil clones mirroring the core. With
/// `fraction == 0.0` the run is clean. Deterministic under
/// `adversary_seed`.
pub fn hypergiant_sybil(adversary_seed: u64, fraction: f64) -> Result<AdversarialRun> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(Error::InvalidParameter {
            name: "fraction",
            message: format!("must lie in [0, 1], got {fraction}"),
        });
    }
    let topo = hypergiant_topology();
    // The service shell only names the operator; the Churn policy hashes
    // blocks straight onto front-end clusters.
    let svc = AnycastService::new("hypergiant");
    let campaign = EdnsCsCampaign {
        hostname: "www.hypergiant.example".into(),
        policy: FrontendPolicy::Churn {
            clusters: 24,
            epoch_secs: 7 * 86_400,
            era: 9,
            sticky_frac: 0.15,
            daily_churn: 0.01,
        },
        loss_prob: 0.02,
        seed: 0x44D5_0001,
    };
    // Daily sweeps over three weeks: the weekly reshuffles at days 7 and
    // 14 are the genuine events.
    let times: Vec<Timestamp> = (0..21).map(Timestamp::from_days).collect();
    let faults = if fraction > 0.0 {
        // A quarter of the compromised set actively lies; the rest are
        // sybil clones mirroring the first liar.
        let adversary = AdversaryPlan::new(adversary_seed)
            .with_byzantine(ByzantineVp {
                fraction: fraction * 0.25,
                strategy: ByzantineStrategy::Constant { site: 0 },
            })
            .with_sybil(fenrir_netsim::adversary::SybilPopulation {
                fraction: fraction * 0.75,
            });
        Some(FaultPlan::new(adversary_seed ^ 0x5EED).with_adversary(adversary))
    } else {
        None
    };
    let result = campaign.run_with(
        &topo,
        &svc,
        &Scenario::new(),
        &times,
        &RunnerConfig::default(),
        faults.as_ref(),
    )?;
    let weights = Weights::uniform(result.series.networks());
    let detector = ChangeDetector {
        window: 6,
        ..ChangeDetector::default()
    };
    let detection = result.detect_trusted(&detector, &weights, 0.2, TrustConfig::default())?;
    Ok(AdversarialRun {
        series: result.series,
        detection,
    })
}

/// A DDoS takes out one anycast site mid-campaign while the attacker
/// spoofs replies for silent blocks, claiming the dying site still
/// serves them.
///
/// `fraction` is the probability any silent cell gets a spoofed reply;
/// `0.0` disables the adversary. The drain of site 0 across days 5–10
/// is the genuine catchment flip the spoofer tries to mask.
/// Deterministic under `adversary_seed`.
pub fn ddos_catchment_flip(adversary_seed: u64, fraction: f64) -> Result<AdversarialRun> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(Error::InvalidParameter {
            name: "fraction",
            message: format!("must lie in [0, 1], got {fraction}"),
        });
    }
    let topo = TopologyBuilder {
        transit: 3,
        regional: 6,
        stubs: 40,
        blocks_per_stub: 2,
        seed: 0xAD01,
        ..Default::default()
    }
    .build();
    let regionals = topo.tier_members(Tier::Regional);
    let mut svc = AnycastService::new("B-Root");
    svc.add_site("LAX", regionals[0], cities::LAX);
    svc.add_site("MIA", regionals[1], cities::MIA);
    svc.add_site("AMS", regionals[2], cities::AMS);
    let mut scenario = Scenario::new();
    scenario.drain(
        0,
        Timestamp::from_days(5).as_secs(),
        Timestamp::from_days(10).as_secs(),
        "ddos",
    );
    let campaign = Verfploeter {
        mean_response_rate: 0.75,
        seed: 0x0D05_0001,
    };
    let times: Vec<Timestamp> = (0..15).map(Timestamp::from_days).collect();
    let faults = if fraction > 0.0 {
        // Spoofed replies always claim site 0 — the one the DDoS kills.
        let adversary = AdversaryPlan::new(adversary_seed)
            .with_spoofed_replies(fenrir_netsim::adversary::SpoofedReplies { fraction, site: 0 });
        Some(FaultPlan::new(adversary_seed ^ 0x5EED).with_adversary(adversary))
    } else {
        None
    };
    let result = campaign.run_with(
        &topo,
        &svc,
        &scenario,
        &times,
        &RunnerConfig::default(),
        faults.as_ref(),
    )?;
    let weights = Weights::uniform(result.series.networks());
    let detector = ChangeDetector {
        window: 4,
        ..ChangeDetector::default()
    };
    let detection = result.detect_trusted(&detector, &weights, 0.2, TrustConfig::default())?;
    Ok(AdversarialRun {
        series: result.series,
        detection,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypergiant_clean_run_sees_the_weekly_reshuffles() {
        let clean = hypergiant_sybil(1, 0.0).unwrap();
        let idx = clean.event_indices();
        assert!(!idx.is_empty(), "weekly reshuffles must be detected");
        assert!(
            idx.iter().any(|&i| (6..=8).contains(&i)),
            "first reshuffle near day 7, got {idx:?}"
        );
        assert!(!clean.detection.degraded);
    }

    #[test]
    fn hypergiant_sybil_pressure_matches_clean_verdict() {
        let clean = hypergiant_sybil(7, 0.0).unwrap();
        let dirty = hypergiant_sybil(7, 0.25).unwrap();
        assert_eq!(
            clean.event_indices(),
            dirty.event_indices(),
            "25% sybil pressure must not change the verdict"
        );
        assert!(!dirty.detection.degraded);
    }

    #[test]
    fn ddos_flip_survives_spoofed_masking() {
        let clean = ddos_catchment_flip(3, 0.0).unwrap();
        let dirty = ddos_catchment_flip(3, 0.25).unwrap();
        let flips = clean.event_indices();
        assert!(
            flips.iter().any(|&i| (4..=6).contains(&i)),
            "drain onset near day 5, got {flips:?}"
        );
        assert_eq!(
            flips,
            dirty.event_indices(),
            "spoofing must not mask the flip"
        );
    }

    #[test]
    fn scenarios_are_deterministic_under_seed() {
        let a = hypergiant_sybil(11, 0.25).unwrap();
        let b = hypergiant_sybil(11, 0.25).unwrap();
        assert_eq!(a.event_indices(), b.event_indices());
        assert_eq!(a.series.vectors(), b.series.vectors());
        let c = ddos_catchment_flip(11, 0.25).unwrap();
        let d = ddos_catchment_flip(11, 0.25).unwrap();
        assert_eq!(c.series.vectors(), d.series.vectors());
    }

    #[test]
    fn fraction_out_of_range_is_rejected() {
        assert!(hypergiant_sybil(1, 1.5).is_err());
        assert!(ddos_catchment_flip(1, -0.1).is_err());
    }
}
