//! Submit-mode campaign driving: turn any simulator's finished result
//! into the ordered `Submit` rows a streaming ingestor consumes.
//!
//! The batch simulators produce a [`VectorSeries`] plus per-observation
//! [`CampaignHealth`]; a streaming deployment instead pushes each
//! observation over the serve path as it completes, one
//! `Request::Submit` frame per timestep with a client-assigned sequence
//! number. [`SubmitRow`] is that frame's payload in transport-neutral
//! form, and the `rows_from_*` extractors adapt each of the five
//! simulators' result types (Table 2 of the paper) so every campaign
//! can be replayed live without re-running the simulation.
//!
//! Extraction never re-orders or re-times anything: row `i` carries the
//! codes and health of observation `i` verbatim, with `seq == i`, so a
//! stream fed from these rows is bit-identical to the batch series the
//! simulator recorded.

use fenrir_core::health::CampaignHealth;
use fenrir_core::series::VectorSeries;

use crate::atlas::AtlasResult;
use crate::ednscs::EdnsCsResult;
use crate::latency::{latency_band_codes, LatencyResult};
use crate::traceroute::TracerouteResult;
use crate::verfploeter::SweepResult;

/// One observation ready to submit: the payload of a protocol-v4
/// `Submit` frame, minus the wire encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitRow {
    /// Client-assigned sequence number (the observation's index).
    pub seq: u64,
    /// Observation time, seconds since the epoch.
    pub time: i64,
    /// Raw catchment codes, one per network.
    pub codes: Vec<u16>,
    /// The sweep's health record, journaled with the observation.
    pub health: CampaignHealth,
}

/// Pair a series with its aligned health records, one row per
/// observation. Health shorter than the series is padded with a fresh
/// record (a sweep that died before accounting), longer is truncated.
pub fn rows_from_series(series: &VectorSeries, health: &[CampaignHealth]) -> Vec<SubmitRow> {
    (0..series.len())
        .map(|i| {
            let v = series.get(i);
            let h = health
                .get(i)
                .cloned()
                .unwrap_or_else(|| CampaignHealth::new(v.time(), v.len()));
            SubmitRow {
                seq: i as u64,
                time: v.time().as_secs(),
                codes: v.codes().to_vec(),
                health: h,
            }
        })
        .collect()
}

/// Submit rows for a Verfploeter sweep campaign.
pub fn rows_from_sweep(result: &SweepResult) -> Vec<SubmitRow> {
    rows_from_series(&result.series, &result.health)
}

/// Submit rows for an EDNS-Client-Subnet campaign.
pub fn rows_from_ednscs(result: &EdnsCsResult) -> Vec<SubmitRow> {
    rows_from_series(&result.series, &result.health)
}

/// Submit rows for an Atlas DNS-CHAOS campaign.
pub fn rows_from_atlas(result: &AtlasResult) -> Vec<SubmitRow> {
    rows_from_series(&result.series, &result.health)
}

/// Submit rows for one hop of a traceroute campaign (`hop` is
/// zero-based: `hop_series[hop]` is the series for hop `hop + 1`).
/// Returns `None` when the campaign recorded no such hop.
pub fn rows_from_traceroute(result: &TracerouteResult, hop: usize) -> Option<Vec<SubmitRow>> {
    result
        .hop_series
        .get(hop)
        .map(|s| rows_from_series(s, &result.health))
}

/// Submit rows for an RTT campaign, quantized into latency bands of
/// `band_ms` so band changes stream like catchment changes (see
/// [`latency_band_codes`]).
pub fn rows_from_latency(result: &LatencyResult, band_ms: f64) -> Vec<SubmitRow> {
    result
        .panels
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let h = result
                .health
                .get(i)
                .cloned()
                .unwrap_or_else(|| CampaignHealth::new(p.time(), p.len()));
            SubmitRow {
                seq: i as u64,
                time: p.time().as_secs(),
                codes: latency_band_codes(p.samples(), band_ms),
                health: h,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fenrir_core::ids::SiteTable;
    use fenrir_core::time::Timestamp;
    use fenrir_core::vector::RoutingVector;

    fn tiny_series() -> (VectorSeries, Vec<CampaignHealth>) {
        let mut series = VectorSeries::new(SiteTable::from_names(["A", "B"]), 3);
        let mut health = Vec::new();
        for (t, codes) in [(0, vec![0, 0, 1]), (86_400, vec![0, 1, 1])] {
            series
                .push(RoutingVector::from_codes(
                    Timestamp::from_secs(t),
                    codes.clone(),
                ))
                .unwrap();
            let mut h = CampaignHealth::new(Timestamp::from_secs(t), 3);
            h.responses = 3;
            health.push(h);
        }
        (series, health)
    }

    #[test]
    fn rows_mirror_the_series_verbatim() {
        let (series, health) = tiny_series();
        let rows = rows_from_series(&series, &health);
        assert_eq!(rows.len(), 2);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.seq, i as u64);
            assert_eq!(row.time, series.get(i).time().as_secs());
            assert_eq!(row.codes, series.get(i).codes());
            assert_eq!(row.health, health[i]);
        }
    }

    #[test]
    fn missing_health_is_padded_not_dropped() {
        let (series, health) = tiny_series();
        let rows = rows_from_series(&series, &health[..1]);
        assert_eq!(rows.len(), 2, "every observation still gets a row");
        assert_eq!(rows[1].health.targets, 3);
        assert_eq!(rows[1].health.responses, 0, "padded health is empty");
    }
}
