//! Composable, seed-deterministic fault injection for measurement
//! campaigns.
//!
//! The paper's longitudinal datasets are full of *measurement* pathology —
//! bursty loss, vantage points that vanish for days, replies that arrive
//! late, duplicated, or mangled — and the analysis must tell those apart
//! from routing changes. A [`FaultPlan`] describes which pathologies to
//! inject into a simulated campaign; [`FaultPlan::session`] freezes the
//! plan into a [`FaultSession`] whose every draw comes from its own
//! `ChaCha8Rng`, so fault injection never perturbs the measurement
//! simulators' random streams: a campaign with `FaultPlan::new(s)` and no
//! faults enabled is byte-identical to one run without a plan at all.
//!
//! Fault dimensions (all optional, freely composable):
//!
//! * **Bursty loss** — a per-target Gilbert–Elliott two-state chain;
//!   losses cluster in bad states rather than landing i.i.d.
//! * **VP churn** — whole vantage points disappear for a contiguous
//!   window of observations, plus an optional total **blackout** window.
//! * **Response timing** — replies duplicated or delayed past their
//!   usefulness window.
//! * **Clock skew** — observation timestamps jittered (and possibly
//!   reordered); the campaign runner re-normalises them.
//! * **Wire corruption** — bit flips and truncation applied to encoded
//!   ICMP/DNS payloads, so decode failures exercise the real parsers.

use fenrir_core::error::{Error, Result};
use fenrir_netsim::adversary::{AdversaryPlan, AdversarySession};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Gilbert–Elliott bursty-loss process: a per-target two-state Markov
/// chain with distinct loss rates in the good and bad states.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstyLoss {
    /// Per-observation probability of transitioning good → bad.
    pub p_enter_bad: f64,
    /// Per-observation probability of transitioning bad → good.
    pub p_exit_bad: f64,
    /// Loss probability per attempt while in the good state.
    pub loss_good: f64,
    /// Loss probability per attempt while in the bad state.
    pub loss_bad: f64,
}

impl Default for BurstyLoss {
    fn default() -> Self {
        BurstyLoss {
            p_enter_bad: 0.05,
            p_exit_bad: 0.4,
            loss_good: 0.05,
            loss_bad: 0.9,
        }
    }
}

impl BurstyLoss {
    /// Stationary fraction of time spent in the bad state.
    pub fn bad_fraction(&self) -> f64 {
        let denom = self.p_enter_bad + self.p_exit_bad;
        if denom == 0.0 {
            0.0
        } else {
            self.p_enter_bad / denom
        }
    }

    /// Long-run mean per-attempt loss probability.
    pub fn mean_loss(&self) -> f64 {
        let bad = self.bad_fraction();
        (1.0 - bad) * self.loss_good + bad * self.loss_bad
    }
}

/// Vantage-point churn: a fraction of targets go dark for one contiguous
/// window of observations each.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VpChurn {
    /// Fraction of targets that churn at all.
    pub churn_frac: f64,
    /// Shortest absence, in observations.
    pub min_window: usize,
    /// Longest absence, in observations.
    pub max_window: usize,
}

impl Default for VpChurn {
    fn default() -> Self {
        VpChurn {
            churn_frac: 0.2,
            min_window: 2,
            max_window: 6,
        }
    }
}

/// Response duplication and late arrival.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResponseTiming {
    /// Probability a successful reply is also duplicated (duplicates are
    /// counted and discarded — they must never double-classify).
    pub dup_prob: f64,
    /// Probability a successful reply arrives too late to use (it is
    /// counted as late and the attempt treated as lost).
    pub delay_prob: f64,
}

/// Observation-timestamp skew: each sweep's nominal time is jittered by
/// up to `max_skew_secs` either way, possibly reordering sweeps. The
/// campaign runner restores strict time order afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClockSkew {
    /// Maximum absolute skew, in seconds.
    pub max_skew_secs: i64,
}

/// Wire-level corruption of encoded probe/response payloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireCorruption {
    /// Probability a payload is corrupted at all.
    pub corrupt_prob: f64,
    /// Up to this many random bit flips per corrupted payload.
    pub max_bit_flips: usize,
    /// Probability a corrupted payload is additionally truncated.
    pub truncate_prob: f64,
}

impl Default for WireCorruption {
    fn default() -> Self {
        WireCorruption {
            corrupt_prob: 0.01,
            max_bit_flips: 4,
            truncate_prob: 0.25,
        }
    }
}

/// A composable description of what to break in a campaign.
///
/// Every dimension is optional; `FaultPlan::new(seed)` with nothing
/// enabled injects no faults and makes no random draws.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the fault RNG (separate from the campaign's seed).
    pub seed: u64,
    /// Bursty (Gilbert–Elliott) loss.
    pub loss: Option<BurstyLoss>,
    /// Per-VP churn windows.
    pub churn: Option<VpChurn>,
    /// Total blackout: *every* target is dark for observations in
    /// `[start, end)`.
    pub blackout: Option<(usize, usize)>,
    /// Duplication and delay of responses.
    pub timing: Option<ResponseTiming>,
    /// Observation clock skew.
    pub skew: Option<ClockSkew>,
    /// Wire payload corruption.
    pub corruption: Option<WireCorruption>,
    /// Poison the campaign's incremental routing state at this sweep, to
    /// exercise the runtime [`fenrir_core::guard::DivergenceGuard`]: the
    /// guard must detect the divergence, repair from a batch
    /// recomputation, and quarantine the incremental path — all visible
    /// in the sweep's `CampaignHealth` — without aborting the campaign.
    pub divergence_at: Option<usize>,
    /// Malicious-observation models (byzantine VPs, sybil clones,
    /// spoofed replies) layered on top of the benign faults. The
    /// adversary draws from its *own* seed, so enabling it never
    /// perturbs any benign fault stream.
    pub adversary: Option<AdversaryPlan>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults enabled.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Enable Gilbert–Elliott bursty loss.
    pub fn with_bursty_loss(mut self, loss: BurstyLoss) -> Self {
        self.loss = Some(loss);
        self
    }

    /// Enable per-VP churn windows.
    pub fn with_vp_churn(mut self, churn: VpChurn) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Black out every target for observations in `[start, end)`.
    pub fn with_blackout(mut self, start: usize, end: usize) -> Self {
        self.blackout = Some((start, end));
        self
    }

    /// Enable response duplication/delay.
    pub fn with_response_timing(mut self, timing: ResponseTiming) -> Self {
        self.timing = Some(timing);
        self
    }

    /// Enable observation clock skew.
    pub fn with_clock_skew(mut self, skew: ClockSkew) -> Self {
        self.skew = Some(skew);
        self
    }

    /// Enable wire payload corruption.
    pub fn with_wire_corruption(mut self, corruption: WireCorruption) -> Self {
        self.corruption = Some(corruption);
        self
    }

    /// Inject an incremental-routing divergence at sweep `obs`
    /// (0-based). Schedule it at sweep 1 or later — the first sweep has
    /// no incremental state to poison yet.
    pub fn with_divergence_at(mut self, obs: usize) -> Self {
        self.divergence_at = Some(obs);
        self
    }

    /// Layer an adversary (byzantine/sybil/spoofing) over the benign
    /// faults.
    pub fn with_adversary(mut self, adversary: AdversaryPlan) -> Self {
        self.adversary = Some(adversary);
        self
    }

    /// Check every probability and window for validity.
    pub fn validate(&self) -> Result<()> {
        fn prob(name: &'static str, p: f64) -> Result<()> {
            if !(0.0..=1.0).contains(&p) {
                return Err(Error::InvalidParameter {
                    name,
                    message: format!("must lie in [0, 1], got {p}"),
                });
            }
            Ok(())
        }
        if let Some(l) = &self.loss {
            prob("loss.p_enter_bad", l.p_enter_bad)?;
            prob("loss.p_exit_bad", l.p_exit_bad)?;
            prob("loss.loss_good", l.loss_good)?;
            prob("loss.loss_bad", l.loss_bad)?;
        }
        if let Some(c) = &self.churn {
            prob("churn.churn_frac", c.churn_frac)?;
            if c.min_window == 0 || c.max_window < c.min_window {
                return Err(Error::InvalidParameter {
                    name: "churn.window",
                    message: format!(
                        "need 1 <= min <= max, got {}..={}",
                        c.min_window, c.max_window
                    ),
                });
            }
        }
        if let Some((start, end)) = self.blackout {
            if end < start {
                return Err(Error::InvalidParameter {
                    name: "blackout",
                    message: format!("window end {end} precedes start {start}"),
                });
            }
        }
        if let Some(t) = &self.timing {
            prob("timing.dup_prob", t.dup_prob)?;
            prob("timing.delay_prob", t.delay_prob)?;
        }
        if let Some(s) = &self.skew {
            if s.max_skew_secs < 0 {
                return Err(Error::InvalidParameter {
                    name: "skew.max_skew_secs",
                    message: format!("must be non-negative, got {}", s.max_skew_secs),
                });
            }
        }
        if let Some(c) = &self.corruption {
            prob("corruption.corrupt_prob", c.corrupt_prob)?;
            prob("corruption.truncate_prob", c.truncate_prob)?;
            if c.max_bit_flips == 0 {
                return Err(Error::InvalidParameter {
                    name: "corruption.max_bit_flips",
                    message: "must be at least 1".into(),
                });
            }
        }
        if self.divergence_at == Some(0) {
            return Err(Error::InvalidParameter {
                name: "divergence_at",
                message: "sweep 0 has no incremental state to poison yet".into(),
            });
        }
        if let Some(a) = &self.adversary {
            a.validate().map_err(|message| Error::InvalidParameter {
                name: "adversary",
                message,
            })?;
        }
        Ok(())
    }

    /// Freeze the plan for a campaign of `targets` targets over
    /// `observations` sweeps, precomputing loss states, churn windows, and
    /// per-observation skew so lookups are deterministic regardless of the
    /// order the campaign queries them in.
    pub fn session(&self, targets: usize, observations: usize) -> Result<FaultSession> {
        self.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        // Target-major Gilbert–Elliott chains: each target walks its own
        // good/bad state across the campaign.
        let mut bad_state = vec![false; targets * observations];
        if let Some(loss) = &self.loss {
            for t in 0..targets {
                let mut bad = false;
                for o in 0..observations {
                    bad = if bad {
                        !rng.gen_bool(loss.p_exit_bad)
                    } else {
                        rng.gen_bool(loss.p_enter_bad)
                    };
                    bad_state[o * targets + t] = bad;
                }
            }
        }
        let mut absent = vec![false; targets * observations];
        if let Some(churn) = &self.churn {
            for t in 0..targets {
                if observations == 0 || !rng.gen_bool(churn.churn_frac) {
                    continue;
                }
                let len = rng
                    .gen_range(churn.min_window..=churn.max_window)
                    .min(observations);
                let start = rng.gen_range(0..=observations - len);
                for o in start..start + len {
                    absent[o * targets + t] = true;
                }
            }
        }
        if let Some((start, end)) = self.blackout {
            for o in start..end.min(observations) {
                for t in 0..targets {
                    absent[o * targets + t] = true;
                }
            }
        }
        let mut skew_secs = vec![0i64; observations];
        if let Some(skew) = &self.skew {
            if skew.max_skew_secs > 0 {
                for s in skew_secs.iter_mut() {
                    *s = rng.gen_range(-skew.max_skew_secs..=skew.max_skew_secs);
                }
            }
        }
        let adversary = match &self.adversary {
            Some(a) => Some(a.session(targets, observations).map_err(|message| {
                Error::InvalidParameter {
                    name: "adversary",
                    message,
                }
            })?),
            None => None,
        };
        Ok(FaultSession {
            plan: *self,
            rng,
            bad_state,
            absent,
            skew_secs,
            targets,
            adversary,
        })
    }
}

/// A [`FaultPlan`] frozen for one campaign run. All randomness is drawn
/// from the session's own RNG, never the campaign's.
#[derive(Debug, Clone)]
pub struct FaultSession {
    plan: FaultPlan,
    rng: ChaCha8Rng,
    /// `bad_state[obs * targets + target]`: Gilbert–Elliott state.
    bad_state: Vec<bool>,
    /// `absent[obs * targets + target]`: churned out or blacked out.
    absent: Vec<bool>,
    /// Per-observation clock skew in seconds.
    skew_secs: Vec<i64>,
    targets: usize,
    /// Frozen adversary decisions (pure lookups, no live RNG).
    adversary: Option<AdversarySession>,
}

impl FaultSession {
    /// The plan this session was frozen from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Is this target churned out (or blacked out) for this observation?
    pub fn vp_absent(&self, target: usize, obs: usize) -> bool {
        self.absent
            .get(obs * self.targets + target)
            .copied()
            .unwrap_or(false)
    }

    /// Draw whether one probe attempt is lost in-network. Retries draw
    /// again, so a burst does not doom every retry deterministically.
    pub fn attempt_lost(&mut self, target: usize, obs: usize) -> bool {
        let Some(loss) = &self.plan.loss else {
            return false;
        };
        let bad = self
            .bad_state
            .get(obs * self.targets + target)
            .copied()
            .unwrap_or(false);
        let p = if bad { loss.loss_bad } else { loss.loss_good };
        self.rng.gen_bool(p)
    }

    /// Draw whether a successful reply is duplicated.
    pub fn duplicated(&mut self) -> bool {
        match &self.plan.timing {
            Some(t) => self.rng.gen_bool(t.dup_prob),
            None => false,
        }
    }

    /// Draw whether a successful reply arrives too late to use.
    pub fn delayed(&mut self) -> bool {
        match &self.plan.timing {
            Some(t) => self.rng.gen_bool(t.delay_prob),
            None => false,
        }
    }

    /// Possibly corrupt an encoded payload in place (bit flips, then
    /// maybe truncation). Returns whether anything was mutated.
    pub fn corrupt(&mut self, bytes: &mut Vec<u8>) -> bool {
        let Some(c) = &self.plan.corruption else {
            return false;
        };
        if bytes.is_empty() || !self.rng.gen_bool(c.corrupt_prob) {
            return false;
        }
        let flips = self.rng.gen_range(1..=c.max_bit_flips);
        for _ in 0..flips {
            let byte = self.rng.gen_range(0..bytes.len());
            let bit = self.rng.gen_range(0..8u32);
            bytes[byte] ^= 1u8 << bit;
        }
        if self.rng.gen_bool(c.truncate_prob) {
            let keep = self.rng.gen_range(0..bytes.len());
            bytes.truncate(keep);
        }
        true
    }

    /// The frozen adversary session, if the plan layered one on. All of
    /// its decisions were drawn at session creation from the adversary's
    /// own seed, so applying it makes no draws from the fault RNG and
    /// checkpoint/resume works unchanged.
    pub fn adversary(&self) -> Option<&AdversarySession> {
        self.adversary.as_ref()
    }

    /// Clock skew for an observation, in seconds (0 when skew is off).
    pub fn skew_for(&self, obs: usize) -> i64 {
        self.skew_secs.get(obs).copied().unwrap_or(0)
    }

    /// Word position of the session's live RNG stream. Everything else
    /// in the session is precomputed from the plan, so this single
    /// number is all a checkpoint needs to freeze fault state.
    pub fn rng_word_pos(&self) -> u64 {
        self.rng.get_word_pos() as u64
    }

    /// Seek the session's live RNG to a previously recorded word
    /// position, resuming the fault stream exactly where a killed
    /// campaign left it.
    pub fn set_rng_word_pos(&mut self, pos: u64) {
        self.rng.set_word_pos(pos as u128);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_draws_nothing_and_injects_nothing() {
        let mut s = FaultPlan::new(7).session(10, 20).unwrap();
        for obs in 0..20 {
            for t in 0..10 {
                assert!(!s.vp_absent(t, obs));
                assert!(!s.attempt_lost(t, obs));
            }
            assert_eq!(s.skew_for(obs), 0);
        }
        assert!(!s.duplicated());
        assert!(!s.delayed());
        let mut bytes = vec![0xAA; 32];
        assert!(!s.corrupt(&mut bytes));
        assert_eq!(bytes, vec![0xAA; 32]);
    }

    #[test]
    fn sessions_are_deterministic() {
        let plan = FaultPlan::new(42)
            .with_bursty_loss(BurstyLoss::default())
            .with_vp_churn(VpChurn::default())
            .with_response_timing(ResponseTiming {
                dup_prob: 0.1,
                delay_prob: 0.1,
            })
            .with_clock_skew(ClockSkew { max_skew_secs: 300 })
            .with_wire_corruption(WireCorruption::default());
        let mut a = plan.session(25, 30).unwrap();
        let mut b = plan.session(25, 30).unwrap();
        for obs in 0..30 {
            assert_eq!(a.skew_for(obs), b.skew_for(obs));
            for t in 0..25 {
                assert_eq!(a.vp_absent(t, obs), b.vp_absent(t, obs));
                assert_eq!(a.attempt_lost(t, obs), b.attempt_lost(t, obs));
            }
            assert_eq!(a.duplicated(), b.duplicated());
            assert_eq!(a.delayed(), b.delayed());
            let mut ba = vec![0x5Au8; 40];
            let mut bb = vec![0x5Au8; 40];
            assert_eq!(a.corrupt(&mut ba), b.corrupt(&mut bb));
            assert_eq!(ba, bb);
        }
    }

    #[test]
    fn gilbert_elliott_loss_matches_mean_and_bursts() {
        let loss = BurstyLoss {
            p_enter_bad: 0.15,
            p_exit_bad: 0.35,
            loss_good: 0.3,
            loss_bad: 0.95,
        };
        // bad fraction = 0.15 / 0.5 = 0.3; mean = 0.7*0.3 + 0.3*0.95.
        assert!((loss.bad_fraction() - 0.3).abs() < 1e-12);
        assert!((loss.mean_loss() - 0.495).abs() < 1e-12);
        let plan = FaultPlan::new(9).with_bursty_loss(loss);
        let mut s = plan.session(50, 200).unwrap();
        let mut lost = 0usize;
        let total = 50 * 200;
        for obs in 0..200 {
            for t in 0..50 {
                if s.attempt_lost(t, obs) {
                    lost += 1;
                }
            }
        }
        let rate = lost as f64 / total as f64;
        assert!(
            (rate - loss.mean_loss()).abs() < 0.05,
            "observed loss {rate} far from stationary mean {}",
            loss.mean_loss()
        );
    }

    #[test]
    fn churn_windows_are_contiguous_and_bounded() {
        let plan = FaultPlan::new(3).with_vp_churn(VpChurn {
            churn_frac: 1.0,
            min_window: 2,
            max_window: 5,
        });
        let s = plan.session(30, 40).unwrap();
        for t in 0..30 {
            let dark: Vec<usize> = (0..40).filter(|&o| s.vp_absent(t, o)).collect();
            assert!(
                (2..=5).contains(&dark.len()),
                "target {t} dark {} observations",
                dark.len()
            );
            for pair in dark.windows(2) {
                assert_eq!(pair[1], pair[0] + 1, "window not contiguous for {t}");
            }
        }
    }

    #[test]
    fn blackout_covers_every_target() {
        let s = FaultPlan::new(1)
            .with_blackout(5, 8)
            .session(12, 10)
            .unwrap();
        for obs in 0..10 {
            for t in 0..12 {
                assert_eq!(s.vp_absent(t, obs), (5..8).contains(&obs));
            }
        }
    }

    #[test]
    fn corruption_mutates_or_truncates() {
        let plan = FaultPlan::new(11).with_wire_corruption(WireCorruption {
            corrupt_prob: 1.0,
            max_bit_flips: 4,
            truncate_prob: 0.5,
        });
        let mut s = plan.session(1, 1).unwrap();
        let original = vec![0u8; 64];
        let mut saw_mutation = false;
        for _ in 0..50 {
            let mut bytes = original.clone();
            assert!(s.corrupt(&mut bytes));
            if bytes != original {
                saw_mutation = true;
            }
            assert!(bytes.len() <= original.len());
        }
        assert!(saw_mutation);
    }

    #[test]
    fn skew_is_bounded() {
        let s = FaultPlan::new(4)
            .with_clock_skew(ClockSkew { max_skew_secs: 120 })
            .session(5, 50)
            .unwrap();
        let mut nonzero = 0;
        for obs in 0..50 {
            let skew = s.skew_for(obs);
            assert!(skew.abs() <= 120);
            if skew != 0 {
                nonzero += 1;
            }
        }
        assert!(nonzero > 0, "120s skew range never produced skew");
    }

    #[test]
    fn rng_word_pos_resumes_the_fault_stream() {
        let plan = FaultPlan::new(21)
            .with_bursty_loss(BurstyLoss::default())
            .with_response_timing(ResponseTiming {
                dup_prob: 0.3,
                delay_prob: 0.3,
            });
        let mut a = plan.session(10, 10).unwrap();
        for obs in 0..5 {
            for t in 0..10 {
                let _ = a.attempt_lost(t, obs);
            }
            let _ = a.duplicated();
        }
        // Freeze, rebuild from the plan, seek: the streams must agree
        // from here on.
        let pos = a.rng_word_pos();
        let mut b = plan.session(10, 10).unwrap();
        b.set_rng_word_pos(pos);
        for obs in 5..10 {
            for t in 0..10 {
                assert_eq!(a.attempt_lost(t, obs), b.attempt_lost(t, obs));
            }
            assert_eq!(a.duplicated(), b.duplicated());
            assert_eq!(a.delayed(), b.delayed());
        }
    }

    #[test]
    fn divergence_at_sweep_zero_is_rejected() {
        let bad = FaultPlan::new(0).with_divergence_at(0);
        assert!(matches!(
            bad.validate(),
            Err(Error::InvalidParameter {
                name: "divergence_at",
                ..
            })
        ));
        assert!(FaultPlan::new(0).with_divergence_at(3).validate().is_ok());
    }

    #[test]
    fn invalid_probabilities_are_rejected() {
        let bad = FaultPlan::new(0).with_bursty_loss(BurstyLoss {
            p_enter_bad: 1.5,
            ..BurstyLoss::default()
        });
        assert!(matches!(
            bad.validate(),
            Err(Error::InvalidParameter {
                name: "loss.p_enter_bad",
                ..
            })
        ));
        let bad = FaultPlan::new(0).with_vp_churn(VpChurn {
            churn_frac: 0.5,
            min_window: 4,
            max_window: 2,
        });
        assert!(bad.validate().is_err());
        let bad = FaultPlan::new(0).with_wire_corruption(WireCorruption {
            corrupt_prob: -0.1,
            ..WireCorruption::default()
        });
        assert!(bad.session(3, 3).is_err());
    }
}
