//! # fenrir-measure
//!
//! Active-measurement simulators: the bridge between the simulated Internet
//! of `fenrir-netsim` and the routing vectors of `fenrir-core`. One module
//! per measurement method of the paper's Table 2:
//!
//! | paper method | module | catchment meaning |
//! |---|---|---|
//! | B-Root/Verfploeter (5M /24s, ICMP) | [`verfploeter`] | anycast site a block's reply lands on |
//! | B-Root/Atlas (13k VPs, DNS CHAOS) | [`atlas`] | anycast site answering a VP's query |
//! | USC/traceroute (scamper, 10 hops) | [`traceroute`] | transit AS at hop *k* toward each block |
//! | Google/Wiki EDNS-CS | [`ednscs`] | web front-end handed to a client prefix |
//! | RIPE Atlas / Trinocular RTT | [`latency`] | per-network RTT panels |
//!
//! Every simulator round-trips real packets from `fenrir-wire` (ICMP echo,
//! DNS CHAOS TXT, DNS + EDNS Client Subnet) so the parsing paths a live
//! deployment would exercise are exercised here too, and every simulator is
//! deterministic under a seed.
//!
//! All simulators execute through the shared [`runner`] campaign executor
//! (retries, probe budgets, quarantine, per-sweep [`fenrir_core::health::
//! CampaignHealth`] records) and accept an optional [`fault`] plan that
//! injects bursty loss, VP churn, duplicated/late replies, clock skew, and
//! wire-level corruption — deterministically under the plan's own seed.
//!
//! Routing state is carried *incrementally* across the timeline: instead
//! of recomputing the global routing fixed point at every observation
//! instant, each campaign diffs the scenario state against the previous
//! instant and reconverges only the perturbed neighborhood
//! ([`fenrir_netsim::IncrementalRoutes`]); debug builds assert the result
//! is bit-for-bit identical to a from-scratch computation.

pub mod adversarial;
pub mod atlas;
pub mod checkpoint;
pub mod ednscs;
pub mod fault;
pub mod latency;
pub(crate) mod routes;
pub mod routeviews;
pub mod runner;
pub mod submit;
pub mod traceroute;
pub mod verfploeter;

pub use checkpoint::{CampaignSink, MemorySink, NullSink, ResumeState, SweepCheckpoint};
pub use fault::FaultPlan;
pub use fenrir_core::health::CampaignHealth;
pub use runner::RunnerConfig;
pub use submit::SubmitRow;
