//! # fenrir
//!
//! Facade crate for the Fenrir reproduction: re-exports the component
//! crates and hosts the runnable examples (`examples/`) and cross-crate
//! integration tests (`tests/`).
//!
//! * [`core`] (`fenrir-core`) — the paper's contribution: routing vectors,
//!   Gower similarity, HAC mode discovery, transition matrices, change
//!   detection, heatmaps, latency summaries.
//! * [`wire`] (`fenrir-wire`) — DNS (EDNS Client-Subnet, NSID, CHAOS) and
//!   ICMPv4 wire formats.
//! * [`netsim`] (`fenrir-netsim`) — AS topology + Gao–Rexford BGP policy
//!   routing substrate.
//! * [`measure`] (`fenrir-measure`) — Verfploeter, Atlas-style,
//!   traceroute, EDNS-CS, and latency measurement simulators.
//! * [`data`] (`fenrir-data`) — dataset IO and the paper's case-study
//!   scenario builders.
//! * [`serve`] (`fenrir-serve`) — sharded, cache-aware TCP query server
//!   over a pipeline journal (catchments, modes, similarity, latency).
//! * [`obs`] (`fenrir-obs`) — lock-cheap metrics core (counters, gauges,
//!   fixed-bucket histograms), Prometheus-style exposition, scrape
//!   endpoint, slow-query trace ring.
//!
//! Start with `examples/quickstart.rs`, which walks the whole Table 1
//! pipeline on a small anycast deployment.

pub use fenrir_core as core;
pub use fenrir_data as data;
pub use fenrir_measure as measure;
pub use fenrir_netsim as netsim;
pub use fenrir_obs as obs;
pub use fenrir_serve as serve;
pub use fenrir_wire as wire;
