//! Crash-recovery integration: the seeded B-Root campaign, killed after
//! every sweep and resumed from its on-disk journal, must end bit-identical
//! to the uninterrupted run — series, similarity matrix, and dendrogram —
//! and a journal with a corrupted trailing frame must load the clean
//! prefix with an explicit recovery report, then finish the campaign.

use fenrir::core::cluster::Dendrogram;
use fenrir::core::error::{Error, Result};
use fenrir::core::health::CampaignHealth;
use fenrir::core::similarity::SimilarityMatrix;
use fenrir::data::journal::{CampaignMeta, JournalSink, PipelineConfig, RecoverablePipeline};
use fenrir::data::scenarios::{broot, Scale};
use fenrir::measure::checkpoint::{CampaignSink, ResumeState, SweepCheckpoint};
use fenrir::measure::runner::RunnerConfig;
use fenrir::measure::verfploeter::{SweepResult, Verfploeter};
use std::path::PathBuf;

/// The exact campaign `scenarios::broot` runs, re-runnable against a sink.
fn broot_sweeper() -> Verfploeter {
    Verfploeter {
        mean_response_rate: 0.5,
        seed: 0xB00755,
    }
}

fn broot_meta(targets: usize, observations: usize) -> CampaignMeta {
    CampaignMeta {
        campaign: "broot-verfploeter".into(),
        seed: 0xB00755,
        targets,
        observations,
    }
}

fn temp_journal(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "fenrir-recovery-{}-{name}.fnrj",
        std::process::id()
    ))
}

/// A sink that crashes the campaign right after every durable write —
/// the worst-case kill schedule a real process death can produce.
struct KillEverySweep<'a> {
    inner: &'a mut JournalSink<Vec<u16>>,
}

impl CampaignSink<Vec<u16>> for KillEverySweep<'_> {
    fn resume(&mut self) -> Result<Option<ResumeState<Vec<u16>>>> {
        self.inner.resume()
    }
    fn record(&mut self, ck: SweepCheckpoint<Vec<u16>>) -> Result<()> {
        self.inner.record(ck)?;
        Err(Error::CampaignAborted {
            campaign: "recovery test",
            reason: "simulated crash after durable write".into(),
        })
    }
}

fn assert_sweeps_identical(a: &SweepResult, b: &SweepResult) {
    assert_eq!(a.blocks, b.blocks);
    assert_eq!(a.series.len(), b.series.len());
    for (i, (va, vb)) in a
        .series
        .vectors()
        .iter()
        .zip(b.series.vectors())
        .enumerate()
    {
        assert_eq!(va, vb, "observation {i} differs");
    }
    assert_eq!(a.health, b.health);
}

#[test]
fn broot_killed_after_every_sweep_is_bit_identical() {
    let study = broot(Scale::Test);
    let times = &study.times[..40]; // every boundary is exercised; 40 keeps the chain fast
    let cfg = RunnerConfig::default();
    let sweeper = broot_sweeper();

    let straight = sweeper
        .run_with(
            &study.topo,
            &study.service,
            &study.scenario,
            times,
            &cfg,
            None,
        )
        .unwrap();

    let path = temp_journal("kill-every-sweep");
    std::fs::remove_file(&path).ok();
    let meta = broot_meta(straight.blocks.len(), times.len());

    let mut crashes = 0;
    let resumed = loop {
        // Each iteration is one process lifetime: reopen the journal from
        // disk, resume, make one sweep of progress, die.
        let mut sink = JournalSink::open(&path, meta.clone())
            .unwrap()
            .compact_every(16);
        let run = sweeper.run_recoverable(
            &study.topo,
            &study.service,
            &study.scenario,
            times,
            &cfg,
            None,
            &mut KillEverySweep { inner: &mut sink },
        );
        match run {
            Ok(result) => break result,
            Err(Error::CampaignAborted { .. }) => {
                crashes += 1;
                assert!(crashes <= times.len(), "campaign never completed");
            }
            Err(e) => panic!("unexpected campaign error: {e:?}"),
        }
    };
    assert_eq!(crashes, times.len(), "one crash per durable sweep");
    assert_sweeps_identical(&straight, &resumed);

    // Downstream analysis from the resumed series matches the straight
    // run's bit-for-bit: matrix and dendrogram.
    let pc = PipelineConfig::new(straight.series.networks());
    let m_a = SimilarityMatrix::compute(&straight.series, &pc.weights, pc.policy).unwrap();
    let m_b = SimilarityMatrix::compute(&resumed.series, &pc.weights, pc.policy).unwrap();
    let bits = |m: &SimilarityMatrix| -> Vec<u64> { m.raw().iter().map(|v| v.to_bits()).collect() };
    assert_eq!(bits(&m_a), bits(&m_b));
    let d_a = Dendrogram::build(&m_a, pc.linkage).unwrap();
    let d_b = Dendrogram::build(&m_b, pc.linkage).unwrap();
    assert_eq!(d_a.merges(), d_b.merges());

    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_trailing_frame_loads_clean_prefix_and_campaign_finishes() {
    let study = broot(Scale::Test);
    let times = &study.times[..24];
    let cfg = RunnerConfig::default();
    let sweeper = broot_sweeper();

    let straight = sweeper
        .run_with(
            &study.topo,
            &study.service,
            &study.scenario,
            times,
            &cfg,
            None,
        )
        .unwrap();

    // Write the whole campaign's journal to disk, uninterrupted.
    let path = temp_journal("torn-tail");
    std::fs::remove_file(&path).ok();
    let meta = broot_meta(straight.blocks.len(), times.len());
    {
        let mut sink = JournalSink::open(&path, meta.clone()).unwrap();
        let full = sweeper
            .run_recoverable(
                &study.topo,
                &study.service,
                &study.scenario,
                times,
                &cfg,
                None,
                &mut sink,
            )
            .unwrap();
        assert_sweeps_identical(&straight, &full);
        assert_eq!(sink.state().next_sweep, times.len());
    }

    // Corrupt the trailing frame on disk, as a torn write would.
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    // Reopening detects the damage, reports it, and drops only the tail.
    let mut sink = JournalSink::open(&path, meta.clone()).unwrap();
    let report = sink.recovery_report().clone();
    assert!(!report.is_clean(), "damage must be reported");
    assert!(report.torn.is_some());
    assert!(report.dropped_bytes > 0);
    assert_eq!(sink.state().next_sweep, times.len() - 1);
    assert_eq!(
        sink.state().rows[..],
        straight
            .series
            .vectors()
            .iter()
            .take(times.len() - 1)
            .map(|v| v.codes().to_vec())
            .collect::<Vec<_>>()[..],
        "clean prefix must match the original sweeps exactly"
    );

    // Resuming replays only the lost sweep and lands bit-identical.
    let resumed = sweeper
        .run_recoverable(
            &study.topo,
            &study.service,
            &study.scenario,
            times,
            &cfg,
            None,
            &mut sink,
        )
        .unwrap();
    assert_sweeps_identical(&straight, &resumed);

    std::fs::remove_file(&path).ok();
}

#[test]
fn analysis_pipeline_killed_after_every_observation_is_bit_identical() {
    // The full D(t) pipeline — series, incremental Φ matrix, dendrogram —
    // restored from its on-disk journal after every single observation,
    // against a pipeline that never died.
    let study = broot(Scale::Test);
    let series = &study.result.series;
    let take = 30.min(series.len());
    let networks = series.networks();
    let cfg = PipelineConfig {
        compact_every: Some(8),
        ..PipelineConfig::new(networks)
    };
    let sites = series.sites().clone();

    let mut straight =
        RecoverablePipeline::in_memory(sites.clone(), networks, cfg.clone()).unwrap();

    let path = temp_journal("pipeline");
    std::fs::remove_file(&path).ok();
    for (i, v) in series.vectors().iter().take(take).enumerate() {
        let health = study.result.health[i].clone();
        straight.observe(v.clone(), health.clone()).unwrap();

        // One process lifetime per observation: reopen from disk, check
        // the restored state matches the never-killed pipeline, observe
        // once, die (drop).
        let mut pipe =
            RecoverablePipeline::open(&path, sites.clone(), networks, cfg.clone()).unwrap();
        assert!(pipe.recovery_report().is_clean());
        assert_eq!(pipe.series().len(), i);
        pipe.observe(v.clone(), health).unwrap();

        assert_eq!(pipe.series().len(), straight.series().len());
        let bits =
            |m: &SimilarityMatrix| -> Vec<u64> { m.raw().iter().map(|v| v.to_bits()).collect() };
        assert_eq!(
            bits(pipe.matrix().unwrap()),
            bits(straight.matrix().unwrap()),
            "matrix diverged at observation {i}"
        );
        assert_eq!(
            pipe.dendrogram().map(Dendrogram::merges),
            straight.dendrogram().map(Dendrogram::merges),
            "dendrogram diverged at observation {i}"
        );
        let healths: &[CampaignHealth] = pipe.health();
        assert_eq!(healths, straight.health());
    }

    std::fs::remove_file(&path).ok();
}
