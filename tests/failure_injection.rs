//! Failure-injection integration tests: the pipeline must degrade
//! gracefully — no panics, no false alarms — under measurement conditions
//! far worse than the paper's (total loss, near-total loss, heavy noise).

use fenrir::core::detect::{ChangeDetector, DEFAULT_COVERAGE_FLOOR};
use fenrir::core::similarity::{phi, SimilarityMatrix, UnknownPolicy};
use fenrir::core::time::Timestamp;
use fenrir::core::weight::Weights;
use fenrir::measure::atlas::AtlasCampaign;
use fenrir::measure::fault::{BurstyLoss, FaultPlan, VpChurn, WireCorruption};
use fenrir::measure::runner::RunnerConfig;
use fenrir::measure::verfploeter::Verfploeter;
use fenrir::netsim::anycast::AnycastService;
use fenrir::netsim::events::Scenario;
use fenrir::netsim::geo::cities;
use fenrir::netsim::topology::{Tier, Topology, TopologyBuilder};

fn setup() -> (Topology, AnycastService) {
    let topo = TopologyBuilder {
        transit: 3,
        regional: 6,
        stubs: 40,
        blocks_per_stub: 2,
        seed: 0xFA11,
        ..Default::default()
    }
    .build();
    let regionals = topo.tier_members(Tier::Regional);
    let mut svc = AnycastService::new("fi-root");
    svc.add_site("LAX", regionals[0], cities::LAX);
    svc.add_site("AMS", regionals[1], cities::AMS);
    (topo, svc)
}

fn days(n: i64) -> Vec<Timestamp> {
    (0..n).map(Timestamp::from_days).collect()
}

#[test]
fn total_verfploeter_blackout_is_all_unknown_and_quiet() {
    let (topo, svc) = setup();
    let vp = Verfploeter {
        mean_response_rate: 0.0,
        seed: 1,
    };
    let r = vp.run(&topo, &svc, &Scenario::new(), &days(10));
    assert_eq!(r.series.mean_coverage(), 0.0);
    let w = Weights::uniform(r.series.networks());
    // Pessimistic Φ is 0 everywhere; known-only is 0 (nothing known).
    assert_eq!(
        phi(
            r.series.get(0),
            r.series.get(1),
            &w,
            UnknownPolicy::Pessimistic
        ),
        0.0
    );
    assert_eq!(
        phi(
            r.series.get(0),
            r.series.get(1),
            &w,
            UnknownPolicy::KnownOnly
        ),
        0.0
    );
    // The detector stays silent rather than alarming on darkness.
    let events = ChangeDetector::default().detect(&r.series, &w);
    assert!(events.is_empty(), "{events:?}");
    // And the similarity matrix still computes.
    let sim = SimilarityMatrix::compute(&r.series, &w, UnknownPolicy::Pessimistic).unwrap();
    assert_eq!(sim.len(), 10);
}

#[test]
fn atlas_total_loss_is_quiet() {
    let (topo, svc) = setup();
    let c = AtlasCampaign {
        vantage_points: 40,
        loss_prob: 1.0,
        ..Default::default()
    };
    let r = c.run(&topo, &svc, &Scenario::new(), &days(5));
    assert_eq!(r.series.mean_coverage(), 0.0);
    let w = Weights::uniform(40);
    assert!(ChangeDetector::default().detect(&r.series, &w).is_empty());
}

#[test]
fn heavy_loss_does_not_fake_routing_changes() {
    // 70% loss with stable routing: the known-only detector must not fire.
    let (topo, svc) = setup();
    let c = AtlasCampaign {
        vantage_points: 120,
        loss_prob: 0.7,
        ..Default::default()
    };
    let r = c.run(&topo, &svc, &Scenario::new(), &days(20));
    let w = Weights::uniform(120);
    let detector = ChangeDetector {
        policy: UnknownPolicy::KnownOnly,
        ..Default::default()
    };
    let events = detector.detect(&r.series, &w);
    assert!(
        events.is_empty(),
        "loss noise must not alarm under known-only Φ: {events:?}"
    );
}

#[test]
fn real_change_still_detected_under_heavy_loss() {
    let (topo, svc) = setup();
    let mut sc = Scenario::new();
    sc.drain(
        0,
        Timestamp::from_days(10).as_secs(),
        Timestamp::from_days(13).as_secs(),
        "op",
    );
    let c = AtlasCampaign {
        vantage_points: 120,
        loss_prob: 0.5,
        ..Default::default()
    };
    let r = c.run(&topo, &svc, &sc, &days(20));
    let w = Weights::uniform(120);
    let detector = ChangeDetector {
        policy: UnknownPolicy::KnownOnly,
        ..Default::default()
    };
    let events = detector.detect(&r.series, &w);
    assert!(
        events.iter().any(|e| e.time == Timestamp::from_days(10)),
        "drain missed under 50% loss: {events:?}"
    );
}

#[test]
fn interpolation_after_heavy_loss_recovers_analysis_quality() {
    let (topo, svc) = setup();
    let c = AtlasCampaign {
        vantage_points: 100,
        loss_prob: 0.4,
        ..Default::default()
    };
    let mut series = c.run(&topo, &svc, &Scenario::new(), &days(15)).series;
    let w = Weights::uniform(100);
    let before = phi(series.get(5), series.get(6), &w, UnknownPolicy::Pessimistic);
    fenrir::core::clean::interpolate_nearest(&mut series, 3);
    let after = phi(series.get(5), series.get(6), &w, UnknownPolicy::Pessimistic);
    assert!(
        after > before + 0.2,
        "interpolation should lift pessimistic Φ: {before} -> {after}"
    );
}

/// The chaos conditions from the fault-injection acceptance bar: bursty
/// loss averaging ~50% with ≥90% loss inside bursts, 30% of vantage
/// points churning out for multi-observation windows, and 1% wire-level
/// corruption.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_bursty_loss(BurstyLoss {
            p_enter_bad: 0.15,
            p_exit_bad: 0.35,
            loss_good: 0.3,
            loss_bad: 0.95,
        })
        .with_vp_churn(VpChurn {
            churn_frac: 0.3,
            min_window: 2,
            max_window: 5,
        })
        .with_wire_corruption(WireCorruption {
            corrupt_prob: 0.01,
            max_bit_flips: 4,
            truncate_prob: 0.25,
        })
}

fn retrying() -> RunnerConfig {
    RunnerConfig {
        max_retries: 3,
        ..Default::default()
    }
}

#[test]
fn chaos_on_stable_routing_never_alarms() {
    let (topo, svc) = setup();
    let c = AtlasCampaign {
        vantage_points: 120,
        loss_prob: 0.0,
        ..Default::default()
    };
    let plan = chaos_plan(0xC4A05);
    let r = c
        .run_with(
            &topo,
            &svc,
            &Scenario::new(),
            &days(20),
            &retrying(),
            Some(&plan),
        )
        .unwrap();
    assert_eq!(r.health.len(), 20);
    let w = Weights::uniform(120);
    let detector = ChangeDetector {
        policy: UnknownPolicy::KnownOnly,
        ..Default::default()
    };
    let gated = detector
        .detect_gated(&r.series, &w, &r.health, DEFAULT_COVERAGE_FLOOR)
        .unwrap();
    assert!(
        gated.events.is_empty(),
        "stable routing under chaos must not raise unsuppressed alarms: {:?}",
        gated.events
    );
}

#[test]
fn chaos_does_not_hide_a_real_drain() {
    let (topo, svc) = setup();
    let mut sc = Scenario::new();
    sc.drain(
        0,
        Timestamp::from_days(10).as_secs(),
        Timestamp::from_days(13).as_secs(),
        "op",
    );
    let c = AtlasCampaign {
        vantage_points: 120,
        loss_prob: 0.0,
        ..Default::default()
    };
    let plan = chaos_plan(0xC4A06);
    let r = c
        .run_with(&topo, &svc, &sc, &days(20), &retrying(), Some(&plan))
        .unwrap();
    let w = Weights::uniform(120);
    let detector = ChangeDetector {
        policy: UnknownPolicy::KnownOnly,
        ..Default::default()
    };
    let gated = detector
        .detect_gated(&r.series, &w, &r.health, DEFAULT_COVERAGE_FLOOR)
        .unwrap();
    assert!(
        gated
            .events
            .iter()
            .any(|e| e.time == Timestamp::from_days(10)),
        "drain missed under chaos: {:?} (suppressed: {:?})",
        gated.events,
        gated.suppressed
    );
}

#[test]
fn total_blackout_is_suppressed_not_alarmed() {
    let (topo, svc) = setup();
    let vp = Verfploeter {
        mean_response_rate: 0.95,
        seed: 7,
    };
    // Observations 4..=6 are a total outage of the measurement system.
    let plan = FaultPlan::new(0xB1AC).with_blackout(4, 7);
    let r = vp
        .run_with(
            &topo,
            &svc,
            &Scenario::new(),
            &days(12),
            &RunnerConfig::default(),
            Some(&plan),
        )
        .unwrap();
    for obs in 4..=6 {
        assert_eq!(r.health[obs].coverage(), 0.0, "obs {obs} is dark");
        assert_eq!(r.health[obs].responses, 0);
    }
    let w = Weights::uniform(r.series.networks());
    let gated = ChangeDetector::default()
        .detect_gated(&r.series, &w, &r.health, DEFAULT_COVERAGE_FLOOR)
        .unwrap();
    assert!(
        gated.events.is_empty(),
        "a measurement outage must not alarm: {:?}",
        gated.events
    );
    assert!(
        !gated.suppressed.is_empty(),
        "the blackout edge must be recorded as suppressed, not dropped"
    );
    // The ungated detector would have fired — that is exactly what the
    // gate is for.
    assert!(!ChangeDetector::default().detect(&r.series, &w).is_empty());
}

#[test]
fn heavy_corruption_degrades_to_unknown_without_panic() {
    let (topo, svc) = setup();
    let c = AtlasCampaign {
        vantage_points: 80,
        loss_prob: 0.0,
        ..Default::default()
    };
    let plan = FaultPlan::new(0xC0DE).with_wire_corruption(WireCorruption {
        corrupt_prob: 0.7,
        max_bit_flips: 6,
        truncate_prob: 0.5,
    });
    let r = c
        .run_with(
            &topo,
            &svc,
            &Scenario::new(),
            &days(8),
            &RunnerConfig::default(),
            Some(&plan),
        )
        .unwrap();
    let decode_failures: usize = r.health.iter().map(|h| h.decode_failures).sum();
    assert!(
        decode_failures > 0,
        "corruption this heavy must break decodes"
    );
    // Mangled replies become Unknown, so coverage collapses — and the
    // coverage gate keeps whatever Φ noise remains from alarming.
    let cov = r.series.mean_coverage();
    assert!(
        cov < 0.3,
        "70% per-direction corruption leaves little ({cov})"
    );
    let w = Weights::uniform(80);
    let detector = ChangeDetector {
        policy: UnknownPolicy::KnownOnly,
        ..Default::default()
    };
    let gated = detector
        .detect_gated(&r.series, &w, &r.health, DEFAULT_COVERAGE_FLOOR)
        .unwrap();
    assert!(
        gated.events.is_empty(),
        "corruption noise must not survive the gate: {:?}",
        gated.events
    );
}

#[test]
fn retries_recover_coverage_lost_to_bursts() {
    let (topo, svc) = setup();
    let vp = Verfploeter {
        mean_response_rate: 1.0,
        seed: 3,
    };
    let plan = FaultPlan::new(0x9E7).with_bursty_loss(BurstyLoss {
        p_enter_bad: 0.15,
        p_exit_bad: 0.35,
        loss_good: 0.3,
        loss_bad: 0.95,
    });
    let once = vp
        .run_with(
            &topo,
            &svc,
            &Scenario::new(),
            &days(10),
            &RunnerConfig::default(),
            Some(&plan),
        )
        .unwrap();
    let with_retries = vp
        .run_with(
            &topo,
            &svc,
            &Scenario::new(),
            &days(10),
            &retrying(),
            Some(&plan),
        )
        .unwrap();
    let c0 = once.series.mean_coverage();
    let c3 = with_retries.series.mean_coverage();
    assert!(
        c3 > c0 + 0.15,
        "three retries should lift coverage well past single-shot: {c0} -> {c3}"
    );
    let retried: usize = with_retries.health.iter().map(|h| h.retries).sum();
    assert!(retried > 0);
}
