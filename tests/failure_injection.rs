//! Failure-injection integration tests: the pipeline must degrade
//! gracefully — no panics, no false alarms — under measurement conditions
//! far worse than the paper's (total loss, near-total loss, heavy noise).

use fenrir::core::detect::ChangeDetector;
use fenrir::core::similarity::{phi, SimilarityMatrix, UnknownPolicy};
use fenrir::core::time::Timestamp;
use fenrir::core::weight::Weights;
use fenrir::measure::atlas::AtlasCampaign;
use fenrir::measure::verfploeter::Verfploeter;
use fenrir::netsim::anycast::AnycastService;
use fenrir::netsim::events::Scenario;
use fenrir::netsim::geo::cities;
use fenrir::netsim::topology::{Tier, Topology, TopologyBuilder};

fn setup() -> (Topology, AnycastService) {
    let topo = TopologyBuilder {
        transit: 3,
        regional: 6,
        stubs: 40,
        blocks_per_stub: 2,
        seed: 0xFA11,
        ..Default::default()
    }
    .build();
    let regionals = topo.tier_members(Tier::Regional);
    let mut svc = AnycastService::new("fi-root");
    svc.add_site("LAX", regionals[0], cities::LAX);
    svc.add_site("AMS", regionals[1], cities::AMS);
    (topo, svc)
}

fn days(n: i64) -> Vec<Timestamp> {
    (0..n).map(Timestamp::from_days).collect()
}

#[test]
fn total_verfploeter_blackout_is_all_unknown_and_quiet() {
    let (topo, svc) = setup();
    let vp = Verfploeter {
        mean_response_rate: 0.0,
        seed: 1,
    };
    let r = vp.run(&topo, &svc, &Scenario::new(), &days(10));
    assert_eq!(r.series.mean_coverage(), 0.0);
    let w = Weights::uniform(r.series.networks());
    // Pessimistic Φ is 0 everywhere; known-only is 0 (nothing known).
    assert_eq!(
        phi(r.series.get(0), r.series.get(1), &w, UnknownPolicy::Pessimistic),
        0.0
    );
    assert_eq!(
        phi(r.series.get(0), r.series.get(1), &w, UnknownPolicy::KnownOnly),
        0.0
    );
    // The detector stays silent rather than alarming on darkness.
    let events = ChangeDetector::default().detect(&r.series, &w);
    assert!(events.is_empty(), "{events:?}");
    // And the similarity matrix still computes.
    let sim = SimilarityMatrix::compute(&r.series, &w, UnknownPolicy::Pessimistic).unwrap();
    assert_eq!(sim.len(), 10);
}

#[test]
fn atlas_total_loss_is_quiet() {
    let (topo, svc) = setup();
    let c = AtlasCampaign {
        vantage_points: 40,
        loss_prob: 1.0,
        ..Default::default()
    };
    let r = c.run(&topo, &svc, &Scenario::new(), &days(5));
    assert_eq!(r.series.mean_coverage(), 0.0);
    let w = Weights::uniform(40);
    assert!(ChangeDetector::default().detect(&r.series, &w).is_empty());
}

#[test]
fn heavy_loss_does_not_fake_routing_changes() {
    // 70% loss with stable routing: the known-only detector must not fire.
    let (topo, svc) = setup();
    let c = AtlasCampaign {
        vantage_points: 120,
        loss_prob: 0.7,
        ..Default::default()
    };
    let r = c.run(&topo, &svc, &Scenario::new(), &days(20));
    let w = Weights::uniform(120);
    let detector = ChangeDetector {
        policy: UnknownPolicy::KnownOnly,
        ..Default::default()
    };
    let events = detector.detect(&r.series, &w);
    assert!(
        events.is_empty(),
        "loss noise must not alarm under known-only Φ: {events:?}"
    );
}

#[test]
fn real_change_still_detected_under_heavy_loss() {
    let (topo, svc) = setup();
    let mut sc = Scenario::new();
    sc.drain(
        0,
        Timestamp::from_days(10).as_secs(),
        Timestamp::from_days(13).as_secs(),
        "op",
    );
    let c = AtlasCampaign {
        vantage_points: 120,
        loss_prob: 0.5,
        ..Default::default()
    };
    let r = c.run(&topo, &svc, &sc, &days(20));
    let w = Weights::uniform(120);
    let detector = ChangeDetector {
        policy: UnknownPolicy::KnownOnly,
        ..Default::default()
    };
    let events = detector.detect(&r.series, &w);
    assert!(
        events.iter().any(|e| e.time == Timestamp::from_days(10)),
        "drain missed under 50% loss: {events:?}"
    );
}

#[test]
fn interpolation_after_heavy_loss_recovers_analysis_quality() {
    let (topo, svc) = setup();
    let c = AtlasCampaign {
        vantage_points: 100,
        loss_prob: 0.4,
        ..Default::default()
    };
    let mut series = c.run(&topo, &svc, &Scenario::new(), &days(15)).series;
    let w = Weights::uniform(100);
    let before = phi(
        series.get(5),
        series.get(6),
        &w,
        UnknownPolicy::Pessimistic,
    );
    fenrir::core::clean::interpolate_nearest(&mut series, 3);
    let after = phi(
        series.get(5),
        series.get(6),
        &w,
        UnknownPolicy::Pessimistic,
    );
    assert!(
        after > before + 0.2,
        "interpolation should lift pessimistic Φ: {before} -> {after}"
    );
}
