//! Determinism regression: every campaign, run twice with the same seed
//! and the same fault plan, must produce identical series *and* identical
//! health records — fault injection must never introduce hidden
//! nondeterminism (wall clocks, hash-map iteration order, ...).

use fenrir::core::time::Timestamp;
use fenrir::measure::atlas::AtlasCampaign;
use fenrir::measure::ednscs::{EdnsCsCampaign, FrontendPolicy};
use fenrir::measure::fault::{
    BurstyLoss, ClockSkew, FaultPlan, ResponseTiming, VpChurn, WireCorruption,
};
use fenrir::measure::latency::LatencyProber;
use fenrir::measure::runner::RunnerConfig;
use fenrir::measure::traceroute::TracerouteCampaign;
use fenrir::measure::verfploeter::Verfploeter;
use fenrir::netsim::anycast::AnycastService;
use fenrir::netsim::events::Scenario;
use fenrir::netsim::geo::cities;
use fenrir::netsim::prefix::BlockId;
use fenrir::netsim::topology::{Tier, Topology, TopologyBuilder};

fn setup() -> (Topology, AnycastService) {
    let topo = TopologyBuilder {
        transit: 3,
        regional: 6,
        stubs: 30,
        blocks_per_stub: 2,
        seed: 0xDE7,
        ..Default::default()
    }
    .build();
    let regionals = topo.tier_members(Tier::Regional);
    let mut svc = AnycastService::new("det-root");
    svc.add_site("LAX", regionals[0], cities::LAX);
    svc.add_site("AMS", regionals[1], cities::AMS);
    (topo, svc)
}

fn days(n: i64) -> Vec<Timestamp> {
    (0..n).map(Timestamp::from_days).collect()
}

/// A plan exercising every fault dimension at once.
fn full_plan() -> FaultPlan {
    FaultPlan::new(0xF0117)
        .with_bursty_loss(BurstyLoss {
            p_enter_bad: 0.1,
            p_exit_bad: 0.3,
            loss_good: 0.1,
            loss_bad: 0.9,
        })
        .with_vp_churn(VpChurn {
            churn_frac: 0.25,
            min_window: 1,
            max_window: 3,
        })
        .with_blackout(3, 4)
        .with_response_timing(ResponseTiming {
            dup_prob: 0.1,
            delay_prob: 0.15,
        })
        .with_clock_skew(ClockSkew {
            max_skew_secs: 3_600,
        })
        .with_wire_corruption(WireCorruption {
            corrupt_prob: 0.05,
            max_bit_flips: 3,
            truncate_prob: 0.25,
        })
}

fn cfg() -> RunnerConfig {
    RunnerConfig {
        max_retries: 2,
        probe_budget: Some(500),
        quarantine_after: Some(3),
        ..Default::default()
    }
}

#[test]
fn verfploeter_is_deterministic_under_faults() {
    let (topo, svc) = setup();
    let vp = Verfploeter {
        mean_response_rate: 0.8,
        seed: 11,
    };
    let plan = full_plan();
    let run = || {
        vp.run_with(&topo, &svc, &Scenario::new(), &days(8), &cfg(), Some(&plan))
            .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.series.vectors(), b.series.vectors());
    assert_eq!(a.health, b.health);
    assert_eq!(a.health.len(), 8);
}

#[test]
fn atlas_is_deterministic_under_faults() {
    let (topo, svc) = setup();
    let c = AtlasCampaign {
        vantage_points: 40,
        ..Default::default()
    };
    let plan = full_plan();
    let run = || {
        c.run_with(&topo, &svc, &Scenario::new(), &days(8), &cfg(), Some(&plan))
            .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.series.vectors(), b.series.vectors());
    assert_eq!(a.health, b.health);
}

#[test]
fn traceroute_is_deterministic_under_faults() {
    let (topo, _svc) = setup();
    let stubs = topo.tier_members(Tier::Stub);
    let c = TracerouteCampaign {
        source: stubs[0],
        ..Default::default()
    };
    let plan = full_plan();
    let run = || {
        c.run_with(&topo, &Scenario::new(), &days(8), &cfg(), Some(&plan))
            .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.hop_series.len(), b.hop_series.len());
    for (sa, sb) in a.hop_series.iter().zip(&b.hop_series) {
        assert_eq!(sa.vectors(), sb.vectors());
    }
    assert_eq!(a.health, b.health);
}

#[test]
fn ednscs_is_deterministic_under_faults() {
    let (topo, svc) = setup();
    let c = EdnsCsCampaign {
        hostname: "www.example.org".into(),
        policy: FrontendPolicy::Geo {
            sticky_return_frac: 0.3,
        },
        loss_prob: 0.02,
        seed: 13,
    };
    let plan = full_plan();
    let run = || {
        c.run_with(&topo, &svc, &Scenario::new(), &days(8), &cfg(), Some(&plan))
            .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.series.vectors(), b.series.vectors());
    assert_eq!(a.health, b.health);
}

#[test]
fn latency_is_deterministic_under_faults() {
    let (topo, svc) = setup();
    let blocks: Vec<BlockId> = topo.all_blocks().iter().map(|&(b, _)| b).collect();
    let p = LatencyProber::default();
    let plan = full_plan();
    let run = || {
        p.probe_with(
            &topo,
            &svc,
            &Scenario::new(),
            &blocks,
            &days(8),
            &cfg(),
            Some(&plan),
        )
        .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.panels, b.panels);
    assert_eq!(a.health, b.health);
}

#[test]
fn skewed_timestamps_stay_strictly_increasing_everywhere() {
    // Three days of skew on a one-day cadence forces reordering; the
    // renormalised output must still satisfy the series invariant and the
    // health records must follow their observations.
    let (topo, svc) = setup();
    let vp = Verfploeter {
        mean_response_rate: 0.9,
        seed: 21,
    };
    let plan = FaultPlan::new(5).with_clock_skew(ClockSkew {
        max_skew_secs: 3 * 86_400,
    });
    let r = vp
        .run_with(
            &topo,
            &svc,
            &Scenario::new(),
            &days(10),
            &RunnerConfig::default(),
            Some(&plan),
        )
        .unwrap();
    for i in 1..r.series.len() {
        assert!(r.series.get(i).time() > r.series.get(i - 1).time());
    }
    for (v, h) in r.series.vectors().iter().zip(&r.health) {
        assert_eq!(v.time(), h.time);
    }
}
